"""Extension: hybrid hash vs Grace (paper §2.3 lineage).

The paper's model descends from Shekita & Carey's hybrid-hash analysis but
validates the Grace variant; this bench adds the hybrid back.  With
resident buckets joined on the fly, hybrid hash skips the spill write and
probe read for the resident fraction of the redistributed relation, so it
should beat Grace increasingly as memory grows — and collapse onto Grace
when memory forces the resident set to zero.
"""

from conftest import bench_scale

from repro.harness.experiment import run_memory_sweep
from repro.harness.report import ascii_chart, format_table, shape_summary
from repro.workload import WorkloadSpec, generate_workload

FRACTIONS = (0.1, 0.2, 0.3, 0.5)
BUCKETS = 8


def test_ext_hybrid_hash_vs_grace(benchmark, bench_config, bench_machine, record):
    scale = bench_scale(0.1)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )

    def run_both():
        out = {}
        out["grace"] = run_memory_sweep(
            "grace",
            FRACTIONS,
            machine=bench_machine,
            sim_config=bench_config,
            workload=workload,
            fixed_buckets=BUCKETS,
        )
        out["hybrid-hash"] = run_memory_sweep(
            "hybrid-hash",
            FRACTIONS,
            machine=bench_machine,
            sim_config=bench_config,
            workload=workload,
            algo_kwargs={"buckets": BUCKETS},
            model_kwargs={"buckets": BUCKETS},
        )
        return out

    sweeps = benchmark.pedantic(run_both, rounds=1, iterations=1)

    hh, gr = sweeps["hybrid-hash"], sweeps["grace"]
    rows = [
        [
            f,
            gr.sim_series[i],
            hh.sim_series[i],
            hh.model_series[i],
            hh.points[i].sim_detail["resident_buckets"],
        ]
        for i, f in enumerate(FRACTIONS)
    ]
    text = "\n".join(
        [
            "== Extension: hybrid hash vs Grace (ms/Rproc) ==",
            format_table(
                ["MRproc/|R|", "grace_sim", "hybrid_sim", "hybrid_model",
                 "resident_K"],
                rows,
            ),
            ascii_chart(
                list(FRACTIONS),
                {"grace": gr.sim_series, "hybrid-hash": hh.sim_series},
            ),
            shape_summary(hh.model_series, hh.sim_series),
        ]
    )
    record("ext_hybrid_hash", text)

    # Hybrid never loses to Grace and wins clearly at ample memory.
    for i in range(len(FRACTIONS)):
        assert hh.sim_series[i] <= gr.sim_series[i] * 1.05
    assert hh.sim_series[-1] < 0.9 * gr.sim_series[-1]
    # Its model tracks its measurement within a factor of two.
    for m, s in zip(hh.model_series, hh.sim_series):
        assert 0.5 <= m / s <= 2.0
