"""Extension: the real-mmap backend (paper §2.1, µDatabase).

Runs the three pointer-based joins on actual ``mmap``-backed segment files
with one OS process per partition, and measures the real machine's
Figure 1(b) analogue (timed newMap/openMap/deleteMap).  Wall-clock numbers
here are of the *host*, not the simulated 1996 machine — the point is that
the same algorithms run unchanged on a genuine single-level store.

Besides the rendered table, the join bench emits machine-readable
``results/BENCH_real_mmap.json`` — per-pass wall ms, pairs/sec, and a
batched-vs-per-record storage microbenchmark — so the perf trajectory of
the real backend is tracked across PRs.
"""

import json
import multiprocessing
import tempfile
import time
from pathlib import Path

from conftest import RESULTS_DIR, bench_scale

from repro.harness.report import format_table
from repro.joins import verify_pairs
from repro.joins.reference import expected_checksum
from repro.parallel import run_real_join
from repro.storage import (
    RRelationFile,
    timed_delete_map,
    timed_new_map,
    timed_open_map,
)
from repro.workload import WorkloadSpec, generate_workload


def _record_path_microbench(workload, root: Path) -> dict:
    """Per-record (scalar get) vs batched (iter_objects) read of one R file."""
    objects = [obj for part in workload.r_partitions for obj in part]
    path = root / "micro.seg"
    rel = RRelationFile.create(path, len(objects), workload.spec.r_bytes)
    try:
        rel.append_many(objects)
        start = time.perf_counter()
        scalar = [rel.get(i) for i in range(len(rel))]
        scalar_ms = (time.perf_counter() - start) * 1000.0
        start = time.perf_counter()
        batched = list(rel.iter_objects())
        batched_ms = (time.perf_counter() - start) * 1000.0
    finally:
        rel.close()
    assert scalar == batched
    return {
        "records": len(objects),
        "per_record_ms": scalar_ms,
        "batched_ms": batched_ms,
        "speedup": scalar_ms / batched_ms if batched_ms else None,
    }


def test_ext_real_mmap_joins(benchmark, record):
    scale = bench_scale(0.05)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    checksum = expected_checksum(workload)

    def run_all():
        out = {}
        with tempfile.TemporaryDirectory() as root:
            with multiprocessing.Pool(processes=workload.disks) as pool:
                for name in ("nested-loops", "sort-merge", "grace"):
                    out[name] = run_real_join(
                        name, workload, str(Path(root) / name),
                        use_processes=True, pool=pool,
                    )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Oracle verification stays outside the timed region: it exercises the
    # reference join, not the backend under measurement.
    for res in results.values():
        verify_pairs(workload, res.pairs)

    rows = [
        [name, res.wall_ms, res.pair_count]
        for name, res in results.items()
    ]
    text = "\n".join(
        [
            "== Extension: real mmap backend (host wall-clock) ==",
            format_table(["algorithm", "wall_ms", "pairs"], rows),
        ]
    )
    record("ext_real_mmap", text)

    with tempfile.TemporaryDirectory() as root:
        micro = _record_path_microbench(workload, Path(root))

    payload = {
        "workload": {
            "scale": scale,
            "r_objects": workload.r_objects_total,
            "s_objects": len(workload.s_objects),
            "disks": workload.disks,
        },
        "storage_read_path": micro,
        "algorithms": {
            name: {
                "wall_ms": res.wall_ms,
                "pass_wall_ms": res.pass_wall_ms,
                "pass_counts": res.pass_counts,
                "pair_count": res.pair_count,
                "checksum_ok": res.checksum == checksum,
                "pairs_per_sec": (
                    res.pair_count / (res.wall_ms / 1000.0)
                    if res.wall_ms else None
                ),
                "used_processes": res.used_processes,
            }
            for name, res in results.items()
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_real_mmap.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    for res in results.values():
        assert res.pair_count == workload.r_objects_total
        assert res.checksum == checksum


def test_ext_real_mapping_setup(benchmark, record):
    """A real Figure 1(b): timed mmap setup against mapping size."""

    sizes = (256, 1024, 4096, 16_384)

    def measure():
        samples = []
        with tempfile.TemporaryDirectory() as root:
            for size in sizes:
                path = Path(root) / f"m{size}.seg"
                seg, new_ms = timed_new_map(path, capacity=size)
                seg.close()
                seg, open_ms = timed_open_map(path)
                seg.close()
                delete_ms = timed_delete_map(path)
                samples.append((size, new_ms, open_ms, delete_ms))
        return samples

    samples = benchmark.pedantic(measure, rounds=1, iterations=1)

    text = "\n".join(
        [
            "== Extension: real mmap setup costs (host wall-clock) ==",
            format_table(
                ["records", "newMap_ms", "openMap_ms", "deleteMap_ms"],
                [list(s) for s in samples],
            ),
            "Host mmap is far faster than 1996 hardware; the shape of "
            "interest is that all three costs stay small and bounded.",
        ]
    )
    record("ext_real_mapping", text)

    for _, new_ms, open_ms, delete_ms in samples:
        assert new_ms >= 0 and open_ms >= 0 and delete_ms >= 0
