"""Extension: the real-mmap backend (paper §2.1, µDatabase).

Runs the three pointer-based joins on actual ``mmap``-backed segment files
with one OS process per partition, and measures the real machine's
Figure 1(b) analogue (timed newMap/openMap/deleteMap).  Wall-clock numbers
here are of the *host*, not the simulated 1996 machine — the point is that
the same algorithms run unchanged on a genuine single-level store.
"""

import tempfile
from pathlib import Path

from conftest import bench_scale

from repro.harness.report import format_table
from repro.joins import verify_pairs
from repro.parallel import run_real_join
from repro.storage import timed_delete_map, timed_new_map, timed_open_map
from repro.workload import WorkloadSpec, generate_workload


def test_ext_real_mmap_joins(benchmark, record):
    scale = bench_scale(0.05)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )

    def run_all():
        out = {}
        with tempfile.TemporaryDirectory() as root:
            for name in ("nested-loops", "sort-merge", "grace"):
                result = run_real_join(
                    name, workload, str(Path(root) / name), use_processes=True
                )
                verify_pairs(workload, result.pairs)
                out[name] = result
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, res.wall_ms, res.pair_count]
        for name, res in results.items()
    ]
    text = "\n".join(
        [
            "== Extension: real mmap backend (host wall-clock) ==",
            format_table(["algorithm", "wall_ms", "pairs"], rows),
        ]
    )
    record("ext_real_mmap", text)

    for res in results.values():
        assert res.pair_count == workload.r_objects_total


def test_ext_real_mapping_setup(benchmark, record):
    """A real Figure 1(b): timed mmap setup against mapping size."""

    sizes = (256, 1024, 4096, 16_384)

    def measure():
        samples = []
        with tempfile.TemporaryDirectory() as root:
            for size in sizes:
                path = Path(root) / f"m{size}.seg"
                seg, new_ms = timed_new_map(path, capacity=size)
                seg.close()
                seg, open_ms = timed_open_map(path)
                seg.close()
                delete_ms = timed_delete_map(path)
                samples.append((size, new_ms, open_ms, delete_ms))
        return samples

    samples = benchmark.pedantic(measure, rounds=1, iterations=1)

    text = "\n".join(
        [
            "== Extension: real mmap setup costs (host wall-clock) ==",
            format_table(
                ["records", "newMap_ms", "openMap_ms", "deleteMap_ms"],
                [list(s) for s in samples],
            ),
            "Host mmap is far faster than 1996 hardware; the shape of "
            "interest is that all three costs stay small and bounded.",
        ]
    )
    record("ext_real_mapping", text)

    for _, new_ms, open_ms, delete_ms in samples:
        assert new_ms >= 0 and open_ms >= 0 and delete_ms >= 0
