"""Extension: the real-mmap backend (paper §2.1, µDatabase).

Runs the four pointer-based joins on actual ``mmap``-backed segment files
with one OS process per partition, and measures the real machine's
Figure 1(b) analogue (timed newMap/openMap/deleteMap).  Wall-clock numbers
here are of the *host*, not the simulated 1996 machine — the point is that
the same algorithms run unchanged on a genuine single-level store.

Besides the rendered table, the join bench emits machine-readable
``results/BENCH_real_mmap.json`` — per-pass wall ms, pairs/sec, and a
batched-vs-per-record storage microbenchmark — so the perf trajectory of
the real backend is tracked across PRs.

The joins run twice per round, metrics off and metrics on, so the
observability layer's overhead is *measured*, reported in the table, and
pinned (< 5 % on the per-algorithm median, with a small absolute slack for
timer noise at bench scale).  The metrics-on runs export one schema-valid
stats document per algorithm to ``results/STATS_real_<algorithm>.json``.
"""

import json
import multiprocessing
import os
import statistics
import tempfile
import time
from pathlib import Path

from conftest import RESULTS_DIR, bench_scale

from repro.harness.report import format_table
from repro.joins import verify_pairs
from repro.joins.reference import expected_checksum
from repro.parallel import run_real_join
from repro.storage import (
    RRelationFile,
    timed_delete_map,
    timed_new_map,
    timed_open_map,
)
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hybrid-hash")
ROUNDS = 5


def _record_path_microbench(workload, root: Path) -> dict:
    """Per-record (scalar get) vs batched (iter_objects) read of one R file."""
    objects = [obj for part in workload.r_partitions for obj in part]
    path = root / "micro.seg"
    rel = RRelationFile.create(path, len(objects), workload.spec.r_bytes)
    try:
        rel.append_many(objects)
        start = time.perf_counter()
        scalar = [rel.get(i) for i in range(len(rel))]
        scalar_ms = (time.perf_counter() - start) * 1000.0
        start = time.perf_counter()
        batched = list(rel.iter_objects())
        batched_ms = (time.perf_counter() - start) * 1000.0
    finally:
        rel.close()
    assert scalar == batched
    return {
        "records": len(objects),
        "per_record_ms": scalar_ms,
        "batched_ms": batched_ms,
        "speedup": scalar_ms / batched_ms if batched_ms else None,
    }


def test_ext_real_mmap_joins(benchmark, record, record_stats):
    scale = bench_scale(0.05)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    checksum = expected_checksum(workload)

    def run_suite(pool, collect_metrics):
        out = {}
        with tempfile.TemporaryDirectory() as root:
            for name in ALGORITHMS:
                out[name] = run_real_join(
                    name, workload, str(Path(root) / name),
                    use_processes=True, pool=pool,
                    collect_metrics=collect_metrics,
                )
        return out

    walls = {name: {False: [], True: []} for name in ALGORITHMS}
    with multiprocessing.Pool(processes=workload.disks) as pool:
        # The benchmark fixture times one uninstrumented suite (the perf
        # trajectory number tracked across PRs)...
        results_off = benchmark.pedantic(
            lambda: run_suite(pool, collect_metrics=False),
            rounds=1, iterations=1,
        )
        for name, res in results_off.items():
            walls[name][False].append(res.wall_ms)
        # ...then the overhead measurement interleaves metrics-off and
        # metrics-on rounds so drift (cache warmth, CPU frequency) hits
        # both modes alike, and the medians isolate the metrics cost.
        results_on = None
        for _ in range(ROUNDS):
            for collect in (False, True):
                suite = run_suite(pool, collect_metrics=collect)
                for name, res in suite.items():
                    walls[name][collect].append(res.wall_ms)
                if collect:
                    results_on = suite

    # Oracle verification stays outside the timed region: it exercises the
    # reference join, not the backend under measurement.
    for res in results_on.values():
        verify_pairs(workload, res.pairs)

    medians = {
        name: {
            "off": statistics.median(walls[name][False]),
            "on": statistics.median(walls[name][True]),
        }
        for name in ALGORITHMS
    }
    overhead_pct = {
        name: 100.0 * (m["on"] - m["off"]) / m["off"]
        for name, m in medians.items()
    }
    # Overhead gate input: each metrics-on round paired with the
    # metrics-off round that ran right next to it, so slow drift (CPU
    # frequency, co-tenants on a shared runner) cancels within the pair
    # instead of landing on whichever mode ran later.  walls[False] has
    # one extra leading entry — the benchmark-fixture round — so the
    # interleaved off rounds start at index 1.
    paired_delta_ms = {
        name: statistics.median(
            on - off
            for off, on in zip(walls[name][False][1:], walls[name][True])
        )
        for name in ALGORITHMS
    }

    stats_paths = {}
    for name, res in results_on.items():
        document = res.stats_document(workload)
        stats_paths[name] = record_stats(f"STATS_real_{name}", document).name

    rows = [
        [
            name,
            medians[name]["off"],
            medians[name]["on"],
            f"{overhead_pct[name]:+.1f}%",
            results_on[name].pair_count,
        ]
        for name in ALGORITHMS
    ]
    text = "\n".join(
        [
            "== Extension: real mmap backend — batched block I/O, "
            "zero-pickle PAIRS segments (host wall-clock) ==",
            format_table(
                [
                    "algorithm",
                    "median_ms",
                    "median_ms_metrics",
                    "metrics_overhead",
                    "pairs",
                ],
                rows,
            ),
            f"Medians over {ROUNDS} interleaved rounds per mode; "
            "stats documents: "
            + ", ".join(stats_paths[name] for name in ALGORITHMS),
        ]
    )
    record("ext_real_mmap", text)

    with tempfile.TemporaryDirectory() as root:
        micro = _record_path_microbench(workload, Path(root))

    payload = {
        "workload": {
            "scale": scale,
            "r_objects": workload.r_objects_total,
            "s_objects": len(workload.s_objects),
            "disks": workload.disks,
        },
        "storage_read_path": micro,
        "metrics_rounds": ROUNDS,
        "algorithms": {
            name: {
                "wall_ms": medians[name]["off"],
                "wall_ms_metrics_on": medians[name]["on"],
                "metrics_overhead_pct": overhead_pct[name],
                "pass_wall_ms": results_on[name].pass_wall_ms,
                "pass_counts": results_on[name].pass_counts,
                "pair_count": results_on[name].pair_count,
                "checksum_ok": results_on[name].checksum == checksum,
                "pairs_per_sec": (
                    results_on[name].pair_count
                    / (medians[name]["off"] / 1000.0)
                    if medians[name]["off"] else None
                ),
                "used_processes": results_on[name].used_processes,
                "stats_document": stats_paths[name],
            }
            for name in ALGORITHMS
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_real_mmap.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    for name, res in results_on.items():
        assert res.pair_count == workload.r_objects_total
        assert res.checksum == checksum
        assert res.worker_metrics, f"{name}: no per-worker metrics harvested"
        # The acceptance bar: metrics cost below 5% of the uninstrumented
        # median, with an absolute floor so timer noise at bench scale
        # (medians of tens of ms) cannot flake the suite.  The cost is
        # the median of *paired* round deltas — on a loaded runner the
        # unpaired medians can drift past this gate in either direction
        # while the true overhead stays flat.  The floor is a per-worker
        # allowance: with fewer cores than workers the per-worker metrics
        # cost serializes onto the wall clock instead of overlapping, so
        # the floor scales by that serialization factor (1 on any runner
        # with >= disks cores, where the strict bar holds).
        serialization = max(1.0, workload.disks / (os.cpu_count() or 1))
        assert (
            paired_delta_ms[name]
            <= medians[name]["off"] * 0.05 + 10.0 * serialization
        ), (
            f"{name}: metrics overhead {paired_delta_ms[name]:+.1f} ms "
            f"median paired delta "
            f"({medians[name]['off']:.1f} -> {medians[name]['on']:.1f} ms)"
        )


def test_ext_real_mapping_setup(benchmark, record):
    """A real Figure 1(b): timed mmap setup against mapping size."""

    sizes = (256, 1024, 4096, 16_384)

    def measure():
        samples = []
        with tempfile.TemporaryDirectory() as root:
            for size in sizes:
                path = Path(root) / f"m{size}.seg"
                seg, new_ms = timed_new_map(path, capacity=size)
                seg.close()
                seg, open_ms = timed_open_map(path)
                seg.close()
                delete_ms = timed_delete_map(path)
                samples.append((size, new_ms, open_ms, delete_ms))
        return samples

    samples = benchmark.pedantic(measure, rounds=1, iterations=1)

    text = "\n".join(
        [
            "== Extension: real mmap setup costs — batched-I/O "
            "MappedSegment backend (host wall-clock) ==",
            format_table(
                ["records", "newMap_ms", "openMap_ms", "deleteMap_ms"],
                [list(s) for s in samples],
            ),
            "Host mmap is far faster than 1996 hardware; the shape of "
            "interest is that all three costs stay small and bounded.",
        ]
    )
    record("ext_real_mapping", text)

    for _, new_ms, open_ms, delete_ms in samples:
        assert new_ms >= 0 and open_ms >= 0 and delete_ms >= 0
