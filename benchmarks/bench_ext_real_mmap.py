"""Extension: the real-mmap backend (paper §2.1, µDatabase).

Runs the four pointer-based joins on actual ``mmap``-backed segment files
with one OS process per partition, and measures the real machine's
Figure 1(b) analogue (timed newMap/openMap/deleteMap).  Wall-clock numbers
here are of the *host*, not the simulated 1996 machine — the point is that
the same algorithms run unchanged on a genuine single-level store.

Two join benches write the machine-readable, append-only
``results/BENCH_real_mmap.json`` (schema v2: ``{"schema_version": 2,
"runs": [...]}``, one entry appended per bench invocation so the perf
trajectory is trackable across PRs):

* ``test_ext_real_mmap_joins`` — the metrics-overhead measurement at the
  quick default scale: interleaved metrics-off/metrics-on rounds, a
  robust paired-median delta, and a minimum-effect floor so scheduler
  jitter can neither fail nor greenwash the gate.
* ``test_ext_real_mmap_kernel_scales`` — the kernel-mode comparison at
  first-class scales 0.05 and **1.0 (the paper's full 102,400-object
  geometry)**, recording per-scale, per-algorithm ``pairs_per_sec`` for
  the scalar and vectorized kernels.  Scale 10 runs vector-only behind
  ``REPRO_BENCH_FULL=1``.  Per-mode cost is the best (minimum) summed
  pass wall over the rounds: I/O noise on a shared host is strictly
  additive, so the minimum is the robust estimator of true kernel cost
  and is fair to both modes; ``pairs_per_sec`` is pairs over summed join
  -pass walls (driver-side workload materialization is shared setup,
  identical in both modes, and excluded).
"""

import json
import multiprocessing
import os
import statistics
import tempfile
import time
from pathlib import Path

from conftest import RESULTS_DIR, bench_scale

from repro import config
from repro.harness.report import format_table
from repro.joins import verify_pairs
from repro.joins.reference import expected_checksum
from repro.parallel import run_real_join
from repro.storage import (
    RRelationFile,
    timed_delete_map,
    timed_new_map,
    timed_open_map,
)
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = (
    "nested-loops",
    "sort-merge",
    "grace",
    "grace-radix",
    "grace-learned",
    "hybrid-hash",
)
ROUNDS = 5
BENCH_PATH = RESULTS_DIR / "BENCH_real_mmap.json"

#: First-class kernel-comparison scales; 1.0 is the paper's validation
#: geometry (102,400 x 128-byte objects).  Scale 10 (1,024,000 objects)
#: joins the list with REPRO_BENCH_FULL=1, vector kernels only.
KERNEL_SCALES = (0.05, 1.0)
FULL_SCALE = 10.0
KERNEL_ROUNDS = 4


# ------------------------------------------------------- artifact (schema v2)

def _load_bench_runs() -> list:
    """Current run entries; a legacy (v1) artifact is kept as the first."""
    try:
        payload = json.loads(BENCH_PATH.read_text())
    except (OSError, ValueError):
        return []
    if isinstance(payload, dict) and payload.get("schema_version") == 2:
        runs = payload.get("runs")
        return runs if isinstance(runs, list) else []
    return [{"kind": "legacy-v1", "payload": payload}]


def _append_bench_run(entry: dict) -> None:
    runs = _load_bench_runs()
    runs.append(entry)
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(
        json.dumps({"schema_version": 2, "runs": runs}, indent=2) + "\n"
    )


def _record_path_microbench(workload, root: Path) -> dict:
    """Per-record (scalar get) vs batched (iter_objects) read of one R file."""
    objects = [obj for part in workload.r_partitions for obj in part]
    path = root / "micro.seg"
    rel = RRelationFile.create(path, len(objects), workload.spec.r_bytes)
    try:
        rel.append_many(objects)
        start = time.perf_counter()
        scalar = [rel.get(i) for i in range(len(rel))]
        scalar_ms = (time.perf_counter() - start) * 1000.0
        start = time.perf_counter()
        batched = list(rel.iter_objects())
        batched_ms = (time.perf_counter() - start) * 1000.0
    finally:
        rel.close()
    assert scalar == batched
    return {
        "records": len(objects),
        "per_record_ms": scalar_ms,
        "batched_ms": batched_ms,
        "speedup": scalar_ms / batched_ms if batched_ms else None,
    }


def test_ext_real_mmap_joins(benchmark, record, record_stats):
    scale = bench_scale(0.05)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    checksum = expected_checksum(workload)

    def run_suite(pool, collect_metrics):
        out = {}
        with tempfile.TemporaryDirectory() as root:
            for name in ALGORITHMS:
                out[name] = run_real_join(
                    name, workload, str(Path(root) / name),
                    use_processes=True, pool=pool,
                    collect_metrics=collect_metrics,
                )
        return out

    walls = {name: {False: [], True: []} for name in ALGORITHMS}
    with multiprocessing.Pool(processes=workload.disks) as pool:
        # The benchmark fixture times one uninstrumented suite (the perf
        # trajectory number tracked across PRs)...
        results_off = benchmark.pedantic(
            lambda: run_suite(pool, collect_metrics=False),
            rounds=1, iterations=1,
        )
        for name, res in results_off.items():
            walls[name][False].append(res.wall_ms)
        # ...then the overhead measurement interleaves metrics-off and
        # metrics-on rounds so drift (cache warmth, CPU frequency) hits
        # both modes alike, and the medians isolate the metrics cost.
        results_on = None
        for _ in range(ROUNDS):
            for collect in (False, True):
                suite = run_suite(pool, collect_metrics=collect)
                for name, res in suite.items():
                    walls[name][collect].append(res.wall_ms)
                if collect:
                    results_on = suite

    # Oracle verification stays outside the timed region: it exercises the
    # reference join, not the backend under measurement.
    for res in results_on.values():
        verify_pairs(workload, res.pairs)

    medians = {
        name: {
            "off": statistics.median(walls[name][False]),
            "on": statistics.median(walls[name][True]),
        }
        for name in ALGORITHMS
    }
    # Overhead gate input: each metrics-on round paired with the
    # metrics-off round that ran right next to it, so slow drift (CPU
    # frequency, co-tenants on a shared runner) cancels within the pair
    # instead of landing on whichever mode ran later.  walls[False] has
    # one extra leading entry — the benchmark-fixture round — so the
    # interleaved off rounds start at index 1.
    paired_delta_ms = {
        name: statistics.median(
            on - off
            for off, on in zip(walls[name][False][1:], walls[name][True])
        )
        for name in ALGORITHMS
    }
    # The minimum effect the gate can resolve: on a loaded runner with
    # fewer cores than workers the per-worker metrics cost serializes
    # onto the wall clock, so the absolute floor scales with that
    # serialization factor.  Deltas inside the floor — positive *or*
    # negative (the seed artifact recorded a -1.3% "overhead") — are
    # scheduler jitter, reported as within-noise, and cannot flip the
    # gate at any scale because the floor is the max, not the sum, of
    # the absolute and relative allowances.
    serialization = max(1.0, workload.disks / (os.cpu_count() or 1))
    floor_ms = {
        name: max(15.0 * serialization, medians[name]["off"] * 0.05)
        for name in ALGORITHMS
    }
    overhead = {
        name: {
            "paired_delta_ms": paired_delta_ms[name],
            "paired_delta_pct": (
                100.0 * paired_delta_ms[name] / medians[name]["off"]
                if medians[name]["off"] else None
            ),
            "noise_floor_ms": floor_ms[name],
            "within_noise": abs(paired_delta_ms[name]) <= floor_ms[name],
        }
        for name in ALGORITHMS
    }

    stats_paths = {}
    for name, res in results_on.items():
        document = res.stats_document(workload)
        stats_paths[name] = record_stats(f"STATS_real_{name}", document).name

    rows = [
        [
            name,
            medians[name]["off"],
            medians[name]["on"],
            f"{paired_delta_ms[name]:+.1f}ms"
            + (" (noise)" if overhead[name]["within_noise"] else ""),
            results_on[name].pair_count,
        ]
        for name in ALGORITHMS
    ]
    text = "\n".join(
        [
            "== Extension: real mmap backend — batched block I/O, "
            "zero-pickle PAIRS segments (host wall-clock) ==",
            format_table(
                [
                    "algorithm",
                    "median_ms",
                    "median_ms_metrics",
                    "metrics_cost",
                    "pairs",
                ],
                rows,
            ),
            f"Medians over {ROUNDS} interleaved rounds per mode; metrics "
            "cost is the median paired round delta; stats documents: "
            + ", ".join(stats_paths[name] for name in ALGORITHMS),
        ]
    )
    record("ext_real_mmap", text)

    with tempfile.TemporaryDirectory() as root:
        micro = _record_path_microbench(workload, Path(root))

    _append_bench_run({
        "kind": "metrics-overhead",
        "timestamp": time.time(),
        "workload": {
            "scale": scale,
            "r_objects": workload.r_objects_total,
            "s_objects": len(workload.s_objects),
            "disks": workload.disks,
        },
        "storage_read_path": micro,
        "metrics_rounds": ROUNDS,
        "algorithms": {
            name: {
                "wall_ms": medians[name]["off"],
                "wall_ms_metrics_on": medians[name]["on"],
                "metrics_overhead": overhead[name],
                "pass_wall_ms": results_on[name].pass_wall_ms,
                "pass_counts": results_on[name].pass_counts,
                "pair_count": results_on[name].pair_count,
                "checksum_ok": results_on[name].checksum == checksum,
                "kernel_mode": results_on[name].kernel_mode,
                "used_processes": results_on[name].used_processes,
                "stats_document": stats_paths[name],
            }
            for name in ALGORITHMS
        },
    })

    for name, res in results_on.items():
        assert res.pair_count == workload.r_objects_total
        assert res.checksum == checksum
        assert res.worker_metrics, f"{name}: no per-worker metrics harvested"
        # The acceptance bar: the metrics cost (median paired delta) must
        # not exceed the noise floor — max(5% of the uninstrumented
        # median, an absolute per-worker allowance).  A sub-floor delta
        # in either direction is jitter by construction and passes.
        assert paired_delta_ms[name] <= floor_ms[name], (
            f"{name}: metrics overhead {paired_delta_ms[name]:+.1f} ms "
            f"median paired delta exceeds the {floor_ms[name]:.1f} ms "
            f"noise floor ({medians[name]['off']:.1f} -> "
            f"{medians[name]['on']:.1f} ms)"
        )


def _measure_mode(workload, algorithm, mode, rounds) -> dict:
    """Best-of-N pass walls for one (algorithm, kernel mode) pair."""
    pass_walls = []
    result = None
    for _ in range(rounds):
        os.sync()  # quiesce writeback so one round's flushes don't bleed in
        with tempfile.TemporaryDirectory() as root:
            result = run_real_join(
                algorithm, workload, root, use_processes=False,
                collect_metrics=False, kernels=mode,
            )
        assert result.kernel_mode == mode
        pass_walls.append(sum(result.pass_wall_ms.values()))
    best = min(pass_walls)
    return {
        "kernel_mode": mode,
        "rounds": rounds,
        "pass_ms": best,
        "pass_ms_median": statistics.median(pass_walls),
        "wall_ms": result.wall_ms,
        "pair_count": result.pair_count,
        "checksum": result.checksum,
        "pairs_per_sec": result.pair_count / (best / 1000.0),
    }


def test_ext_real_mmap_kernel_scales(record):
    """Scalar vs vectorized stage kernels at first-class paper scales.

    The tentpole number: at scale 1.0 (102,400 objects) the vectorized
    kernels must clear >= 10x the scalar baseline's pairs/sec across the
    four-algorithm suite.
    """
    scales = list(KERNEL_SCALES)
    full = config.env_flag("bench_full")
    if full:
        scales.append(FULL_SCALE)

    entry_scales = {}
    rows = []
    for scale in scales:
        workload = generate_workload(
            WorkloadSpec.paper_validation(scale=scale), disks=4
        )
        modes = ("scalar", "vector") if scale <= 1.0 else ("vector",)
        rounds = KERNEL_ROUNDS if scale <= 1.0 else 2
        per_algorithm = {}
        totals = {mode: 0.0 for mode in modes}
        for algorithm in ALGORITHMS:
            measured = {
                mode: _measure_mode(workload, algorithm, mode, rounds)
                for mode in modes
            }
            for mode in modes:
                assert measured[mode]["pair_count"] == (
                    workload.r_objects_total
                )
                totals[mode] += measured[mode]["pass_ms"]
            if len(modes) == 2:
                assert (
                    measured["vector"]["checksum"]
                    == measured["scalar"]["checksum"]
                ), f"{algorithm}@{scale}: kernel modes disagree"
                measured["vector_speedup"] = (
                    measured["scalar"]["pass_ms"]
                    / measured["vector"]["pass_ms"]
                )
            per_algorithm[algorithm] = measured
            rows.append(
                [
                    scale,
                    algorithm,
                    *(
                        round(measured[m]["pass_ms"], 1) if m in measured
                        else "-"
                        for m in ("scalar", "vector")
                    ),
                    f"{measured.get('vector_speedup', 0):.1f}x"
                    if "vector_speedup" in measured else "-",
                    round(measured[modes[-1]]["pairs_per_sec"]),
                ]
            )
        scale_entry = {
            "workload": {
                "r_objects": workload.r_objects_total,
                "s_objects": len(workload.s_objects),
                "disks": workload.disks,
            },
            "algorithms": per_algorithm,
        }
        if len(modes) == 2:
            scale_entry["aggregate"] = {
                "scalar_pass_ms": totals["scalar"],
                "vector_pass_ms": totals["vector"],
                "vector_speedup": totals["scalar"] / totals["vector"],
            }
        entry_scales[str(scale)] = scale_entry

    text = "\n".join(
        [
            "== Extension: vectorized stage kernels at paper scale "
            "(best-of-%d summed pass walls, host wall-clock) ==" % (
                KERNEL_ROUNDS,
            ),
            format_table(
                [
                    "scale",
                    "algorithm",
                    "scalar_pass_ms",
                    "vector_pass_ms",
                    "speedup",
                    "pairs_per_sec",
                ],
                rows,
            ),
            "Scale 1.0 is the paper's validation geometry (102,400 "
            "objects); pairs_per_sec uses the vectorized path.",
        ]
    )
    record("ext_real_mmap_kernels", text)

    _append_bench_run({
        "kind": "kernel-scales",
        "timestamp": time.time(),
        "rounds": KERNEL_ROUNDS,
        "scales": entry_scales,
    })

    for scale, scale_entry in entry_scales.items():
        aggregate = scale_entry.get("aggregate")
        if aggregate is None:
            continue
        # Regression gate: the vectorized path must never lose to scalar.
        assert aggregate["vector_speedup"] > 1.0, (
            f"scale {scale}: vector kernels slower than scalar "
            f"({aggregate['vector_pass_ms']:.0f} vs "
            f"{aggregate['scalar_pass_ms']:.0f} ms)"
        )
        if float(scale) >= 1.0:
            # The tentpole target is >=10x at the paper's geometry; the
            # asserted floor leaves headroom for noisy shared runners
            # while the recorded artifact tracks the real ratio.
            assert aggregate["vector_speedup"] >= 6.0, (
                f"scale {scale}: vector speedup "
                f"{aggregate['vector_speedup']:.1f}x collapsed below the "
                "regression floor"
            )


def test_ext_real_mapping_setup(benchmark, record):
    """A real Figure 1(b): timed mmap setup against mapping size."""

    sizes = (256, 1024, 4096, 16_384)

    def measure():
        samples = []
        with tempfile.TemporaryDirectory() as root:
            for size in sizes:
                path = Path(root) / f"m{size}.seg"
                seg, new_ms = timed_new_map(path, capacity=size)
                seg.close()
                seg, open_ms = timed_open_map(path)
                seg.close()
                delete_ms = timed_delete_map(path)
                samples.append((size, new_ms, open_ms, delete_ms))
        return samples

    samples = benchmark.pedantic(measure, rounds=1, iterations=1)

    text = "\n".join(
        [
            "== Extension: real mmap setup costs — batched-I/O "
            "MappedSegment backend (host wall-clock) ==",
            format_table(
                ["records", "newMap_ms", "openMap_ms", "deleteMap_ms"],
                [list(s) for s in samples],
            ),
            "Host mmap is far faster than 1996 hardware; the shape of "
            "interest is that all three costs stay small and bounded.",
        ]
    )
    record("ext_real_mapping", text)

    for _, new_ms, open_ms, delete_ms in samples:
        assert new_ms >= 0 and open_ms >= 0 and delete_ms >= 0
