"""Extension: closed-loop load on the multi-tenant join service daemon.

Starts one :class:`~repro.service.server.JoinService` (real worker pool,
warm stores, shared governor) and drives it with N concurrent clients in
a closed loop — each client submits a join, waits for the result, thinks
briefly, and submits the next, cycling through all four algorithms.  The
sweep over client counts measures how serving throughput and request
latency respond to concurrency against one shared daemon, with every
reply checked bit-identical against a direct ``run_real_join`` of the
same workload.

Appends one entry per invocation to the machine-readable, append-only
``results/BENCH_service.json`` (schema v1: ``{"schema_version": 1,
"runs": [...]}``) so the serving-performance trajectory is trackable
across PRs, and renders ``results/ext_service.txt`` for humans.
"""

from __future__ import annotations

import json
import math
import statistics
import time
from pathlib import Path
from threading import Thread

from conftest import RESULTS_DIR, bench_scale

from repro.harness.report import format_table
from repro.parallel import run_real_join
from repro.service import JoinService, JoinServiceClient, ServiceConfig, TenantConfig
from repro.workload import WorkloadSpec, generate_workload

BENCH_PATH = RESULTS_DIR / "BENCH_service.json"
ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hybrid-hash")
CLIENT_COUNTS = (1, 2, 4)
REQUESTS_PER_CLIENT = 4
THINK_S = 0.01
SEED = 96
DISKS = 4


def _load_bench_runs() -> list:
    try:
        payload = json.loads(BENCH_PATH.read_text())
    except (OSError, ValueError):
        return []
    if isinstance(payload, dict) and payload.get("schema_version") == 1:
        runs = payload.get("runs")
        return runs if isinstance(runs, list) else []
    return []


def _append_bench_run(entry: dict) -> None:
    runs = _load_bench_runs()
    runs.append(entry)
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(
        json.dumps({"schema_version": 1, "runs": runs}, indent=2) + "\n"
    )


def _percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _drive_closed_loop(socket_path: str, clients: int, scale: float) -> dict:
    """N clients, each REQUESTS_PER_CLIENT joins with think time between."""
    latencies: list = []
    replies: list = []
    errors: list = []

    def client_loop(offset: int) -> None:
        try:
            with JoinServiceClient(socket_path) as client:
                for i in range(REQUESTS_PER_CLIENT):
                    algorithm = ALGORITHMS[(offset + i) % len(ALGORITHMS)]
                    reply = client.join(
                        algorithm,
                        tenant=f"client-{offset}",
                        scale=scale,
                        seed=SEED,
                        disks=DISKS,
                    )
                    latencies.append(reply.request_ms)
                    replies.append(reply)
                    time.sleep(THINK_S)
        except Exception as error:  # surface in the bench, don't hang it
            errors.append(error)

    started = time.perf_counter()
    threads = [Thread(target=client_loop, args=(n,)) for n in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    assert not errors, errors
    total = clients * REQUESTS_PER_CLIENT
    assert len(replies) == total
    return {
        "clients": clients,
        "requests": total,
        "wall_s": wall_s,
        "throughput_rps": total / wall_s,
        "latency_ms": {
            "p50": _percentile(latencies, 0.50),
            "p99": _percentile(latencies, 0.99),
            "mean": statistics.fmean(latencies),
            "max": max(latencies),
        },
        "replies": replies,
    }


def test_service_closed_loop(tmp_path):
    scale = bench_scale(0.05)
    root = tmp_path / "svc-root"
    socket_path = str(tmp_path / "join.sock")
    service = JoinService(
        ServiceConfig(
            root=str(root),
            socket_path=socket_path,
            disks=DISKS,
            max_concurrent=4,
            queue_limit=64,
            pool_workers=DISKS,
        ),
        TenantConfig.open_default(),
    )
    service.start()

    # Ground truth for bit-identity: one direct run per algorithm.
    workload = generate_workload(
        WorkloadSpec(
            r_objects=max(64, int(102_400 * scale)),
            s_objects=max(64, int(102_400 * scale)),
            seed=SEED,
        ),
        DISKS,
    )
    expected = {}
    for algorithm in ALGORITHMS:
        direct = run_real_join(
            algorithm,
            workload,
            str(tmp_path / f"direct-{algorithm}"),
            use_processes=False,
            collect_pairs=False,
        )
        expected[algorithm] = (direct.pair_count, direct.checksum)

    phases = []
    try:
        for clients in CLIENT_COUNTS:
            phase = _drive_closed_loop(socket_path, clients, scale)
            for reply in phase.pop("replies"):
                assert (reply.pair_count, reply.checksum) == expected[
                    reply.algorithm
                ], reply.algorithm
            phases.append(phase)
        document = service.stats_document()
    finally:
        service.close()

    rows = [
        [
            phase["clients"],
            phase["requests"],
            f"{phase['throughput_rps']:.1f}",
            f"{phase['latency_ms']['p50']:.1f}",
            f"{phase['latency_ms']['p99']:.1f}",
            f"{phase['latency_ms']['max']:.1f}",
        ]
        for phase in phases
    ]
    table = format_table(
        ["clients", "requests", "req/s", "p50_ms", "p99_ms", "max_ms"], rows
    )
    daemon_latency = document["service"]["latency_ms"]
    summary = (
        f"daemon totals: {document['service']['requests_total']} requests, "
        f"p50 {daemon_latency['p50']:.1f} ms, p99 {daemon_latency['p99']:.1f} ms"
    )
    print(table)
    print(summary)
    (RESULTS_DIR / "ext_service.txt").write_text(table + "\n" + summary + "\n")

    _append_bench_run({
        "kind": "service-closed-loop",
        "recorded_unix": int(time.time()),
        "scale": scale,
        "disks": DISKS,
        "pool_workers": DISKS,
        "max_concurrent": 4,
        "algorithms": list(ALGORITHMS),
        "requests_per_client": REQUESTS_PER_CLIENT,
        "think_s": THINK_S,
        "checksum_ok": True,
        "phases": phases,
        "daemon": {
            "requests_total": document["service"]["requests_total"],
            "latency_ms": daemon_latency,
            "queue_depth_peak": document["totals"]["gauges"].get(
                "service.queue_depth_peak", 0.0
            ),
            "tenants": document["service"]["tenants"],
        },
    })
