"""Shared benchmark infrastructure.

Every benchmark regenerates one figure (or extension experiment) of the
paper, prints the series, and writes the rendered output to
``benchmarks/results/`` so the artifacts survive pytest's capture.

Scales: each bench has a default workload scale chosen so the full suite
runs in a few minutes; set ``REPRO_BENCH_SCALE=1.0`` to reproduce the
paper's full 102,400-object geometry everywhere (slower), or any other
value to override the defaults globally.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import config
from repro.harness.calibrate import calibrated_machine_parameters
from repro.sim import SimConfig

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale(default: float) -> float:
    """The workload scale for a bench: env override or the bench default."""
    return config.env_float("bench_scale", default)


@pytest.fixture(scope="session")
def bench_config() -> SimConfig:
    return SimConfig()


@pytest.fixture(scope="session")
def bench_machine(bench_config):
    """Calibrated model parameters, measured once per session."""
    return calibrated_machine_parameters(bench_config)


@pytest.fixture(scope="session")
def record():
    """Print a rendered experiment and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


@pytest.fixture(scope="session")
def record_stats():
    """Validate and persist one observability stats document under results/.

    Every bench harness can emit the versioned JSON stats schema of
    ``docs/metrics_schema.md`` next to its rendered results; validation
    here means a bench fails loudly if it emits a malformed document.
    """
    from repro.obs import write_stats_document

    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, document: dict) -> Path:
        path = RESULTS_DIR / f"{name}.json"
        write_stats_document(path, document)
        return path

    return _record
