"""CI smoke bench: vectorized kernels at scale 0.2, with a pairs/sec
regression gate.

Standalone (no pytest): ``PYTHONPATH=src python benchmarks/vector_smoke.py``.
Runs the six registered plans (including the radix/learned partitioner
variants of grace) at 1/5th of the paper's validation geometry under both
kernel modes, asserts the modes agree bit-for-bit (pair count + checksum),
and gates on the vectorized throughput: per-algorithm the vector kernels
must not be slower than scalar, and the suite-aggregate speedup must hold
a conservative floor.  The floor is far below what the full bench records
(>=10x at scale 1.0) because CI runners are slow, shared, and noisy — this
gate catches a vectorized path that silently fell back to scalar or
regressed wholesale, not small perf drift.

Methodology mirrors ``bench_ext_real_mmap.py``: per-mode cost is the best
(minimum) summed join-pass wall over the rounds, since I/O noise is
strictly additive; ``pairs_per_sec`` divides pairs by that best pass wall.
"""

import json
import sys
import tempfile

from repro import config
from repro.parallel import run_real_join
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = (
    "nested-loops",
    "sort-merge",
    "grace",
    "grace-radix",
    "grace-learned",
    "hybrid-hash",
)
SCALE = 0.2
ROUNDS = 3

#: Per-algorithm: vector must at least match scalar (ratio >= this).
PER_ALGORITHM_FLOOR = 1.0
#: Suite aggregate (summed pass walls): the vectorized kernels must keep
#: a clear margin even on a noisy CI runner.
AGGREGATE_FLOOR = 1.5


def measure(workload, algorithm, mode):
    pass_walls = []
    result = None
    for _ in range(ROUNDS):
        with tempfile.TemporaryDirectory() as root:
            result = run_real_join(
                algorithm, workload, root, use_processes=False,
                collect_metrics=False, kernels=mode,
            )
        assert result.kernel_mode == mode, (algorithm, mode)
        pass_walls.append(sum(result.pass_wall_ms.values()))
    best = min(pass_walls)
    return {
        "pass_ms": best,
        "pair_count": result.pair_count,
        "checksum": result.checksum,
        "pairs_per_sec": result.pair_count / (best / 1000.0),
    }


def main() -> int:
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=SCALE), disks=4
    )
    totals = {"scalar": 0.0, "vector": 0.0}
    report = {"scale": SCALE, "rounds": ROUNDS, "algorithms": {}}
    failures = []
    for algorithm in ALGORITHMS:
        measured = {
            mode: measure(workload, algorithm, mode)
            for mode in ("scalar", "vector")
        }
        scalar, vector = measured["scalar"], measured["vector"]
        if vector["checksum"] != scalar["checksum"] or (
            vector["pair_count"] != scalar["pair_count"]
        ):
            failures.append(
                f"{algorithm}: kernel modes disagree "
                f"(scalar {scalar['pair_count']}/{scalar['checksum']}, "
                f"vector {vector['pair_count']}/{vector['checksum']})"
            )
        ratio = scalar["pass_ms"] / vector["pass_ms"]
        if ratio < PER_ALGORITHM_FLOOR:
            failures.append(
                f"{algorithm}: vector kernels slower than scalar "
                f"({vector['pass_ms']:.1f} vs {scalar['pass_ms']:.1f} ms)"
            )
        totals["scalar"] += scalar["pass_ms"]
        totals["vector"] += vector["pass_ms"]
        report["algorithms"][algorithm] = {
            "scalar": scalar,
            "vector": vector,
            "vector_speedup": ratio,
        }
        print(
            f"{algorithm:>14}: scalar {scalar['pass_ms']:7.1f} ms | "
            f"vector {vector['pass_ms']:7.1f} ms | {ratio:4.1f}x | "
            f"{vector['pairs_per_sec']:,.0f} pairs/sec"
        )

    aggregate = totals["scalar"] / totals["vector"]
    report["aggregate_vector_speedup"] = aggregate
    print(f"{'aggregate':>14}: {aggregate:.2f}x (floor {AGGREGATE_FLOOR}x)")
    if aggregate < AGGREGATE_FLOOR:
        failures.append(
            f"aggregate vector speedup {aggregate:.2f}x fell below the "
            f"{AGGREGATE_FLOOR}x regression floor"
        )

    out = config.env_value("smoke_out")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
