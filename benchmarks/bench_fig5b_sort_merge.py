"""Figure 5(b): sort-merge — model vs experiment over the memory sweep.

Paper shape: gentle improvement with memory, punctuated by discontinuities
where an additional merging pass becomes necessary; the model reproduces
both the level and the location of the steps.
"""

from conftest import bench_scale

from repro.harness.figures import figure_5b
from repro.harness.report import shape_summary


def test_fig5b_sort_merge(benchmark, bench_config, bench_machine, record):
    scale = bench_scale(0.1)
    fig = benchmark.pedantic(
        lambda: figure_5b(scale=scale, config=bench_config, machine=bench_machine),
        rounds=1,
        iterations=1,
    )
    record("fig5b_sort_merge", fig.render())

    sim = fig.series["experiment_ms"]
    model = fig.series["model_ms"]
    assert sim[0] > sim[-1]  # more memory helps overall
    # The sweep crosses at least one NPASS discontinuity, in both series.
    npasses = [p.sim_detail["npass"] for p in fig.sweep.points]
    assert max(npasses) > min(npasses)
    model_npasses = [p.model_report.derived["npass"] for p in fig.sweep.points]
    assert max(model_npasses) > min(model_npasses)
    benchmark.extra_info["agreement"] = shape_summary(model, sim)
    benchmark.extra_info["npass_range"] = f"{min(npasses):.0f}-{max(npasses):.0f}"
