"""Extension: phase synchronization ablation (paper §5.1).

The paper ran nested loops with and without synchronization after each
phase of pass 1 and saw at best a 0.5 % difference — justifying the
unsynchronized design.  This bench repeats that experiment.
"""

from conftest import bench_scale

from repro.harness.report import format_table
from repro.joins import JoinEnvironment, ParallelNestedLoopsJoin
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload

FRACTION = 0.1


def test_ext_phase_synchronization(benchmark, bench_config, record):
    scale = bench_scale(0.1)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), FRACTION
    )

    def run_both():
        out = {}
        for label, sync in (("unsynchronized", False), ("synchronized", True)):
            env = JoinEnvironment(workload, memory, sim_config=bench_config)
            algo = ParallelNestedLoopsJoin(synchronize_phases=sync)
            out[label] = algo.run(env, collect_pairs=False).elapsed_ms
        return out

    elapsed = benchmark.pedantic(run_both, rounds=1, iterations=1)

    ratio = elapsed["synchronized"] / elapsed["unsynchronized"]
    text = "\n".join(
        [
            "== Extension: nested-loops phase synchronization ==",
            format_table(
                ["variant", "elapsed_ms"],
                [[k, v] for k, v in elapsed.items()],
            ),
            f"synchronized / unsynchronized = {ratio:.4f} "
            "(paper: within 0.5 % of each other)",
        ]
    )
    record("ext_sync", text)

    # The paper's claim: synchronization is performance-neutral (within a
    # few percent either way on a uniform workload).
    assert 0.95 <= ratio <= 1.05
