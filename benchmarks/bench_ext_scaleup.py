"""Extension: scaleup experiment (paper §9 future work).

Problem size grows proportionally with D while per-process memory stays
fixed.  Perfect scaleup keeps elapsed time constant; the serial mapping
setup — which the paper's model charges D times because "manipulating a
mapping is a serial operation" — makes it degrade gently.
"""

from conftest import bench_scale

from repro.harness.scaling import run_scaleup

DISK_COUNTS = (1, 2, 4, 8)


def test_ext_scaleup(benchmark, record):
    base_scale = bench_scale(0.04)
    result = benchmark.pedantic(
        lambda: run_scaleup(
            "sort-merge",
            disk_counts=DISK_COUNTS,
            base_scale=base_scale,
            fraction=0.1,
        ),
        rounds=1,
        iterations=1,
    )
    record("ext_scaleup", result.render())

    base = result.base.elapsed_ms
    final = result.points[-1].elapsed_ms
    # 8x the data on 8x the hardware costs at most ~2x the 1-disk time;
    # the degradation is dominated by the quadratically-growing serial
    # setup term.
    assert final < 2.0 * base
    assert result.points[1].elapsed_ms < 1.35 * base
