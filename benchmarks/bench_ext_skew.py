"""Extension: skew sensitivity (paper §4 / §5.3 vs §6.3).

The unsynchronized nested loops absorbs partition skew through extra
parallelism, while the synchronized sort-merge and Grace are gated by the
most loaded partition every pass.  This bench joins a uniform workload and
a partition-skewed workload of identical size and reports the slowdown of
each algorithm.
"""

from conftest import bench_scale

from repro.harness.experiment import run_memory_sweep
from repro.harness.report import format_table
from repro.workload import WorkloadSpec, generate_workload

FRACTION = 0.15


def make_workloads(scale):
    uniform = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    objects = uniform.spec.r_objects
    skewed = generate_workload(
        WorkloadSpec(
            r_objects=objects,
            s_objects=objects,
            distribution="partition_hot",
            distribution_args={"hot_fraction": 0.6, "hot_span": 0.25},
            seed=96,
        ),
        disks=4,
    )
    return uniform, skewed


def test_ext_skew_sensitivity(benchmark, bench_config, bench_machine, record):
    scale = bench_scale(0.08)
    uniform, skewed = make_workloads(scale)

    def run_all():
        out = {}
        for label, workload in (("uniform", uniform), ("skewed", skewed)):
            for name in ("nested-loops", "sort-merge", "grace"):
                sweep = run_memory_sweep(
                    name,
                    (FRACTION,),
                    machine=bench_machine,
                    sim_config=bench_config,
                    workload=workload,
                )
                out[(label, name)] = sweep.points[0].sim_ms
        return out

    elapsed = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in ("nested-loops", "sort-merge", "grace"):
        u = elapsed[("uniform", name)]
        s = elapsed[("skewed", name)]
        rows.append([name, u, s, s / u])
    text = "\n".join(
        [
            "== Extension: skew sensitivity "
            f"(uniform skew={uniform.measured_skew():.2f}, "
            f"skewed={skewed.measured_skew():.2f}) ==",
            format_table(["algorithm", "uniform_ms", "skewed_ms", "ratio"], rows),
        ]
    )
    record("ext_skew", text)

    # Skew hurts everyone a little; the skewed run is never faster by much.
    for name in ("nested-loops", "sort-merge", "grace"):
        assert elapsed[("skewed", name)] > 0.9 * elapsed[("uniform", name)]
