"""Extension: skew sensitivity (paper §4 / §5.3 vs §6.3).

The unsynchronized nested loops absorbs partition skew through extra
parallelism, while the synchronized sort-merge and Grace are gated by the
most loaded partition every pass.  This bench joins a uniform workload and
a partition-skewed workload of identical size and reports the slowdown of
each algorithm.

The real-backend matrix below exercises the executor's per-partition
rebalancing against the same skew families: every skewed workload x
algorithm pair is joined with ``rebalance="on"`` and ``rebalance="off"``,
the outputs must be bit-identical, and the max/mean per-task wall-time
ratio for each pass is recorded to the append-only
``results/BENCH_skew.json`` artifact.
"""

import json
import time

from conftest import RESULTS_DIR, bench_scale

from repro import config
from repro.harness.experiment import run_memory_sweep
from repro.harness.report import format_table
from repro.joins.reference import expected_checksum
from repro.parallel import run_real_join
from repro.workload import WorkloadSpec, generate_workload

FRACTION = 0.15

REAL_ALGORITHMS = (
    "nested-loops",
    "sort-merge",
    "grace",
    "grace-radix",
    "grace-learned",
    "hybrid-hash",
)
BENCH_PATH = RESULTS_DIR / "BENCH_skew.json"

#: The paper's validation geometry is 102,400 objects at scale 1.0; the
#: default matrix runs at 0.2 (REPRO_BENCH_SCALE overrides, and the
#: REPRO_BENCH_FULL=1 acceptance test pins zipf theta=1 at 1.0).
BASE_OBJECTS = 102_400


def make_workloads(scale):
    uniform = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    objects = uniform.spec.r_objects
    skewed = generate_workload(
        WorkloadSpec(
            r_objects=objects,
            s_objects=objects,
            distribution="partition_hot",
            distribution_args={"hot_fraction": 0.6, "hot_span": 0.25},
            seed=96,
        ),
        disks=4,
    )
    return uniform, skewed


def test_ext_skew_sensitivity(benchmark, bench_config, bench_machine, record):
    scale = bench_scale(0.08)
    uniform, skewed = make_workloads(scale)

    def run_all():
        out = {}
        for label, workload in (("uniform", uniform), ("skewed", skewed)):
            for name in ("nested-loops", "sort-merge", "grace"):
                sweep = run_memory_sweep(
                    name,
                    (FRACTION,),
                    machine=bench_machine,
                    sim_config=bench_config,
                    workload=workload,
                )
                out[(label, name)] = sweep.points[0].sim_ms
        return out

    elapsed = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in ("nested-loops", "sort-merge", "grace"):
        u = elapsed[("uniform", name)]
        s = elapsed[("skewed", name)]
        rows.append([name, u, s, s / u])
    text = "\n".join(
        [
            "== Extension: skew sensitivity "
            f"(uniform skew={uniform.measured_skew():.2f}, "
            f"skewed={skewed.measured_skew():.2f}) ==",
            format_table(["algorithm", "uniform_ms", "skewed_ms", "ratio"], rows),
        ]
    )
    record("ext_skew", text)

    # Skew hurts everyone a little; the skewed run is never faster by much.
    for name in ("nested-loops", "sort-merge", "grace"):
        assert elapsed[("skewed", name)] > 0.9 * elapsed[("uniform", name)]


# ---------------------------------------------------------------------------
# Real-backend rebalance matrix
# ---------------------------------------------------------------------------


def matrix_specs(objects: int) -> dict:
    """The skewed workload families from the rebalancing study.

    ``selective`` is the low-hit-rate case: R carries an eighth of S's
    objects, so most S objects are never dereferenced and per-partition
    probe work is sparse.
    """
    return {
        "zipf": WorkloadSpec(
            r_objects=objects,
            s_objects=objects,
            distribution="zipf",
            distribution_args={"theta": 1.0},
            seed=96,
        ),
        "partition_hot": WorkloadSpec(
            r_objects=objects,
            s_objects=objects,
            distribution="partition_hot",
            distribution_args={"hot_fraction": 0.5, "hot_span": 0.25},
            seed=96,
        ),
        "clustered": WorkloadSpec(
            r_objects=objects,
            s_objects=objects,
            distribution="clustered",
            distribution_args={"run_length": 64},
            seed=96,
        ),
        "selective": WorkloadSpec(
            r_objects=max(objects // 8, 256),
            s_objects=objects,
            seed=96,
        ),
    }


#: Repeats per (workload, algorithm, mode) cell: per-task wall times at
#: vector-kernel speed sit in the low milliseconds, so ratios are taken
#: over the per-task *minimum* across repeats (the usual noise-robust
#: estimator for timing benchmarks).
REPEATS = config.env_int("bench_skew_repeats", 3)


def _task_time_ratios(walls_by_pass: dict) -> dict:
    """Per-pass max/mean wall-time ratio across that pass's tasks."""
    ratios = {}
    for label, walls_by_slot in walls_by_pass.items():
        walls = list(walls_by_slot.values())
        if len(walls) < 2:
            continue
        mean = sum(walls) / len(walls)
        if mean > 0:
            ratios[label] = max(walls) / mean
    return ratios


def _load_bench_runs() -> list:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())["runs"]
    return []


def _append_bench_run(entry: dict) -> None:
    runs = _load_bench_runs()
    runs.append(entry)
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(
        json.dumps({"schema_version": 2, "runs": runs}, indent=2) + "\n"
    )


def _joined(algorithm, workload, store_root, mode):
    """Join REPEATS times; keep the last result and per-task min walls.

    Every repeat must produce the identical (pair_count, checksum) —
    sharding decisions are a pure function of measured sizes, so repeat
    divergence would be a determinism bug, not noise.
    """
    walls: dict = {}
    identities = set()
    result = None
    for repeat in range(REPEATS):
        # Repeats reuse the materialized store (the join-service path):
        # the first repeat pays the page-cache faults for R/S, so the
        # per-task minimum reflects warm-cache task times — otherwise
        # the first shard of each partition absorbs every fault its
        # siblings then skip, which reads as imbalance but is only the
        # serial harness's cache-warming order.
        result = run_real_join(
            algorithm,
            workload,
            str(store_root),
            use_processes=False,
            collect_pairs=False,
            keep_store=True,
            reuse_store=repeat > 0,
            rebalance=mode,
        )
        identities.add((result.pair_count, result.checksum))
        document = result.stats_document(workload)
        for label, workers in document["per_worker"].items():
            dest = walls.setdefault(label, {})
            for slot, entry in workers.items():
                wall = entry["wall_ms"]
                if slot not in dest or wall < dest[slot]:
                    dest[slot] = wall
    assert len(identities) == 1, (algorithm, mode, identities)
    return result, walls


def _run_matrix(workloads, algorithms, tmp_path):
    """Join every workload x algorithm with rebalance on and off.

    Returns one record per cell carrying both runs' identity tuples,
    the rebalance reports, and the per-pass task-time ratios.
    """
    cells = []
    for wname, workload in workloads.items():
        oracle = expected_checksum(workload)
        for algorithm in algorithms:
            runs = {}
            for mode in ("off", "on"):
                store = tmp_path / f"{wname}-{algorithm}-{mode}"
                result, walls = _joined(algorithm, workload, store, mode)
                runs[mode] = {
                    "pair_count": result.pair_count,
                    "checksum": result.checksum,
                    "wall_ms": result.wall_ms,
                    "task_ratios": _task_time_ratios(walls),
                    "rebalance": result.rebalance,
                }
            off, on = runs["off"], runs["on"]
            # The tentpole invariant: sharding moves work, not results.
            assert on["pair_count"] == off["pair_count"], (wname, algorithm)
            assert on["checksum"] == off["checksum"], (wname, algorithm)
            assert off["checksum"] == oracle, (wname, algorithm)
            splits = sum(
                report["splits"] for report in on["rebalance"].values()
            )
            for report in on["rebalance"].values():
                if not report["splits"]:
                    continue
                if report["pre_ratio"] >= 1.5:
                    # A genuinely skewed stage must come out flatter.
                    assert report["post_ratio"] < report["pre_ratio"]
                else:
                    # Force-sharding an already-balanced stage may be
                    # lumpy (a shard boundary cannot split one bucket)
                    # but must stay below the rebalance trigger ratio.
                    assert report["post_ratio"] < 1.5
            cells.append({
                "workload": wname,
                "algorithm": algorithm,
                "skew": round(workloads[wname].measured_skew(), 4),
                "pair_count": off["pair_count"],
                "checksum": off["checksum"],
                "splits_on": splits,
                "wall_ms": {m: runs[m]["wall_ms"] for m in runs},
                "task_ratios": {m: runs[m]["task_ratios"] for m in runs},
                "rebalance_on": on["rebalance"],
            })
    return cells


def _worst_ratio(cell, mode):
    """Worst per-pass task-time imbalance, over the rebalanced passes.

    Passes that did not shard run identical task sets in both modes, so
    including them would only add shared noise to the comparison.
    """
    sharded = {
        label
        for label, report in cell["rebalance_on"].items()
        if report["splits"]
    }
    ratios = [
        ratio
        for label, ratio in cell["task_ratios"][mode].items()
        if label in sharded
    ]
    return max(ratios) if ratios else 1.0


def _render_matrix(title, cells):
    rows = [
        [
            cell["workload"],
            cell["algorithm"],
            cell["pair_count"],
            cell["splits_on"],
            round(_worst_ratio(cell, "off"), 3),
            round(_worst_ratio(cell, "on"), 3),
        ]
        for cell in cells
    ]
    return "\n".join([
        f"== {title} ==",
        format_table(
            [
                "workload",
                "algorithm",
                "pairs",
                "splits",
                "ratio_off",
                "ratio_on",
            ],
            rows,
        ),
    ])


def test_ext_skew_rebalance_matrix(record, tmp_path):
    """Workload x algorithm rebalance matrix on the real backend.

    On-vs-off runs must be bit-identical everywhere; ``rebalance="on"``
    must actually shard the skewed families; governed runs are covered
    by :func:`test_ext_skew_rebalance_governed`.
    """
    scale = bench_scale(0.2)
    objects = max(int(BASE_OBJECTS * scale), 2_048)
    workloads = {
        name: generate_workload(spec, 4)
        for name, spec in matrix_specs(objects).items()
    }
    cells = _run_matrix(workloads, REAL_ALGORITHMS, tmp_path)

    # "on" force-shards every non-empty partition of every shardable
    # stage, so each cell must have split somewhere.
    for cell in cells:
        assert cell["splits_on"] > 0, (cell["workload"], cell["algorithm"])

    record("ext_skew_rebalance", _render_matrix(
        f"Extension: rebalance matrix (scale={scale}, objects={objects})",
        cells,
    ))
    _append_bench_run({
        "kind": "skew-rebalance-matrix",
        "timestamp": time.time(),
        "scale": scale,
        "objects": objects,
        "cells": cells,
    })


# ---------------------------------------------------------------------------
# Partitioner skew matrix: neutralize skew at partition time
# ---------------------------------------------------------------------------


def partitioner_specs(objects: int) -> dict:
    """Skew families for the partitioner study.

    ``partition_hot`` here deliberately crosses a partition boundary
    (``hot_span=0.375`` with 4 disks: all of partition 0 plus half of
    partition 1), because a hot span aligned to partition boundaries is
    pure *partition* skew — invisible to any bucket-assignment strategy,
    which can only move records between buckets of the same target.
    """
    return {
        "zipf": WorkloadSpec(
            r_objects=objects,
            s_objects=objects,
            distribution="zipf",
            distribution_args={"theta": 1.0},
            seed=96,
        ),
        "partition_hot": WorkloadSpec(
            r_objects=objects,
            s_objects=objects,
            distribution="partition_hot",
            distribution_args={"hot_fraction": 0.6, "hot_span": 0.375},
            seed=96,
        ),
    }


def _post_partition_ratios(store_root, disks, buckets):
    """Per-partition max/mean bucket depth read from the kept store.

    The exact histogram every probe task is about to process, straight
    from the published bucket directories — the same measurement the
    rebalancer makes.
    """
    from repro.parallel.engine.rebalance import _bucket_histogram
    from repro.storage.store import Store

    store = Store(str(store_root), disks)
    out = []
    for partition in range(disks):
        histogram = _bucket_histogram(store, partition, disks, buckets)
        total = sum(histogram)
        mean = total / buckets if buckets else 0
        out.append({
            "partition": partition,
            "records": total,
            "ratio": round(max(histogram) / mean, 4) if mean else None,
        })
    return out


def _gating_ratio(ratios, disks):
    """Worst bucket imbalance over the partitions that gate the pass.

    A pass ends when its most loaded partition does, so bucket lumpiness
    inside a partition carrying less than the mean partition load never
    gates — and at bench depths the light partitions' ratios are mostly
    sampling noise.  Only partitions at or above the mean load count.
    """
    total = sum(entry["records"] for entry in ratios)
    threshold = total / disks
    gating = [
        entry["ratio"]
        for entry in ratios
        if entry["ratio"] is not None and entry["records"] >= threshold
    ]
    return max(gating) if gating else 1.0


def test_ext_skew_partitioner_matrix(record, tmp_path):
    """Partitioner strategies against skewed pointers, rebalance off.

    The learned CDF partitioner must neutralize zipf(theta=1) and
    boundary-crossing partition_hot skew *at partition time*: its
    post-partition gating max/mean bucket depth stays at or below 1.25
    with no rebalance shards at all, and beats the order-preserving hash
    on both families.  All strategies must agree with the oracle
    checksum — bucket assignment never affects join output.
    """
    from repro.governor.predict import JoinPlan

    scale = bench_scale(0.2)
    objects = max(int(BASE_OBJECTS * scale), 2_048)
    buckets = JoinPlan().buckets
    algorithms = ("grace", "grace-radix", "grace-learned")
    cells = []
    for wname, spec in partitioner_specs(objects).items():
        workload = generate_workload(spec, 4)
        oracle = expected_checksum(workload)
        checksums = set()
        by_algorithm = {}
        for algorithm in algorithms:
            store = tmp_path / f"{wname}-{algorithm}"
            result = run_real_join(
                algorithm,
                workload,
                str(store),
                use_processes=False,
                collect_pairs=False,
                keep_store=True,
                rebalance="off",
            )
            assert result.checksum == oracle, (wname, algorithm)
            assert not result.rebalance, (wname, algorithm)
            checksums.add(result.checksum)
            ratios = _post_partition_ratios(store, 4, buckets)
            by_algorithm[algorithm] = {
                "partitioner": result.partitioner,
                "wall_ms": result.wall_ms,
                "per_partition": ratios,
                "gating_ratio": round(_gating_ratio(ratios, 4), 4),
            }
        assert len(checksums) == 1, (wname, checksums)
        learned = by_algorithm["grace-learned"]["gating_ratio"]
        hashed = by_algorithm["grace"]["gating_ratio"]
        # The acceptance bar: skew neutralized at partition time, no
        # rebalance shards involved.
        assert learned <= 1.25, (wname, by_algorithm["grace-learned"])
        assert learned < hashed, (wname, learned, hashed)
        cells.append({
            "workload": wname,
            "skew": round(workload.measured_skew(), 4),
            "checksum": oracle,
            "buckets": buckets,
            "algorithms": by_algorithm,
        })

    rows = [
        [
            cell["workload"],
            algorithm,
            cell["algorithms"][algorithm]["partitioner"],
            cell["algorithms"][algorithm]["gating_ratio"],
        ]
        for cell in cells
        for algorithm in algorithms
    ]
    record("ext_skew_partitioner", "\n".join([
        f"== Extension: partitioner matrix (scale={scale}, "
        f"objects={objects}, buckets={buckets}, rebalance=off) ==",
        format_table(
            ["workload", "algorithm", "partitioner", "gating_ratio"], rows
        ),
    ]))
    _append_bench_run({
        "kind": "skew-partitioner-matrix",
        "timestamp": time.time(),
        "scale": scale,
        "objects": objects,
        "cells": cells,
    })


def test_ext_skew_rebalance_governed(tmp_path):
    """Under a tight memory budget the governor degrades — including the
    rebalance rung when it was off — and still finishes bit-identical."""
    workload = generate_workload(matrix_specs(4_096)["zipf"], 4)
    oracle = expected_checksum(workload)
    result = run_real_join(
        "grace",
        workload,
        str(tmp_path / "governed"),
        use_processes=False,
        collect_pairs=False,
        mem_budget=400_000,
        on_pressure="degrade",
        max_degradations=16,
        rebalance="off",
    )
    assert result.checksum == oracle
    assert result.degradations_total >= 1
    assert result.governor is not None
    # The first memory rung turns rebalancing back on before shedding
    # any real capacity.
    assert result.governor["plan"]["rebalance"] == "auto"


def test_ext_skew_rebalance_full_scale(record, tmp_path):
    """Acceptance run: zipf(theta=1) and partition_hot at full scale.

    Gated behind REPRO_BENCH_FULL=1 — joins 102,400 objects x 4
    algorithms x 2 modes per workload.  Zipf's popularity skew is
    deliberately scattered across partitions (see
    :func:`repro.workload.distributions.zipf_pointers`), so its off-mode
    tasks start near-balanced; partition_hot carries the genuine
    partition skew.  The acceptance bar: wherever a rebalanced pass was
    measurably imbalanced without rebalancing, sharding must reduce its
    max/mean task-time ratio, and force-sharding must never *create*
    gating skew on a balanced pass.
    """
    if not config.env_flag("bench_full"):
        import pytest

        pytest.skip("full-scale acceptance run: set REPRO_BENCH_FULL=1")
    specs = matrix_specs(BASE_OBJECTS)
    workloads = {
        name: generate_workload(specs[name], 4)
        for name in ("zipf", "partition_hot")
    }
    cells = _run_matrix(workloads, REAL_ALGORITHMS, tmp_path)
    for cell in cells:
        assert cell["splits_on"] > 0
        sharded = {
            label
            for label, report in cell["rebalance_on"].items()
            if report["splits"]
        }
        for label in sharded:
            off = cell["task_ratios"]["off"].get(label)
            on = cell["task_ratios"]["on"].get(label)
            if off is None or on is None:
                continue
            where = (cell["workload"], cell["algorithm"], label)
            if off >= 1.35:
                # The pass was gated by an imbalanced task: rebalancing
                # must flatten it.
                assert on < off, (where, off, on)
            # Sharding a balanced pass must not introduce gating skew.
            assert on < max(off, 1.5), (where, off, on)
    # In aggregate the skewed family's worst-pass imbalance comes down.
    ph = [c for c in cells if c["workload"] == "partition_hot"]
    assert sum(_worst_ratio(c, "on") for c in ph) < sum(
        _worst_ratio(c, "off") for c in ph
    )

    record("ext_skew_rebalance_full", _render_matrix(
        "Extension: rebalance acceptance (scale=1.0)", cells,
    ))
    _append_bench_run({
        "kind": "skew-rebalance-full",
        "timestamp": time.time(),
        "scale": 1.0,
        "objects": BASE_OBJECTS,
        "cells": cells,
    })
