"""Extension: Grace model refinements vs the paper-faithful model.

The paper concedes its Grace model under-predicts at low memory ("there is
scope for further refinement of this approximation").  This bench measures
how far two documented refinements close the gap at the thrashing knee:

* ``include_pass1_thrashing`` — apply the urn argument to the pass-1
  bucket streams the paper leaves unmodelled;
* ``fine_epochs`` — unit-width epochs instead of the coarse width-K first
  epoch.

Expected: faithful < refined <= experiment in the thrashing region, with
the refined model recovering most of the shortfall, and all three
coinciding at ample memory.
"""

from conftest import bench_scale

from repro.harness.report import format_table
from repro.joins import JoinEnvironment, ParallelGraceJoin, expected_checksum
from repro.model import MemoryParameters, grace_cost, grace_plan
from repro.workload import WorkloadSpec, generate_workload

FRACTIONS = (0.02, 0.03, 0.05, 0.1)


def test_ext_grace_model_refinements(benchmark, bench_machine, record):
    scale = bench_scale(0.25)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    relations = workload.relation_parameters()
    oracle = expected_checksum(workload)
    design = MemoryParameters.from_fractions(relations, min(FRACTIONS))
    buckets = grace_plan(bench_machine, relations, design).buckets

    def run_all():
        rows = []
        for fraction in FRACTIONS:
            memory = MemoryParameters.from_fractions(relations, fraction)
            faithful = grace_cost(
                bench_machine, relations, memory, buckets=buckets
            ).total_ms
            refined = grace_cost(
                bench_machine, relations, memory, buckets=buckets,
                include_pass1_thrashing=True, fine_epochs=True,
            ).total_ms
            env = JoinEnvironment(workload, memory)
            run = ParallelGraceJoin(buckets=buckets).run(env, collect_pairs=False)
            assert run.checksum == oracle
            rows.append((fraction, faithful, refined, run.elapsed_ms))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = "\n".join(
        [
            f"== Extension: Grace model refinements (K={buckets}) ==",
            format_table(
                ["MRproc/|R|", "faithful_model_ms", "refined_model_ms",
                 "experiment_ms"],
                [list(r) for r in rows],
            ),
            "The refined model recovers most of the paper-documented "
            "low-memory shortfall.",
        ]
    )
    record("ext_model_refinements", text)

    _, faithful, refined, measured = rows[0]
    # In the thrashing region: faithful < refined, and refined is closer.
    assert faithful < refined
    assert abs(measured - refined) < abs(measured - faithful)
    # The refinement's correction shrinks as memory grows (at the top of
    # this sweep K ~ frames, so a residual correction is expected).
    knee_ratio = rows[0][2] / rows[0][1]
    top_ratio = rows[-1][2] / rows[-1][1]
    assert top_ratio < 0.5 * knee_ratio
    assert rows[-1][2] >= rows[-1][1]
