"""Extension: pass-level model-vs-experiment attribution (paper §8, deeper).

The paper validates total elapsed time; this bench pairs every *pass* of
each algorithm's cost report with the measured duration of the same pass
(recorded by run checkpoints), so disagreement is localized to the model
term responsible.  The known cases show up exactly where expected: the
Grace/hybrid pass 1 under-prediction at modest memory is the unmodelled
pass-1 bucket thrashing the paper's own model also lacks.
"""

from conftest import bench_scale

from repro.harness.experiment import MODEL_FUNCTIONS
from repro.harness.validation import compare_passes
from repro.joins import JoinEnvironment, expected_checksum, make_algorithm
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hash-loops", "hybrid-hash")
FRACTION = 0.1


def test_ext_pass_level_validation(benchmark, bench_config, bench_machine, record):
    scale = bench_scale(0.1)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    relations = workload.relation_parameters()
    memory = MemoryParameters.from_fractions(relations, FRACTION)
    oracle = expected_checksum(workload)

    def run_all():
        reports = {}
        for name in ALGORITHMS:
            model = MODEL_FUNCTIONS[name](bench_machine, relations, memory)
            env = JoinEnvironment(workload, memory, sim_config=bench_config)
            run = make_algorithm(name).run(env, collect_pairs=False)
            assert run.checksum == oracle
            reports[name] = compare_passes(model, run)
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    text = "\n\n".join(reports[name].render() for name in ALGORITHMS)
    record("ext_pass_validation", text)

    for name, validation in reports.items():
        # Totals agree at the whole-join level used by Figure 5 ...
        ratio = validation.model_total_ms / validation.measured_total_ms
        assert 0.3 <= ratio <= 3.0, name
        # ... and every pass was matched by name on both sides (a pass may
        # be legitimately empty on both, e.g. merge-passes when NPASS = 1,
        # but never measured-only or model-only).
        for p in validation.passes:
            both_zero = p.model_ms == 0.0 and abs(p.measured_ms) < 1.0
            both_present = p.model_ms > 0.0 and p.measured_ms > 0.0
            assert both_zero or both_present, (name, p)
