"""Extension: G-buffer size sweep (paper §5.2 parameter choice).

G batches S-object requests between Rproc and Sproc: too small and the
context-switch term ``2*CS*ceil(h/(G/(r+sptr+s)))`` explodes; large enough
and it vanishes into the noise.  The paper used G = B (one page).
"""

from conftest import bench_scale

from repro.harness.report import format_table
from repro.joins import JoinEnvironment, ParallelNestedLoopsJoin
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload

G_SIZES = (264, 1024, 4096, 16_384, 65_536)
FRACTION = 0.15


def test_ext_gbuffer_sweep(benchmark, bench_config, record):
    scale = bench_scale(0.05)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    relations = workload.relation_parameters()

    def run_all():
        out = {}
        for g in G_SIZES:
            memory = MemoryParameters.from_fractions(
                relations, FRACTION, g_bytes=g
            )
            env = JoinEnvironment(workload, memory, sim_config=bench_config)
            result = ParallelNestedLoopsJoin().run(env, collect_pairs=False)
            out[g] = (result.elapsed_ms, result.stats.context_switches)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[g, ms, cs] for g, (ms, cs) in results.items()]
    text = "\n".join(
        [
            "== Extension: G-buffer sweep (nested loops) ==",
            format_table(["G_bytes", "elapsed_ms", "context_switches"], rows),
        ]
    )
    record("ext_gbuffer", text)

    switches = [cs for _, cs in results.values()]
    elapsed = [ms for ms, _ in results.values()]
    # Bigger batches, strictly fewer context switches and no slowdown.
    assert all(b <= a for a, b in zip(switches, switches[1:]))
    assert elapsed[-1] <= elapsed[0]
    # One-object batches are measurably worse than one-page batches.
    assert results[264][0] > results[4096][0]
