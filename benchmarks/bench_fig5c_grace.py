"""Figure 5(c): Grace — model vs experiment over the memory sweep.

Paper shape: flat beyond ~0.04, rising sharply at low memory where LRU
evicts partially-filled bucket pages (the urn-model thrashing regime); the
paper's own model *under*-predicts in the thrashing region, and so does
ours — that gap is part of the reproduction (see EXPERIMENTS.md).

The Grace K is pinned across the sweep (a design constant of the series);
the knee's position depends on absolute frame counts, hence the larger
default scale (0.5; use REPRO_BENCH_SCALE=1.0 for the paper's geometry).
"""

from conftest import bench_scale

from repro.harness.figures import figure_5c
from repro.harness.report import shape_summary


def test_fig5c_grace(benchmark, bench_config, bench_machine, record):
    scale = bench_scale(0.5)
    fig = benchmark.pedantic(
        lambda: figure_5c(scale=scale, config=bench_config, machine=bench_machine),
        rounds=1,
        iterations=1,
    )
    record("fig5c_grace", fig.render())

    sim = fig.series["experiment_ms"]
    model = fig.series["model_ms"]
    # Shape: a strong thrashing knee at the low end; the curve levels off
    # toward the high end (at scale 0.5 the knee sits near f=0.053, so the
    # tail is still settling — at scale 1.0 the last three points are flat
    # to within a few percent, matching the paper exactly).
    assert sim[0] > 2.0 * sim[-1]
    flat = sim[-3:]
    assert max(flat) < 1.5 * min(flat)
    # The model localizes the thrashing at the low end: a substantial
    # share of the lowest point's prediction, a negligible share of the
    # highest point's.
    low, high = fig.sweep.points[0], fig.sweep.points[-1]
    assert low.model_report.derived["thrashing_extra_ms"] > 0.1 * low.model_ms
    assert high.model_report.derived["thrashing_extra_ms"] < 0.02 * high.model_ms
    benchmark.extra_info["agreement"] = shape_summary(model, sim)
