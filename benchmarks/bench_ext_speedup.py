"""Extension: speedup experiment (paper §9 future work).

Fixed problem size, growing D (disks + process pairs).  The algorithms are
designed for contention-free D-fold parallelism, so elapsed time should
fall close to 1/D (sub-linear only through the serial mapping setup and
per-partition constants).
"""

from conftest import bench_scale

from repro.harness.scaling import run_speedup

DISK_COUNTS = (1, 2, 4, 8)


def test_ext_speedup(benchmark, record):
    scale = bench_scale(0.1)
    result = benchmark.pedantic(
        lambda: run_speedup(
            "sort-merge", disk_counts=DISK_COUNTS, scale=scale, fraction=0.1
        ),
        rounds=1,
        iterations=1,
    )
    record("ext_speedup", result.render())

    elapsed = [p.elapsed_ms for p in result.points]
    # More partitions never slower; 4-way at least 2x over serial.
    assert all(b < a for a, b in zip(elapsed, elapsed[1:]))
    assert result.points[2].speedup_vs(result.base) > 2.0
