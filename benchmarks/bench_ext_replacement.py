"""Extension: replacement-policy ablation (paper §9).

The paper blames part of its low-memory misprediction on "the particular
replacement strategy used by the Dynix operating system" and calls for
databases to control replacement.  This bench runs the Grace join under
exact LRU, CLOCK (second chance) and FIFO at a memory level near the
thrashing knee, where policy differences are loudest.
"""

from conftest import bench_scale

from repro.harness.report import format_table
from repro.joins import JoinEnvironment, ParallelGraceJoin
from repro.model import MemoryParameters
from repro.sim import SimConfig
from repro.workload import WorkloadSpec, generate_workload

POLICIES = ("lru", "clock", "fifo")
FRACTION = 0.06
BUCKETS = 40


def test_ext_replacement_policies(benchmark, record):
    scale = bench_scale(0.1)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), FRACTION
    )

    def run_all():
        out = {}
        for policy in POLICIES:
            config = SimConfig().with_policy(policy)
            env = JoinEnvironment(workload, memory, sim_config=config)
            result = ParallelGraceJoin(buckets=BUCKETS).run(
                env, collect_pairs=False
            )
            out[policy] = (
                result.elapsed_ms,
                result.stats.total_faults,
                result.stats.total_blocks_written,
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[p, *results[p]] for p in POLICIES]
    text = "\n".join(
        [
            "== Extension: replacement policy ablation "
            f"(grace, K={BUCKETS}, MRproc/|R|={FRACTION}) ==",
            format_table(
                ["policy", "elapsed_ms", "faults", "blocks_written"], rows
            ),
        ]
    )
    record("ext_replacement", text)

    # All policies complete and stay within a sane band of one another;
    # the verified checksum (inside the join) guarantees correctness.
    elapsed = [results[p][0] for p in POLICIES]
    assert max(elapsed) < 3.0 * min(elapsed)
