"""Figure 1(b): memory-mapping setup time vs mapping size.

Paper shape: all three operations linear in the mapping size, with
newMap > openMap > deleteMap (new mappings also acquire disk space; deletes
only free the page table and space).
"""

from repro.harness.figures import figure_1b


def test_fig1b_mapping_setup(benchmark, bench_config, record):
    fig = benchmark.pedantic(
        lambda: figure_1b(bench_config), rounds=1, iterations=1
    )
    record("fig1b_mapping_setup", fig.render())

    new, opn, dele = (
        fig.series["newMap_ms"],
        fig.series["openMap_ms"],
        fig.series["deleteMap_ms"],
    )
    for n, o, d in zip(new, opn, dele):
        assert n > o > d
    # Linearity: doubling the size roughly doubles the cost.
    assert new[-1] / new[0] > 0.5 * (fig.x_values[-1] / fig.x_values[0])
