"""CI gate: payload-checksum verification overhead at scale 0.2.

Standalone (no pytest):
``PYTHONPATH=src python benchmarks/integrity_overhead.py``.

Runs the four joins with integrity fully on (CRC write at publish +
verify on open, the default) and fully off (``REPRO_INTEGRITY=off``,
the documented baseline knob), asserts the two configurations agree
bit-for-bit, and gates the aggregate wall-time overhead of checksumming
at ``MAX_OVERHEAD`` (the acceptance budget is 5%).  Per-mode cost is the
best (minimum) summed join-pass wall over the rounds — I/O noise is
strictly additive, so the minimum isolates the deterministic work, which
is exactly where the CRC cost lives.

The gate exists to keep integrity *cheap enough to leave on*: a CRC
implementation regression (chunking gone wrong, the verified-cache
dropping hits) shows up here as an aggregate overhead far beyond the
single digits.
"""

import json
import os
import sys
import tempfile

from repro import config
from repro.parallel import run_real_join
from repro.storage import segment as segment_module
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hybrid-hash")
SCALE = 0.2
ROUNDS = 3

#: Aggregate (all four algorithms) wall overhead of checksum write+verify
#: over the integrity-off baseline.  The acceptance budget.
MAX_OVERHEAD = 0.05


def measure(workload, algorithm, integrity_on: bool):
    integrity_env = config.knob("integrity").env
    if integrity_on:
        os.environ.pop(integrity_env, None)
    else:
        os.environ[integrity_env] = "off"
    # The env knob is read per-process; reset the in-process overrides
    # so this (single-process, inline) bench follows it too.
    segment_module.configure_integrity(
        write=integrity_on, verify=integrity_on
    )
    try:
        pass_walls = []
        result = None
        for _ in range(ROUNDS):
            with tempfile.TemporaryDirectory() as root:
                result = run_real_join(
                    algorithm, workload, root, use_processes=False,
                    collect_metrics=False,
                )
            pass_walls.append(sum(result.pass_wall_ms.values()))
        best = min(pass_walls)
        return {
            "pass_ms": best,
            "pair_count": result.pair_count,
            "checksum": result.checksum,
        }
    finally:
        os.environ.pop(integrity_env, None)
        segment_module.configure_integrity(write=None, verify=None)


def main() -> int:
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=SCALE), disks=4
    )
    totals = {"off": 0.0, "on": 0.0}
    report = {
        "scale": SCALE,
        "rounds": ROUNDS,
        "max_overhead": MAX_OVERHEAD,
        "algorithms": {},
    }
    failures = []
    for algorithm in ALGORITHMS:
        baseline = measure(workload, algorithm, integrity_on=False)
        verified = measure(workload, algorithm, integrity_on=True)
        if verified["checksum"] != baseline["checksum"] or (
            verified["pair_count"] != baseline["pair_count"]
        ):
            failures.append(
                f"{algorithm}: integrity on/off disagree "
                f"(off {baseline['pair_count']}/{baseline['checksum']}, "
                f"on {verified['pair_count']}/{verified['checksum']})"
            )
        overhead = verified["pass_ms"] / baseline["pass_ms"] - 1.0
        totals["off"] += baseline["pass_ms"]
        totals["on"] += verified["pass_ms"]
        report["algorithms"][algorithm] = {
            "baseline": baseline,
            "verified": verified,
            "overhead": overhead,
        }
        print(
            f"{algorithm:>14}: off {baseline['pass_ms']:7.1f} ms | "
            f"on {verified['pass_ms']:7.1f} ms | {overhead:+6.1%}"
        )

    aggregate = totals["on"] / totals["off"] - 1.0
    report["aggregate_overhead"] = aggregate
    print(f"{'aggregate':>14}: {aggregate:+.1%} (budget {MAX_OVERHEAD:.0%})")
    if aggregate > MAX_OVERHEAD:
        failures.append(
            f"checksum verification costs {aggregate:.1%} aggregate wall "
            f"time, over the {MAX_OVERHEAD:.0%} budget"
        )

    out = config.env_value("smoke_out")
    if out:
        with open(out, "w") as handle:
            json.dump(report, handle, indent=2)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
