"""Figure 5(a): nested loops — model vs experiment over the memory sweep.

Paper shape: elapsed time per Rproc falls steeply as memory grows and
flattens once the inner partition fits the Sproc buffer; the model tracks
the measurement across the sweep.  (At reduced scale the flattening point
sits at a smaller fraction than the paper's 0.6 — see EXPERIMENTS.md.)
"""

from conftest import bench_scale

from repro.harness.figures import figure_5a
from repro.harness.report import shape_summary


def test_fig5a_nested_loops(benchmark, bench_config, bench_machine, record):
    scale = bench_scale(0.1)
    fig = benchmark.pedantic(
        lambda: figure_5a(scale=scale, config=bench_config, machine=bench_machine),
        rounds=1,
        iterations=1,
    )
    record("fig5a_nested_loops", fig.render())

    sim = fig.series["experiment_ms"]
    model = fig.series["model_ms"]
    # Shape: monotone non-increasing; low-memory point clearly slower.
    assert all(b <= a * 1.02 for a, b in zip(sim, sim[1:]))
    assert sim[0] > 2.0 * sim[-1]
    # Model tracks experiment within a factor of two everywhere.
    for m, s in zip(model, sim):
        assert 0.5 <= m / s <= 2.0
    benchmark.extra_info["agreement"] = shape_summary(model, sim)
