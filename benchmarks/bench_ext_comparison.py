"""Extension: comparative analysis of the three algorithms (paper §9).

The paper defers "a comparative analysis of various algorithms" to future
work; this bench runs all three on the same workload across the memory
range and reports who wins where.  Expected: Grace < sort-merge < nested
loops once every algorithm is inside its design envelope, with nested
loops catching up only when S is effectively memory-resident.
"""

from conftest import bench_scale

from repro.harness.experiment import run_memory_sweep
from repro.harness.report import ascii_chart, format_table
from repro.workload import WorkloadSpec, generate_workload

FRACTIONS = (0.1, 0.15, 0.2, 0.3, 0.5)


def test_ext_algorithm_comparison(benchmark, bench_config, bench_machine, record):
    scale = bench_scale(0.1)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )

    def run_all():
        return {
            name: run_memory_sweep(
                name,
                FRACTIONS,
                machine=bench_machine,
                sim_config=bench_config,
                workload=workload,
            )
            for name in ("nested-loops", "sort-merge", "grace")
        }

    sweeps = benchmark.pedantic(run_all, rounds=1, iterations=1)

    series = {name: sweep.sim_series for name, sweep in sweeps.items()}
    rows = [
        [f, *(series[name][i] for name in series)]
        for i, f in enumerate(FRACTIONS)
    ]
    text = "\n".join(
        [
            "== Extension: algorithm comparison (measured ms/Rproc) ==",
            format_table(["MRproc/|R|", *series.keys()], rows),
            ascii_chart(list(FRACTIONS), series),
        ]
    )
    record("ext_comparison", text)

    # Inside the design envelope Grace wins and nested loops loses.
    for i, fraction in enumerate(FRACTIONS):
        if fraction >= 0.1:
            assert series["grace"][i] <= series["sort-merge"][i] * 1.1
    assert series["nested-loops"][0] > series["grace"][0]
