"""Figure 1(a): disk transfer time vs band size, measured on the simulator.

Paper shape: dttr rises from ~6 ms (sequential) toward ~22 ms over a
12,800-block band; dttw sits below dttr everywhere because dirty pages are
written back lazily and scheduled by shortest seek time.
"""

from repro.harness.figures import figure_1a


def test_fig1a_disk_transfer_curves(benchmark, bench_config, record):
    fig = benchmark.pedantic(
        lambda: figure_1a(bench_config), rounds=1, iterations=1
    )
    record("fig1a_disk_curves", fig.render())

    dttr = fig.series["dttr_ms"]
    dttw = fig.series["dttw_ms"]
    # Shape assertions: monotone growth, sequential fast, writes cheaper.
    assert all(b >= a for a, b in zip(dttr, dttr[1:]))
    assert dttr[0] < 0.5 * dttr[-1]
    assert dttw[-1] < dttr[-1]
    benchmark.extra_info["dttr_sequential_ms"] = dttr[0]
    benchmark.extra_info["dttr_12800_ms"] = dttr[-1]
