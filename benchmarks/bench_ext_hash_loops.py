"""Extension: pointer-based hash-loops vs nested loops (paper §2.3/§9).

The paper defers "modelling of other more modern hash-based join
algorithms" to future work; this bench delivers one — the Hash-Loops
pointer join of Lieuwen, DeWitt and Mehta, rebuilt for the memory-mapped
environment — and validates its model the same way as Figure 5.

Expected: hash-loops dominates nested loops across the memory range (its
chunked, page-ordered probing reads each S page at most once per chunk),
with the advantage largest at small memory.
"""

from conftest import bench_scale

from repro.harness.experiment import run_memory_sweep
from repro.harness.report import ascii_chart, format_table, shape_summary
from repro.workload import WorkloadSpec, generate_workload

FRACTIONS = (0.05, 0.1, 0.2, 0.4)


def test_ext_hash_loops_vs_nested_loops(
    benchmark, bench_config, bench_machine, record
):
    scale = bench_scale(0.1)
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )

    def run_both():
        return {
            name: run_memory_sweep(
                name,
                FRACTIONS,
                machine=bench_machine,
                sim_config=bench_config,
                workload=workload,
            )
            for name in ("nested-loops", "hash-loops")
        }

    sweeps = benchmark.pedantic(run_both, rounds=1, iterations=1)

    hl, nl = sweeps["hash-loops"], sweeps["nested-loops"]
    rows = [
        [f, nl.sim_series[i], hl.sim_series[i], hl.model_series[i]]
        for i, f in enumerate(FRACTIONS)
    ]
    text = "\n".join(
        [
            "== Extension: hash-loops vs nested loops (ms/Rproc) ==",
            format_table(
                ["MRproc/|R|", "nested-loops_sim", "hash-loops_sim",
                 "hash-loops_model"],
                rows,
            ),
            ascii_chart(
                list(FRACTIONS),
                {"nested-loops": nl.sim_series, "hash-loops": hl.sim_series},
            ),
            shape_summary(hl.model_series, hl.sim_series),
        ]
    )
    record("ext_hash_loops", text)

    # Hash-loops never loses and wins big at the low-memory end.
    for i in range(len(FRACTIONS)):
        assert hl.sim_series[i] <= nl.sim_series[i] * 1.05
    assert hl.sim_series[0] < 0.5 * nl.sim_series[0]
    # Its model tracks its measurement within a factor of two.
    for m, s in zip(hl.model_series, hl.sim_series):
        assert 0.5 <= m / s <= 2.0
