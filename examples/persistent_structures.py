#!/usr/bin/env python3
"""The single-level-store premise, demonstrated (paper §1/§2.1).

The paper's opening argument: with memory mapping and exact positioning,
pointer-based structures live on disk *as they are in memory* — no
flattening, no serialization, no pointer swizzling when they come back.
This example builds a persistent B-tree whose nodes are 4K records in one
mapped segment and whose child pointers are plain record indices, then
closes and reopens the mapping several times to show the pointers survive
untouched.

Usage::

    python examples/persistent_structures.py [keys]
"""

import random
import sys
import tempfile
import time
from pathlib import Path

from repro.storage import MAX_KEYS, PersistentBTree


def main() -> None:
    n_keys = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    rng = random.Random(96)
    pairs = [(rng.getrandbits(48), rng.getrandbits(48)) for _ in range(n_keys)]

    with tempfile.TemporaryDirectory() as root:
        path = Path(root) / "index.btree"

        started = time.perf_counter()
        with PersistentBTree.create(path, capacity_nodes=max(64, n_keys // 16)) as tree:
            for key, value in pairs:
                tree.insert(key, value)
            size = len(tree)
        build_ms = (time.perf_counter() - started) * 1000

        print(
            f"Built a persistent B-tree of {size:,} keys "
            f"(node fan-out {MAX_KEYS}) in {build_ms:,.0f} ms; "
            f"file is {path.stat().st_size / 1024:,.0f} KiB."
        )

        # The µDatabase moment: re-map the file and use the pointers as-is.
        for attempt in range(3):
            started = time.perf_counter()
            with PersistentBTree.open(path) as tree:
                open_ms = (time.perf_counter() - started) * 1000
                probes = rng.sample(range(len(pairs)), 200)
                assert all(
                    tree.search(pairs[i][0]) == pairs[i][1] for i in probes
                )
                lookup_started = time.perf_counter()
                for i in probes:
                    tree.search(pairs[i][0])
                lookup_us = (
                    (time.perf_counter() - lookup_started) / len(probes) * 1e6
                )
            print(
                f"  remap #{attempt + 1}: openMap {open_ms:.2f} ms, "
                f"200 verified lookups, {lookup_us:.0f} us/lookup — "
                "no pointer was swizzled."
            )

        with PersistentBTree.open(path) as tree:
            low = pairs[0][0]
            window = [k for k, _ in tree.range(low, low + 2**44)]
        print(
            f"Range scan straight off the mapping: {len(window):,} keys in "
            "ascending order."
        )


if __name__ == "__main__":
    main()
