#!/usr/bin/env python3
"""Quickstart: run all three parallel pointer-based joins and check them.

Generates the paper's validation workload at a small scale, executes
nested loops, sort-merge and Grace on the simulated memory-mapped
multiprocessor, verifies every output against the oracle, and compares the
measured elapsed time with the analytical model's prediction.

Usage::

    python examples/quickstart.py [scale]

``scale`` defaults to 0.05 (~5,120 objects per relation); 1.0 is the
paper's full 102,400-object experiment.
"""

import sys

from repro import (
    JoinEnvironment,
    MemoryParameters,
    WorkloadSpec,
    generate_workload,
    make_algorithm,
    verify_pairs,
)
from repro.harness import calibrated_machine_parameters
from repro.harness.experiment import MODEL_FUNCTIONS


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    relations = workload.relation_parameters()
    memory = MemoryParameters.from_fractions(relations, 0.15)
    machine = calibrated_machine_parameters()

    print(
        f"Workload: |R| = |S| = {relations.r_objects:,} x "
        f"{relations.r_bytes} B over 4 disks "
        f"(measured skew {relations.skew:.3f})"
    )
    print(f"Memory per Rproc: {memory.m_rproc_bytes:,} bytes\n")

    for name in ("nested-loops", "sort-merge", "grace"):
        predicted = MODEL_FUNCTIONS[name](machine, relations, memory)
        env = JoinEnvironment(workload, memory)
        result = make_algorithm(name).run(env)
        pairs = verify_pairs(workload, result.pairs)
        print(f"{name:>13}: {result.elapsed_ms:>12,.0f} ms simulated "
              f"(model predicts {predicted.total_ms:>12,.0f} ms)  "
              f"{pairs:,} pairs verified")
        print(f"{'':>13}  {result.stats.summary()}")

    print("\nAll three algorithms produced the exact oracle join output.")


if __name__ == "__main__":
    main()
