#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section.

Figure 1(a): measured disk transfer curves; Figure 1(b): measured mapping
setup costs; Figures 5(a,b,c): predicted vs measured elapsed time for the
three join algorithms over the memory sweep.

Usage::

    python examples/figure_reproduction.py [scale]

Without an argument each panel uses its own default scale (0.1 for 5a/5b,
0.5 for 5c — the Grace knee's position depends on absolute frame counts).
Pass 1.0 to reproduce the paper's full geometry (takes a few minutes).
"""

import sys

from repro.harness import all_figures


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else None
    for figure in all_figures(scale=scale):
        print(figure.render())
        print()


if __name__ == "__main__":
    main()
