#!/usr/bin/env python3
"""The model as a query-optimizer cost filter.

The paper motivates its quantitative model as "an essential tool for
subsystems such as a query optimizer" and "a high-level filter for data
structure and algorithm designers".  This example plays that role: for a
set of join scenarios (different relation sizes, memory grants and skews)
it evaluates all three cost models and picks the cheapest algorithm —
without simulating anything.

It then spot-checks one scenario against the simulator to show the
chosen plan really is the fastest.

Usage::

    python examples/query_optimizer.py
"""

from dataclasses import dataclass

from repro.harness import calibrated_machine_parameters
from repro.harness.experiment import MODEL_FUNCTIONS
from repro.harness.report import format_table
from repro.model import MemoryParameters, RelationParameters
from repro.joins import JoinEnvironment, make_algorithm
from repro.workload import WorkloadSpec, generate_workload


@dataclass(frozen=True)
class Scenario:
    name: str
    relations: RelationParameters
    memory_fraction: float


SCENARIOS = (
    Scenario(
        "balanced / ample memory",
        RelationParameters(r_objects=102_400, s_objects=102_400),
        0.10,
    ),
    Scenario(
        "balanced / starved memory",
        RelationParameters(r_objects=102_400, s_objects=102_400),
        0.01,
    ),
    Scenario(
        "small R, large S",
        RelationParameters(r_objects=10_240, s_objects=204_800),
        0.20,
    ),
    Scenario(
        "large R, small S (S cacheable)",
        RelationParameters(r_objects=204_800, s_objects=10_240),
        0.30,
    ),
    Scenario(
        "heavy partition skew",
        RelationParameters(r_objects=102_400, s_objects=102_400, skew=1.8),
        0.10,
    ),
)


# The paper's three algorithms; the extensions (hash-loops, hybrid-hash)
# are deliberately excluded so the choices mirror the paper's design space.
PAPER_ALGORITHMS = ("nested-loops", "sort-merge", "grace")


def choose_plan(machine, scenario: Scenario):
    memory = MemoryParameters.from_fractions(
        scenario.relations, scenario.memory_fraction
    )
    costs = {
        name: MODEL_FUNCTIONS[name](machine, scenario.relations, memory).total_ms
        for name in PAPER_ALGORITHMS
    }
    winner = min(costs, key=costs.get)
    return winner, costs


def main() -> None:
    machine = calibrated_machine_parameters()

    rows = []
    for scenario in SCENARIOS:
        winner, costs = choose_plan(machine, scenario)
        rows.append(
            [
                scenario.name,
                costs["nested-loops"],
                costs["sort-merge"],
                costs["grace"],
                winner,
            ]
        )
    print("== Optimizer choices from the analytical model (ms/Rproc) ==")
    print(
        format_table(
            ["scenario", "nested-loops", "sort-merge", "grace", "chosen"], rows
        )
    )

    # Spot-check the first scenario on the simulator at reduced scale.
    print("\nSpot check on the simulator (scale 0.1):")
    workload = generate_workload(WorkloadSpec.paper_validation(scale=0.1), 4)
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), SCENARIOS[0].memory_fraction
    )
    measured = {}
    for name in PAPER_ALGORITHMS:
        env = JoinEnvironment(workload, memory)
        measured[name] = make_algorithm(name).run(
            env, collect_pairs=False
        ).elapsed_ms
    simulated_winner = min(measured, key=measured.get)
    model_winner, _ = choose_plan(machine, SCENARIOS[0])
    print(
        format_table(
            ["algorithm", "simulated_ms"],
            [[k, v] for k, v in measured.items()],
        )
    )
    agreement = "agrees" if simulated_winner == model_winner else "DISAGREES"
    print(
        f"\nModel chose {model_winner!r}; simulation fastest was "
        f"{simulated_winner!r} — the optimizer {agreement} with the machine."
    )

    # Where do the plans flip?  The model can answer without simulating.
    from repro.harness import find_crossovers

    print("\n== Crossover points (paper-scale relations) ==")
    paper = RelationParameters()
    for first, second in (
        ("nested-loops", "grace"),
        ("nested-loops", "sort-merge"),
    ):
        for crossover in find_crossovers(first, second, machine, paper):
            print(
                f"  below MRproc/|R| = {crossover.fraction:.3f}: "
                f"{crossover.cheaper_below}; above: {crossover.cheaper_above}"
            )


if __name__ == "__main__":
    main()
