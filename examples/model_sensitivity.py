#!/usr/bin/env python3
"""Which machine parameter matters for which join?

The paper offers its model as a designer's "high-level filter"; this
example uses it to rank machine parameters by how much the predicted join
cost responds to them (elasticity = % cost change per % parameter change)
at two operating points — memory-starved and memory-ample.

Usage::

    python examples/model_sensitivity.py
"""

from repro.harness import calibrated_machine_parameters
from repro.harness.experiment import MODEL_FUNCTIONS
from repro.model import MemoryParameters, RelationParameters
from repro.model.sensitivity import parameter_sensitivity, render_sensitivities

ALGORITHMS = ("nested-loops", "sort-merge", "grace")


def main() -> None:
    machine = calibrated_machine_parameters()
    relations = RelationParameters()  # the paper's 102,400-object workload

    for label, fraction in (("starved (0.02)", 0.02), ("ample (0.3)", 0.3)):
        memory = MemoryParameters.from_fractions(relations, fraction)
        print(f"\n#### Operating point: {label} ####")
        for name in ALGORITHMS:
            sensitivities = parameter_sensitivity(
                MODEL_FUNCTIONS[name], machine, relations, memory
            )
            meaningful = [s for s in sensitivities if s.matters]
            print()
            print(render_sensitivities(name, meaningful))

    print(
        "\nReading: disk transfer rates dominate everywhere (this is an\n"
        "I/O-bound 1990s machine); CPU heap costs only surface for\n"
        "sort-merge; mapping setup matters more when memory is ample and\n"
        "the I/O terms shrink.  A designer can decide what to optimize\n"
        "without running a single join."
    )


if __name__ == "__main__":
    main()
