#!/usr/bin/env python3
"""Run the pointer-based joins on a *real* mmap single-level store.

This exercises ``repro.storage`` (file-backed mapped segments with exact
positioning — no pointer swizzling) and ``repro.parallel`` (one OS process
per partition, the paper's Rproc design; CPython's GIL makes threads a
non-starter for this, so parallelism is process-level).

Usage::

    python examples/real_mmap_join.py [scale]

``scale`` defaults to 0.05.  All joins are verified against the oracle.
"""

import sys
import tempfile
from pathlib import Path

from repro.harness.report import format_table
from repro.joins import verify_pairs
from repro.parallel import REAL_ALGORITHMS, run_real_join
from repro.storage import timed_delete_map, timed_new_map, timed_open_map
from repro.workload import WorkloadSpec, generate_workload


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    print(
        f"Workload: {workload.r_objects_total:,} R-objects, "
        f"{len(workload.s_objects):,} S-objects, 4 partitions, "
        "one worker process each\n"
    )

    rows = []
    with tempfile.TemporaryDirectory() as root:
        for name in sorted(REAL_ALGORITHMS):
            result = run_real_join(
                name, workload, str(Path(root) / name), use_processes=True
            )
            pairs = verify_pairs(workload, result.pairs)
            passes = ", ".join(
                f"{label} {ms:,.0f} ms" for label, ms in result.pass_wall_ms.items()
            )
            rows.append([name, result.wall_ms, pairs, passes])
    print("== Real mmap joins (host wall-clock) ==")
    print(format_table(["algorithm", "wall_ms", "pairs", "per-pass"], rows))

    print("\n== Real mapping setup costs (the paper's Figure 1b, on this host) ==")
    map_rows = []
    with tempfile.TemporaryDirectory() as root:
        for records in (1_000, 10_000, 100_000):
            path = Path(root) / f"m{records}.seg"
            seg, new_ms = timed_new_map(path, capacity=records)
            seg.close()
            seg, open_ms = timed_open_map(path)
            seg.close()
            delete_ms = timed_delete_map(path)
            map_rows.append([records, new_ms, open_ms, delete_ms])
    print(
        format_table(
            ["records", "newMap_ms", "openMap_ms", "deleteMap_ms"], map_rows
        )
    )
    print(
        "\nAll joins verified. Note how 30 years of hardware turned the "
        "paper's 12-second newMap into fractions of a millisecond."
    )


if __name__ == "__main__":
    main()
