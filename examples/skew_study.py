#!/usr/bin/env python3
"""Study how pointer distribution shapes the five join algorithms.

The paper assumes uniformly random join attributes (skew ~ 1.0) and notes
that skew gates the synchronized algorithms.  This example joins the same
relations under four pointer distributions — uniform, key/foreign-key
permutation, Zipf popularity skew, and partition-hot placement skew — with
all five algorithms (the paper's three plus the hash-loops and hybrid-hash
extensions), verifying every run.

Usage::

    python examples/skew_study.py [scale]
"""

import sys

from repro.harness.report import format_table
from repro.joins import JoinEnvironment, expected_checksum, make_algorithm
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload

DISTRIBUTIONS = (
    ("uniform", {}),
    ("permutation", {}),
    ("zipf", {"theta": 1.0}),
    ("partition_hot", {"hot_fraction": 0.6, "hot_span": 0.25}),
)
ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hash-loops", "hybrid-hash")
FRACTION = 0.15


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    objects = max(64, int(102_400 * scale))

    rows = []
    for name, args in DISTRIBUTIONS:
        workload = generate_workload(
            WorkloadSpec(
                r_objects=objects,
                s_objects=objects,
                distribution=name,
                distribution_args=args,
                seed=96,
            ),
            disks=4,
        )
        memory = MemoryParameters.from_fractions(
            workload.relation_parameters(), FRACTION
        )
        oracle = expected_checksum(workload)
        elapsed = {}
        for algorithm in ALGORITHMS:
            env = JoinEnvironment(workload, memory)
            result = make_algorithm(algorithm).run(env, collect_pairs=False)
            if result.checksum != oracle:
                raise SystemExit(f"{algorithm} produced a wrong join on {name}!")
            elapsed[algorithm] = result.elapsed_ms
        rows.append(
            [name, f"{workload.measured_skew():.2f}"]
            + [elapsed[a] for a in ALGORITHMS]
        )

    print(f"|R| = |S| = {objects:,}, MRproc/|R| = {FRACTION}, all runs verified")
    print(format_table(["distribution", "skew", *ALGORITHMS], rows))
    print(
        "\nPlacement skew (partition_hot) hurts everyone: the synchronized "
        "algorithms\nwait for the overloaded partition every pass (the "
        "paper's skew-adjusted\ngeometry, §6.3), and nested loops suffers "
        "most of all because the hot S\npartition absorbs a flood of random "
        "dereferences.  Popularity skew (zipf)\nis far milder — hot S pages "
        "simply stay cached."
    )


if __name__ == "__main__":
    main()
