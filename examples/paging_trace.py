#!/usr/bin/env python3
"""Watch the paging behaviour the paper reasons about.

Runs the Grace join twice — once with ample memory, once deep in the
thrashing regime the paper's urn model approximates (§7.3) — while tracing
every page access of Rproc0.  Prints a fault-rate heat strip over program
time plus the premature-refault count the urn model predicts.

Usage::

    python examples/paging_trace.py [scale]
"""

import sys

from repro.joins import JoinEnvironment, ParallelGraceJoin
from repro.model import MemoryParameters
from repro.sim.trace import attach_recorder, render_fault_strip
from repro.workload import WorkloadSpec, generate_workload


def traced_grace_run(workload, fraction: float, buckets: int):
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), fraction
    )
    env = JoinEnvironment(workload, memory)
    recorder = attach_recorder(env.rprocs[0].memory)
    result = ParallelGraceJoin(buckets=buckets).run(env, collect_pairs=False)
    return recorder, result


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale), disks=4
    )
    buckets = 40

    print(f"Grace join, K = {buckets}, {workload.r_objects_total:,} objects.")
    print("Fault-rate strip over Rproc0's program time "
          "(' ' = all hits, '#' = all faults):\n")

    for label, fraction in (("ample memory ", 0.4), ("starved memory", 0.04)):
        recorder, result = traced_grace_run(workload, fraction, buckets)
        strip = render_fault_strip(recorder, width=64)
        refaults = recorder.premature_refaults("RS0")
        print(f"{label} (MRproc/|R| = {fraction}):")
        print(f"  [{strip}]")
        print(
            f"  accesses={recorder.access_count:,} "
            f"faults={recorder.fault_count:,} "
            f"RS0 premature refaults={refaults:,} "
            f"elapsed={result.elapsed_ms:,.0f} ms\n"
        )

    print(
        "At ample memory the strip stays light after the cold start: bucket\n"
        "pages fill in place.  When memory shrinks below K, LRU keeps\n"
        "evicting partially-filled bucket pages (dark strip, premature\n"
        "refaults) — the exact effect the paper's urn model charges for."
    )


if __name__ == "__main__":
    main()
