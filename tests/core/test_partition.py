"""Tests for sub-partitioning and skew measurement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import (
    classify_by_target,
    partition_skew,
    split_evenly,
    sub_partition_counts,
    workload_skew,
)
from repro.core.pointer import PointerMap
from repro.core.records import RObject


def robj(rid, sptr):
    return RObject(rid=rid, sptr=sptr, payload=0)


class TestClassification:
    def test_classify_routes_by_pointer(self):
        pmap = PointerMap(s_objects=40, partitions=4)
        objs = [robj(0, 0), robj(1, 10), robj(2, 25), robj(3, 39)]
        groups = classify_by_target(objs, pmap)
        assert [len(g) for g in groups] == [1, 1, 1, 1]
        assert groups[2][0].rid == 2

    def test_counts_match_classification(self):
        pmap = PointerMap(s_objects=100, partitions=4)
        objs = [robj(i, (i * 7) % 100) for i in range(50)]
        counts = sub_partition_counts(objs, pmap)
        groups = classify_by_target(objs, pmap)
        assert counts == [len(g) for g in groups]

    def test_empty_input(self):
        pmap = PointerMap(s_objects=10, partitions=2)
        assert sub_partition_counts([], pmap) == [0, 0]


class TestSkew:
    def test_perfectly_even_is_one(self):
        assert partition_skew([10, 10, 10, 10]) == pytest.approx(1.0)

    def test_all_in_one_partition(self):
        assert partition_skew([40, 0, 0, 0]) == pytest.approx(4.0)

    def test_empty_counts_is_one(self):
        assert partition_skew([0, 0]) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=8))
    def test_skew_at_least_one(self, counts):
        assert partition_skew(counts) >= 1.0 - 1e-12

    def test_workload_skew_takes_worst_partition(self):
        pmap = PointerMap(s_objects=20, partitions=2)
        balanced = [robj(0, 0), robj(1, 10)]
        lopsided = [robj(2, 0), robj(3, 1), robj(4, 2), robj(5, 3)]
        assert workload_skew([balanced, lopsided], pmap) == pytest.approx(2.0)


class TestSplitEvenly:
    def test_divisible(self):
        parts = split_evenly([robj(i, 0) for i in range(12)], 4)
        assert [len(p) for p in parts] == [3, 3, 3, 3]

    def test_remainder_spread(self):
        parts = split_evenly([robj(i, 0) for i in range(10)], 4)
        assert [len(p) for p in parts] == [3, 3, 2, 2]

    def test_nothing_lost(self):
        objs = [robj(i, 0) for i in range(17)]
        parts = split_evenly(objs, 5)
        flattened = [o for p in parts for o in p]
        assert flattened == objs

    def test_rejects_nonpositive_partitions(self):
        with pytest.raises(ValueError):
            split_evenly([], 0)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=200),
        d=st.integers(min_value=1, max_value=9),
    )
    def test_sizes_within_one(self, n, d):
        parts = split_evenly([robj(i, 0) for i in range(n)], d)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
