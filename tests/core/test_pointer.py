"""Tests for virtual-pointer arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pointer import PointerError, PointerMap


class TestEvenPartitions:
    def test_partition_sizes(self):
        pmap = PointerMap(s_objects=100, partitions=4)
        assert [pmap.partition_size(i) for i in range(4)] == [25, 25, 25, 25]

    def test_partition_starts(self):
        pmap = PointerMap(s_objects=100, partitions=4)
        assert [pmap.partition_start(i) for i in range(4)] == [0, 25, 50, 75]

    def test_partition_of_boundaries(self):
        pmap = PointerMap(s_objects=100, partitions=4)
        assert pmap.partition_of(0) == 0
        assert pmap.partition_of(24) == 0
        assert pmap.partition_of(25) == 1
        assert pmap.partition_of(99) == 3

    def test_locate(self):
        pmap = PointerMap(s_objects=100, partitions=4)
        assert pmap.locate(30) == (1, 5)


class TestUnevenPartitions:
    def test_remainder_spread_over_first_partitions(self):
        pmap = PointerMap(s_objects=10, partitions=3)
        assert [pmap.partition_size(i) for i in range(3)] == [4, 3, 3]

    def test_sizes_sum_to_total(self):
        pmap = PointerMap(s_objects=17, partitions=5)
        assert sum(pmap.partition_size(i) for i in range(5)) == 17

    def test_partition_of_crosses_remainder_boundary(self):
        pmap = PointerMap(s_objects=10, partitions=3)
        assert [pmap.partition_of(p) for p in range(10)] == [
            0, 0, 0, 0, 1, 1, 1, 2, 2, 2,
        ]


class TestRoundTrips:
    @given(
        s_objects=st.integers(min_value=1, max_value=5000),
        partitions=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    def test_locate_global_index_roundtrip(self, s_objects, partitions, data):
        pmap = PointerMap(s_objects=s_objects, partitions=partitions)
        sptr = data.draw(st.integers(min_value=0, max_value=s_objects - 1))
        partition, offset = pmap.locate(sptr)
        assert 0 <= partition < partitions
        assert 0 <= offset < pmap.partition_size(partition)
        assert pmap.global_index(partition, offset) == sptr

    @given(
        s_objects=st.integers(min_value=1, max_value=2000),
        partitions=st.integers(min_value=1, max_value=9),
    )
    def test_partitions_cover_everything_once(self, s_objects, partitions):
        pmap = PointerMap(s_objects=s_objects, partitions=partitions)
        seen = [pmap.partition_of(p) for p in range(s_objects)]
        # Non-decreasing assignment with all partitions' sizes respected.
        assert all(b >= a for a, b in zip(seen, seen[1:]))
        for i in range(partitions):
            assert seen.count(i) == pmap.partition_size(i)


class TestValidation:
    def test_pointer_out_of_range(self):
        pmap = PointerMap(s_objects=10, partitions=2)
        with pytest.raises(PointerError):
            pmap.partition_of(10)
        with pytest.raises(PointerError):
            pmap.partition_of(-1)

    def test_offset_out_of_range(self):
        pmap = PointerMap(s_objects=10, partitions=2)
        with pytest.raises(PointerError):
            pmap.global_index(0, 5)

    def test_bad_construction(self):
        with pytest.raises(PointerError):
            PointerMap(s_objects=0, partitions=1)
        with pytest.raises(PointerError):
            PointerMap(s_objects=10, partitions=0)

    def test_more_partitions_than_objects(self):
        pmap = PointerMap(s_objects=2, partitions=4)
        assert [pmap.partition_size(i) for i in range(4)] == [1, 1, 0, 0]
        assert pmap.partition_of(1) == 1


class TestBatchArithmetic:
    @given(
        s_objects=st.integers(min_value=1, max_value=500),
        partitions=st.integers(min_value=1, max_value=12),
    )
    def test_locate_many_matches_scalar(self, s_objects, partitions):
        pmap = PointerMap(s_objects=s_objects, partitions=partitions)
        sptrs = list(range(s_objects))
        assert pmap.locate_many(sptrs) == [pmap.locate(p) for p in sptrs]

    @given(
        s_objects=st.integers(min_value=1, max_value=500),
        partitions=st.integers(min_value=1, max_value=12),
    )
    def test_offset_many_matches_scalar(self, s_objects, partitions):
        pmap = PointerMap(s_objects=s_objects, partitions=partitions)
        sptrs = list(range(s_objects))
        assert pmap.offset_many(sptrs) == [pmap.offset_of(p) for p in sptrs]

    def test_empty_batches(self):
        pmap = PointerMap(s_objects=10, partitions=3)
        assert pmap.locate_many([]) == []
        assert pmap.offset_many([]) == []

    def test_batch_out_of_range_rejected(self):
        pmap = PointerMap(s_objects=10, partitions=3)
        with pytest.raises(PointerError):
            pmap.locate_many([0, 10])
        with pytest.raises(PointerError):
            pmap.offset_many([-1, 3])
