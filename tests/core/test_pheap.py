"""Tests for the instrumented pointer heap."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pheap import (
    CountingInstrumentation,
    HeapError,
    PointerHeap,
    heapsort_pointers,
)


class TestBasics:
    def test_empty_heap(self):
        heap = PointerHeap()
        assert len(heap) == 0
        assert heap.is_empty

    def test_peek_min(self):
        heap = PointerHeap([5, 3, 8])
        assert heap.peek_min() == 3

    def test_peek_empty_rejected(self):
        with pytest.raises(HeapError):
            PointerHeap().peek_min()

    def test_pop_empty_rejected(self):
        with pytest.raises(HeapError):
            PointerHeap().pop_min()

    def test_replace_on_empty_rejected(self):
        with pytest.raises(HeapError):
            PointerHeap().replace_min(1)

    def test_push_then_pop(self):
        heap = PointerHeap()
        for v in (4, 1, 3):
            heap.push(v)
        assert heap.pop_min() == 1
        assert heap.pop_min() == 3
        assert heap.pop_min() == 4

    def test_key_function(self):
        heap = PointerHeap(["bbb", "a", "cc"], key=len)
        assert heap.pop_min() == "a"


class TestSorting:
    def test_drain_sorts(self):
        data = [9, 2, 7, 2, 5, 0]
        assert PointerHeap(data).drain() == sorted(data)

    def test_heapsort_pointers_matches_sorted(self):
        rng = random.Random(5)
        data = [rng.randrange(10_000) for _ in range(500)]
        assert heapsort_pointers(data) == sorted(data)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(), max_size=300))
    def test_heapsort_property(self, data):
        assert heapsort_pointers(data) == sorted(data)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(), min_size=1, max_size=200))
    def test_push_pop_interleaved_property(self, data):
        heap = PointerHeap()
        out = []
        for i, value in enumerate(data):
            heap.push(value)
            if i % 3 == 2:
                out.append(heap.pop_min())
        out.extend(heap.drain())
        assert sorted(out) == sorted(data)


class TestReplaceMin:
    def test_replace_returns_old_minimum(self):
        heap = PointerHeap([4, 7, 9])
        assert heap.replace_min(6) == 4
        assert heap.pop_min() == 6

    def test_k_way_merge_via_replace(self):
        runs = [sorted(random.Random(i).sample(range(1000), 50)) for i in range(4)]
        cursors = [(run[0], i, 0) for i, run in enumerate(runs)]
        heap = PointerHeap(cursors)
        merged = []
        while not heap.is_empty:
            value, run_id, pos = heap.peek_min()
            merged.append(value)
            if pos + 1 < len(runs[run_id]):
                heap.replace_min((runs[run_id][pos + 1], run_id, pos + 1))
            else:
                heap.pop_min()
        assert merged == sorted(v for run in runs for v in run)


class TestInstrumentation:
    def test_build_charges_transfers_per_element(self):
        counter = CountingInstrumentation()
        PointerHeap(range(100), instrumentation=counter)
        assert counter.transfers == 100

    def test_floyd_build_linear_compares(self):
        counter = CountingInstrumentation()
        PointerHeap(range(1000), instrumentation=counter)
        # Floyd construction is O(n): far fewer than n log n comparisons.
        assert counter.compares < 2.5 * 1000

    def test_heapsort_total_within_n_log_n(self):
        n = 1024
        rng = random.Random(1)
        data = [rng.random() for _ in range(n)]
        counter = CountingInstrumentation()
        heapsort_pointers(data, instrumentation=counter)
        bound = 2.5 * n * math.log2(n)
        assert counter.compares <= bound

    def test_bounce_deletion_one_compare_per_level(self):
        """pop_min's descent does ~log2(n) child comparisons on average."""
        n = 2048
        rng = random.Random(2)
        heap = PointerHeap(
            [rng.random() for _ in range(n)],
            instrumentation=CountingInstrumentation(),
        )
        counter = CountingInstrumentation()
        heap._instr = counter
        for _ in range(100):
            heap.pop_min()
        per_pop = counter.compares / 100
        assert per_pop <= 1.6 * math.log2(n)

    def test_replace_min_charges_two_transfers(self):
        counter = CountingInstrumentation()
        heap = PointerHeap([1, 2, 3], instrumentation=counter)
        before = counter.transfers
        heap.replace_min(5)
        assert counter.transfers == before + 2
