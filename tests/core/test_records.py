"""Tests for record types."""

from repro.core.records import JoinedPair, RObject, SObject, join_pair


class TestRecords:
    def test_r_object_fields(self):
        r = RObject(rid=1, sptr=42, payload=7)
        assert r.rid == 1 and r.sptr == 42 and r.payload == 7

    def test_records_are_hashable_tuples(self):
        assert {RObject(1, 2, 3), RObject(1, 2, 3)} == {RObject(1, 2, 3)}

    def test_join_pair_combines_fields(self):
        r = RObject(rid=9, sptr=4, payload=100)
        s = SObject(sid=4, value=55, payload=200)
        pair = join_pair(r, s)
        assert pair == JoinedPair(rid=9, sid=4, r_payload=100, s_value=55)
