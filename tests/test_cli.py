"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join", "grace"])
        assert args.algorithm == "grace"
        assert args.fraction == 0.1
        assert args.disks == 4
        assert not args.real

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "bitmap-join"])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "--figure", "1a"])
        assert args.figure == "1a"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "9z"])


class TestCommands:
    def test_join_sim(self, capsys):
        assert main(["join", "grace", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "pairs verified" in out

    def test_join_real(self, capsys):
        assert main(["join", "nested-loops", "--scale", "0.01", "--real"]) == 0
        out = capsys.readouterr().out
        assert "real mmap backend" in out

    def test_join_real_hash_loops_unsupported(self, capsys):
        assert main(["join", "hash-loops", "--scale", "0.01", "--real"]) == 2

    def test_model(self, capsys):
        assert main(["model", "nested-loops", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "predicted" in out
        assert "pass0" in out

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "grace", "--scale", "0.01", "--fractions", "0.1,0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert "experiment_ms" in out
        assert "relative error" in out

    def test_figure_1a(self, capsys):
        assert main(["figures", "--figure", "1a"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out
        assert "dttr_ms" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--accesses", "50"]) == 0
        out = capsys.readouterr().out
        assert "dttr_ms" in out
        assert "newMap_ms" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "grace", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "elasticity" in out
        assert "dttr" in out

    def test_crossover(self, capsys):
        assert main(["crossover", "nested-loops", "grace"]) == 0
        out = capsys.readouterr().out
        assert "MRproc/|R|" in out

    def test_crossover_no_flip(self, capsys):
        assert main(["crossover", "grace", "grace"]) == 0
        out = capsys.readouterr().out
        assert "no crossover" in out

    def test_workload_save_and_info(self, capsys, tmp_path):
        path = str(tmp_path / "wl.npz")
        assert main(["workload", "save", path, "--scale", "0.005"]) == 0
        assert main(["workload", "info", path]) == 0
        out = capsys.readouterr().out
        assert "saved" in out
        assert "measured skew" in out

    def test_report_to_file(self, tmp_path):
        out_path = str(tmp_path / "r.md")
        assert main(
            ["report", "--scale", "0.02", "--no-comparison", "--out", out_path]
        ) == 0
        text = open(out_path).read()
        assert "Figure 5c" in text
