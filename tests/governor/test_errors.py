"""The classified resource-exhaustion hierarchy and OS-error classifier."""

import errno
import pickle

import pytest

from repro.governor import (
    AdmissionRejected,
    DiskExhausted,
    MemoryExhausted,
    ResourceExhausted,
    classify_os_error,
)


class TestHierarchy:
    def test_resources(self):
        assert MemoryExhausted("m").resource == "memory"
        assert DiskExhausted("d").resource == "disk"
        assert AdmissionRejected("a").resource == "admission"
        for cls in (MemoryExhausted, DiskExhausted, AdmissionRejected):
            assert issubclass(cls, ResourceExhausted)

    def test_describe_includes_accounting(self):
        error = MemoryExhausted("over", requested=100, limit=60, used=50)
        text = error.describe()
        assert "over" in text
        assert "requested=100" in text
        assert "limit=60" in text
        assert "used=50" in text

    def test_describe_without_accounting(self):
        assert DiskExhausted("just a message").describe() == "just a message"

    @pytest.mark.parametrize(
        "cls", [ResourceExhausted, MemoryExhausted, DiskExhausted,
                AdmissionRejected]
    )
    def test_pickle_roundtrip_preserves_accounting(self, cls):
        """Workers raise these through a multiprocessing.Pool: the pickle
        round trip must keep the budget accounting intact."""
        error = cls("boom", requested=7, limit=5, used=4)
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is cls
        assert clone.args == error.args
        assert (clone.requested, clone.limit, clone.used) == (7, 5, 4)
        assert clone.resource == error.resource


class TestClassify:
    def test_enospc_becomes_disk(self):
        error = OSError(errno.ENOSPC, "No space left on device")
        classified = classify_os_error(error, "pass0 partition 1")
        assert isinstance(classified, DiskExhausted)
        assert "pass0 partition 1" in str(classified)

    def test_edquot_becomes_disk(self):
        error = OSError(errno.EDQUOT, "Quota exceeded")
        assert isinstance(classify_os_error(error, "x"), DiskExhausted)

    def test_enomem_becomes_memory(self):
        error = OSError(errno.ENOMEM, "Cannot allocate memory")
        assert isinstance(classify_os_error(error, "x"), MemoryExhausted)

    def test_memoryerror_becomes_memory(self):
        assert isinstance(classify_os_error(MemoryError(), "x"), MemoryExhausted)

    def test_unrelated_oserror_is_not_classified(self):
        assert classify_os_error(OSError(errno.ENOENT, "gone"), "x") is None
        assert classify_os_error(OSError("no errno"), "x") is None

    def test_already_classified_passes_through(self):
        original = DiskExhausted("already", requested=1, limit=1)
        assert classify_os_error(original, "x") is original
