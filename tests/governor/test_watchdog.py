"""The per-worker memory meter: charging, limits, the activation stack."""

import pytest

from repro.governor import (
    MemoryExhausted,
    MemoryMeter,
    NullMeter,
    activate_meter,
    active_meter,
    deactivate_meter,
    metering,
    rss_high_water_bytes,
)


class TestMemoryMeter:
    def test_charge_and_release(self):
        meter = MemoryMeter()
        meter.charge(100, "batch")
        meter.charge(50, "run")
        assert meter.charged_bytes == 150
        assert meter.high_water_bytes == 150
        meter.release(120)
        assert meter.charged_bytes == 30
        assert meter.high_water_bytes == 150  # high water never recedes

    def test_release_clamps_at_zero(self):
        meter = MemoryMeter()
        meter.charge(10, "x")
        meter.release(100)
        assert meter.charged_bytes == 0

    def test_limit_trips_before_committing(self):
        meter = MemoryMeter(limit_bytes=100)
        meter.charge(80, "batch")
        with pytest.raises(MemoryExhausted) as info:
            meter.charge(40, "sort run")
        # The failed charge must not be committed.
        assert meter.charged_bytes == 80
        error = info.value
        assert error.requested == 40
        assert error.limit == 100
        assert error.used == 80
        assert "sort run" in str(error)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryMeter(limit_bytes=0)

    def test_mapped_bytes_tracked_but_never_limited(self):
        meter = MemoryMeter(limit_bytes=10)
        meter.map_bytes(1 << 30)  # far over the limit: mapped is page cache
        assert meter.mapped_high_water_bytes == 1 << 30
        meter.unmap_bytes(1 << 30)
        assert meter.mapped_bytes == 0
        assert meter.charged_bytes == 0


class TestActivationStack:
    def test_default_is_null(self):
        meter = active_meter()
        assert isinstance(meter, NullMeter)
        meter.charge(1 << 40, "anything")  # never raises, never counts

    def test_activate_deactivate(self):
        meter = MemoryMeter()
        assert activate_meter(meter) is meter
        try:
            assert active_meter() is meter
        finally:
            assert deactivate_meter() is meter
        assert isinstance(active_meter(), NullMeter)

    def test_nesting_restores_outer(self):
        outer, inner = MemoryMeter(), MemoryMeter()
        activate_meter(outer)
        try:
            with metering(meter=inner):
                assert active_meter() is inner
            assert active_meter() is outer
        finally:
            deactivate_meter()


def test_rss_high_water_is_plausible():
    rss = rss_high_water_bytes()
    if rss is not None:
        # A running Python interpreter holds at least a few MB.
        assert rss > 1 << 20
