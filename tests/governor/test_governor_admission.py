"""Admission control: concurrency slots, the bounded queue, deadlines."""

import threading

import pytest

from repro.governor import AdmissionRejected, ResourceGovernor


class TestAdmission:
    def test_immediate_admission(self):
        governor = ResourceGovernor(max_concurrent=2)
        with governor.admit() as ticket:
            assert ticket.decision == "admitted"
            with governor.admit() as second:
                assert second.decision == "admitted"
        snapshot = governor.snapshot()
        assert snapshot["admitted_total"] == 2
        assert snapshot["rejected_total"] == 0

    def test_fail_mode_rejects_when_saturated(self):
        governor = ResourceGovernor(max_concurrent=1)
        ticket = governor.admit("fail")
        with pytest.raises(AdmissionRejected):
            governor.admit("fail")
        ticket.release()
        governor.admit("fail").release()  # slot freed: admitted again
        assert governor.snapshot()["rejected_total"] == 1

    def test_release_is_idempotent(self):
        governor = ResourceGovernor(max_concurrent=1)
        ticket = governor.admit()
        ticket.release()
        ticket.release()
        governor.admit("fail").release()  # the double release freed one slot

    def test_deadline_lapses_while_queued(self):
        governor = ResourceGovernor(max_concurrent=1)
        holder = governor.admit()
        with pytest.raises(AdmissionRejected, match="deadline"):
            governor.admit("queue", deadline_s=0.05)
        holder.release()

    def test_queue_limit_rejects(self):
        governor = ResourceGovernor(max_concurrent=1, queue_limit=0)
        holder = governor.admit()
        with pytest.raises(AdmissionRejected, match="queue"):
            governor.admit("queue", deadline_s=1.0)
        holder.release()

    def test_queued_caller_admitted_on_release(self):
        governor = ResourceGovernor(max_concurrent=1)
        holder = governor.admit()
        decisions = []

        def contender():
            with governor.admit("queue", deadline_s=5.0) as ticket:
                decisions.append((ticket.decision, ticket.queued_ms))

        thread = threading.Thread(target=contender)
        thread.start()
        # Give the contender time to join the queue, then free the slot.
        deadline = threading.Event()
        deadline.wait(0.05)
        holder.release()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert decisions and decisions[0][0] == "queued"
        assert governor.snapshot()["queued_total"] == 1
