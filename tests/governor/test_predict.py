"""Footprint prediction: the ladder, the fit loop, and model accuracy.

The accuracy contract (the issue's acceptance): for every real algorithm,
at a generous and at a tight memory budget, the worker-observed high-water
mark never exceeds the model's prediction, and the prediction is not
uselessly loose — within ``TOLERANCE``× of what was observed.
"""

import pytest

from repro.governor import JoinPlan, fit_plan, predict_footprint
from repro.governor.predict import (
    MAX_BUCKETS,
    MIN_BATCH_RECORDS,
    MIN_IRUN,
    PAGE_SIZE,
    PAIR_RECORD_BYTES,
)
from repro.parallel import REAL_ALGORITHMS, run_real_join
from repro.storage.relation import PAIR_RECORD_BYTES as REAL_PAIR_BYTES
from repro.storage.segment import PAGE_SIZE as REAL_PAGE_SIZE
from repro.workload import WorkloadSpec, generate_workload

R_OBJECTS = 300

#: Predicted may exceed observed by at most this factor (model looseness);
#: observed exceeding predicted at all is a model violation.
TOLERANCE = 3.0

#: (label, total mem budget): ~85% and ~9% of this workload's |R| bytes.
MEMORY_FRACTIONS = [("generous", 1 << 16), ("tight", 32 * 1024)]


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=R_OBJECTS, s_objects=R_OBJECTS, seed=7),
        disks=2,
    )


def test_mirrored_constants_match_storage():
    """predict.py duplicates these to stay import-cycle-free; pin them."""
    assert PAGE_SIZE == REAL_PAGE_SIZE
    assert PAIR_RECORD_BYTES == REAL_PAIR_BYTES


class TestLadder:
    def test_nested_loops_halves_batch_to_floor(self):
        plan = JoinPlan(batch_records=256, kernel_mode="scalar")
        plan = plan.degraded("nested-loops")
        assert plan.batch_records == 128
        plan = plan.degraded("nested-loops")
        assert plan.batch_records == MIN_BATCH_RECORDS
        assert plan.degraded("nested-loops") == plan  # floor: no change

    def test_sort_merge_shrinks_runs_before_batches(self):
        plan = JoinPlan(batch_records=128, irun=128, kernel_mode="scalar")
        plan = plan.degraded("sort-merge")
        assert (plan.irun, plan.batch_records) == (MIN_IRUN, 128)
        plan = plan.degraded("sort-merge")
        assert plan.batch_records == MIN_BATCH_RECORDS
        assert plan.degraded("sort-merge") == plan

    def test_vector_kernels_are_the_last_memory_rung(self):
        """Vector buffers are the final thing sacrificed under pressure:
        once every size knob sits at its floor, one more degradation
        flips kernel_mode to scalar, and only then is the plan a fixed
        point."""
        for algorithm in sorted(REAL_ALGORITHMS):
            plan = JoinPlan(kernel_mode="vector")
            for _ in range(64):
                lowered = plan.degraded(algorithm)
                if lowered == plan:
                    break
                assert plan.kernel_mode == "vector" or (
                    lowered.kernel_mode == "scalar"
                )
                plan = lowered
            assert plan.kernel_mode == "scalar", algorithm
            floored = plan.degraded(algorithm)
            assert floored == plan, algorithm

    def test_grace_ladder_order(self):
        plan = JoinPlan(batch_records=128, buckets=16)
        first = plan.degraded("grace")
        assert first.spill_threshold == 4 * 128  # rung 1: chunked spilling
        second = first.degraded("grace")
        assert second.spill_threshold < first.spill_threshold  # rung 2
        current = second
        for _ in range(64):
            lowered = current.degraded("grace")
            if lowered == current:
                break
            current = lowered
        assert current.batch_records == MIN_BATCH_RECORDS
        assert current.buckets == MAX_BUCKETS  # last rung: finer buckets

    def test_disk_pressure_shrinks_batches(self):
        plan = JoinPlan(batch_records=256)
        for algorithm in REAL_ALGORITHMS:
            lowered = plan.degraded(algorithm, resource="disk")
            assert lowered.batch_records == 128


class TestFitPlan:
    @pytest.mark.parametrize("algorithm", sorted(REAL_ALGORITHMS))
    def test_generous_budget_needs_no_fitting(self, workload, algorithm):
        plan = JoinPlan()
        fitted, steps, estimate = fit_plan(algorithm, workload, plan, 1 << 20)
        assert steps == 0
        assert fitted == plan
        assert estimate.mem_high_water_bytes <= 1 << 20

    @pytest.mark.parametrize("algorithm", sorted(REAL_ALGORITHMS))
    def test_tight_budget_descends_and_fits(self, workload, algorithm):
        budget = 16 * 1024
        fitted, steps, estimate = fit_plan(
            algorithm, workload, JoinPlan(), budget
        )
        assert steps >= 1
        assert estimate.mem_high_water_bytes <= budget

    @pytest.mark.parametrize("algorithm", sorted(REAL_ALGORITHMS))
    def test_prediction_scales_down_the_ladder(self, workload, algorithm):
        full = predict_footprint(algorithm, workload, JoinPlan())
        floored, _, low = fit_plan(algorithm, workload, JoinPlan(), 16 * 1024)
        assert low.mem_high_water_bytes <= full.mem_high_water_bytes
        assert floored != JoinPlan()


class TestPredictedVsObserved:
    @pytest.mark.parametrize("algorithm", sorted(REAL_ALGORITHMS))
    @pytest.mark.parametrize("label,mem_budget", MEMORY_FRACTIONS)
    def test_observed_within_tolerance(
        self, workload, algorithm, label, mem_budget, tmp_path
    ):
        result = run_real_join(
            algorithm, workload, str(tmp_path / "db"), use_processes=False,
            mem_budget=mem_budget, on_pressure="degrade",
        )
        governor = result.governor
        predicted = governor["predicted"]["mem_high_water_bytes"]
        observed = governor["observed"]["worker_mem_high_water_bytes"]
        assert observed is not None
        # Upper bound: the model must never under-predict the meter.
        assert observed <= predicted, (algorithm, label, observed, predicted)
        # Looseness bound: nor over-predict into uselessness.
        assert predicted <= TOLERANCE * max(observed, PAGE_SIZE), (
            algorithm, label, observed, predicted
        )

    @pytest.mark.parametrize("algorithm", sorted(REAL_ALGORITHMS))
    def test_disk_prediction_covers_observed_peak(
        self, workload, algorithm, tmp_path
    ):
        result = run_real_join(
            algorithm, workload, str(tmp_path / "db"), use_processes=False,
            mem_budget=1 << 20, on_pressure="degrade",
        )
        governor = result.governor
        predicted = governor["predicted"]["disk_bytes"]
        observed = governor["observed"]["disk_peak_bytes"]
        assert 0 < observed <= predicted, (algorithm, observed, predicted)
