"""Graceful degradation end-to-end: pressure never changes the answer.

The acceptance contract: under an injected tight memory budget and under
injected ENOSPC, each algorithm either completes **bit-identically** to an
unconstrained baseline (same pair count, same checksum) via degradation,
or refuses with a classified error — never a raw OSError / MemoryError
escaping ``run_real_join``.
"""

import pytest

from repro.joins import verify_pairs
from repro.obs.export import schema_problems
from repro.parallel import FaultPlan, run_real_join
from repro.governor import (
    DiskExhausted,
    MemoryExhausted,
    ResourceExhausted,
)
from repro.workload import WorkloadSpec, generate_workload

R_OBJECTS = 300
TIGHT_MEM = 32 * 1024

ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hybrid-hash")


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=R_OBJECTS, s_objects=R_OBJECTS, seed=7),
        disks=2,
    )


@pytest.fixture(scope="module")
def baselines(workload, tmp_path_factory):
    root = tmp_path_factory.mktemp("baseline")
    results = {}
    for algorithm in ALGORITHMS:
        results[algorithm] = run_real_join(
            algorithm, workload, str(root / algorithm), use_processes=False
        )
    return results


class TestBitIdenticalUnderPressure:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_tight_budget_degrades_not_fails(
        self, workload, baselines, algorithm, tmp_path
    ):
        result = run_real_join(
            algorithm, workload, str(tmp_path / "db"), use_processes=False,
            mem_budget=TIGHT_MEM, on_pressure="degrade",
        )
        baseline = baselines[algorithm]
        assert result.pair_count == baseline.pair_count
        assert result.checksum == baseline.checksum
        if algorithm != "hybrid-hash":
            # Hybrid's deep-degradation rung evicts resident buckets,
            # moving pairs from the partition pass to the probe pass: the
            # per-pass split shifts while the totals stay bit-identical.
            assert result.pass_checksums == baseline.pass_checksums
        assert verify_pairs(workload, result.pairs) == R_OBJECTS
        assert result.degradations_total >= 1
        assert result.governor["admission"] == "degraded"
        assert not (tmp_path / "db").exists()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_runtime_mem_pressure_recovers(
        self, workload, baselines, algorithm, tmp_path
    ):
        """An un-predicted mid-run MemoryExhausted (injected in the last
        pass) still converges to the baseline via runtime degradation."""
        from repro.parallel.faults import ALGORITHM_TASKS

        last_task = ALGORITHM_TASKS[algorithm][-1]
        result = run_real_join(
            algorithm, workload, str(tmp_path / "db"), use_processes=False,
            mem_budget=1 << 20, on_pressure="degrade",
            fault_plan=FaultPlan.single("mem-pressure", last_task, 0),
        )
        baseline = baselines[algorithm]
        assert result.pair_count == baseline.pair_count
        assert result.checksum == baseline.checksum
        assert result.governor["runtime_degradations"] >= 1
        assert result.governor["resource_errors"].get("memory", 0) >= 1
        assert result.retries_total == 0  # degraded, never retried

    def test_pool_mode_mem_pressure_pickles_and_degrades(
        self, workload, baselines, tmp_path
    ):
        """The classified error must survive the multiprocessing.Pool
        round trip with its accounting intact and trigger degradation in
        the parent."""
        result = run_real_join(
            "grace", workload, str(tmp_path / "db"), use_processes=True,
            mem_budget=1 << 20, on_pressure="degrade",
            fault_plan=FaultPlan.single("mem-pressure", "grace_probe", 0),
        )
        baseline = baselines["grace"]
        assert result.pair_count == baseline.pair_count
        assert result.checksum == baseline.checksum
        assert result.governor["runtime_degradations"] >= 1

    def test_disk_full_fault_degrades(self, workload, baselines, tmp_path):
        result = run_real_join(
            "sort-merge", workload, str(tmp_path / "db"), use_processes=False,
            fault_plan=FaultPlan.single("disk-full", "sort_merge_partition", 0),
        )
        baseline = baselines["sort-merge"]
        assert result.pair_count == baseline.pair_count
        assert result.checksum == baseline.checksum
        assert result.degradations_total >= 1


class TestClassifiedRefusals:
    def test_fail_mode_raises_memory_exhausted(self, workload, tmp_path):
        with pytest.raises(MemoryExhausted) as info:
            run_real_join(
                "grace", workload, str(tmp_path / "db"), use_processes=False,
                mem_budget=8 * 1024, on_pressure="fail",
            )
        error = info.value
        assert error.resource == "memory"
        assert error.limit == 4 * 1024  # per worker: 8K across 2 disks
        assert not (tmp_path / "db").exists()

    def test_queue_mode_also_rejects_predicted_overage(self, workload, tmp_path):
        with pytest.raises(MemoryExhausted):
            run_real_join(
                "grace", workload, str(tmp_path / "db"), use_processes=False,
                mem_budget=8 * 1024, on_pressure="queue",
            )

    def test_disk_budget_rejects_at_admission(self, workload, tmp_path):
        with pytest.raises(DiskExhausted) as info:
            run_real_join(
                "grace", workload, str(tmp_path / "db"), use_processes=False,
                disk_budget=4096, on_pressure="degrade",
            )
        assert info.value.resource == "disk"
        assert info.value.requested > 4096

    def test_runtime_pressure_in_fail_mode_raises_classified(
        self, workload, tmp_path
    ):
        """A mid-run injected ENOSPC under fail mode surfaces as the
        classified hierarchy, never as a raw OSError."""
        with pytest.raises(ResourceExhausted) as info:
            run_real_join(
                "grace", workload, str(tmp_path / "db"), use_processes=False,
                on_pressure="fail",
                fault_plan=FaultPlan.single("disk-full", "grace_partition", 0),
            )
        assert info.value.resource == "disk"
        assert not (tmp_path / "db").exists()

    def test_invalid_on_pressure_rejected(self, workload, tmp_path):
        from repro.parallel import RealJoinError

        with pytest.raises(RealJoinError, match="on_pressure"):
            run_real_join(
                "grace", workload, str(tmp_path / "db"),
                on_pressure="panic",
            )


class TestGovernorDocument:
    def test_stats_document_carries_governor_and_validates(
        self, workload, tmp_path
    ):
        result = run_real_join(
            "grace", workload, str(tmp_path / "db"), use_processes=False,
            mem_budget=TIGHT_MEM, on_pressure="degrade",
        )
        document = result.stats_document(workload)
        assert schema_problems(document) == []
        governor = document["totals"]["governor"]
        assert governor["degradations_total"] == result.degradations_total
        assert governor["budgets"]["mem_budget_bytes"] == TIGHT_MEM
        assert governor["plan"]["batch_records"] >= 1
        counters = document["totals"]["counters"]
        assert any(
            key.startswith("runner.degradations_total")
            or governor["admission_degradations"] > 0
            for key in list(counters) + ["sentinel"]
        )

    def test_ungoverned_document_has_no_governor(self, workload, tmp_path):
        result = run_real_join(
            "grace", workload, str(tmp_path / "db"), use_processes=False
        )
        assert result.governor is None
        document = result.stats_document(workload)
        assert "governor" not in document["totals"]
        assert schema_problems(document) == []
