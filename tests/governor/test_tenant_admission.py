"""Multi-tenant admission: priorities, per-tenant caps, accounting."""

from __future__ import annotations

import threading
import time

import pytest

from repro.governor import AdmissionRejected, ResourceGovernor


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestPriorityOrdering:
    def test_higher_priority_waiter_wins_the_freed_slot(self):
        governor = ResourceGovernor(max_concurrent=1)
        holder = governor.admit()
        order = []
        started = threading.Barrier(3)

        def contender(name, priority, delay):
            started.wait()
            time.sleep(delay)  # deterministic queue arrival order
            with governor.admit("queue", tenant=name, priority=priority):
                order.append(name)
                time.sleep(0.02)

        threads = [
            threading.Thread(target=contender, args=("low", 0, 0.0)),
            threading.Thread(target=contender, args=("high", 10, 0.05)),
        ]
        for thread in threads:
            thread.start()
        started.wait()
        # Both contenders must be queued before the slot frees.
        assert _wait_until(
            lambda: governor.snapshot()["waiting"] == 2
        )
        holder.release()
        for thread in threads:
            thread.join()
        # "high" arrived later but outranks "low" for the freed slot.
        assert order == ["high", "low"]

    def test_fifo_within_one_priority(self):
        governor = ResourceGovernor(max_concurrent=1)
        holder = governor.admit()
        order = []
        arrived = []

        def contender(name):
            arrived.append(name)
            with governor.admit("queue", tenant=name, priority=0):
                order.append(name)
                time.sleep(0.01)

        threads = []
        for name in ("first", "second", "third"):
            thread = threading.Thread(target=contender, args=(name,))
            thread.start()
            # Serialize arrivals so FIFO order is well-defined.
            assert _wait_until(
                lambda n=len(threads) + 1: governor.snapshot()["waiting"] == n
            )
            threads.append(thread)
        holder.release()
        for thread in threads:
            thread.join()
        assert order == arrived

    def test_new_arrival_cannot_overtake_equal_priority_waiter(self):
        governor = ResourceGovernor(max_concurrent=1)
        holder = governor.admit()
        waiter_admitted = threading.Event()

        def waiter():
            with governor.admit("queue", tenant="patient", priority=0):
                waiter_admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert _wait_until(lambda: governor.snapshot()["waiting"] == 1)
        holder.release()
        # The slot is now logically the waiter's; an immediate same-
        # priority arrival in fail mode must not steal it.
        thread.join()
        assert waiter_admitted.is_set()


class TestTenantCaps:
    def test_tenant_cap_holds_below_global_capacity(self):
        governor = ResourceGovernor(
            max_concurrent=4, tenant_limits={"capped": 1}
        )
        first = governor.admit(tenant="capped")
        with pytest.raises(AdmissionRejected):
            governor.admit("fail", tenant="capped")
        # Other tenants are unaffected by the cap.
        other = governor.admit("fail", tenant="free")
        first.release()
        governor.admit("fail", tenant="capped").release()
        other.release()

    def test_capped_head_does_not_wedge_the_queue(self):
        governor = ResourceGovernor(
            max_concurrent=2, tenant_limits={"capped": 1}
        )
        capped_running = governor.admit(tenant="capped")
        filler = governor.admit(tenant="free")
        admitted = []

        def contender(name, tenant, priority):
            with governor.admit("queue", tenant=tenant, priority=priority):
                admitted.append(name)
                time.sleep(0.02)

        # The capped tenant queues first *and* at higher priority; the
        # free tenant behind it must still get the freed slot.
        capped_thread = threading.Thread(
            target=contender, args=("capped-2", "capped", 10)
        )
        capped_thread.start()
        assert _wait_until(lambda: governor.snapshot()["waiting"] == 1)
        free_thread = threading.Thread(
            target=contender, args=("free-2", "free", 0)
        )
        free_thread.start()
        assert _wait_until(lambda: governor.snapshot()["waiting"] == 2)

        filler.release()  # frees a global slot; "capped" is still at cap
        assert _wait_until(lambda: "free-2" in admitted)
        capped_running.release()  # now the capped waiter can go
        capped_thread.join()
        free_thread.join()
        assert set(admitted) == {"capped-2", "free-2"}

    def test_constructor_rejects_silly_limits(self):
        with pytest.raises(ValueError):
            ResourceGovernor(tenant_limits={"t": 0})


class TestTenantAccounting:
    def test_admitted_and_queued_counts(self):
        governor = ResourceGovernor(max_concurrent=1)
        with governor.admit(tenant="a"):
            pass
        holder = governor.admit(tenant="a")

        def queued():
            with governor.admit("queue", tenant="b"):
                pass

        thread = threading.Thread(target=queued)
        thread.start()
        assert _wait_until(lambda: governor.snapshot()["waiting"] == 1)
        holder.release()
        thread.join()
        tenants = governor.snapshot()["tenants"]
        assert tenants["a"] == {
            "admitted": 2, "queued": 0, "rejected": 0, "degraded": 0,
        }
        assert tenants["b"]["admitted"] == 1
        assert tenants["b"]["queued"] == 1

    def test_rejection_counts_per_tenant(self):
        governor = ResourceGovernor(max_concurrent=1)
        with governor.admit(tenant="a"):
            with pytest.raises(AdmissionRejected):
                governor.admit("fail", tenant="b")
        assert governor.snapshot()["tenants"]["b"]["rejected"] == 1

    def test_note_degraded_and_note_rejected(self):
        governor = ResourceGovernor()
        governor.note_degraded("t", 3)
        governor.note_degraded("t", 0)  # no-op
        governor.note_degraded(None, 5)  # anonymous: dropped
        governor.note_rejected("t")
        governor.note_rejected(None)  # counted globally only
        snapshot = governor.snapshot()
        assert snapshot["tenants"]["t"]["degraded"] == 3
        assert snapshot["tenants"]["t"]["rejected"] == 1
        assert snapshot["rejected_total"] == 2

    def test_anonymous_admissions_keep_old_semantics(self):
        governor = ResourceGovernor(max_concurrent=2)
        with governor.admit() as ticket:
            assert ticket.decision == "admitted"
        snapshot = governor.snapshot()
        assert snapshot["tenants"] == {}
        assert snapshot["admitted_total"] == 1
