"""The files-only budget protocol and the store disk preflight."""

import pytest

from repro.governor import (
    GOVERNOR_FILE,
    BudgetFile,
    DiskExhausted,
    disk_preflight,
    install_budgets,
    load_budgets,
    store_usage_bytes,
    sweep_budgets,
)


class TestBudgetFile:
    def test_roundtrip(self, tmp_path):
        install_budgets(tmp_path, 4096, 1 << 20)
        budgets = load_budgets(tmp_path)
        assert budgets == BudgetFile(
            worker_mem_budget_bytes=4096, disk_budget_bytes=1 << 20
        )

    def test_absent_means_none(self, tmp_path):
        assert load_budgets(tmp_path) is None

    def test_garbage_means_none(self, tmp_path):
        (tmp_path / GOVERNOR_FILE).write_text("{not json")
        assert load_budgets(tmp_path) is None

    def test_sweep(self, tmp_path):
        install_budgets(tmp_path, None, 123)
        sweep_budgets(tmp_path)
        assert load_budgets(tmp_path) is None
        sweep_budgets(tmp_path)  # idempotent


class TestStoreUsage:
    def test_counts_segments_and_tmps_only(self, tmp_path):
        disk = tmp_path / "disk0"
        disk.mkdir()
        (disk / "a.seg").write_bytes(b"x" * 100)
        (disk / "b.seg.tmp").write_bytes(b"y" * 50)
        (disk / "notes.txt").write_bytes(b"z" * 1000)  # not storage
        assert store_usage_bytes(tmp_path) == 150


class TestDiskPreflight:
    def test_no_budget_no_limit(self, tmp_path):
        disk = tmp_path / "disk0"
        disk.mkdir()
        disk_preflight(disk / "big.seg", 1 << 40)  # no budget file: passes

    def test_over_budget_raises_classified(self, tmp_path):
        disk = tmp_path / "disk0"
        disk.mkdir()
        (disk / "existing.seg").write_bytes(b"x" * 600)
        install_budgets(tmp_path, None, 1000)
        with pytest.raises(DiskExhausted) as info:
            disk_preflight(disk / "new.seg", 500)
        error = info.value
        assert error.requested == 500
        assert error.limit == 1000
        assert error.used == 600

    def test_under_budget_passes(self, tmp_path):
        disk = tmp_path / "disk0"
        disk.mkdir()
        install_budgets(tmp_path, None, 1000)
        disk_preflight(disk / "new.seg", 999)
