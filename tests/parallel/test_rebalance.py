"""Tests for per-partition rebalancing: shard geometry, executor
integration, governor interplay, and the stats-document report."""

import pytest

from repro.governor.predict import JoinPlan, predict_footprint
from repro.joins.reference import expected_checksum
from repro.obs.export import schema_problems
from repro.parallel import run_real_join
from repro.parallel.engine.rebalance import (
    REBALANCE_MAX_SHARDS,
    RebalanceError,
    _bucket_shards,
    _record_shards,
    _shard_counts,
    validate_rebalance_mode,
)
from repro.parallel.engine.task import Shard, task_slot
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hybrid-hash")


def skewed_workload(objects=2_000, seed=13):
    return generate_workload(
        WorkloadSpec(
            r_objects=objects,
            s_objects=objects,
            distribution="partition_hot",
            distribution_args={"hot_fraction": 0.5, "hot_span": 0.25},
            seed=seed,
        ),
        disks=4,
    )


class TestMode:
    def test_valid_modes(self):
        for mode in ("off", "auto", "on"):
            assert validate_rebalance_mode(mode) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(RebalanceError):
            validate_rebalance_mode("maybe")


class TestShardGeometry:
    def test_record_shards_cover_range_exactly(self):
        shards = _record_shards(1_003, 4)
        assert shards[0].lo == 0
        assert shards[-1].hi == 1_003
        for a, b in zip(shards, shards[1:]):
            assert a.hi == b.lo
        assert sum(s.hi - s.lo for s in shards) == 1_003

    def test_record_shards_drop_empty_slices(self):
        shards = _record_shards(2, 4)
        assert len(shards) == 2
        assert all(s.hi > s.lo for s in shards)
        assert [s.count for s in shards] == [2, 2]

    def test_bucket_shards_equal_depth_over_hot_histogram(self):
        # One hot bucket, fifteen dustbins: the hot bucket isolates and
        # the dustbins coalesce.
        histogram = [1000] + [10] * 15
        shards = _bucket_shards(histogram, 4)
        assert shards[0].lo == 0 and shards[-1].hi == 16
        for a, b in zip(shards, shards[1:]):
            assert a.hi == b.lo
        depths = [sum(histogram[s.lo:s.hi]) for s in shards]
        assert max(depths) == 1000  # the hot bucket rides alone

    def test_bucket_shards_refuse_single_bucket(self):
        assert _bucket_shards([500], 4) == []
        assert _bucket_shards([0, 0], 4) == []

    def test_bucket_shards_tail_rounding_pinned(self):
        # Regression: the old greedy walk cut this histogram at
        # (0,2),(2,5),(5,6) — a 300-record final shard after a
        # 300-record middle one starved the tail.  The shared global-CDF
        # walk (equal_depth_cuts) lands the middle cut at bucket 4, so
        # every shard carries 400/300 depths instead of 400/300/100+200.
        histogram = [200, 200, 100, 100, 100, 100]
        shards = _bucket_shards(histogram, 3)
        assert [(s.lo, s.hi) for s in shards] == [(0, 2), (2, 4), (4, 6)]
        depths = [sum(histogram[s.lo:s.hi]) for s in shards]
        assert depths == [400, 200, 200]

    def test_bucket_and_key_sharding_share_one_cdf(self):
        # Both shard kinds must round tails identically: the bucket walk
        # delegates to the same equal_depth_cuts helper the learned
        # partitioner uses, so a pinned histogram yields pinned cuts.
        from repro.parallel.engine.partition import equal_depth_cuts

        histogram = [1000] + [10] * 15
        cuts = equal_depth_cuts(histogram, 4)
        shards = _bucket_shards(histogram, 4)
        assert cuts == [shards[0].lo] + [s.hi for s in shards]

    def test_shard_counts_auto_proportional(self):
        counts = _shard_counts([600, 100, 100, 200], "auto", 8)
        assert counts[0] >= 2  # 2.4x the mean splits
        assert counts[1] == counts[2] == 1

    def test_shard_counts_on_forces_two(self):
        counts = _shard_counts([100, 100, 100, 100], "on", 8)
        assert all(c == 2 for c in counts)

    def test_shard_counts_capped(self):
        counts = _shard_counts([10_000, 1, 1, 1], "on", REBALANCE_MAX_SHARDS)
        assert max(counts) == REBALANCE_MAX_SHARDS

    def test_empty_partition_never_splits(self):
        assert _shard_counts([0, 300, 300, 300], "on", 8)[0] == 1

    def test_task_slots(self):
        assert task_slot(2, None) == 2
        assert task_slot(2, Shard(index=1, count=3, lo=0, hi=10)) == "2s1"


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def workload(self):
        return skewed_workload()

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_on_matches_off_and_oracle(self, workload, algorithm, tmp_path):
        identities = {}
        rebalance = {}
        for mode in ("off", "on"):
            result = run_real_join(
                algorithm,
                workload,
                str(tmp_path / mode),
                use_processes=False,
                collect_pairs=False,
                rebalance=mode,
            )
            identities[mode] = (result.pair_count, result.checksum)
            rebalance[mode] = result.rebalance
        assert identities["on"] == identities["off"]
        assert identities["off"][1] == expected_checksum(workload)
        assert not rebalance["off"]
        assert sum(r["splits"] for r in rebalance["on"].values()) > 0

    def test_scalar_matches_vector_when_sharded(self, workload, tmp_path):
        identities = set()
        for kernels in ("vector", "scalar"):
            result = run_real_join(
                "sort-merge",
                workload,
                str(tmp_path / kernels),
                use_processes=False,
                collect_pairs=False,
                kernels=kernels,
                rebalance="on",
            )
            identities.add((result.pair_count, result.checksum))
        assert len(identities) == 1

    def test_auto_shards_only_the_hot_stage(self, workload, tmp_path):
        result = run_real_join(
            "grace",
            workload,
            str(tmp_path / "auto"),
            use_processes=False,
            collect_pairs=False,
            rebalance="auto",
        )
        # The report is recorded for every capable stage even when the
        # measured ratio stays under the trigger.
        assert result.rebalance
        for report in result.rebalance.values():
            if report["splits"]:
                assert report["post_ratio"] < report["pre_ratio"]

    def test_uniform_auto_declines_to_shard(self, tmp_path):
        workload = generate_workload(
            WorkloadSpec(r_objects=1_200, s_objects=1_200, seed=3), disks=4
        )
        result = run_real_join(
            "sort-merge",
            workload,
            str(tmp_path / "db"),
            use_processes=False,
            collect_pairs=False,
            rebalance="auto",
        )
        assert all(r["splits"] == 0 for r in result.rebalance.values())


class TestStatsDocument:
    def test_rebalance_block_in_per_pass(self, tmp_path):
        workload = skewed_workload(objects=1_200)
        result = run_real_join(
            "grace",
            workload,
            str(tmp_path / "db"),
            use_processes=False,
            collect_pairs=False,
            rebalance="on",
        )
        document = result.stats_document(workload)
        assert schema_problems(document) == []
        blocks = {
            label: entry["rebalance"]
            for label, entry in document["per_pass"].items()
            if "rebalance" in entry
        }
        assert blocks
        for block in blocks.values():
            assert set(block) == {
                "axis", "splits", "tasks", "moved_records",
                "pre_ratio", "post_ratio",
            }
        assert document["meta"]["skew"] == round(workload.measured_skew(), 4)

    def test_shard_slots_in_per_worker(self, tmp_path):
        workload = skewed_workload(objects=1_200)
        result = run_real_join(
            "sort-merge",
            workload,
            str(tmp_path / "db"),
            use_processes=False,
            collect_pairs=False,
            rebalance="on",
        )
        document = result.stats_document(workload)
        slots = [
            slot
            for workers in document["per_worker"].values()
            for slot in workers
        ]
        assert any("s" in str(slot) for slot in slots)


class TestGovernor:
    def test_skew_cap_lowers_sorted_run_footprint(self):
        workload = skewed_workload()
        capped = predict_footprint(
            "sort-merge", workload, JoinPlan(rebalance="auto"), None
        )
        uncapped = predict_footprint(
            "sort-merge", workload, JoinPlan(rebalance="off"), None
        )
        assert workload.measured_skew() > 1.5
        assert capped.mem_high_water_bytes < uncapped.mem_high_water_bytes
        # Sharding moves work, not bytes.
        assert capped.disk_bytes == uncapped.disk_bytes

    def test_uniform_prediction_unchanged_by_rebalance(self):
        workload = generate_workload(
            WorkloadSpec(r_objects=1_200, s_objects=1_200, seed=3), disks=4
        )
        on = predict_footprint(
            "sort-merge", workload, JoinPlan(rebalance="auto"), None
        )
        off = predict_footprint(
            "sort-merge", workload, JoinPlan(rebalance="off"), None
        )
        assert on.mem_high_water_bytes == off.mem_high_water_bytes

    def test_ladder_turns_rebalance_on_first(self):
        plan = JoinPlan(rebalance="off")
        degraded = plan.degraded("grace")
        assert degraded is not None
        assert degraded.rebalance == "auto"
        # Only the knob changed on this rung.
        assert degraded.batch_records == plan.batch_records

    def test_governed_run_degrades_and_stays_correct(self, tmp_path):
        workload = skewed_workload(objects=4_000)
        result = run_real_join(
            "grace",
            workload,
            str(tmp_path / "db"),
            use_processes=False,
            collect_pairs=False,
            mem_budget=400_000,
            on_pressure="degrade",
            max_degradations=16,
            rebalance="off",
        )
        assert result.checksum == expected_checksum(workload)
        assert result.degradations_total >= 1
        assert result.governor["plan"]["rebalance"] == "auto"
