"""Tests for the real-mmap parallel join backend."""

import pytest

from repro.joins import verify_pairs
from repro.parallel import RealJoinError, run_real_join
from repro.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=800, s_objects=800, seed=21), disks=4
    )


class TestInlineExecution:
    @pytest.mark.parametrize(
        "algorithm", ["nested-loops", "sort-merge", "grace", "hybrid-hash"]
    )
    def test_correct_output(self, workload, algorithm, tmp_path):
        result = run_real_join(
            algorithm, workload, str(tmp_path / "db"), use_processes=False
        )
        assert verify_pairs(workload, result.pairs) == 800
        assert result.wall_ms > 0
        assert not result.used_processes or True

    def test_store_cleaned_up_by_default(self, workload, tmp_path):
        root = tmp_path / "db"
        run_real_join("grace", workload, str(root), use_processes=False)
        assert not root.exists()

    def test_keep_store_retains_files(self, workload, tmp_path):
        root = tmp_path / "db"
        run_real_join(
            "nested-loops", workload, str(root), use_processes=False,
            keep_store=True,
        )
        assert (root / "disk0" / "R.seg").exists()

    def test_pass_timings_reported(self, workload, tmp_path):
        result = run_real_join(
            "sort-merge", workload, str(tmp_path / "db"), use_processes=False
        )
        assert set(result.pass_wall_ms) == {
            "partition", "sort-runs", "merge-join"
        }

    def test_small_irun_forces_many_runs_still_correct(self, workload, tmp_path):
        result = run_real_join(
            "sort-merge", workload, str(tmp_path / "db"),
            use_processes=False, irun=17,
        )
        assert verify_pairs(workload, result.pairs) == 800

    @pytest.mark.parametrize("buckets", [1, 5])
    def test_grace_bucket_counts(self, workload, buckets, tmp_path):
        result = run_real_join(
            "grace", workload, str(tmp_path / "db"),
            use_processes=False, buckets=buckets, tsize=8,
        )
        assert verify_pairs(workload, result.pairs) == 800

    def test_unknown_algorithm_rejected(self, workload, tmp_path):
        with pytest.raises(RealJoinError):
            run_real_join("hash-loops", workload, str(tmp_path / "db"))

    def test_two_disk_workload(self, tmp_path):
        wl = generate_workload(
            WorkloadSpec(r_objects=300, s_objects=300, seed=5), disks=2
        )
        result = run_real_join(
            "nested-loops", wl, str(tmp_path / "db"), use_processes=False
        )
        assert verify_pairs(wl, result.pairs) == 300


    def test_workers_return_scalars_not_pairs(self, workload, tmp_path):
        """The zero-pickle protocol: a worker's return value is a
        (count, checksum, path) triple, never a list of pairs."""
        from repro.parallel.workers import PairResult, nested_loops_pass0
        from repro.storage.store import Store

        root = str(tmp_path / "db")
        Store(root, workload.disks).materialize(workload)
        result = nested_loops_pass0(
            (root, workload.disks, 0, workload.spec.s_objects,
             workload.spec.r_bytes)
        )
        assert isinstance(result, PairResult)
        count, checksum, path = result
        assert isinstance(count, int)
        assert isinstance(checksum, int)
        assert isinstance(path, str)

    def test_collect_pairs_off_keeps_counts_and_checksum(self, workload, tmp_path):
        kept = run_real_join(
            "grace", workload, str(tmp_path / "a"), use_processes=False
        )
        skipped = run_real_join(
            "grace", workload, str(tmp_path / "b"), use_processes=False,
            collect_pairs=False,
        )
        assert skipped.pairs is None
        assert skipped.pair_count == kept.pair_count == 800
        assert skipped.checksum == kept.checksum

    def test_pass_counts_conserve_records(self, workload, tmp_path):
        result = run_real_join(
            "nested-loops", workload, str(tmp_path / "db"), use_processes=False
        )
        assert result.pass_counts["pass0"] + result.pass_counts["pass1"] == 800
        result = run_real_join(
            "sort-merge", workload, str(tmp_path / "db2"), use_processes=False
        )
        assert result.pass_counts["partition"] == 800
        assert result.pass_counts["sort-runs"] == 800
        assert result.pass_counts["merge-join"] == 800

    def test_pass_checksums_combine_to_total(self, workload, tmp_path):
        result = run_real_join(
            "nested-loops", workload, str(tmp_path / "db"), use_processes=False
        )
        combined = sum(result.pass_checksums.values()) % (1 << 61)
        assert combined == result.checksum


class TestProcessExecution:
    def test_multiprocess_matches_inline(self, workload, tmp_path):
        inline = run_real_join(
            "grace", workload, str(tmp_path / "a"), use_processes=False
        )
        multi = run_real_join(
            "grace", workload, str(tmp_path / "b"), use_processes=True
        )
        assert sorted(inline.pairs) == sorted(multi.pairs)
        assert multi.used_processes

    def test_shared_pool_across_joins(self, workload, tmp_path):
        import multiprocessing

        with multiprocessing.Pool(processes=workload.disks) as pool:
            first = run_real_join(
                "nested-loops", workload, str(tmp_path / "a"),
                use_processes=True, pool=pool,
            )
            second = run_real_join(
                "sort-merge", workload, str(tmp_path / "b"),
                use_processes=True, pool=pool,
            )
            # the shared pool is still usable: run_real_join must not
            # close a pool it did not create
            assert pool.map(abs, [-1, -2]) == [1, 2]
        assert first.pair_count == second.pair_count == 800
