"""Fault injection and crash recovery for the real-mmap backend.

The acceptance matrix of the recovery layer: for every algorithm x pass,
inject one crash, one hang, and one torn write, and require the recovered
run to be bit-identical to a fault-free run — same pair count, same
checksum, same per-pass record counts — while still verifying against the
workload's ground-truth oracle.  Plus the failure-budget contract: when
retries are exhausted the run must raise and leave no control file, no
metrics sidecar, and no unpublished segment behind.
"""

import itertools

import pytest

from repro.joins import verify_pairs
from repro.obs.export import schema_problems
from repro.parallel import RealJoinError, run_real_join
from repro.parallel.faults import (
    ALGORITHM_TASKS,
    FAULT_KINDS,
    FAULTS_FILE,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    RetryPolicy,
)
from repro.workload import WorkloadSpec, generate_workload

R_OBJECTS = 300

# (algorithm, task) coordinates: every pass of every algorithm.
ALL_TASKS = [
    (algorithm, task)
    for algorithm, tasks in sorted(ALGORITHM_TASKS.items())
    for task in tasks
]


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=R_OBJECTS, s_objects=R_OBJECTS, seed=7),
        disks=2,
    )


@pytest.fixture(scope="module")
def baselines(workload, tmp_path_factory):
    """Fault-free reference results, one per algorithm."""
    root = tmp_path_factory.mktemp("baseline")
    results = {}
    for algorithm in sorted(ALGORITHM_TASKS):
        result = run_real_join(
            algorithm, workload, str(root / algorithm), use_processes=False
        )
        assert verify_pairs(workload, result.pairs) == R_OBJECTS
        results[algorithm] = result
    return results


def assert_no_run_artifacts(root):
    """Nothing run-scoped may outlive a join — success or failure."""
    leftovers = [
        p for p in root.rglob("*")
        if p.name == "metrics.on"
        or p.name == FAULTS_FILE
        or p.name.startswith("fault_attempt_")
        or p.name.startswith("metrics_")
        or p.name == "governor.json"
        or p.name.endswith(".seg.tmp")
    ]
    assert leftovers == [], f"run artifacts leaked: {leftovers}"


def assert_matches_baseline(result, baseline, workload):
    assert result.pair_count == baseline.pair_count
    assert result.checksum == baseline.checksum
    assert result.pass_counts == baseline.pass_counts
    assert result.pass_checksums == baseline.pass_checksums
    assert verify_pairs(workload, result.pairs) == R_OBJECTS


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            [
                FaultSpec("crash", "grace_probe", 1),
                FaultSpec(
                    "hang", "sort_merge_merge_join", 0, attempt=2, hang_s=9.0
                ),
            ]
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_parse_inline_json(self):
        plan = FaultPlan.parse(
            '{"faults": [{"kind": "crash", "task": "grace_probe",'
            ' "partition": 0}]}'
        )
        assert plan.spec_for("grace_probe", 0, 0).kind == "crash"
        assert plan.spec_for("grace_probe", 0, 1) is None
        assert plan.spec_for("grace_probe", 1, 0) is None

    def test_parse_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan.single("hang", "grace_probe", 0).to_json())
        assert FaultPlan.parse(str(path)).faults[0].kind == "hang"

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec("segfault", "grace_probe", 0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(FaultPlanError, match="non-negative"):
            FaultSpec("crash", "grace_probe", -1)

    def test_malformed_json_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("{not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"faults": "nope"}')
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"faults": [{"kind": "crash"}]}')

    def test_crash_every_pass_covers_all_tasks(self):
        for algorithm, tasks in ALGORITHM_TASKS.items():
            plan = FaultPlan.crash_every_pass(algorithm)
            assert tuple(s.task for s in plan.faults) == tasks
        with pytest.raises(FaultPlanError, match="unknown algorithm"):
            FaultPlan.crash_every_pass("hash-loops")

    def test_retry_policy_validation(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(retries=-1)
        with pytest.raises(FaultPlanError):
            RetryPolicy(task_timeout=0)


class TestInlineRecoveryMatrix:
    """Every algorithm x pass x fault kind, recovered inline."""

    @pytest.mark.parametrize(
        "algorithm,task,kind",
        [
            (algorithm, task, kind)
            for (algorithm, task), kind in itertools.product(
                ALL_TASKS, FAULT_KINDS
            )
        ],
    )
    def test_recovers_bit_identical(
        self, workload, baselines, algorithm, task, kind, tmp_path
    ):
        root = tmp_path / "db"
        result = run_real_join(
            algorithm, workload, str(root), use_processes=False,
            fault_plan=FaultPlan.single(kind, task, partition=0),
        )
        assert_matches_baseline(result, baselines[algorithm], workload)
        if kind in ("disk-full", "mem-pressure"):
            # Resource pressure is deterministic under the same plan, so
            # it is never retried — the runner degrades the plan instead.
            assert result.retries_total == 0
            assert result.degradations_total >= 1
        else:
            assert result.retries_total >= 1
        if kind == "hang":
            assert result.timeouts_total >= 1
        assert not root.exists()

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHM_TASKS))
    def test_crash_in_every_pass_still_recovers(
        self, workload, baselines, algorithm, tmp_path
    ):
        """The issue's headline acceptance: one worker dies in *every*
        pass and the join still completes bit-identically."""
        result = run_real_join(
            algorithm, workload, str(tmp_path / "db"), use_processes=False,
            fault_plan=FaultPlan.crash_every_pass(algorithm),
        )
        assert_matches_baseline(result, baselines[algorithm], workload)
        assert result.retries_total >= len(ALGORITHM_TASKS[algorithm])

    def test_second_attempt_fault_also_recovered(self, workload, baselines, tmp_path):
        plan = FaultPlan(
            [
                FaultSpec("crash", "grace_probe", 0, attempt=0),
                FaultSpec("torn-write", "grace_probe", 0, attempt=1),
            ]
        )
        result = run_real_join(
            "grace", workload, str(tmp_path / "db"), use_processes=False,
            fault_plan=plan,
        )
        assert_matches_baseline(result, baselines["grace"], workload)
        assert result.retries_total >= 2

    def test_no_artifacts_after_faulted_run(self, workload, tmp_path):
        root = tmp_path / "db"
        run_real_join(
            "grace", workload, str(root), use_processes=False,
            keep_store=True,
            fault_plan=FaultPlan.single("crash", "grace_partition", 0),
        )
        assert (root / "disk0" / "R.seg").exists()
        assert_no_run_artifacts(root)


class TestRetryExhaustion:
    def exhausting_plan(self, task, retries):
        return FaultPlan(
            [
                FaultSpec("crash", task, 0, attempt=attempt)
                for attempt in range(retries + 1)
            ]
        )

    def test_raises_after_budget(self, workload, tmp_path):
        root = tmp_path / "db"
        with pytest.raises(RealJoinError, match="failed"):
            run_real_join(
                "grace", workload, str(root), use_processes=False,
                retries=2, keep_store=True,
                fault_plan=self.exhausting_plan("grace_probe", retries=2),
            )
        # The store survives (keep_store) but nothing run-scoped does.
        assert (root / "disk0" / "R.seg").exists()
        assert_no_run_artifacts(root)

    def test_destroys_store_by_default_on_failure(self, workload, tmp_path):
        root = tmp_path / "db"
        with pytest.raises(RealJoinError):
            run_real_join(
                "grace", workload, str(root), use_processes=False,
                retries=0,
                fault_plan=self.exhausting_plan("grace_partition", retries=0),
            )
        assert not root.exists()

    def test_zero_retries_fails_fast(self, workload, tmp_path):
        with pytest.raises(RealJoinError):
            run_real_join(
                "grace", workload, str(tmp_path / "db"), use_processes=False,
                retries=0,
                fault_plan=FaultPlan.single("crash", "grace_probe", 0),
            )


class TestRecoveryObservability:
    def test_stats_document_reports_recovery(self, workload, tmp_path):
        result = run_real_join(
            "sort-merge", workload, str(tmp_path / "db"), use_processes=False,
            fault_plan=FaultPlan.single("crash", "sort_merge_merge_join", 0),
        )
        document = result.stats_document(workload)
        assert schema_problems(document) == []
        recovery = document["totals"]["recovery"]
        assert recovery["retries"] == result.retries_total >= 1
        retry_counters = {
            key: value
            for key, value in document["totals"]["counters"].items()
            if key.startswith("runner.retries_total")
        }
        assert sum(retry_counters.values()) == result.retries_total

    def test_fault_free_run_reports_zero_recovery(self, workload, tmp_path):
        result = run_real_join(
            "grace", workload, str(tmp_path / "db"), use_processes=False
        )
        assert result.retries_total == 0
        assert result.timeouts_total == 0
        assert result.inline_fallbacks == 0
        document = result.stats_document(workload)
        assert document["totals"]["recovery"] == {
            "retries": 0, "timeouts": 0, "inline_fallbacks": 0
        }
        assert not any(
            key.startswith("runner.")
            for key in document["totals"]["counters"]
        )


class TestProcessRecovery:
    """Real process deaths: the pool-mode dispatch path.

    Crash detection in pool mode is by task timeout (a dead worker's
    result simply never arrives), so these runs each pay one timeout
    wait for the killed partition.
    """

    def test_pool_crash_recovered(self, workload, baselines, tmp_path):
        result = run_real_join(
            "grace", workload, str(tmp_path / "db"), use_processes=True,
            task_timeout=3.0, retries=2,
            fault_plan=FaultPlan.single("crash", "grace_probe", 0),
        )
        assert_matches_baseline(result, baselines["grace"], workload)
        assert result.retries_total >= 1
        assert result.timeouts_total >= 1

    def test_pool_hang_recovered(self, workload, baselines, tmp_path):
        plan = FaultPlan.single(
            "hang", "nested_loops_pass0", 0, hang_s=60.0
        )
        result = run_real_join(
            "nested-loops", workload, str(tmp_path / "db"),
            use_processes=True, task_timeout=2.0, retries=2,
            fault_plan=plan,
        )
        assert_matches_baseline(result, baselines["nested-loops"], workload)
        assert result.timeouts_total >= 1

    def test_pool_torn_write_recovered(self, workload, baselines, tmp_path):
        root = tmp_path / "db"
        result = run_real_join(
            "sort-merge", workload, str(root), use_processes=True,
            task_timeout=3.0, retries=2, keep_store=True,
            fault_plan=FaultPlan.single(
                "torn-write", "sort_merge_partition", 0
            ),
        )
        assert_matches_baseline(result, baselines["sort-merge"], workload)
        assert_no_run_artifacts(root)
