"""Crash → resume proofs for the pass-level checkpoint machinery.

The contract under test (docs/architecture.md, "Failure model"): a run
killed after at least one stage barrier leaves a manifest from which
``resume=True`` replays the completed passes and produces output
bit-identical to an uninterrupted run — for all four algorithms.  A
corrupt artifact costs exactly the stages from its producer onward; a
rotten base relation or a wrong identity costs the whole manifest.
"""

from __future__ import annotations

import json

import pytest

from repro.parallel.engine.checkpoint import (
    load_manifest,
    manifest_path,
)
from repro.parallel.engine.executor import RealJoinError
from repro.parallel.faults import (
    ALGORITHM_TASKS,
    FaultPlan,
    flip_payload_bit,
)
from repro.parallel.runner import REAL_ALGORITHMS, run_real_join
from repro.workload.generator import WorkloadSpec, generate_workload

SCALE = 0.02
DISKS = 2


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec.paper_validation(scale=SCALE, seed=17)
    return generate_workload(spec, DISKS)


def crash_last_pass(algorithm: str) -> FaultPlan:
    """A fault plan that kills the final pass's partition-0 task forever."""
    task = ALGORITHM_TASKS[algorithm][-1]
    return FaultPlan.parse(json.dumps({
        "faults": [
            {"kind": "crash", "task": task, "partition": 0, "attempt": a}
            for a in range(4)
        ]
    }))


def run_to_crash(algorithm, workload, root) -> None:
    """Run until the injected crash wins; earlier passes checkpoint."""
    with pytest.raises(RealJoinError):
        run_real_join(
            algorithm,
            workload,
            str(root),
            use_processes=False,
            keep_store=True,
            collect_pairs=False,
            retries=0,
            fallback_inline=False,
            fault_plan=crash_last_pass(algorithm),
        )


@pytest.mark.parametrize("algorithm", sorted(REAL_ALGORITHMS))
def test_resume_after_crash_is_bit_identical(algorithm, workload, tmp_path):
    baseline = run_real_join(
        algorithm, workload, str(tmp_path / "baseline"),
        use_processes=False, collect_pairs=False,
    )
    store = tmp_path / "crashed"
    run_to_crash(algorithm, workload, store)
    manifest = load_manifest(store)
    assert manifest is not None and len(manifest["stages"]) >= 1
    resumed = run_real_join(
        algorithm, workload, str(store),
        use_processes=False, keep_store=True, collect_pairs=False,
        resume=True,
    )
    assert resumed.resume["resumed"] is True
    assert resumed.resume["passes_skipped"] >= 1
    assert resumed.pair_count == baseline.pair_count
    assert resumed.checksum == baseline.checksum
    # A completed run retires its manifest: nothing left to resume from.
    assert not manifest_path(store).exists()


def test_corrupt_stage_artifact_reruns_only_its_producer(workload, tmp_path):
    """Sort-merge has three passes; rotting a *late* artifact must keep
    the early passes' checkpoint credit."""
    algorithm = "sort-merge"
    baseline = run_real_join(
        algorithm, workload, str(tmp_path / "baseline"),
        use_processes=False, collect_pairs=False,
    )
    store = tmp_path / "crashed"
    run_to_crash(algorithm, workload, store)
    manifest = load_manifest(store)
    assert len(manifest["stages"]) == 2  # partition + runs checkpointed
    victim = manifest["stages"][-1]["artifacts"][0]["path"]
    flip_payload_bit(store / victim, record=0, bit=5)
    resumed = run_real_join(
        algorithm, workload, str(store),
        use_processes=False, keep_store=True, collect_pairs=False,
        resume=True,
    )
    # The first pass survived; the corrupt pass (and the join after it)
    # re-ran.  Detection is visible in the scrub-failure count.
    assert resumed.resume["resumed"] is True
    assert resumed.resume["passes_skipped"] == 1
    assert resumed.integrity["scrub_failures"] >= 1
    assert resumed.pair_count == baseline.pair_count
    assert resumed.checksum == baseline.checksum


def test_rotten_base_relation_declines_the_whole_manifest(workload, tmp_path):
    algorithm = "grace"
    baseline = run_real_join(
        algorithm, workload, str(tmp_path / "baseline"),
        use_processes=False, collect_pairs=False,
    )
    store = tmp_path / "crashed"
    run_to_crash(algorithm, workload, store)
    flip_payload_bit(store / "disk0" / "R.seg", record=3, bit=1)
    resumed = run_real_join(
        algorithm, workload, str(store),
        use_processes=False, keep_store=True, collect_pairs=False,
        resume=True,
    )
    assert resumed.resume["requested"] is True
    assert resumed.resume["resumed"] is False
    assert "scrub" in (resumed.resume["reason"] or "")
    # The fresh run re-materialized and still answers correctly.
    assert resumed.pair_count == baseline.pair_count
    assert resumed.checksum == baseline.checksum


def test_manifest_for_another_algorithm_is_declined(workload, tmp_path):
    store = tmp_path / "crashed"
    run_to_crash("grace", workload, store)
    baseline = run_real_join(
        "sort-merge", workload, str(tmp_path / "baseline"),
        use_processes=False, collect_pairs=False,
    )
    resumed = run_real_join(
        "sort-merge", workload, str(store),
        use_processes=False, keep_store=True, collect_pairs=False,
        resume=True,
    )
    assert resumed.resume["resumed"] is False
    assert "algorithm" in (resumed.resume["reason"] or "")
    assert resumed.pair_count == baseline.pair_count
    assert resumed.checksum == baseline.checksum
