"""The partitioner layer: registry contracts, scalar/vector agreement,
partition completeness, the learned CDF's skew bound, fit-state
lifecycle, and end-to-end bit-identity for the two new pass plans."""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.pointer import PointerMap
from repro.governor.predict import JoinPlan
from repro.joins.reference import expected_checksum
from repro.parallel import run_real_join
from repro.parallel.engine.partition import (
    RADIX_FANOUT,
    HashPartitioner,
    LearnedPartitioner,
    PartitionerError,
    cdf_quantiles,
    equal_depth_cuts,
    install_partitioner_state,
    load_partitioner_state,
    partition_scratch_bytes,
    partitioner_class,
    partitioner_names,
    radix_order,
    radix_shift,
    resolve_partitioner,
    sweep_partitioner_state,
)
from repro.parallel.engine.stages import PARTITIONER_NAMES, algorithms
from repro.workload import WorkloadSpec, generate_workload
from repro.workload.distributions import zipf_pointers

import random


# A synthetic partition geometry plus located records: hypothesis draws
# the sizes and buckets; the offsets stride the partitions so every
# boundary case (offset 0, last offset, single-record partitions) shows
# up without a storage stack in the loop.
geometries = st.tuples(
    st.lists(st.integers(min_value=1, max_value=5_000), min_size=1, max_size=4),
    st.integers(min_value=1, max_value=2 * RADIX_FANOUT),
    st.integers(min_value=0, max_value=2**31),
)


def located_records(part_sizes, count, seed):
    """Deterministic (target, offset, rid) triples covering the geometry."""
    rng = random.Random(seed)
    records = []
    for rid in range(count):
        target = rng.randrange(len(part_sizes))
        offset = rng.randrange(part_sizes[target])
        records.append((target, offset, rid))
    return records


def build(name, part_sizes, buckets, records):
    cls = partitioner_class(name)
    if not cls.requires_fit:
        return cls(part_sizes, buckets)
    samples = [[] for _ in part_sizes]
    for target, offset, _ in records:
        samples[target].append(offset)
    return cls(part_sizes, buckets, cls.fit(samples, buckets))


class TestRegistry:
    def test_names_match_stage_validation(self):
        # stages.py validates PartitionStage.partitioner against
        # PARTITIONER_NAMES without importing this layer; the registry
        # must agree or a plan could validate but fail to resolve.
        assert partitioner_names() == PARTITIONER_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(PartitionerError):
            partitioner_class("quadratic")

    def test_new_plans_registered(self):
        assert "grace-radix" in algorithms()
        assert "grace-learned" in algorithms()


class TestProperties:
    @pytest.mark.parametrize("name", PARTITIONER_NAMES)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(geometry=geometries)
    def test_complete_and_scalar_equals_vector(self, name, geometry):
        part_sizes, buckets, seed = geometry
        records = located_records(part_sizes, 200, seed)
        part = build(name, part_sizes, buckets, records)

        scalar = [part.bucket_of(t, o, r) for t, o, r in records]
        # Partition completeness: every record lands in a legal bucket —
        # nothing lost past the fan-out, nothing duplicated (one bucket
        # per record by construction of the scalar path).
        assert all(0 <= b < buckets for b in scalar)

        parts = np.asarray([t for t, _, _ in records], dtype=np.int64)
        offs = np.asarray([o for _, o, _ in records], dtype=np.uint64)
        rids = np.asarray([r for _, _, r in records], dtype=np.uint64)
        vector = part.bucket_array(parts, offs, rids)
        assert vector.tolist() == scalar

    @pytest.mark.parametrize("name", PARTITIONER_NAMES)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(geometry=geometries)
    def test_order_is_stable_bucket_sort(self, name, geometry):
        part_sizes, buckets, seed = geometry
        records = located_records(part_sizes, 150, seed)
        part = build(name, part_sizes, buckets, records)
        parts = np.asarray([t for t, _, _ in records], dtype=np.int64)
        offs = np.asarray([o for _, o, _ in records], dtype=np.uint64)
        rids = np.asarray([r for _, _, r in records], dtype=np.uint64)
        bucket = part.bucket_array(parts, offs, rids)
        order = part.order(bucket)
        # A permutation that groups buckets contiguously and preserves
        # arrival order inside each bucket — exactly a stable sort.
        assert sorted(order.tolist()) == list(range(len(records)))
        expected = np.argsort(bucket, kind="stable")
        assert order.tolist() == expected.tolist()

    @settings(max_examples=50, deadline=None)
    @given(
        part_size=st.integers(min_value=1, max_value=1 << 40),
        buckets=st.integers(min_value=1, max_value=4_096),
    )
    def test_radix_shift_minimal_and_monotone(self, part_size, buckets):
        shift = radix_shift(part_size, buckets)
        assert (part_size - 1) >> shift < buckets
        if shift:
            assert (part_size - 1) >> (shift - 1) >= buckets

    def test_radix_order_multi_pass_matches_argsort(self):
        rng = np.random.default_rng(7)
        buckets = 3 * RADIX_FANOUT + 11  # forces two digit passes
        bucket = rng.integers(0, buckets, size=2_000, dtype=np.uint64)
        expected = np.argsort(bucket, kind="stable")
        assert radix_order(bucket, buckets).tolist() == expected.tolist()


class TestCdfHelpers:
    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(st.integers(min_value=0, max_value=1_000),
                         min_size=2, max_size=64),
        count=st.integers(min_value=2, max_value=8),
    )
    def test_cuts_cover_and_increase(self, weights, count):
        cuts = equal_depth_cuts(weights, count)
        assert cuts[0] == 0 and cuts[-1] == len(weights)
        assert all(a < b for a, b in zip(cuts, cuts[1:]))
        assert len(cuts) <= count + 1

    def test_quantiles_keep_duplicates(self):
        # A heavy hitter spanning several quantiles must repeat — the
        # learned partitioner reads the span as the spread width.
        samples = sorted([5] * 80 + list(range(20)))
        bounds = cdf_quantiles(samples, 10)
        assert bounds.count(5) >= 6


class TestLearnedSkew:
    def zipf_offsets(self, theta=1.0, objects=4_096, disks=4, count=16_384):
        rng = random.Random(96)
        pmap = PointerMap(s_objects=objects, partitions=disks)
        sptrs = zipf_pointers(rng, count, objects, theta=theta)
        samples = [[] for _ in range(disks)]
        for target, offset in pmap.locate_many(sptrs):
            samples[target].append(offset)
        sizes = [pmap.partition_size(i) for i in range(disks)]
        return sizes, samples

    def depth_ratio(self, part, samples):
        """Worst per-target max/mean bucket depth under the partitioner."""
        worst = 0.0
        for target, offsets in enumerate(samples):
            if len(offsets) < part.buckets:
                continue
            depths = [0] * part.buckets
            for rid, offset in enumerate(offsets):
                depths[part.bucket_of(target, offset, rid)] += 1
            mean = len(offsets) / part.buckets
            worst = max(worst, max(depths) / mean)
        return worst

    @pytest.mark.parametrize("buckets", (16, 31))
    def test_learned_bounds_zipf_theta_one(self, buckets):
        sizes, samples = self.zipf_offsets(theta=1.0)
        learned = LearnedPartitioner(
            sizes, buckets, LearnedPartitioner.fit(samples, buckets)
        )
        assert self.depth_ratio(learned, samples) <= 1.25

    def test_learned_beats_hash_on_zipf(self):
        sizes, samples = self.zipf_offsets(theta=1.0)
        learned = LearnedPartitioner(
            sizes, 31, LearnedPartitioner.fit(samples, 31)
        )
        hash_part = HashPartitioner(sizes, 31)
        assert self.depth_ratio(learned, samples) < self.depth_ratio(
            hash_part, samples
        )


class TestStateLifecycle:
    def test_stateless_resolve_needs_no_file(self, tmp_path):
        for name in ("hash", "radix"):
            part = resolve_partitioner(tmp_path, name, [100, 100], 8)
            assert part.name == name

    def test_learned_without_state_fails_loudly(self, tmp_path):
        with pytest.raises(PartitionerError):
            resolve_partitioner(tmp_path, "learned", [100, 100], 8)

    def test_install_resolve_sweep_roundtrip(self, tmp_path):
        state = LearnedPartitioner.fit([[1, 2, 3], [4, 5, 6]], 8)
        install_partitioner_state(tmp_path, state)
        assert load_partitioner_state(tmp_path) == state
        part = resolve_partitioner(tmp_path, "learned", [100, 100], 8)
        assert part.name == "learned"
        sweep_partitioner_state(tmp_path)
        assert load_partitioner_state(tmp_path) is None
        with pytest.raises(PartitionerError):
            resolve_partitioner(tmp_path, "learned", [100, 100], 8)

    def test_mismatched_geometry_rejected(self, tmp_path):
        install_partitioner_state(
            tmp_path, LearnedPartitioner.fit([[1], [2]], 16)
        )
        with pytest.raises(PartitionerError):
            resolve_partitioner(tmp_path, "learned", [100, 100], 8)


class TestGovernorPricing:
    def test_hash_is_the_free_baseline(self):
        assert partition_scratch_bytes(
            "hash", disks=4, buckets=31, batch=512, retained=4_096
        ) == 0.0
        for name in ("radix", "learned"):
            assert partition_scratch_bytes(
                name, disks=4, buckets=31, batch=512, retained=4_096
            ) > 0.0

    def test_ladder_trades_learned_for_hash(self):
        plan = JoinPlan(buckets=31, batch_records=512)
        assert plan.effective_partitioner("grace-learned") == "learned"
        stepped = plan
        seen = set()
        for _ in range(32):
            nxt = stepped.degraded("grace-learned")
            if nxt is None:
                break
            stepped = nxt
            seen.add(stepped.effective_partitioner("grace-learned"))
        assert "hash" in seen


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(
            r_objects=1_021,
            s_objects=1_021,
            distribution="zipf",
            distribution_args={"theta": 1.0},
            seed=96,
        ),
        disks=4,
    )


class TestEndToEnd:
    @pytest.mark.parametrize("algorithm", ("grace-radix", "grace-learned"))
    def test_scalar_vector_and_oracle_agree(
        self, workload, algorithm, tmp_path
    ):
        oracle = expected_checksum(workload)
        results = {}
        for mode in ("scalar", "vector"):
            results[mode] = run_real_join(
                algorithm,
                workload,
                str(tmp_path / mode),
                use_processes=False,
                kernels=mode,
            )
        scalar, vector = results["scalar"], results["vector"]
        assert scalar.checksum == oracle
        assert vector.checksum == scalar.checksum
        assert vector.pair_count == scalar.pair_count
        assert vector.pass_checksums == scalar.pass_checksums
        assert scalar.partitioner == algorithm.split("-", 1)[1]

    def test_partitioner_flag_overrides_plan(self, workload, tmp_path):
        result = run_real_join(
            "grace",
            workload,
            str(tmp_path / "radix"),
            use_processes=False,
            partitioner="radix",
        )
        assert result.checksum == expected_checksum(workload)
        assert result.partitioner == "radix"

    def test_state_file_swept_after_run(self, workload, tmp_path):
        # Nothing of a finished run may leak: the fitted model is a
        # run-scoped control file, swept with the fault/budget markers.
        root = tmp_path / "learned"
        run_real_join(
            "grace-learned", workload, str(root), use_processes=False
        )
        assert load_partitioner_state(root) is None

    def test_stale_state_swept_at_run_start(self, workload, tmp_path):
        # A dead driver's leftover model must not leak into a stateless
        # run on the same root.
        root = tmp_path / "stale"
        root.mkdir()
        install_partitioner_state(
            root, {"name": "learned", "buckets": 31, "boundaries": []}
        )
        result = run_real_join(
            "grace", workload, str(root), use_processes=False
        )
        assert result.partitioner == "hash"
        assert load_partitioner_state(root) is None
