"""Cross-backend equivalence: real mmap backend vs simulator vs oracle.

The three execution paths — the real-``mmap`` batched backend (both
process modes), the simulated machine's :class:`PairCollector`, and the
:mod:`repro.joins.reference` oracle — must agree on pair count and on the
order-independent checksum for every algorithm.
"""

import pytest

from repro.joins import (
    JoinEnvironment,
    make_algorithm,
    verify_pairs,
)
from repro.joins.reference import expected_checksum, reference_join
from repro.model import MemoryParameters
from repro.parallel import run_real_join
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hybrid-hash")


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=700, s_objects=700, seed=33), disks=4
    )


@pytest.fixture(scope="module")
def oracle(workload):
    pairs = reference_join(workload)
    return {"count": len(pairs), "checksum": expected_checksum(workload)}


def _simulator_result(workload, algorithm):
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), 0.2, g_bytes=4096
    )
    env = JoinEnvironment(workload, memory)
    # keep_pairs=False: the simulator's PairCollector counts and checksums
    # without materializing — the mode the real backend's collect_pairs
    # knob mirrors.
    return make_algorithm(algorithm).run(env, collect_pairs=False)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("use_processes", [False, True])
def test_real_backend_matches_simulator_and_oracle(
    workload, oracle, algorithm, use_processes, tmp_path
):
    real = run_real_join(
        algorithm, workload, str(tmp_path / "db"),
        use_processes=use_processes, collect_pairs=False,
    )
    sim = _simulator_result(workload, algorithm)

    assert real.pairs is None  # collect_pairs=False materializes nothing
    assert real.pair_count == oracle["count"] == sim.pair_count
    assert real.checksum == oracle["checksum"] == sim.checksum


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_collected_pairs_match_oracle_multiset(workload, algorithm, tmp_path):
    real = run_real_join(
        algorithm, workload, str(tmp_path / "db"), use_processes=False
    )
    assert verify_pairs(workload, real.pairs) == workload.r_objects_total
    assert real.pair_count == len(real.pairs)
    assert real.checksum == expected_checksum(workload)


class TestHybridHashEquivalence:
    """The engine's proof algorithm, across the memory matrix and faults.

    The checksum is multiset-invariant, so the resident/spilled split —
    which differs between the simulator's frame-driven staging and the
    real backend's bucket-count knob, and shifts again under degradation
    — can never mask a wrong pair.
    """

    @pytest.mark.parametrize("fraction", [0.05, 0.2, 0.8])
    def test_simulator_memory_fractions_match_oracle(
        self, workload, oracle, fraction
    ):
        memory = MemoryParameters.from_fractions(
            workload.relation_parameters(), fraction, g_bytes=4096
        )
        env = JoinEnvironment(workload, memory)
        sim = make_algorithm("hybrid-hash").run(env, collect_pairs=False)
        assert sim.pair_count == oracle["count"]
        assert sim.checksum == oracle["checksum"]

    @pytest.mark.parametrize("resident_buckets", [0, 1, 4, 15])
    def test_resident_split_never_changes_the_answer(
        self, workload, oracle, resident_buckets, tmp_path
    ):
        real = run_real_join(
            "hybrid-hash", workload, str(tmp_path / "db"),
            use_processes=False, collect_pairs=False,
            resident_buckets=resident_buckets,
        )
        assert real.pair_count == oracle["count"]
        assert real.checksum == oracle["checksum"]

    def test_crashed_workers_still_bit_identical(
        self, workload, oracle, tmp_path
    ):
        from repro.parallel import FaultPlan

        real = run_real_join(
            "hybrid-hash", workload, str(tmp_path / "db"),
            use_processes=True, collect_pairs=False, task_timeout=10.0,
            fault_plan=FaultPlan.crash_every_pass("hybrid-hash", partition=0),
        )
        assert real.retries_total >= 2  # one crash recovered per pass
        assert real.pair_count == oracle["count"]
        assert real.checksum == oracle["checksum"]

    def test_tight_budget_still_bit_identical(self, workload, oracle, tmp_path):
        real = run_real_join(
            "hybrid-hash", workload, str(tmp_path / "db"),
            use_processes=False, collect_pairs=False,
            mem_budget=64 * 1024, on_pressure="degrade",
        )
        assert real.degradations_total >= 1
        assert real.pair_count == oracle["count"]
        assert real.checksum == oracle["checksum"]
