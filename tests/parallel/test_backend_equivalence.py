"""Cross-backend equivalence: real mmap backend vs simulator vs oracle.

The three execution paths — the real-``mmap`` batched backend (both
process modes), the simulated machine's :class:`PairCollector`, and the
:mod:`repro.joins.reference` oracle — must agree on pair count and on the
order-independent checksum for every algorithm.
"""

import pytest

from repro.joins import (
    JoinEnvironment,
    make_algorithm,
    verify_pairs,
)
from repro.joins.reference import expected_checksum, reference_join
from repro.model import MemoryParameters
from repro.parallel import run_real_join
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ("nested-loops", "sort-merge", "grace")


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=700, s_objects=700, seed=33), disks=4
    )


@pytest.fixture(scope="module")
def oracle(workload):
    pairs = reference_join(workload)
    return {"count": len(pairs), "checksum": expected_checksum(workload)}


def _simulator_result(workload, algorithm):
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), 0.2, g_bytes=4096
    )
    env = JoinEnvironment(workload, memory)
    # keep_pairs=False: the simulator's PairCollector counts and checksums
    # without materializing — the mode the real backend's collect_pairs
    # knob mirrors.
    return make_algorithm(algorithm).run(env, collect_pairs=False)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("use_processes", [False, True])
def test_real_backend_matches_simulator_and_oracle(
    workload, oracle, algorithm, use_processes, tmp_path
):
    real = run_real_join(
        algorithm, workload, str(tmp_path / "db"),
        use_processes=use_processes, collect_pairs=False,
    )
    sim = _simulator_result(workload, algorithm)

    assert real.pairs is None  # collect_pairs=False materializes nothing
    assert real.pair_count == oracle["count"] == sim.pair_count
    assert real.checksum == oracle["checksum"] == sim.checksum


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_collected_pairs_match_oracle_multiset(workload, algorithm, tmp_path):
    real = run_real_join(
        algorithm, workload, str(tmp_path / "db"), use_processes=False
    )
    assert verify_pairs(workload, real.pairs) == workload.r_objects_total
    assert real.pair_count == len(real.pairs)
    assert real.checksum == expected_checksum(workload)
