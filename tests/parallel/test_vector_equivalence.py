"""Scalar-vs-vector kernel equivalence: the vectorized kernels are a pure
performance substitution.

Every configuration here runs the same join twice — once with the numpy
stage kernels, once with the per-record scalar kernels — and asserts the
outputs are indistinguishable: identical pair counts, identical order-
independent checksums, identical per-pass record counts and checksums,
and (for the default plans) byte-identical segment files on disk.
"""

import filecmp
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.parallel import FaultPlan, run_real_join
from repro.workload import WorkloadSpec, generate_workload

ALGORITHMS = ("nested-loops", "sort-merge", "grace", "hybrid-hash")

#: Degradation-ladder rungs the governor can leave a plan on: each knob
#: here is a value the ladder reaches on its way to the floor, so the
#: equivalence claim covers degraded plans, not just the defaults.
RUNGS = [
    pytest.param({}, id="default-plan"),
    pytest.param({"batch_records": 64}, id="batch-floor"),
    pytest.param({"irun": 64}, id="small-runs"),
    pytest.param({"buckets": 29, "tsize": 16}, id="finer-buckets"),
    pytest.param({"resident_buckets": 0}, id="no-resident"),
]


@pytest.fixture(scope="module")
def workload():
    # Odd sizes + a second seed: single-record buckets and uneven
    # partition tails are exactly where vector/scalar drift would hide.
    return generate_workload(
        WorkloadSpec(r_objects=1021, s_objects=1021, seed=13), disks=4
    )


def run_pair(workload, algorithm, tmp_path, **kwargs):
    """The same join under both kernel modes; returns (scalar, vector)."""
    results = {}
    for mode in ("scalar", "vector"):
        results[mode] = run_real_join(
            algorithm, workload, str(tmp_path / mode), use_processes=False,
            kernels=mode, **kwargs,
        )
    return results["scalar"], results["vector"]


def assert_equivalent(scalar, vector):
    assert scalar.kernel_mode == "scalar"
    assert vector.kernel_mode == "vector"
    assert vector.pair_count == scalar.pair_count
    assert vector.checksum == scalar.checksum
    assert vector.pass_counts == scalar.pass_counts
    assert vector.pass_checksums == scalar.pass_checksums
    # Emission order, not just content: the pairs lists line up 1:1.
    assert vector.pairs == scalar.pairs


class TestKernelEquivalence:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("plan_kwargs", RUNGS)
    def test_rung_equivalence(
        self, workload, algorithm, plan_kwargs, tmp_path
    ):
        scalar, vector = run_pair(
            workload, algorithm, tmp_path, **plan_kwargs
        )
        assert_equivalent(scalar, vector)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_segment_bytes_identical(self, workload, algorithm, tmp_path):
        """The kept stores are bit-identical, file by file: same segment
        names, same bytes — headers, bucket directories, pair blocks."""
        scalar, vector = run_pair(
            workload, algorithm, tmp_path, keep_store=True
        )
        assert_equivalent(scalar, vector)
        s_root, v_root = tmp_path / "scalar", tmp_path / "vector"
        s_files = sorted(
            p.relative_to(s_root) for p in s_root.rglob("*.seg")
        )
        v_files = sorted(
            p.relative_to(v_root) for p in v_root.rglob("*.seg")
        )
        assert s_files == v_files and s_files
        for rel in s_files:
            assert filecmp.cmp(
                s_root / rel, v_root / rel, shallow=False
            ), f"{algorithm}: {rel} differs between kernel modes"

    def test_tight_memory_budget_degrades_identically(
        self, workload, tmp_path
    ):
        """Under a budget that forces the ladder down to the scalar rung,
        the degraded vector run converges to scalar-kernel output."""
        scalar, vector = run_pair(
            workload, "grace", tmp_path,
            mem_budget=64 * 1024, on_pressure="degrade",
        )
        assert vector.pair_count == scalar.pair_count
        assert vector.checksum == scalar.checksum
        # The budget drove both plans to the floor; the vector plan then
        # took one more rung — the kernel flip — and finished scalar.
        assert vector.kernel_mode == "scalar"
        assert (
            vector.governor["degradations_total"]
            == scalar.governor["degradations_total"] + 1
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_crash_recovery_equivalence(self, workload, algorithm, tmp_path):
        """A crash in every pass plus retries leaves vector output equal
        to a clean scalar run: retried vector passes overwrite torn state
        exactly like the scalar kernels do."""
        clean = run_real_join(
            algorithm, workload, str(tmp_path / "clean"),
            use_processes=False, kernels="scalar",
        )
        recovered = run_real_join(
            algorithm, workload, str(tmp_path / "faulted"),
            use_processes=False, kernels="vector",
            fault_plan=FaultPlan.crash_every_pass(algorithm), retries=2,
        )
        assert recovered.retries_total > 0
        assert recovered.pair_count == clean.pair_count
        assert recovered.checksum == clean.checksum
        assert recovered.pass_counts == clean.pass_counts
        assert recovered.pass_checksums == clean.pass_checksums
