"""The pass-pipeline engine: plan registry, dispatch edge cases, recovery.

These tests pin the engine's contracts rather than any one algorithm:
plans are validated declaratively, degenerate geometries (empty
partitions, a single disk) flow through the same executor path, and a
stage that faults on every attempt exhausts the retry budget, classifies
the failure, and leaves the store swept clean.
"""

import pytest

from repro.joins import verify_pairs
from repro.parallel import (
    ALGORITHM_TASKS,
    FaultPlan,
    FaultSpec,
    REAL_ALGORITHMS,
    RealJoinError,
    run_real_join,
)
from repro.parallel.engine.stages import (
    ConservationRule,
    PassPlan,
    PassPlanError,
    ScanJoinStage,
    algorithms,
    plan_for,
)
from repro.workload import WorkloadSpec, generate_workload


def _stage(label="scan", kernel="nested_loops_pass0", emits="pairs"):
    return ScanJoinStage(
        label=label,
        kernel=kernel,
        emits=emits,
        build_args=lambda ctx, plan, i: (ctx.store_root, ctx.disks, i),
    )


class TestPlanRegistry:
    def test_every_algorithm_has_a_plan(self):
        assert set(algorithms()) == set(REAL_ALGORITHMS)
        for algorithm in REAL_ALGORITHMS:
            plan = plan_for(algorithm)
            assert plan is not None and plan.algorithm == algorithm
            assert plan.stages  # non-empty by construction

    def test_unknown_algorithm_has_no_plan(self):
        assert plan_for("hash-loops") is None

    def test_fault_coordinates_match_plan_tasks(self):
        """faults.ALGORITHM_TASKS is static (that module must import
        without the engine) — this is the consistency pin."""
        assert set(ALGORITHM_TASKS) == set(algorithms())
        for algorithm, tasks in ALGORITHM_TASKS.items():
            assert tasks == plan_for(algorithm).tasks()

    def test_duplicate_registration_rejected(self):
        from repro.parallel.engine.stages import register_plan

        with pytest.raises(PassPlanError, match="already registered"):
            register_plan(PassPlan("nested-loops", (_stage(),)))


class TestPlanValidation:
    def test_empty_stages_rejected(self):
        with pytest.raises(PassPlanError, match="needs stages"):
            PassPlan("x", ())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(PassPlanError, match="duplicate stage label"):
            PassPlan("x", (_stage("a"), _stage("a", "nested_loops_pass1")))

    def test_unknown_emits_rejected(self):
        with pytest.raises(PassPlanError, match="emits"):
            _stage(emits="bogus")

    def test_conservation_rule_must_reference_known_stages(self):
        with pytest.raises(PassPlanError, match="unknown stage"):
            PassPlan(
                "x",
                (_stage("a"),),
                conservation=(
                    ConservationRule("pairs", (("ghost", "pairs"),)),
                ),
            )

    def test_build_args_must_lead_with_store_coordinates(self, tmp_path):
        """The (store_root, disks, partition) prefix is what lets the
        engine fan any kernel out by partition; a plan that breaks it is
        a bug caught at dispatch time, not a worker crash."""
        workload = generate_workload(
            WorkloadSpec(r_objects=40, s_objects=40, seed=3), disks=2
        )
        bad = PassPlan(
            "bad-args",
            (
                ScanJoinStage(
                    label="scan",
                    kernel="nested_loops_pass0",
                    emits="pairs",
                    build_args=lambda ctx, plan, i: (ctx.disks, i),
                ),
            ),
        )
        from repro.governor.predict import JoinPlan
        from repro.parallel.engine.executor import execute_plan

        with pytest.raises(PassPlanError, match="store_root, disks, partition"):
            execute_plan(
                bad, workload, str(tmp_path / "db"), JoinPlan(),
                use_processes=False,
            )


class TestDegenerateGeometries:
    @pytest.mark.parametrize("algorithm", sorted(REAL_ALGORITHMS))
    def test_single_partition(self, algorithm, tmp_path):
        """disks=1: no redistribution targets, no pool — every plan must
        degenerate to a local join with the full answer."""
        workload = generate_workload(
            WorkloadSpec(r_objects=120, s_objects=120, seed=11), disks=1
        )
        result = run_real_join(
            algorithm, workload, str(tmp_path / algorithm),
        )
        assert verify_pairs(workload, result.pairs) == 120

    @pytest.mark.parametrize("algorithm", sorted(REAL_ALGORITHMS))
    def test_empty_partition(self, algorithm, tmp_path):
        """More disks than R objects leaves a partition with no records;
        its stages must still run (and conserve zero) for the barrier to
        release."""
        workload = generate_workload(
            WorkloadSpec(r_objects=3, s_objects=40, seed=13), disks=4
        )
        result = run_real_join(
            algorithm, workload, str(tmp_path / algorithm),
            use_processes=False,
        )
        assert verify_pairs(workload, result.pairs) == 3


class TestRetryExhaustion:
    @pytest.fixture()
    def workload(self):
        return generate_workload(
            WorkloadSpec(r_objects=60, s_objects=60, seed=17), disks=2
        )

    def test_stage_faulting_every_attempt_exhausts_budget(
        self, workload, tmp_path
    ):
        """Pool attempts, plus the inline fallback, all crash: the engine
        must give up with a classified RealJoinError naming the stage and
        the attempt budget — and sweep the store."""
        root = tmp_path / "db"
        every_attempt = FaultPlan(
            [
                FaultSpec("crash", "grace_partition", 1, attempt=a)
                for a in range(4)  # 1 + retries pool tries, then inline
            ]
        )
        with pytest.raises(RealJoinError) as info:
            run_real_join(
                "grace", workload, str(root), use_processes=False,
                retries=2, fault_plan=every_attempt,
            )
        message = str(info.value)
        assert "grace partition" in message
        assert "grace_partition" in message
        assert "3 attempt(s)" in message
        assert not root.exists()  # swept and destroyed on failure

    def test_budget_that_survives_one_attempt_recovers(
        self, workload, tmp_path
    ):
        crash_twice = FaultPlan(
            [
                FaultSpec("crash", "grace_partition", 1, attempt=0),
                FaultSpec("crash", "grace_partition", 1, attempt=1),
            ]
        )
        result = run_real_join(
            "grace", workload, str(tmp_path / "db"), use_processes=False,
            retries=2, fault_plan=crash_twice,
        )
        assert result.retries_total >= 2
        assert verify_pairs(workload, result.pairs) == 60
