"""Mechanism-level agreement between component models and the simulator.

Beyond total elapsed time (Figure 5), the paper's component models make
*quantitative* claims about mechanisms: the Mackert–Lohman formula predicts
S-partition page faults, and the urn model predicts premature bucket-page
replacements.  These tests compare those predictions against the counters
the simulator actually accumulated.
"""

import pytest

from repro.harness.calibrate import calibrated_machine_parameters
from repro.harness.experiment import run_memory_sweep
from repro.joins import JoinEnvironment, ParallelGraceJoin
from repro.model import MemoryParameters, objects_per_page
from repro.model.urn import grace_thrashing_estimate
from repro.sim import SimConfig
from repro.sim.trace import attach_recorder
from repro.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def machine():
    return calibrated_machine_parameters(SimConfig(), accesses_per_band=200)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(WorkloadSpec.paper_validation(scale=0.1), 4)


class TestMackertLohmanAgreement:
    @pytest.mark.parametrize("fraction", [0.05, 0.1])
    def test_sproc_faults_track_ylru(self, machine, workload, fraction):
        """Measured Sproc faults within 40% of the Ylru prediction."""
        sweep = run_memory_sweep(
            "nested-loops", (fraction,), machine=machine, workload=workload
        )
        point = sweep.points[0]
        predicted_per_pair = (
            point.model_report.derived["si_faults_pass0"]
            + point.model_report.derived["si_faults_pass1"]
        )
        # One Rproc/Sproc pair per partition: the model predicts per pair.
        predicted_total = predicted_per_pair * 4

        env = JoinEnvironment(workload, MemoryParameters.from_fractions(
            workload.relation_parameters(), fraction
        ))
        from repro.joins import make_algorithm

        result = make_algorithm("nested-loops").run(env, collect_pairs=False)
        measured = sum(
            stats.faults
            for name, stats in result.stats.memory.items()
            if name.startswith("Sproc")
        )
        assert measured == pytest.approx(predicted_total, rel=0.4)

    def test_fault_ordering_matches_memory_ordering(self, machine, workload):
        """More Sproc memory, fewer Sproc faults, in model and simulator."""
        measured = []
        predicted = []
        for fraction in (0.05, 0.1, 0.2):
            sweep = run_memory_sweep(
                "nested-loops", (fraction,), machine=machine, workload=workload
            )
            point = sweep.points[0]
            predicted.append(
                point.model_report.derived["si_faults_pass0"]
                + point.model_report.derived["si_faults_pass1"]
            )
            env = JoinEnvironment(
                workload,
                MemoryParameters.from_fractions(
                    workload.relation_parameters(), fraction
                ),
            )
            from repro.joins import make_algorithm

            result = make_algorithm("nested-loops").run(env, collect_pairs=False)
            measured.append(
                sum(
                    stats.faults
                    for name, stats in result.stats.memory.items()
                    if name.startswith("Sproc")
                )
            )
        assert predicted == sorted(predicted, reverse=True)
        assert measured == sorted(measured, reverse=True)


class TestUrnModelAgreement:
    def test_premature_refaults_track_urn_estimate(self, workload):
        """Traced RS0 refaults within a factor of ~2.5 of the urn model.

        The urn model is an approximation the paper calls "reasonably
        accurate ... scope for further refinement", so the band is wide —
        the point is the right order of magnitude at a thrashing point and
        near-zero agreement at an ample one.
        """
        buckets = 40
        relations = workload.relation_parameters()
        r_per_block = objects_per_page(relations.r_bytes, 4096)
        r_ii = len(workload.r_partitions[0]) // 4  # ~|Ri,i| at uniform

        for fraction, expect_thrash in ((0.04, True), (0.5, False)):
            memory = MemoryParameters.from_fractions(relations, fraction)
            estimate = grace_thrashing_estimate(
                hashed_objects=r_ii,
                buckets=buckets,
                frames=memory.rproc_frames_for(4096),
                disks=4,
                objects_per_block=r_per_block,
                first_epoch_width=1,  # the refined estimate
            )
            env = JoinEnvironment(workload, memory)
            recorder = attach_recorder(env.rprocs[0].memory)
            ParallelGraceJoin(buckets=buckets).run(env, collect_pairs=False)
            refaults = recorder.premature_refaults("RS0")
            if expect_thrash:
                assert estimate.premature_replacements > 0
                ratio = refaults / max(estimate.premature_replacements, 1.0)
                assert 0.4 <= ratio <= 2.5, (refaults, estimate)
            else:
                assert estimate.premature_replacements == pytest.approx(0.0)
                # A handful of boundary refaults is fine; thrashing is not.
                assert refaults < 0.1 * r_ii
