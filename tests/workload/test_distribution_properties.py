"""Property tests for the pointer distributions and the generator's
distribution-aware shuffle (satellites of the rebalancing work)."""

import random
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.workload import WorkloadSpec, generate_workload
from repro.workload.distributions import (
    clustered_pointers,
    distribution_arg_names,
    partition_hot_pointers,
    permutation_pointers,
    validate_distribution_args,
    zipf_pointers,
    zipf_cumulative_weights,
)


class TestPermutationProperties:
    @given(
        count=st.integers(min_value=1, max_value=3_000),
        s_objects=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_reference_counts_within_one(self, count, s_objects, seed):
        ptrs = permutation_pointers(random.Random(seed), count, s_objects)
        assert len(ptrs) == count
        counts = Counter(ptrs)
        assert max(counts.values()) - min(counts.values()) <= 1
        # Every object below the wrap point is referenced.
        if count >= s_objects:
            assert len(counts) == s_objects


class TestPartitionHotProperties:
    @given(
        hot_fraction=st.floats(min_value=0.4, max_value=0.9),
        hot_span=st.floats(min_value=0.05, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_hot_span_over_represented(self, hot_fraction, hot_span, seed):
        s_objects = 4_000
        ptrs = partition_hot_pointers(
            random.Random(seed), 8_000, s_objects,
            hot_fraction=hot_fraction, hot_span=hot_span,
        )
        hot_limit = max(1, int(s_objects * hot_span))
        in_hot = sum(1 for p in ptrs if p < hot_limit)
        expected = hot_fraction + (1 - hot_fraction) * hot_span
        assert in_hot / len(ptrs) > expected * 0.8


class TestClusteredProperties:
    @given(
        run_length=st.integers(min_value=1, max_value=128),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_decomposes_into_sequential_runs(self, run_length, seed):
        s_objects = 2_000
        ptrs = clustered_pointers(
            random.Random(seed), 1_500, s_objects, run_length=run_length
        )
        runs = [1]
        for prev, cur in zip(ptrs, ptrs[1:]):
            if cur == (prev + 1) % s_objects:
                runs[-1] += 1
            else:
                runs.append(1)
        assert max(runs) >= min(run_length, 1_500) * 0.99
        # No run outlives its budget unless two runs happen to abut.
        assert sum(runs) == 1_500

    def test_generator_preserves_clustered_order(self):
        """Regression: the generator's shuffle must not destroy the
        locality that IS the clustered distribution."""
        workload = generate_workload(
            WorkloadSpec(
                r_objects=4_096,
                s_objects=4_096,
                distribution="clustered",
                distribution_args={"run_length": 32},
                seed=5,
            ),
            disks=4,
        )
        sequential = total = 0
        for partition in workload.r_partitions:
            ptrs = [obj.sptr for obj in partition]
            total += len(ptrs) - 1
            sequential += sum(
                1
                for prev, cur in zip(ptrs, ptrs[1:])
                if cur == (prev + 1) % workload.spec.s_objects
            )
        # With run_length=32 over partitions of 1,024 records, ~97% of
        # adjacent dereferences are sequential; a shuffle would leave
        # essentially none.
        assert sequential / total > 0.9

    def test_generator_shuffles_non_clustered(self):
        workload = generate_workload(
            WorkloadSpec(r_objects=4_096, s_objects=4_096, seed=5), disks=4
        )
        sequential = total = 0
        for partition in workload.r_partitions:
            ptrs = [obj.sptr for obj in partition]
            total += len(ptrs) - 1
            sequential += sum(
                1
                for prev, cur in zip(ptrs, ptrs[1:])
                if cur == prev + 1
            )
        assert sequential / total < 0.05


class TestZipfProperties:
    def test_theta_zero_is_uniform(self):
        ptrs = zipf_pointers(random.Random(8), 50_000, 10, theta=0.0)
        counts = Counter(ptrs)
        assert len(counts) == 10
        assert max(counts.values()) < 1.5 * min(counts.values())

    def test_huge_theta_survives_overflow(self):
        # rank ** 20000 overflows float pow; the log-space fallback keeps
        # the hottest rank at weight 1 and the tail at 0.
        ptrs = zipf_pointers(random.Random(8), 200, 5_000, theta=20_000.0)
        assert len(set(ptrs)) == 1

    def test_cumulative_weights_monotone(self):
        weights = zipf_cumulative_weights(1_000, 1.0)
        assert all(b >= a for a, b in zip(weights, weights[1:]))
        assert len(weights) == 1_000

    @given(theta=st.floats(min_value=0.5, max_value=2.0))
    @settings(max_examples=10, deadline=None)
    def test_hotter_theta_concentrates(self, theta):
        rng = random.Random(3)
        ptrs = zipf_pointers(rng, 20_000, 1_000, theta=theta)
        top = Counter(ptrs).most_common(10)
        share = sum(c for _, c in top) / len(ptrs)
        uniform_share = 10 / 1_000
        assert share > uniform_share * 3


class TestArgValidation:
    def test_arg_names(self):
        assert distribution_arg_names("uniform") == []
        assert distribution_arg_names("zipf") == ["theta"]
        assert distribution_arg_names("partition_hot") == [
            "hot_fraction", "hot_span",
        ]
        assert distribution_arg_names("clustered") == ["run_length"]

    def test_validate_accepts_known(self):
        validate_distribution_args("zipf", {"theta": 0.5})
        validate_distribution_args("uniform", {})

    def test_validate_rejects_unknown(self):
        import pytest

        from repro.workload.distributions import DistributionError

        with pytest.raises(DistributionError, match="theta"):
            validate_distribution_args("zipf", {"bogus": 1})


class TestSkewAgreement:
    def test_measured_skew_matches_partition_reference_counts(self):
        """The generator's headline skew is exactly the paper's
        definition: max partition reference count over the mean."""
        workload = generate_workload(
            WorkloadSpec(
                r_objects=4_000,
                s_objects=4_000,
                distribution="partition_hot",
                distribution_args={"hot_fraction": 0.6, "hot_span": 0.25},
                seed=11,
            ),
            disks=4,
        )
        disks = len(workload.r_partitions)
        worst = 1.0
        for partition in workload.r_partitions:
            references = [0] * disks
            for obj in partition:
                references[workload.pointer_map.partition_of(obj.sptr)] += 1
            mean = sum(references) / disks
            worst = max(worst, max(references) / mean)
        assert abs(workload.measured_skew() - worst) < 1e-9

    def test_stats_document_reports_generator_skew(self, tmp_path):
        from repro.parallel import run_real_join

        workload = generate_workload(
            WorkloadSpec(
                r_objects=1_200,
                s_objects=1_200,
                distribution="partition_hot",
                distribution_args={"hot_fraction": 0.6, "hot_span": 0.25},
                seed=11,
            ),
            disks=4,
        )
        result = run_real_join(
            "grace",
            workload,
            str(tmp_path / "db"),
            use_processes=False,
            collect_pairs=False,
        )
        document = result.stats_document(workload)
        assert document["meta"]["skew"] == round(workload.measured_skew(), 4)
