"""Tests for the pointer distributions."""

import random
from collections import Counter

import pytest

from repro.workload.distributions import (
    DistributionError,
    clustered_pointers,
    partition_hot_pointers,
    permutation_pointers,
    sampler,
    uniform_pointers,
    zipf_pointers,
)


def in_range(pointers, s_objects):
    return all(0 <= p < s_objects for p in pointers)


class TestUniform:
    def test_range_and_count(self):
        ptrs = uniform_pointers(random.Random(1), 1000, 50)
        assert len(ptrs) == 1000
        assert in_range(ptrs, 50)

    def test_roughly_even_coverage(self):
        ptrs = uniform_pointers(random.Random(1), 50_000, 10)
        counts = Counter(ptrs)
        assert max(counts.values()) < 2 * min(counts.values())


class TestPermutation:
    def test_no_duplicates_when_count_le_objects(self):
        ptrs = permutation_pointers(random.Random(1), 100, 100)
        assert len(set(ptrs)) == 100

    def test_wraps_evenly_when_count_exceeds_objects(self):
        ptrs = permutation_pointers(random.Random(1), 250, 100)
        counts = Counter(ptrs)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_range(self):
        assert in_range(permutation_pointers(random.Random(2), 300, 64), 64)


class TestZipf:
    def test_hot_objects_dominate(self):
        ptrs = zipf_pointers(random.Random(3), 20_000, 1000, theta=1.2)
        counts = Counter(ptrs)
        top_share = sum(c for _, c in counts.most_common(10)) / len(ptrs)
        assert top_share > 0.2

    def test_theta_zero_roughly_uniform(self):
        ptrs = zipf_pointers(random.Random(3), 20_000, 100, theta=0.0)
        counts = Counter(ptrs)
        assert max(counts.values()) < 3 * min(counts.values())

    def test_range(self):
        assert in_range(zipf_pointers(random.Random(4), 500, 37), 37)

    def test_rejects_negative_theta(self):
        with pytest.raises(DistributionError):
            zipf_pointers(random.Random(1), 10, 10, theta=-1.0)


class TestPartitionHot:
    def test_hot_span_receives_extra_mass(self):
        ptrs = partition_hot_pointers(
            random.Random(5), 20_000, 1000, hot_fraction=0.8, hot_span=0.25
        )
        hot_hits = sum(1 for p in ptrs if p < 250)
        assert hot_hits / len(ptrs) > 0.7

    def test_validation(self):
        rng = random.Random(1)
        with pytest.raises(DistributionError):
            partition_hot_pointers(rng, 10, 10, hot_fraction=1.5)
        with pytest.raises(DistributionError):
            partition_hot_pointers(rng, 10, 10, hot_span=0.0)


class TestClustered:
    def test_runs_are_sequential(self):
        ptrs = clustered_pointers(random.Random(6), 64, 10_000, run_length=32)
        # Within a run, consecutive pointers differ by one (mod wrap).
        diffs = [(b - a) % 10_000 for a, b in zip(ptrs, ptrs[1:])]
        assert diffs.count(1) >= 60 - 2  # all but the run boundaries

    def test_rejects_bad_run_length(self):
        with pytest.raises(DistributionError):
            clustered_pointers(random.Random(1), 10, 10, run_length=0)


class TestRegistry:
    def test_lookup_known(self):
        assert sampler("uniform") is uniform_pointers

    def test_lookup_unknown(self):
        with pytest.raises(DistributionError):
            sampler("gaussian")
