"""Tests for workload persistence."""

import numpy as np
import pytest

from repro.joins import expected_checksum
from repro.workload import (
    WorkloadIOError,
    WorkloadSpec,
    generate_workload,
    load_workload,
    save_workload,
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(
            r_objects=500,
            s_objects=400,
            distribution="zipf",
            distribution_args={"theta": 0.8},
            seed=13,
        ),
        disks=3,
    )


class TestRoundTrip:
    def test_relations_identical(self, workload, tmp_path):
        path = tmp_path / "wl.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.r_partitions == workload.r_partitions
        assert loaded.s_objects == workload.s_objects
        assert loaded.disks == workload.disks

    def test_spec_preserved(self, workload, tmp_path):
        path = tmp_path / "wl.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.spec == workload.spec

    def test_oracle_checksum_preserved(self, workload, tmp_path):
        path = tmp_path / "wl.npz"
        save_workload(workload, path)
        assert expected_checksum(load_workload(path)) == expected_checksum(workload)

    def test_pointer_map_reconstructed(self, workload, tmp_path):
        path = tmp_path / "wl.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.pointer_map.partitions == 3
        assert loaded.measured_skew() == pytest.approx(workload.measured_skew())


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadIOError):
            load_workload(tmp_path / "ghost.npz")

    def test_non_archive_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(WorkloadIOError):
            load_workload(path)

    def test_archive_without_header(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.arange(5))
        with pytest.raises(WorkloadIOError):
            load_workload(path)

    def test_corrupt_pointer_detected(self, workload, tmp_path):
        path = tmp_path / "wl.npz"
        save_workload(workload, path)
        archive = dict(np.load(path))
        bad_sptr = archive["r_sptr"].copy()
        bad_sptr[0] = 10_000_000
        archive["r_sptr"] = bad_sptr
        np.savez(path, **archive)
        with pytest.raises(WorkloadIOError, match="out-of-range"):
            load_workload(path)
