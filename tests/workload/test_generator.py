"""Tests for workload generation."""

import pytest

from repro.workload import WorkloadSpec, generate_workload


class TestWorkloadSpec:
    def test_paper_validation_full_scale(self):
        spec = WorkloadSpec.paper_validation(scale=1.0)
        assert spec.r_objects == spec.s_objects == 102_400
        assert spec.r_bytes == 128

    def test_scale_shrinks_proportionally(self):
        spec = WorkloadSpec.paper_validation(scale=0.1)
        assert spec.r_objects == 10_240

    def test_scale_floor(self):
        assert WorkloadSpec.paper_validation(scale=1e-9).r_objects == 64

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            WorkloadSpec.paper_validation(scale=0)

    def test_rejects_empty_relations(self):
        with pytest.raises(ValueError):
            WorkloadSpec(r_objects=0)


class TestGeneration:
    def test_deterministic_by_seed(self):
        a = generate_workload(WorkloadSpec(r_objects=200, s_objects=200, seed=1), 4)
        b = generate_workload(WorkloadSpec(r_objects=200, s_objects=200, seed=1), 4)
        assert a.r_partitions == b.r_partitions
        assert a.s_objects == b.s_objects

    def test_different_seeds_differ(self):
        a = generate_workload(WorkloadSpec(r_objects=200, s_objects=200, seed=1), 4)
        b = generate_workload(WorkloadSpec(r_objects=200, s_objects=200, seed=2), 4)
        assert a.r_partitions != b.r_partitions

    def test_partitions_equal_sized(self):
        wl = generate_workload(WorkloadSpec(r_objects=1000, s_objects=1000), 4)
        sizes = [len(p) for p in wl.r_partitions]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 1000

    def test_pointers_in_range(self):
        wl = generate_workload(WorkloadSpec(r_objects=500, s_objects=100), 2)
        for partition in wl.r_partitions:
            for obj in partition:
                assert 0 <= obj.sptr < 100

    def test_rids_unique(self):
        wl = generate_workload(WorkloadSpec(r_objects=500, s_objects=100), 2)
        rids = [o.rid for p in wl.r_partitions for o in p]
        assert len(set(rids)) == 500

    def test_s_objects_at_their_index(self):
        wl = generate_workload(WorkloadSpec(r_objects=100, s_objects=100), 2)
        for i, obj in enumerate(wl.s_objects):
            assert obj.sid == i

    def test_s_partition_slices(self):
        wl = generate_workload(WorkloadSpec(r_objects=100, s_objects=100), 4)
        parts = [wl.s_partition(i) for i in range(4)]
        assert [len(p) for p in parts] == [25, 25, 25, 25]
        assert [o for p in parts for o in p] == wl.s_objects

    def test_rejects_nonpositive_disks(self):
        with pytest.raises(ValueError):
            generate_workload(WorkloadSpec(r_objects=10, s_objects=10), 0)


class TestWorkloadDescription:
    def test_uniform_skew_near_one(self):
        wl = generate_workload(
            WorkloadSpec(r_objects=20_000, s_objects=20_000, seed=5), 4
        )
        assert 1.0 <= wl.measured_skew() < 1.15

    def test_hot_distribution_raises_skew(self):
        wl = generate_workload(
            WorkloadSpec(
                r_objects=20_000,
                s_objects=20_000,
                distribution="partition_hot",
                distribution_args={"hot_fraction": 0.8, "hot_span": 0.2},
                seed=5,
            ),
            4,
        )
        assert wl.measured_skew() > 1.5

    def test_relation_parameters_carry_measured_skew(self):
        wl = generate_workload(WorkloadSpec(r_objects=2000, s_objects=2000), 4)
        rel = wl.relation_parameters()
        assert rel.r_objects == 2000
        assert rel.skew == pytest.approx(wl.measured_skew())

    def test_relation_parameters_unit_skew_option(self):
        wl = generate_workload(WorkloadSpec(r_objects=2000, s_objects=2000), 4)
        assert wl.relation_parameters(measured_skew=False).skew == 1.0

    def test_expected_pairs_cover_all_r(self):
        wl = generate_workload(WorkloadSpec(r_objects=300, s_objects=300), 3)
        pairs = wl.expected_pairs()
        assert len(pairs) == 300
        assert all(sid == wl.s_objects[sid].sid for _, sid in pairs)
