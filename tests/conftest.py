"""Shared fixtures: small deterministic workloads and calibrated machines."""

from __future__ import annotations

import pytest

from repro.harness.calibrate import calibrated_machine_parameters
from repro.model import MachineParameters, MemoryParameters
from repro.sim import SimConfig
from repro.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="session")
def sim_config() -> SimConfig:
    return SimConfig()


@pytest.fixture(scope="session")
def machine() -> MachineParameters:
    """Model parameters with the paper-shaped default curves."""
    return MachineParameters()


@pytest.fixture(scope="session")
def calibrated_machine(sim_config) -> MachineParameters:
    """Model parameters whose curves were measured on the simulator."""
    return calibrated_machine_parameters(sim_config, accesses_per_band=200)


@pytest.fixture(scope="session")
def small_workload():
    """~2k objects over 4 disks — fast but large enough for real paging."""
    return generate_workload(WorkloadSpec.paper_validation(scale=0.02), disks=4)


@pytest.fixture(scope="session")
def tiny_workload():
    """~512 objects over 2 disks — the quickest correctness substrate."""
    return generate_workload(
        WorkloadSpec(r_objects=512, s_objects=512, seed=11), disks=2
    )


def memory_for(workload, fraction: float, g_bytes: int = 4096) -> MemoryParameters:
    return MemoryParameters.from_fractions(
        workload.relation_parameters(), fraction, g_bytes=g_bytes
    )


@pytest.fixture
def memory_factory():
    return memory_for
