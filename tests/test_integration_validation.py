"""Integration tests: the paper's validation story end to end.

These are the repository's load-bearing assertions — each one encodes a
*shape* from the paper's evaluation section:

* model and experiment agree for all three algorithms;
* nested loops improves monotonically with memory, then flattens once the
  inner relation is cached (Figure 5a);
* sort-merge shows a cost discontinuity where an extra merge pass starts
  (Figure 5b);
* Grace thrashes at low memory with fixed K (Figure 5c);
* Grace < sort-merge < nested loops at comparable memory.
"""

import pytest

from repro.harness.calibrate import calibrated_machine_parameters
from repro.harness.experiment import run_memory_sweep
from repro.joins import JoinEnvironment, make_algorithm
from repro.model import MemoryParameters
from repro.sim import SimConfig
from repro.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def machine():
    return calibrated_machine_parameters(SimConfig(), accesses_per_band=300)


@pytest.fixture(scope="module")
def workload_10pct():
    return generate_workload(WorkloadSpec.paper_validation(scale=0.1), disks=4)


class TestModelTracksExperiment:
    """The paper's headline claim: the model predicts the measurement."""

    @pytest.mark.parametrize(
        "algorithm,fraction,tolerance",
        [
            ("nested-loops", 0.1, 0.5),
            ("nested-loops", 0.3, 0.6),
            ("sort-merge", 0.03, 0.35),
            ("sort-merge", 0.05, 0.35),
        ],
    )
    def test_agreement(self, machine, workload_10pct, algorithm, fraction, tolerance):
        sweep = run_memory_sweep(
            algorithm,
            fractions=(fraction,),
            machine=machine,
            workload=workload_10pct,
        )
        point = sweep.points[0]
        assert abs(point.relative_error) <= tolerance, (
            f"{algorithm}@{fraction}: model {point.model_ms:.0f} vs "
            f"sim {point.sim_ms:.0f}"
        )


class TestFigure5aShape:
    def test_nested_loops_monotone_then_flat(self, machine, workload_10pct):
        sweep = run_memory_sweep(
            "nested-loops",
            fractions=(0.05, 0.1, 0.2, 0.5),
            machine=machine,
            workload=workload_10pct,
        )
        sim = sweep.sim_series
        assert all(b <= a * 1.02 for a, b in zip(sim, sim[1:]))
        assert sim[0] > 2.0 * sim[-1]  # the sweep spans a real improvement


class TestFigure5bShape:
    def test_sort_merge_discontinuity_at_extra_pass(self, machine, workload_10pct):
        sweep = run_memory_sweep(
            "sort-merge",
            fractions=(0.012, 0.02, 0.05),
            machine=machine,
            workload=workload_10pct,
        )
        npasses = [p.sim_detail["npass"] for p in sweep.points]
        assert npasses[0] > npasses[-1], "expected an NPASS step in this range"
        assert sweep.sim_series[0] > sweep.sim_series[-1]
        # The model predicts the same pass structure.
        model_npasses = [p.model_report.derived["npass"] for p in sweep.points]
        assert model_npasses[0] > model_npasses[-1]


class TestFigure5cShape:
    def test_grace_thrashing_knee_with_fixed_k(self, machine):
        # Quarter scale with fractions spanning the knee (frames vs K).
        workload = generate_workload(
            WorkloadSpec.paper_validation(scale=0.25), disks=4
        )
        sweep = run_memory_sweep(
            "grace",
            fractions=(0.04, 0.2),
            machine=machine,
            workload=workload,
        )
        low, high = sweep.points
        assert low.sim_ms > 1.5 * high.sim_ms, "thrashing knee missing"
        assert low.model_report.derived["thrashing_extra_ms"] > 0
        assert high.model_report.derived["thrashing_extra_ms"] == pytest.approx(
            0.0, abs=1.0
        )


class TestAlgorithmOrdering:
    def test_grace_then_sort_merge_then_nested_loops(self, machine, workload_10pct):
        # 0.1 is the smallest fraction at this scale where Grace's design
        # rule (bucket + referenced S-objects fit memory) actually holds;
        # below it Grace is deliberately outside its operating envelope.
        memory = MemoryParameters.from_fractions(
            workload_10pct.relation_parameters(), 0.1
        )
        elapsed = {}
        for name in ("nested-loops", "sort-merge", "grace"):
            env = JoinEnvironment(workload_10pct, memory)
            elapsed[name] = make_algorithm(name).run(
                env, collect_pairs=False
            ).elapsed_ms
        assert elapsed["grace"] < elapsed["sort-merge"] < elapsed["nested-loops"]


class TestMechanismAgreement:
    def test_sim_fault_count_close_to_mackert_lohman(self, machine, workload_10pct):
        """Pass-level: measured Sproc faults track the Ylru estimate."""
        sweep = run_memory_sweep(
            "nested-loops",
            fractions=(0.1,),
            machine=machine,
            workload=workload_10pct,
        )
        report = sweep.points[0].model_report
        predicted = (
            report.derived["si_faults_pass0"] + report.derived["si_faults_pass1"]
        )
        assert predicted > 0
