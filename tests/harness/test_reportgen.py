"""Tests for the markdown report generator."""

import pytest

from repro.harness.reportgen import ReportOptions, generate_report


@pytest.fixture(scope="module")
def report_text():
    # Tiny scales keep the full evaluation fast; the structure is what we
    # are testing here.
    options = ReportOptions(
        scale_5a=0.02,
        scale_5b=0.02,
        scale_5c=0.02,
        comparison_fractions=(0.1, 0.3),
    )
    return generate_report(options)


class TestReportStructure:
    def test_all_figures_present(self, report_text):
        for figure_id in ("Figure 1a", "Figure 1b", "Figure 5a", "Figure 5b",
                          "Figure 5c"):
            assert figure_id in report_text

    def test_markdown_tables_wellformed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_comparison_section(self, report_text):
        assert "Algorithm comparison" in report_text
        assert "winner" in report_text

    def test_series_columns_named(self, report_text):
        assert "model_ms" in report_text
        assert "experiment_ms" in report_text
        assert "dttr_ms" in report_text

    def test_verification_statement(self, report_text):
        assert "verified against the oracle" in report_text

    def test_comparison_can_be_skipped(self):
        options = ReportOptions(
            scale_5a=0.02, scale_5b=0.02, scale_5c=0.02,
            include_comparison=False,
        )
        text = generate_report(options)
        assert "Algorithm comparison" not in text
