"""Tests for table/chart rendering."""

from repro.harness.report import ascii_chart, format_table, shape_summary


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(["x", "value"], [[1, 10.0], [2, 20.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "value" in lines[0]
        assert "20.5" in lines[-1]

    def test_large_numbers_get_separators(self):
        text = format_table(["v"], [[1234567.0]])
        assert "1,234,567" in text

    def test_small_floats_keep_precision(self):
        text = format_table(["v"], [[0.025]])
        assert "0.025" in text


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart([1, 2, 3], {"model": [5, 3, 1], "exp": [6, 4, 2]})
        assert "*" in chart and "o" in chart
        assert "model" in chart and "exp" in chart

    def test_empty_series_safe(self):
        assert ascii_chart([], {}) == "(no data)"

    def test_flat_series_safe(self):
        chart = ascii_chart([1, 2], {"flat": [5, 5]})
        assert "flat" in chart


class TestShapeSummary:
    def test_reports_errors(self):
        text = shape_summary([100.0], [110.0])
        assert "9.1" in text

    def test_no_points(self):
        assert "no comparable" in shape_summary([], [])
