"""Tests for the FigureSeries container and its rendering."""

from repro.harness.figures import FigureSeries


def make_series(notes=()):
    return FigureSeries(
        figure_id="Figure 9x",
        title="demo series",
        x_label="x",
        x_values=[1.0, 2.0, 3.0],
        series={"a": [10.0, 20.0, 30.0], "b": [5.0, 5.0, 5.0]},
        notes=list(notes),
    )


class TestRender:
    def test_table_contains_all_points(self):
        text = make_series().render(chart=False)
        for value in ("10.0", "20.0", "30.0", "5.0"):
            assert value in text

    def test_title_and_id(self):
        text = make_series().render(chart=False)
        assert "Figure 9x" in text and "demo series" in text

    def test_chart_toggle(self):
        with_chart = make_series().render(chart=True)
        without = make_series().render(chart=False)
        assert len(with_chart) > len(without)

    def test_notes_appended(self):
        text = make_series(notes=["watch the knee"]).render(chart=False)
        assert "watch the knee" in text

    def test_series_lengths_consistent(self):
        figure = make_series()
        for values in figure.series.values():
            assert len(values) == len(figure.x_values)
