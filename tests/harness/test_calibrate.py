"""Tests for the calibration harness (measured machine functions)."""

import pytest

from repro.harness.calibrate import (
    calibrated_machine_parameters,
    measure_disk_curves,
    measure_mapping_curves,
)
from repro.sim import SimConfig

BANDS = (1, 400, 1600, 6400, 12800)


@pytest.fixture(scope="module")
def disk_cal():
    return measure_disk_curves(SimConfig(), band_sizes=BANDS, accesses_per_band=300)


@pytest.fixture(scope="module")
def map_cal():
    return measure_mapping_curves(SimConfig())


class TestDiskCalibration:
    def test_read_curve_monotone_in_band(self, disk_cal):
        ys = [y for _, y in disk_cal.read_samples]
        assert all(b >= a for a, b in zip(ys, ys[1:]))

    def test_write_curve_monotone_in_band(self, disk_cal):
        ys = [y for _, y in disk_cal.write_samples]
        assert all(b >= a - 0.3 for a, b in zip(ys, ys[1:]))

    def test_writes_cheaper_than_reads_at_large_bands(self, disk_cal):
        """The paper's dttw < dttr (deferred writes + elevator)."""
        assert disk_cal.dttw(12800) < disk_cal.dttr(12800)
        assert disk_cal.dttw(3200) < disk_cal.dttr(3200)

    def test_sequential_access_fast(self, disk_cal):
        assert disk_cal.dttr(1) < 0.5 * disk_cal.dttr(12800)

    def test_figure_1a_magnitudes(self, disk_cal):
        # Paper: ~6 ms sequential, ~22 ms over a 12,800-block band.
        assert disk_cal.dttr(1) == pytest.approx(6.0, rel=0.25)
        assert 14.0 <= disk_cal.dttr(12800) <= 30.0

    def test_band_exceeding_disk_rejected(self):
        with pytest.raises(ValueError):
            measure_disk_curves(
                SimConfig(), band_sizes=(1, 10**9), accesses_per_band=10
            )


class TestMappingCalibration:
    def test_cost_ordering(self, map_cal):
        for size in (400, 6400, 12800):
            assert (
                map_cal.new_map(size)
                > map_cal.open_map(size)
                > map_cal.delete_map(size)
            )

    def test_linear_growth(self, map_cal):
        small = map_cal.new_map(100)
        large = map_cal.new_map(10_000)
        assert large > 50 * small / 100 * 10  # clearly linear, not flat

    def test_fit_matches_samples(self, map_cal):
        for size, new_ms, open_ms, delete_ms in map_cal.samples:
            assert map_cal.new_map(size) == pytest.approx(new_ms, rel=0.05)
            assert map_cal.open_map(size) == pytest.approx(open_ms, rel=0.05)
            assert map_cal.delete_map(size) == pytest.approx(delete_ms, rel=0.05)


class TestCalibratedMachineParameters:
    def test_copies_cpu_constants(self):
        config = SimConfig()
        machine = calibrated_machine_parameters(config, accesses_per_band=100)
        assert machine.context_switch_ms == config.context_switch_ms
        assert machine.compare_ms == config.compare_ms
        assert machine.disks == config.disks

    def test_curves_come_from_measurement(self):
        machine = calibrated_machine_parameters(accesses_per_band=100)
        assert machine.dttr(1) < machine.dttr(12800)
