"""Tests for sweeps and figure regeneration (small scales)."""

import pytest

from repro.harness.experiment import ExperimentError, run_memory_sweep
from repro.harness.figures import FigureSeries, figure_1a, figure_1b
from repro.sim import SimConfig


@pytest.fixture(scope="module")
def nl_sweep(calibrated_machine):
    return run_memory_sweep(
        "nested-loops",
        fractions=(0.1, 0.4),
        scale=0.02,
        machine=calibrated_machine,
    )


class TestRunMemorySweep:
    def test_points_per_fraction(self, nl_sweep):
        assert nl_sweep.fractions == [0.1, 0.4]
        assert len(nl_sweep.points) == 2

    def test_join_output_verified_by_checksum(self, nl_sweep):
        # run_memory_sweep raises on a checksum mismatch; reaching here with
        # populated points means every simulated join was verified.
        assert all(p.sim_ms > 0 for p in nl_sweep.points)

    def test_model_and_sim_within_broad_agreement(self, nl_sweep):
        for point in nl_sweep.points:
            assert 0.25 <= point.model_ms / point.sim_ms <= 4.0

    def test_relative_error_definition(self, nl_sweep):
        point = nl_sweep.points[0]
        assert point.relative_error == pytest.approx(
            (point.sim_ms - point.model_ms) / point.sim_ms
        )

    def test_more_memory_not_slower_sim(self, nl_sweep):
        assert nl_sweep.points[1].sim_ms <= nl_sweep.points[0].sim_ms

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ExperimentError):
            run_memory_sweep("bitmap-join", fractions=(0.1,), scale=0.01)

    def test_empty_fractions_rejected(self):
        with pytest.raises(ExperimentError):
            run_memory_sweep("grace", fractions=(), scale=0.01)

    def test_grace_buckets_pinned_across_sweep(self, calibrated_machine):
        sweep = run_memory_sweep(
            "grace",
            fractions=(0.1, 0.3),
            scale=0.02,
            machine=calibrated_machine,
            fixed_buckets=6,
        )
        for point in sweep.points:
            assert point.model_report.derived["buckets"] == 6.0
            assert point.sim_detail["buckets"] == 6.0


class TestFigures:
    def test_figure_1a_structure(self):
        fig = figure_1a(band_sizes=(1, 800, 6400), accesses_per_band=100)
        assert isinstance(fig, FigureSeries)
        assert fig.x_values == [1, 800, 6400]
        assert set(fig.series) == {"dttr_ms", "dttw_ms"}

    def test_figure_1a_render_contains_table_and_chart(self):
        fig = figure_1a(band_sizes=(1, 800, 6400), accesses_per_band=100)
        text = fig.render()
        assert "Figure 1a" in text
        assert "dttr_ms" in text
        assert "+" in text  # chart frame

    def test_figure_1b_structure(self):
        fig = figure_1b(map_sizes_blocks=(100, 1600, 6400))
        assert set(fig.series) == {"newMap_ms", "openMap_ms", "deleteMap_ms"}
        news = fig.series["newMap_ms"]
        assert news[0] < news[-1]

    def test_render_without_chart(self):
        fig = figure_1b(map_sizes_blocks=(100, 1600))
        assert "+" not in fig.render(chart=False).splitlines()[2]
