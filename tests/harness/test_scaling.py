"""Tests for the speedup/scaleup experiment API."""

import pytest

from repro.harness.experiment import ExperimentError
from repro.harness.scaling import ScalingPoint, run_scaleup, run_speedup


@pytest.fixture(scope="module")
def speedup_result():
    # K pinned across widths so only the machine width varies; the Grace
    # design rule would otherwise shift the algorithm's regime per width.
    return run_speedup(
        "grace", disk_counts=(1, 2, 4), scale=0.02, fraction=0.2,
        accesses_per_band=100, fixed_buckets=4,
    )


@pytest.fixture(scope="module")
def scaleup_result():
    return run_scaleup(
        "grace", disk_counts=(1, 2, 4), base_scale=0.03, fraction=0.3,
        accesses_per_band=100, fixed_buckets=4,
    )


class TestSpeedup:
    def test_one_point_per_width(self, speedup_result):
        assert [p.disks for p in speedup_result.points] == [1, 2, 4]

    def test_problem_size_fixed(self, speedup_result):
        sizes = {p.r_objects for p in speedup_result.points}
        assert len(sizes) == 1

    def test_monotone_improvement(self, speedup_result):
        elapsed = [p.elapsed_ms for p in speedup_result.points]
        assert all(b < a for a, b in zip(elapsed, elapsed[1:]))

    def test_speedup_metrics(self, speedup_result):
        speedups = speedup_result.speedups()
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > 1.5

    def test_efficiency_at_most_one_ish(self, speedup_result):
        for efficiency in speedup_result.efficiencies():
            assert efficiency <= 1.15  # allow small super-linear noise

    def test_render(self, speedup_result):
        text = speedup_result.render()
        assert "speedup" in text and "grace" in text


class TestScaleup:
    def test_problem_grows_with_width(self, scaleup_result):
        sizes = [p.r_objects for p in scaleup_result.points]
        assert sizes[1] == pytest.approx(2 * sizes[0], rel=0.05)
        assert sizes[2] == pytest.approx(4 * sizes[0], rel=0.05)

    def test_elapsed_stays_within_scaleup_band(self, scaleup_result):
        # Degradation is expected (the serial setup grows with D) but
        # bounded: far from the 4x a serial machine would need.
        base = scaleup_result.base.elapsed_ms
        for point in scaleup_result.points:
            assert point.elapsed_ms < 2.0 * base

    def test_render(self, scaleup_result):
        text = scaleup_result.render()
        assert "scaleup" in text and "|R|" in text


class TestValidation:
    def test_empty_widths_rejected(self):
        with pytest.raises(ExperimentError):
            run_speedup(disk_counts=())

    def test_unsorted_widths_rejected(self):
        with pytest.raises(ExperimentError):
            run_speedup(disk_counts=(4, 2))

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ExperimentError):
            run_speedup(disk_counts=(0, 2))


class TestScalingPoint:
    def test_metrics(self):
        base = ScalingPoint(disks=1, elapsed_ms=100.0, r_objects=10)
        fast = ScalingPoint(disks=4, elapsed_ms=30.0, r_objects=10)
        assert fast.speedup_vs(base) == pytest.approx(100 / 30)
        assert fast.efficiency_vs(base) == pytest.approx(100 / 30 / 4)
