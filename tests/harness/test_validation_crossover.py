"""Tests for pass-level validation and crossover analysis."""

import pytest

from repro.harness.crossover import (
    Crossover,
    cheapest_algorithm,
    find_crossovers,
    model_cost,
)
from repro.harness.experiment import ExperimentError, MODEL_FUNCTIONS
from repro.harness.validation import PassComparison, compare_passes
from repro.joins import JoinEnvironment, make_algorithm
from repro.model import MemoryParameters, RelationParameters
from repro.workload import WorkloadSpec, generate_workload

PAPER = RelationParameters()


class TestComparePasses:
    @pytest.fixture(scope="class")
    def pair(self, calibrated_machine):
        workload = generate_workload(
            WorkloadSpec.paper_validation(scale=0.02), 4
        )
        relations = workload.relation_parameters()
        memory = MemoryParameters.from_fractions(relations, 0.1)
        report = MODEL_FUNCTIONS["grace"](calibrated_machine, relations, memory)
        env = JoinEnvironment(workload, memory)
        run = make_algorithm("grace").run(env, collect_pairs=False)
        return report, run

    def test_every_model_pass_appears(self, pair):
        report, run = pair
        validation = compare_passes(report, run)
        names = {p.name for p in validation.passes}
        assert names == {"pass0", "pass1", "probe-join"}

    def test_measured_total_matches_run(self, pair):
        report, run = pair
        validation = compare_passes(report, run)
        assert validation.measured_total_ms == pytest.approx(
            run.elapsed_ms, rel=0.02
        )

    def test_model_total_matches_report(self, pair):
        report, run = pair
        validation = compare_passes(report, run)
        assert validation.model_total_ms == pytest.approx(report.total_ms)

    def test_setup_paired_separately(self, pair):
        report, run = pair
        validation = compare_passes(report, run)
        assert validation.setup_measured_ms == pytest.approx(run.setup_ms)
        assert validation.setup_model_ms == pytest.approx(report.setup_ms)

    def test_worst_pass_and_render(self, pair):
        report, run = pair
        validation = compare_passes(report, run)
        worst = validation.worst_pass()
        assert worst.name in {"pass0", "pass1", "probe-join"}
        text = validation.render()
        assert "pass0" in text and "TOTAL" in text

    def test_unmatched_measured_pass_not_dropped(self, pair):
        report, run = pair
        run.pass_ms["mystery"] = 123.0
        validation = compare_passes(report, run)
        mystery = [p for p in validation.passes if p.name == "mystery"]
        assert mystery and mystery[0].model_ms == 0.0
        del run.pass_ms["mystery"]


class TestPassComparison:
    def test_relative_error(self):
        comparison = PassComparison(name="x", model_ms=80.0, measured_ms=100.0)
        assert comparison.relative_error == pytest.approx(0.2)

    def test_zero_measurement_has_no_error(self):
        comparison = PassComparison(name="x", model_ms=80.0, measured_ms=0.0)
        assert comparison.relative_error is None


class TestCrossovers:
    def test_nested_loops_overtakes_grace_at_high_memory(self, calibrated_machine):
        crossovers = find_crossovers(
            "nested-loops", "grace", calibrated_machine, PAPER
        )
        assert len(crossovers) >= 1
        flip = crossovers[-1]
        assert flip.cheaper_below == "grace"
        assert flip.cheaper_above == "nested-loops"
        assert 0.1 < flip.fraction < 0.5

    def test_crossover_point_really_flips_the_costs(self, calibrated_machine):
        crossovers = find_crossovers(
            "nested-loops", "grace", calibrated_machine, PAPER
        )
        flip = crossovers[-1]
        below = flip.fraction * 0.9
        above = min(0.99, flip.fraction * 1.1)
        nl_below = model_cost("nested-loops", calibrated_machine, PAPER, below)
        gr_below = model_cost("grace", calibrated_machine, PAPER, below)
        nl_above = model_cost("nested-loops", calibrated_machine, PAPER, above)
        gr_above = model_cost("grace", calibrated_machine, PAPER, above)
        assert gr_below < nl_below
        assert nl_above < gr_above

    def test_identical_algorithms_have_no_crossover(self, calibrated_machine):
        assert find_crossovers("grace", "grace", calibrated_machine, PAPER) == []

    def test_needs_two_grid_points(self, calibrated_machine):
        with pytest.raises(ExperimentError):
            find_crossovers(
                "grace", "sort-merge", calibrated_machine, PAPER,
                fractions=(0.1,),
            )

    def test_unknown_algorithm_rejected(self, calibrated_machine):
        with pytest.raises(ExperimentError):
            model_cost("bitmap-join", calibrated_machine, PAPER, 0.1)


class TestCheapestAlgorithm:
    def test_grace_cheapest_in_its_envelope(self, calibrated_machine):
        winner, costs = cheapest_algorithm(calibrated_machine, PAPER, 0.08)
        assert winner == "grace"
        assert set(costs) == {"nested-loops", "sort-merge", "grace"}

    def test_nested_loops_cheapest_when_s_cacheable(self, calibrated_machine):
        winner, _ = cheapest_algorithm(calibrated_machine, PAPER, 0.6)
        assert winner == "nested-loops"
