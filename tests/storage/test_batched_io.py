"""Tests for the batched record I/O layer (zero-copy block access)."""

import pytest

from repro.core.records import JoinedPair, RObject, SObject
from repro.storage.layout import RecordLayout
from repro.storage.relation import (
    BucketedRFile,
    PairsFile,
    RRelationFile,
    SRelationFile,
    read_pairs,
)
from repro.storage.segment import MappedSegment, META_CAPACITY, StorageError


class TestLayoutBatches:
    def test_record_struct_spans_whole_record(self):
        layout = RecordLayout(128)
        assert layout.record_struct.size == 128

    def test_pack_unpack_r_batch_roundtrip(self):
        layout = RecordLayout(128)
        objs = [RObject(i, i * 7, i * 11) for i in range(50)]
        buffer = layout.pack_r_batch(objs)
        assert len(buffer) == 50 * 128
        assert layout.unpack_r_batch(buffer) == objs

    def test_pack_unpack_s_batch_roundtrip(self):
        layout = RecordLayout(64)
        objs = [SObject(i, i + 1, i + 2) for i in range(17)]
        assert layout.unpack_s_batch(layout.pack_s_batch(objs)) == objs

    def test_batch_matches_scalar_encoding(self):
        layout = RecordLayout(128)
        objs = [RObject(3, 4, 5), RObject(6, 7, 8)]
        batch = bytes(layout.pack_r_batch(objs))
        scalar = b"".join(layout.pack_r(obj) for obj in objs)
        assert batch == scalar

    def test_minimal_record_size_batch(self):
        layout = RecordLayout(24)  # header only, zero padding
        objs = [RObject(1, 2, 3)]
        assert layout.unpack_r_batch(layout.pack_r_batch(objs)) == objs


class TestSegmentBatches:
    def _fill(self, seg, n):
        layout = seg.layout
        seg.append_batch(layout.pack_r_batch([RObject(i, i, i) for i in range(n)]))

    def test_append_batch_then_read_batch(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=10) as seg:
            self._fill(seg, 10)
            view = seg.read_batch(2, 3)
            try:
                decoded = seg.layout.unpack_r_batch(view)
            finally:
                view.release()
            assert decoded == [RObject(i, i, i) for i in (2, 3, 4)]

    def test_append_batch_returns_start_index(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=8) as seg:
            layout = seg.layout
            assert seg.append_batch(layout.pack_r_batch([RObject(0, 0, 0)])) == 0
            assert seg.append_batch(
                layout.pack_r_batch([RObject(1, 1, 1), RObject(2, 2, 2)])
            ) == 1
            assert len(seg) == 3

    def test_append_batch_overflow_rejected(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=2) as seg:
            blob = seg.layout.pack_r_batch([RObject(i, i, i) for i in range(3)])
            with pytest.raises(StorageError):
                seg.append_batch(blob)
            assert len(seg) == 0

    def test_append_batch_partial_record_rejected(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=4) as seg:
            with pytest.raises(StorageError):
                seg.append_batch(b"x" * 100)

    def test_empty_append_batch_is_noop(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=4) as seg:
            assert seg.append_batch(b"") == 0
            assert len(seg) == 0

    def test_read_batch_out_of_range_rejected(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=4) as seg:
            self._fill(seg, 2)
            with pytest.raises(StorageError):
                seg.read_batch(1, 2)

    def test_iter_batches_covers_everything(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=10) as seg:
            self._fill(seg, 10)
            decoded = []
            for view in seg.iter_batches(3):
                decoded.extend(seg.layout.unpack_r_batch(view))
                view.release()
            assert decoded == [RObject(i, i, i) for i in range(10)]

    def test_batches_visible_after_reopen(self, tmp_path):
        path = tmp_path / "a.seg"
        with MappedSegment.create(path, capacity=5) as seg:
            self._fill(seg, 5)
        with MappedSegment.open(path) as seg:
            view = seg.read_batch(0, 5)
            assert seg.layout.unpack_r_batch(view)[4] == RObject(4, 4, 4)
            view.release()

    def test_record_count_reads_header_without_mapping(self, tmp_path):
        path = tmp_path / "a.seg"
        with MappedSegment.create(path, capacity=5) as seg:
            self._fill(seg, 3)
        assert MappedSegment.record_count(path) == 3

    def test_record_count_rejects_non_segment(self, tmp_path):
        path = tmp_path / "junk.seg"
        path.write_bytes(b"nope" * 100)
        with pytest.raises(StorageError):
            MappedSegment.record_count(path)
        with pytest.raises(StorageError):
            MappedSegment.record_count(tmp_path / "ghost.seg")


class TestSegmentMeta:
    def test_meta_roundtrip(self, tmp_path):
        path = tmp_path / "a.seg"
        with MappedSegment.create(path, capacity=2) as seg:
            assert seg.read_meta() == b""
            seg.write_meta(b"hello directory")
        with MappedSegment.open(path) as seg:
            assert seg.read_meta() == b"hello directory"

    def test_meta_too_large_rejected(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=2) as seg:
            with pytest.raises(StorageError):
                seg.write_meta(b"x" * (META_CAPACITY + 1))

    def test_meta_does_not_clobber_records(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=2) as seg:
            record = bytes(range(128)) * 1
            seg.append_record(record)
            seg.write_meta(b"m" * META_CAPACITY)
            assert seg.read_record(0) == record


class TestRelationBatches:
    def test_append_many_then_iter_objects(self, tmp_path):
        objs = [RObject(i, i * 2, i * 3) for i in range(100)]
        with RRelationFile.create(tmp_path / "r.seg", 100) as rel:
            rel.append_many(objs)
            assert list(rel.iter_objects(batch_records=7)) == objs
            assert [b for b in rel.iter_object_batches(30)][0] == objs[:30]

    def test_batched_iter_matches_scalar_gets(self, tmp_path):
        objs = [RObject(i, 99 - i, i) for i in range(25)]
        with RRelationFile.create(tmp_path / "r.seg", 25) as rel:
            rel.append_many(objs)
            assert [rel.get(i) for i in range(25)] == list(rel.iter_objects())

    def test_dereference_many(self, tmp_path):
        objs = [SObject(i, i * 10, i) for i in range(40)]
        with SRelationFile.create(tmp_path / "s.seg", 40) as rel:
            rel.append_many(objs)
            offsets = [5, 0, 39, 5, 17]
            assert rel.dereference_many(offsets) == [objs[o] for o in offsets]
            assert rel.dereference_many([]) == []

    def test_dereference_many_out_of_range_rejected(self, tmp_path):
        with SRelationFile.create(tmp_path / "s.seg", 4) as rel:
            rel.append_many([SObject(0, 0, 0)])
            with pytest.raises(StorageError):
                rel.dereference_many([0, 1])
            with pytest.raises(StorageError):
                rel.dereference_many([-1])

    def test_segment_closable_after_batch_iteration(self, tmp_path):
        """Views must not leak: a closed-over mapping with exported
        buffers cannot be unmapped."""
        rel = RRelationFile.create(tmp_path / "r.seg", 10)
        rel.append_many([RObject(i, i, i) for i in range(10)])
        list(rel.iter_objects(batch_records=3))
        rel.close()  # BufferError here would mean a leaked view


class TestPairsFile:
    def test_pairs_roundtrip(self, tmp_path):
        pairs = [JoinedPair(i, i + 1, i + 2, i + 3) for i in range(30)]
        path = tmp_path / "p.seg"
        with PairsFile.create(path, 30) as pf:
            pf.append_many(pairs)
        assert read_pairs(path) == pairs

    def test_pairs_accepts_plain_tuples(self, tmp_path):
        path = tmp_path / "p.seg"
        with PairsFile.create(path, 2) as pf:
            pf.append_many([(1, 2, 3, 4), (5, 6, 7, 8)])
        loaded = read_pairs(path)
        assert loaded == [JoinedPair(1, 2, 3, 4), JoinedPair(5, 6, 7, 8)]
        assert all(isinstance(p, JoinedPair) for p in loaded)

    def test_open_rejects_wrong_record_size(self, tmp_path):
        path = tmp_path / "r.seg"
        RRelationFile.create(path, 2).close()
        with pytest.raises(StorageError):
            PairsFile.open(path)

    def test_iter_pairs_file_streams_batched(self, tmp_path):
        """The generator form: same pairs as read_pairs, never the whole
        file materialized at once (the governor's pair-collection path)."""
        import types

        from repro.storage import iter_pairs_file

        pairs = [JoinedPair(i, i + 1, i + 2, i + 3) for i in range(100)]
        path = tmp_path / "p.seg"
        with PairsFile.create(path, 100) as pf:
            pf.append_many(pairs)
        stream = iter_pairs_file(path, batch_records=7)
        assert isinstance(stream, types.GeneratorType)
        assert list(stream) == pairs
        # Odd batch sizes must not drop the tail.
        assert list(iter_pairs_file(path, batch_records=33)) == pairs
        assert read_pairs(path, batch_records=7) == pairs


class TestBucketedRFile:
    def test_bucket_roundtrip(self, tmp_path):
        path = tmp_path / "b.seg"
        groups = {
            0: [RObject(1, 1, 1)],
            2: [RObject(2, 2, 2), RObject(3, 3, 3)],
            3: [RObject(4, 4, 4)],
        }
        writer = BucketedRFile.create(path, capacity=4, buckets=5)
        try:
            for bucket in sorted(groups):
                writer.append_bucket(bucket, groups[bucket])
        finally:
            writer.close()
        with BucketedRFile.open(path) as reader:
            assert reader.buckets == 5
            assert len(reader) == 4
            for bucket in range(5):
                expected = groups.get(bucket, [])
                got = [
                    obj
                    for batch in reader.iter_bucket_batches(bucket, 2)
                    for obj in batch
                ]
                assert got == expected
                assert reader.bucket_len(bucket) == len(expected)

    def test_out_of_order_bucket_rejected(self, tmp_path):
        writer = BucketedRFile.create(tmp_path / "b.seg", 4, buckets=4)
        try:
            writer.append_bucket(2, [RObject(1, 1, 1)])
            with pytest.raises(StorageError):
                writer.append_bucket(1, [RObject(2, 2, 2)])
        finally:
            writer.close()

    def test_bucket_out_of_range_rejected(self, tmp_path):
        writer = BucketedRFile.create(tmp_path / "b.seg", 4, buckets=2)
        try:
            with pytest.raises(StorageError):
                writer.append_bucket(2, [RObject(1, 1, 1)])
        finally:
            writer.close()

    def test_open_plain_segment_rejected(self, tmp_path):
        path = tmp_path / "r.seg"
        RRelationFile.create(path, 2).close()
        with pytest.raises(StorageError):
            BucketedRFile.open(path)

    def test_too_many_buckets_for_directory_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            BucketedRFile.create(tmp_path / "b.seg", 4, buckets=100_000)
