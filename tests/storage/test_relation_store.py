"""Tests for typed relation files and the store directory."""

import pytest

from repro.core.records import RObject, SObject
from repro.storage.relation import (
    RRelationFile,
    SRelationFile,
    write_r_partition,
    write_s_partition,
)
from repro.storage.segment import StorageError
from repro.storage.store import Store
from repro.workload import WorkloadSpec, generate_workload


class TestRelationFiles:
    def test_r_roundtrip(self, tmp_path):
        objs = [RObject(i, i * 2, i * 3) for i in range(20)]
        path = tmp_path / "r.seg"
        write_r_partition(path, objs)
        with RRelationFile.open(path) as rel:
            assert len(rel) == 20
            assert list(rel) == objs
            assert rel.get(7) == objs[7]

    def test_s_dereference(self, tmp_path):
        objs = [SObject(i, i * 10, 0) for i in range(16)]
        path = tmp_path / "s.seg"
        write_s_partition(path, objs)
        with SRelationFile.open(path) as rel:
            assert rel.dereference(5).value == 50

    def test_empty_partition_files(self, tmp_path):
        write_r_partition(tmp_path / "r.seg", [])
        with RRelationFile.open(tmp_path / "r.seg") as rel:
            assert len(rel) == 0
            assert list(rel) == []


class TestStore:
    @pytest.fixture
    def workload(self):
        return generate_workload(
            WorkloadSpec(r_objects=120, s_objects=120, seed=4), disks=3
        )

    def test_creates_disk_directories(self, tmp_path):
        store = Store(tmp_path / "db", disks=3)
        for i in range(3):
            assert store.disk_dir(i).is_dir()

    def test_materialize_and_open(self, tmp_path, workload):
        store = Store(tmp_path / "db", disks=3)
        store.materialize(workload)
        with store.open_r(0) as r_rel:
            assert list(r_rel) == workload.r_partitions[0]
        with store.open_s(1) as s_rel:
            assert list(s_rel) == workload.s_partition(1)

    def test_disk_count_mismatch_rejected(self, tmp_path, workload):
        store = Store(tmp_path / "db", disks=2)
        with pytest.raises(StorageError):
            store.materialize(workload)

    def test_temp_lifecycle(self, tmp_path, workload):
        store = Store(tmp_path / "db", disks=3)
        store.materialize(workload)
        store.create_temp(0, "RP0", capacity=10, record_bytes=128)
        assert len(store.temp_paths(0)) == 1
        store.cleanup_temps()
        assert store.temp_paths(0) == []
        # Base relations survive temp cleanup.
        with store.open_r(0) as r_rel:
            assert len(r_rel) == len(workload.r_partitions[0])

    def test_destroy_removes_everything(self, tmp_path, workload):
        store = Store(tmp_path / "db", disks=3)
        store.materialize(workload)
        store.destroy()
        assert not (tmp_path / "db").exists()

    def test_bad_disk_index_rejected(self, tmp_path):
        store = Store(tmp_path / "db", disks=2)
        with pytest.raises(StorageError):
            store.disk_dir(2)

    def test_zero_disks_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            Store(tmp_path / "db", disks=0)
