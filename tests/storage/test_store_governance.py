"""Store-level governance: the live-writer orphan guard and disk preflight.

Regression for the ``cleanup_orphans`` race: a second process sweeping
"orphan" ``.seg.tmp`` files while a writer is mid-publish would delete the
writer's file out from under it.  Live tmps are now flock-held by their
writer, so the sweeper skips them; only lock-free (dead-writer) tmps go.
"""

import pytest

from repro.governor import DiskExhausted, install_budgets
from repro.storage import MappedSegment, Store


class TestCleanupOrphansLiveWriterGuard:
    def test_live_tmp_survives_cleanup(self, tmp_path):
        store = Store(str(tmp_path), disks=2)
        path = store.path(0, "LIVE0")
        writer = MappedSegment.create(str(path), capacity=4)
        tmp = path.with_suffix(path.suffix + ".tmp")
        assert tmp.exists()
        try:
            store.cleanup_orphans()
            assert tmp.exists(), "cleanup_orphans deleted a live writer's tmp"
        finally:
            writer.discard()
        assert not tmp.exists()

    def test_stale_tmp_is_swept(self, tmp_path):
        store = Store(str(tmp_path), disks=2)
        # A dead writer's leftover: a tmp with no flock holder.
        stale = tmp_path / "disk0" / "DEAD0.seg.tmp"
        stale.write_bytes(b"\x00" * 64)
        store.cleanup_orphans()
        assert not stale.exists()

    def test_live_then_published_tmp_cycle(self, tmp_path):
        """Publish releases the lock with the rename: nothing to sweep."""
        store = Store(str(tmp_path), disks=2)
        path = store.path(0, "PUB0")
        segment = MappedSegment.create(str(path), capacity=4)
        from repro.core.records import RObject

        segment.append_record(
            segment.layout.pack_r(RObject(rid=1, sptr=2, payload=3))
        )
        segment.close()
        assert path.exists()
        store.cleanup_orphans()
        assert path.exists()


class TestDiskPreflightOnCreate:
    def test_create_over_budget_raises_classified(self, tmp_path):
        store = Store(str(tmp_path), disks=2)
        install_budgets(tmp_path, None, 8192)  # one small segment fits, not two
        path0 = store.path(0, "A0")
        segment = MappedSegment.create(str(path0), capacity=4)
        segment.close()
        with pytest.raises(DiskExhausted) as info:
            MappedSegment.create(str(store.path(1, "B1")), capacity=4)
        error = info.value
        assert error.limit == 8192
        assert error.used == path0.stat().st_size
        # The refused create must not leave its own tmp behind.
        assert not any(tmp_path.rglob("*.seg.tmp"))

    def test_create_under_budget_passes(self, tmp_path):
        store = Store(str(tmp_path), disks=2)
        install_budgets(tmp_path, None, 1 << 20)
        segment = MappedSegment.create(str(store.path(0, "A0")), capacity=4)
        segment.close()

    def test_usage_bytes_tracks_reservation(self, tmp_path):
        store = Store(str(tmp_path), disks=2)
        assert store.usage_bytes() == 0
        path = store.path(0, "A0")
        segment = MappedSegment.create(str(path), capacity=4)
        tmp = path.with_suffix(path.suffix + ".tmp")
        # Truncated to full capacity at create: the tmp IS the reservation,
        # and publishing does not change it.
        reservation = tmp.stat().st_size
        assert store.usage_bytes() == reservation
        segment.close()
        assert store.usage_bytes() == reservation == path.stat().st_size
