"""Atomic segment publication and torn-segment rejection.

The crash-recovery layer's safety argument rests entirely on this file:
a created segment must be invisible until close() publishes it by atomic
rename, a discarded or crashed create must leave nothing at the final
path, and open()/record_count() must reject any file a dead writer could
have left half-written.
"""

import os

import pytest

from repro.storage.segment import (
    HEADER,
    MAGIC,
    PAGE_SIZE,
    MappedSegment,
    StorageError,
    tmp_segment_path,
)
from repro.storage.store import Store


RECORD = bytes(range(128))


class TestAtomicPublish:
    def test_created_segment_is_tmp_until_close(self, tmp_path):
        path = tmp_path / "A.seg"
        segment = MappedSegment.create(path, 4)
        try:
            assert not path.exists()
            assert tmp_segment_path(path).exists()
        finally:
            segment.close()
        assert path.exists()
        assert not tmp_segment_path(path).exists()

    def test_close_publishes_written_records(self, tmp_path):
        path = tmp_path / "A.seg"
        segment = MappedSegment.create(path, 4)
        segment.append_record(RECORD)
        segment.close()
        with MappedSegment.open(path) as reopened:
            assert len(reopened) == 1
            assert reopened.read_record(0) == RECORD

    def test_discard_publishes_nothing(self, tmp_path):
        path = tmp_path / "A.seg"
        segment = MappedSegment.create(path, 4)
        segment.append_record(RECORD)
        segment.discard()
        assert not path.exists()
        assert not tmp_segment_path(path).exists()
        segment.discard()  # idempotent

    def test_exception_inside_with_discards(self, tmp_path):
        path = tmp_path / "A.seg"
        with pytest.raises(RuntimeError, match="mid-pass death"):
            with MappedSegment.create(path, 4) as segment:
                segment.append_record(RECORD)
                raise RuntimeError("mid-pass death")
        assert not path.exists()
        assert not tmp_segment_path(path).exists()

    def test_clean_with_exit_publishes(self, tmp_path):
        path = tmp_path / "A.seg"
        with MappedSegment.create(path, 4) as segment:
            segment.append_record(RECORD)
        assert path.exists()

    def test_overwrite_false_rejects_existing(self, tmp_path):
        path = tmp_path / "A.seg"
        MappedSegment.create(path, 4).close()
        with pytest.raises(StorageError, match="already exists"):
            MappedSegment.create(path, 4)

    def test_overwrite_replaces_only_at_close(self, tmp_path):
        path = tmp_path / "A.seg"
        first = MappedSegment.create(path, 4)
        first.append_record(RECORD)
        first.close()
        second = MappedSegment.create(path, 4, overwrite=True)
        second.append_record(RECORD)
        second.append_record(RECORD)
        # Old contents stay readable until the new segment publishes.
        assert MappedSegment.record_count(path) == 1
        second.close()
        assert MappedSegment.record_count(path) == 2

    def test_overwrite_discard_keeps_old_contents(self, tmp_path):
        path = tmp_path / "A.seg"
        first = MappedSegment.create(path, 4)
        first.append_record(RECORD)
        first.close()
        retry = MappedSegment.create(path, 4, overwrite=True)
        retry.append_record(RECORD)
        retry.append_record(RECORD)
        retry.discard()
        assert MappedSegment.record_count(path) == 1

    def test_create_replaces_stale_tmp_orphan(self, tmp_path):
        path = tmp_path / "A.seg"
        tmp_segment_path(path).write_bytes(b"garbage from a dead writer")
        with MappedSegment.create(path, 4) as segment:
            segment.append_record(RECORD)
        assert MappedSegment.record_count(path) == 1

    def test_durable_close_still_publishes(self, tmp_path):
        path = tmp_path / "A.seg"
        segment = MappedSegment.create(path, 4, durable=True)
        segment.append_record(RECORD)
        segment.close()
        assert MappedSegment.record_count(path) == 1


class TestTornSegmentRejection:
    def _write(self, path, header: bytes, pad: int = 0) -> None:
        path.write_bytes(header + b"\x00" * pad)

    def test_count_beyond_capacity_rejected(self, tmp_path):
        path = tmp_path / "torn.seg"
        self._write(
            path, HEADER.pack(MAGIC, 128, 4, 977), pad=PAGE_SIZE + 4 * 128
        )
        with pytest.raises(StorageError, match="torn"):
            MappedSegment.open(path)
        with pytest.raises(StorageError, match="torn"):
            MappedSegment.record_count(path)

    def test_truncated_data_area_rejected(self, tmp_path):
        path = tmp_path / "torn.seg"
        # Header claims a 64-record data area, file ends after the header.
        self._write(path, HEADER.pack(MAGIC, 128, 64, 10), pad=PAGE_SIZE)
        with pytest.raises(StorageError, match="torn"):
            MappedSegment.open(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.seg"
        self._write(
            path, HEADER.pack(b"NOTSEG\x00\x00", 128, 4, 0), pad=PAGE_SIZE
        )
        with pytest.raises(StorageError, match="not a segment"):
            MappedSegment.open(path)

    def test_short_file_rejected(self, tmp_path):
        path = tmp_path / "short.seg"
        path.write_bytes(b"hi")
        with pytest.raises(StorageError, match="not a segment"):
            MappedSegment.open(path)
        with pytest.raises(StorageError, match="not a segment"):
            MappedSegment.record_count(path)

    def test_garbage_record_bytes_rejected(self, tmp_path):
        path = tmp_path / "torn.seg"
        self._write(path, HEADER.pack(MAGIC, 0, 4, 0), pad=PAGE_SIZE * 2)
        with pytest.raises(StorageError, match="record size"):
            MappedSegment.open(path)

    def test_intact_segment_still_accepted(self, tmp_path):
        path = tmp_path / "ok.seg"
        with MappedSegment.create(path, 4) as segment:
            segment.append_record(RECORD)
        with MappedSegment.open(path) as reopened:
            assert reopened.read_record(0) == RECORD


class TestOrphanCleanup:
    def test_cleanup_removes_only_tmp_files(self, tmp_path):
        store = Store(tmp_path / "db", 2)
        with MappedSegment.create(store.path(0, "R"), 4) as segment:
            segment.append_record(RECORD)
        orphan = tmp_segment_path(store.path(1, "RP0"))
        orphan.write_bytes(b"dead writer output")
        assert store.cleanup_orphans() == 1
        assert not orphan.exists()
        assert store.path(0, "R").exists()
        assert store.cleanup_orphans() == 0

    def test_constructor_opt_in(self, tmp_path):
        root = tmp_path / "db"
        Store(root, 1)
        orphan = tmp_segment_path(root / "disk0" / "RP0.seg")
        orphan.write_bytes(b"x")
        Store(root, 1)  # default: leaves live writers' files alone
        assert orphan.exists()
        Store(root, 1, clean_orphans=True)
        assert not orphan.exists()
