"""Tests for the persistent B-tree over the mapped store."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.btree import MAX_KEYS, BTreeError, PersistentBTree


@pytest.fixture
def tree(tmp_path):
    t = PersistentBTree.create(tmp_path / "t.btree", capacity_nodes=512)
    yield t
    t.close()


class TestBasics:
    def test_empty_tree(self, tree):
        assert len(tree) == 0
        assert tree.search(1) is None
        assert list(tree.items()) == []

    def test_insert_and_search(self, tree):
        tree.insert(5, 50)
        tree.insert(3, 30)
        assert tree.search(5) == 50
        assert tree.search(3) == 30
        assert tree.search(4) is None
        assert len(tree) == 2

    def test_update_in_place(self, tree):
        tree.insert(7, 70)
        tree.insert(7, 71)
        assert tree.search(7) == 71
        assert len(tree) == 1

    def test_contains(self, tree):
        tree.insert(9, 90)
        assert 9 in tree
        assert 10 not in tree

    def test_items_sorted(self, tree):
        for key in (9, 1, 5, 3, 7):
            tree.insert(key, key * 10)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]

    def test_range_query(self, tree):
        for key in range(0, 100, 7):
            tree.insert(key, key)
        result = [k for k, _ in tree.range(10, 50)]
        assert result == [k for k in range(0, 100, 7) if 10 <= k <= 50]

    def test_empty_range(self, tree):
        tree.insert(5, 5)
        assert list(tree.range(10, 2)) == []

    def test_rejects_oversized_values(self, tree):
        with pytest.raises(BTreeError):
            tree.insert(-1, 0)
        with pytest.raises(BTreeError):
            tree.insert(0, 2**64)


class TestSplitsAndScale:
    def test_splits_beyond_one_node(self, tree):
        n = MAX_KEYS * 3
        for key in range(n):
            tree.insert(key, key * 2)
        assert len(tree) == n
        assert all(tree.search(k) == k * 2 for k in range(0, n, 17))
        assert [k for k, _ in tree.items()] == list(range(n))

    def test_reverse_insertion_order(self, tree):
        n = MAX_KEYS * 2
        for key in reversed(range(n)):
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == list(range(n))

    def test_random_bulk_matches_dict(self, tree):
        rng = random.Random(42)
        oracle = {}
        for _ in range(5_000):
            key = rng.randrange(1_500)
            value = rng.randrange(1 << 50)
            tree.insert(key, value)
            oracle[key] = value
        assert list(tree.items()) == sorted(oracle.items())

    def test_capacity_exhaustion_raises(self, tmp_path):
        t = PersistentBTree.create(tmp_path / "tiny.btree", capacity_nodes=3)
        with pytest.raises(BTreeError):
            for key in range(MAX_KEYS * 10):
                t.insert(key, key)
        t.close()


class TestPersistence:
    def test_reopen_preserves_everything(self, tmp_path):
        path = tmp_path / "p.btree"
        with PersistentBTree.create(path) as t:
            for key in range(500):
                t.insert(key * 3, key)
        with PersistentBTree.open(path) as t:
            assert len(t) == 500
            assert t.search(3 * 123) == 123
            assert [k for k, _ in t.items()] == [k * 3 for k in range(500)]

    def test_pointers_survive_remap_without_swizzling(self, tmp_path):
        """The µDatabase property: repeated map/unmap cycles never touch a
        pointer."""
        path = tmp_path / "p.btree"
        with PersistentBTree.create(path) as t:
            for key in range(MAX_KEYS * 2):
                t.insert(key, key)
        for _ in range(3):
            with PersistentBTree.open(path) as t:
                assert t.search(MAX_KEYS) == MAX_KEYS

    def test_open_non_btree_rejected(self, tmp_path):
        from repro.storage.segment import MappedSegment

        path = tmp_path / "notatree.seg"
        MappedSegment.create(path, capacity=4, record_bytes=4096).close()
        with pytest.raises(BTreeError):
            PersistentBTree.open(path)

    def test_open_wrong_record_size_rejected(self, tmp_path):
        from repro.storage.segment import MappedSegment

        path = tmp_path / "small.seg"
        MappedSegment.create(path, capacity=4, record_bytes=128).close()
        with pytest.raises(BTreeError):
            PersistentBTree.open(path)


class TestPropertyBased:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        operations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=300),
                st.integers(min_value=0, max_value=2**32),
            ),
            max_size=400,
        )
    )
    def test_matches_dict_oracle(self, tmp_path_factory, operations):
        path = tmp_path_factory.mktemp("bt") / "t.btree"
        oracle = {}
        with PersistentBTree.create(path, capacity_nodes=256) as tree:
            for key, value in operations:
                tree.insert(key, value)
                oracle[key] = value
            assert list(tree.items()) == sorted(oracle.items())
            assert len(tree) == len(oracle)
