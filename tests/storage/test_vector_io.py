"""Unit equivalence of the columnar storage primitives against their
scalar counterparts: the byte- and value-level contracts the vectorized
kernels build on."""

import pytest

np = pytest.importorskip("numpy")

from repro.core.pointer import PointerMap
from repro.parallel.engine.task import PairSink
from repro.storage.layout import RecordLayout
from repro.storage.relation import (
    BucketedRFile,
    RRelationFile,
    SRelationFile,
)
from repro.core.records import RObject, SObject

RECORDS = [(i * 7 + 1, (i * 13) % 97, i * 31 + 5) for i in range(97)]


@pytest.fixture(params=[128, 64])
def layout(request):
    return RecordLayout(request.param)


class TestLayoutColumns:
    def test_pack_columns_matches_pack_batch(self, layout):
        cols = np.asarray(RECORDS, dtype=np.uint64)
        packed = layout.pack_columns(cols[:, 0], cols[:, 1], cols[:, 2])
        assert bytes(packed) == bytes(layout.pack_batch(RECORDS))

    def test_decode_columns_round_trips(self, layout):
        blob = bytes(layout.pack_batch(RECORDS))
        a, b, c = layout.decode_columns(blob)
        assert list(zip(a.tolist(), b.tolist(), c.tolist())) == RECORDS

    def test_decode_columns_of_empty_buffer(self, layout):
        a, b, c = layout.decode_columns(b"")
        assert len(a) == len(b) == len(c) == 0

    def test_decode_columns_copies_even_single_records(self, layout):
        """Regression: a 1-element strided field view counts as
        contiguous, so a non-copying decode would keep the mapped buffer
        exported and make the segment unclosable."""
        blob = bytearray(layout.pack_batch(RECORDS[:1]))
        with memoryview(blob) as view:
            a, b, c = layout.decode_columns(view)
        # The view is released; the columns must still be readable.
        assert (int(a[0]), int(b[0]), int(c[0])) == RECORDS[0]


class TestPointerColumns:
    @pytest.fixture
    def pmap(self):
        return PointerMap(s_objects=1021, partitions=4)

    def test_locate_array_matches_locate_many(self, pmap):
        sptrs = np.arange(1021, dtype=np.uint64)
        parts, offs = pmap.locate_array(sptrs)
        expected = pmap.locate_many(range(1021))
        assert list(zip(parts.tolist(), offs.tolist())) == expected

    def test_offset_array_matches_offset_many(self, pmap):
        sptrs = np.arange(0, 1021, 3, dtype=np.uint64)
        offs = pmap.offset_array(sptrs)
        assert offs.tolist() == pmap.offset_many(range(0, 1021, 3))


class TestRelationColumns:
    def test_append_and_read_columns(self, tmp_path):
        rel = RRelationFile.create(tmp_path / "r.seg", len(RECORDS), 128)
        cols = np.asarray(RECORDS, dtype=np.uint64)
        rel.append_columns(cols[:, 0], cols[:, 1], cols[:, 2])
        objs = [RObject(*r) for r in RECORDS]
        assert list(rel.iter_objects()) == objs
        a, b, c = rel.read_columns(0, len(RECORDS))
        assert list(zip(a.tolist(), b.tolist(), c.tolist())) == RECORDS
        rel.close()

    def test_iter_column_batches_covers_all_records(self, tmp_path):
        rel = RRelationFile.create(tmp_path / "r.seg", len(RECORDS), 128)
        rel.append_many([RObject(*r) for r in RECORDS])
        got = []
        for a, b, c in rel.iter_column_batches(batch_records=16):
            got.extend(zip(a.tolist(), b.tolist(), c.tolist()))
        assert got == RECORDS
        rel.close()

    def test_dereference_columns_matches_dereference_many(self, tmp_path):
        rel = SRelationFile.create(tmp_path / "s.seg", 64, 128)
        rel.append_many([SObject(i + 1, i * 3, i) for i in range(64)])
        offsets = np.asarray([5, 0, 63, 17, 17, 2], dtype=np.uint64)
        sid, value = rel.dereference_columns(offsets)
        expected = rel.dereference_many([int(o) for o in offsets])
        assert [
            (int(s), int(v)) for s, v in zip(sid, value)
        ] == [(o.sid, o.value) for o in expected]
        rel.close()

    def test_append_buckets_packed_matches_append_bucket(self, tmp_path):
        buckets = 7
        by_bucket = {
            b: [RObject(*r) for r in RECORDS if r[0] % buckets == b]
            for b in range(buckets)
        }
        by_bucket[3] = []  # an empty bucket keeps its (0, 0) entry

        scalar = BucketedRFile.create(
            tmp_path / "scalar.seg", len(RECORDS), buckets, 128
        )
        for b in range(buckets):
            if by_bucket[b]:
                scalar.append_bucket(b, by_bucket[b])
        scalar.close()

        layout = RecordLayout(128)
        ordered = [o for b in range(buckets) for o in by_bucket[b]]
        cols = np.asarray(ordered, dtype=np.uint64).reshape(-1, 3)
        vector = BucketedRFile.create(
            tmp_path / "vector.seg", len(RECORDS), buckets, 128
        )
        vector.append_buckets_packed(
            layout.pack_columns(cols[:, 0], cols[:, 1], cols[:, 2]),
            [len(by_bucket[b]) for b in range(buckets)],
        )
        vector.close()

        assert (
            (tmp_path / "scalar.seg").read_bytes()
            == (tmp_path / "vector.seg").read_bytes()
        )

    def test_read_bucket_columns_matches_scalar_iteration(self, tmp_path):
        buckets = 5
        rel = BucketedRFile.create(
            tmp_path / "b.seg", len(RECORDS), buckets, 128
        )
        groups = {
            b: [RObject(*r) for r in RECORDS if r[2] % buckets == b]
            for b in range(buckets)
        }
        for b in range(buckets):
            if groups[b]:
                rel.append_bucket(b, groups[b])
        for b in range(buckets):
            rid, sptr, payload = rel.read_bucket_columns(b)
            assert [
                RObject(*t)
                for t in zip(rid.tolist(), sptr.tolist(), payload.tolist())
            ] == groups[b]
        rel.close()


class TestPairSinkArrays:
    def test_emit_arrays_matches_emit_joined(self, tmp_path):
        rows = [
            (i, (i * 5) % 23, i + 100, i * 9 + 1) for i in range(41)
        ]
        scalar = PairSink(tmp_path / "scalar.seg", len(rows))
        scalar.emit_joined(
            [RObject(rid, 0, rp) for rid, _, rp, _ in rows],
            [SObject(sid, sv, 0) for _, sid, _, sv in rows],
        )
        scalar_result = scalar.close()

        arr = np.asarray(rows, dtype=np.uint64)
        vector = PairSink(tmp_path / "vector.seg", len(rows))
        vector.emit_arrays(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
        vector_result = vector.close()

        assert vector_result.count == scalar_result.count
        assert vector_result.checksum == scalar_result.checksum
        assert (
            (tmp_path / "scalar.seg").read_bytes()
            == (tmp_path / "vector.seg").read_bytes()
        )
