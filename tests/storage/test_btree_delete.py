"""Tests for B-tree deletion and rebalancing."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage.btree import MAX_KEYS, PersistentBTree


@pytest.fixture
def tree(tmp_path):
    t = PersistentBTree.create(tmp_path / "t.btree", capacity_nodes=1024)
    yield t
    t.close()


class TestDeleteBasics:
    def test_delete_present_key(self, tree):
        tree.insert(5, 50)
        assert tree.delete(5) is True
        assert tree.search(5) is None
        assert len(tree) == 0

    def test_delete_absent_key(self, tree):
        tree.insert(5, 50)
        assert tree.delete(6) is False
        assert len(tree) == 1

    def test_delete_from_empty_tree(self, tree):
        assert tree.delete(1) is False

    def test_delete_then_reinsert(self, tree):
        tree.insert(5, 50)
        tree.delete(5)
        tree.insert(5, 51)
        assert tree.search(5) == 51
        assert len(tree) == 1

    def test_delete_does_not_disturb_neighbours(self, tree):
        for key in range(20):
            tree.insert(key, key)
        tree.delete(10)
        assert tree.search(9) == 9
        assert tree.search(11) == 11
        assert [k for k, _ in tree.items()] == [k for k in range(20) if k != 10]


class TestRebalancing:
    def test_delete_everything_from_multi_level_tree(self, tree):
        n = MAX_KEYS * 4
        for key in range(n):
            tree.insert(key, key)
        order = list(range(n))
        random.Random(7).shuffle(order)
        for key in order:
            assert tree.delete(key) is True
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_sequential_deletes_shrink_tree(self, tree):
        n = MAX_KEYS * 3
        for key in range(n):
            tree.insert(key, key)
        for key in range(n // 2):
            tree.delete(key)
        assert [k for k, _ in tree.items()] == list(range(n // 2, n))

    def test_separator_key_deletion_keeps_routing_correct(self, tree):
        """Deleting a key that doubles as an internal separator must not
        break lookups of its neighbours."""
        n = MAX_KEYS + 10  # guarantees one split, one separator
        for key in range(n):
            tree.insert(key, key)
        # Every key is deletable and, after each, all others still resolve.
        probe = list(range(0, n, 13))
        for key in probe:
            assert tree.delete(key) is True
            assert tree.search(key) is None
            survivors = [k for k in range(n) if k not in probe[: probe.index(key) + 1]]
            sample = survivors[:: max(1, len(survivors) // 10)]
            assert all(tree.search(k) == k for k in sample)

    def test_tree_survives_reopen_after_deletions(self, tmp_path):
        path = tmp_path / "p.btree"
        with PersistentBTree.create(path, capacity_nodes=1024) as t:
            for key in range(MAX_KEYS * 2):
                t.insert(key, key)
            for key in range(0, MAX_KEYS * 2, 2):
                t.delete(key)
        with PersistentBTree.open(path) as t:
            assert [k for k, _ in t.items()] == list(range(1, MAX_KEYS * 2, 2))


class TestDeleteProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=0, max_value=200),
            ),
            max_size=500,
        )
    )
    def test_matches_dict_oracle_with_deletes(self, tmp_path_factory, operations):
        path = tmp_path_factory.mktemp("bt") / "t.btree"
        oracle = {}
        with PersistentBTree.create(path, capacity_nodes=512) as tree:
            for op, key in operations:
                if op == "insert":
                    tree.insert(key, key * 7)
                    oracle[key] = key * 7
                else:
                    assert tree.delete(key) == (key in oracle)
                    oracle.pop(key, None)
            assert list(tree.items()) == sorted(oracle.items())
            assert len(tree) == len(oracle)
