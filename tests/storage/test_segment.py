"""Tests for the real mmap-backed segments."""

import pytest

from repro.storage.layout import LayoutError, RecordLayout
from repro.storage.segment import (
    MappedSegment,
    StorageError,
    timed_delete_map,
    timed_new_map,
    timed_open_map,
)


class TestRecordLayout:
    def test_r_roundtrip(self):
        from repro.core.records import RObject

        layout = RecordLayout(128)
        obj = RObject(rid=7, sptr=42, payload=99)
        assert layout.unpack_r(layout.pack_r(obj)) == obj

    def test_s_roundtrip(self):
        from repro.core.records import SObject

        layout = RecordLayout(128)
        obj = SObject(sid=3, value=12, payload=5)
        assert layout.unpack_s(layout.pack_s(obj)) == obj

    def test_record_is_exactly_sized(self):
        from repro.core.records import RObject

        layout = RecordLayout(128)
        assert len(layout.pack_r(RObject(1, 2, 3))) == 128

    def test_rejects_too_small_record(self):
        with pytest.raises(LayoutError):
            RecordLayout(8)

    def test_offset_of(self):
        layout = RecordLayout(128)
        assert layout.offset_of(3) == 384
        with pytest.raises(LayoutError):
            layout.offset_of(-1)


class TestMappedSegment:
    def test_create_write_read(self, tmp_path):
        path = tmp_path / "a.seg"
        with MappedSegment.create(path, capacity=10) as seg:
            record = b"x" * 128
            idx = seg.append_record(record)
            assert idx == 0
            assert seg.read_record(0) == record

    def test_data_persists_across_reopen(self, tmp_path):
        path = tmp_path / "a.seg"
        record = bytes(range(128))
        with MappedSegment.create(path, capacity=4) as seg:
            seg.append_record(record)
        with MappedSegment.open(path) as seg:
            assert len(seg) == 1
            assert seg.read_record(0) == record

    def test_create_over_existing_rejected(self, tmp_path):
        path = tmp_path / "a.seg"
        MappedSegment.create(path, capacity=1).close()
        with pytest.raises(StorageError):
            MappedSegment.create(path, capacity=1)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            MappedSegment.open(tmp_path / "ghost.seg")

    def test_open_non_segment_rejected(self, tmp_path):
        path = tmp_path / "junk.seg"
        path.write_bytes(b"not a segment" * 1000)
        with pytest.raises(StorageError):
            MappedSegment.open(path)

    def test_append_beyond_capacity_rejected(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=1) as seg:
            seg.append_record(b"x" * 128)
            with pytest.raises(StorageError):
                seg.append_record(b"y" * 128)

    def test_wrong_record_size_rejected(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=2) as seg:
            with pytest.raises(StorageError):
                seg.write_record(0, b"short")

    def test_read_unwritten_rejected(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=2) as seg:
            with pytest.raises(StorageError):
                seg.read_record(0)

    def test_write_at_next_slot_extends_count(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=8) as seg:
            seg.write_record(0, b"z" * 128)
            seg.write_record(1, b"y" * 128)
            assert len(seg) == 2

    def test_sparse_write_past_count_rejected(self, tmp_path):
        """A write that jumps past the count would leave garbage records
        that iter_records would then yield — rejected outright."""
        with MappedSegment.create(tmp_path / "a.seg", capacity=8) as seg:
            with pytest.raises(StorageError):
                seg.write_record(5, b"z" * 128)
            assert len(seg) == 0

    def test_reserve_declares_slots_valid(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=8) as seg:
            seg.reserve(6)
            seg.write_record(5, b"z" * 128)
            assert len(seg) == 6
            assert seg.read_record(3) == b"\x00" * 128

    def test_reserve_beyond_capacity_rejected(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=4) as seg:
            with pytest.raises(StorageError):
                seg.reserve(5)

    def test_reserve_never_shrinks(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=4) as seg:
            seg.append_record(b"x" * 128)
            seg.reserve(0)
            assert len(seg) == 1

    def test_use_after_close_rejected(self, tmp_path):
        seg = MappedSegment.create(tmp_path / "a.seg", capacity=1)
        seg.close()
        with pytest.raises(StorageError):
            seg.read_record(0)

    def test_close_idempotent(self, tmp_path):
        seg = MappedSegment.create(tmp_path / "a.seg", capacity=1)
        seg.close()
        seg.close()

    def test_delete_removes_file(self, tmp_path):
        path = tmp_path / "a.seg"
        MappedSegment.create(path, capacity=1).close()
        MappedSegment.delete(path)
        assert not path.exists()

    def test_delete_missing_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            MappedSegment.delete(tmp_path / "ghost.seg")

    def test_iter_records(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=3) as seg:
            for i in range(3):
                seg.append_record(bytes([i]) * 128)
            assert [r[0] for r in seg.iter_records()] == [0, 1, 2]

    def test_zero_capacity_segment(self, tmp_path):
        with MappedSegment.create(tmp_path / "a.seg", capacity=0) as seg:
            assert len(seg) == 0


class TestTimedHelpers:
    def test_timed_new_open_delete(self, tmp_path):
        path = tmp_path / "t.seg"
        seg, new_ms = timed_new_map(path, capacity=100)
        seg.close()
        assert new_ms >= 0.0
        seg, open_ms = timed_open_map(path)
        seg.close()
        assert open_ms >= 0.0
        delete_ms = timed_delete_map(path)
        assert delete_ms >= 0.0
        assert not path.exists()
