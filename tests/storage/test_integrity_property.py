"""Property tests for the payload-checksum integrity footer.

Hypothesis drives segment lifecycles — create, append arbitrary records,
close (which stamps the CRC footer), reopen (which verifies it) — and
corruption cases: any single flipped payload bit, or a truncated data
area, must fail the scrub.  Edge cases the strategies always reach:
zero-record and one-record segments.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel.faults import flip_payload_bit, truncate_payload
from repro.storage.segment import (
    MappedSegment,
    StorageError,
    scrub_segment,
    segment_footer,
)

RECORD_BYTES = 128

records_strategy = st.lists(
    st.binary(min_size=RECORD_BYTES, max_size=RECORD_BYTES),
    min_size=0,
    max_size=12,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def publish(path, records):
    with MappedSegment.create(
        path, capacity=max(len(records), 1), record_bytes=RECORD_BYTES
    ) as seg:
        for record in records:
            seg.append_record(record)


@SETTINGS
@given(records=records_strategy)
def test_checksum_round_trip(tmp_path, records):
    """close() stamps a footer that open()/scrub() verify, for any
    payload — including the empty segment and the single record."""
    path = tmp_path / f"p{len(records)}.seg"
    path.unlink(missing_ok=True)
    publish(path, records)
    assert scrub_segment(path) == "verified"
    footer = segment_footer(path)
    assert footer is not None and footer[1] == len(records)
    with MappedSegment.open(path) as seg:
        assert [seg.read_record(i) for i in range(len(seg))] == records
    assert MappedSegment.record_count(path) == len(records)


@SETTINGS
@given(
    records=records_strategy.filter(bool),
    record=st.integers(min_value=0, max_value=1 << 20),
    bit=st.integers(min_value=0, max_value=7),
)
def test_any_flipped_bit_fails_the_scrub(tmp_path, records, record, bit):
    path = tmp_path / "flip.seg"
    path.unlink(missing_ok=True)
    publish(path, records)
    flip_payload_bit(path, record=record, bit=bit)
    with pytest.raises(StorageError):
        scrub_segment(path)
    with pytest.raises(StorageError):
        MappedSegment.open(path).close()


@SETTINGS
@given(records=records_strategy.filter(lambda r: len(r) >= 2))
def test_truncated_payload_fails_the_scrub(tmp_path, records):
    path = tmp_path / "trunc.seg"
    path.unlink(missing_ok=True)
    publish(path, records)
    truncate_payload(path)
    with pytest.raises(StorageError):
        scrub_segment(path)


@SETTINGS
@given(records=records_strategy)
def test_rewritten_identical_bytes_still_verify(tmp_path, records):
    """The CRC binds content, not identity: flipping a bit and flipping
    it back restores a verifiable segment (the memo keys on mtime/inode,
    so this also proves the cache never serves a stale verdict)."""
    path = tmp_path / "re.seg"
    path.unlink(missing_ok=True)
    publish(path, records)
    assert scrub_segment(path) == "verified"
    if records:
        flip_payload_bit(path, record=0, bit=2)
        with pytest.raises(StorageError):
            scrub_segment(path)
        flip_payload_bit(path, record=0, bit=2)
    assert scrub_segment(path) == "verified"
