"""Cross-cutting accounting invariants of the simulated joins.

These tests pin down the bookkeeping relationships between layers: machine
counters, per-process clocks, per-pass durations and the result object must
all tell one consistent story, for every algorithm.
"""

import pytest

from repro.joins import ALGORITHMS, JoinEnvironment, make_algorithm
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def runs():
    workload = generate_workload(
        WorkloadSpec(r_objects=800, s_objects=800, seed=23), disks=4
    )
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), 0.1
    )
    out = {}
    for name in ALGORITHMS:
        env = JoinEnvironment(workload, memory)
        out[name] = (env, make_algorithm(name).run(env, collect_pairs=False))
    return out


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestAccountingInvariants:
    def test_elapsed_equals_slowest_process_plus_setup(self, runs, name):
        env, result = runs[name]
        slowest = max(result.per_process_ms.values())
        assert result.elapsed_ms == pytest.approx(slowest + result.setup_ms)

    def test_every_process_reported(self, runs, name):
        _, result = runs[name]
        assert len(result.per_process_ms) == 8  # 4 Rprocs + 4 Sprocs

    def test_faults_never_exceed_accesses(self, runs, name):
        _, result = runs[name]
        for stats in result.stats.memory.values():
            assert stats.faults <= stats.accesses
            assert stats.dirty_evictions <= stats.evictions

    def test_disk_reads_match_initialized_faults(self, runs, name):
        """Every block read comes from some fault on an initialized page,
        so total reads can never exceed total faults."""
        _, result = runs[name]
        assert result.stats.total_blocks_read <= result.stats.total_faults

    def test_no_pending_writes_after_finish(self, runs, name):
        env, _ = runs[name]
        for disk in env.machine.disks:
            assert disk.pending_write_count == 0

    def test_r_objects_fully_scanned(self, runs, name):
        """Every R object is read at least once: total page accesses on
        the R segments cover the partition sizes."""
        env, result = runs[name]
        per_page = env.r_segments[0].objects_per_page
        r_pages = sum(seg.n_pages for seg in env.r_segments)
        r_faults = sum(
            stats.faults
            for proc_name, stats in result.stats.memory.items()
            if proc_name.startswith("Rproc")
        )
        # Rprocs fault at least the pages of R itself (they also fault
        # temporaries, hence >=).
        assert r_faults >= r_pages or per_page >= 32

    def test_context_switches_even(self, runs, name):
        """G-buffer exchanges always come in pairs (over and back)."""
        _, result = runs[name]
        assert result.stats.context_switches % 2 == 0

    def test_checksum_stable_across_reruns(self, runs, name):
        env, result = runs[name]
        env2 = JoinEnvironment(env.workload, env.memory)
        rerun = make_algorithm(name).run(env2, collect_pairs=False)
        assert rerun.checksum == result.checksum
        assert rerun.elapsed_ms == pytest.approx(result.elapsed_ms)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestMemoryDoesNotChangeAnswers:
    def test_output_independent_of_memory(self, name):
        workload = generate_workload(
            WorkloadSpec(r_objects=300, s_objects=300, seed=7), disks=2
        )
        checksums = set()
        for fraction in (0.03, 0.2, 0.9):
            memory = MemoryParameters.from_fractions(
                workload.relation_parameters(), fraction
            )
            env = JoinEnvironment(workload, memory)
            checksums.add(
                make_algorithm(name).run(env, collect_pairs=False).checksum
            )
        assert len(checksums) == 1

    def test_more_memory_never_more_faults(self, name):
        workload = generate_workload(
            WorkloadSpec(r_objects=600, s_objects=600, seed=7), disks=2
        )
        faults = []
        for fraction in (0.05, 0.5):
            memory = MemoryParameters.from_fractions(
                workload.relation_parameters(), fraction
            )
            env = JoinEnvironment(workload, memory)
            result = make_algorithm(name).run(env, collect_pairs=False)
            faults.append(result.stats.total_faults)
        assert faults[1] <= faults[0]
