"""Tests for the hash-loops extension (algorithm + model)."""

import pytest

from repro.joins import (
    JoinEnvironment,
    ParallelHashLoopsJoin,
    ParallelNestedLoopsJoin,
    expected_checksum,
    verify_pairs,
)
from repro.model import (
    MachineParameters,
    MemoryParameters,
    RelationParameters,
    chunk_capacity,
    expected_distinct_pages,
    hash_loops_cost,
    nested_loops_cost,
)
from repro.workload import WorkloadSpec, generate_workload

MACHINE = MachineParameters()
PAPER = RelationParameters()


def mem(fraction):
    return MemoryParameters.from_fractions(PAPER, fraction)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=600, s_objects=600, seed=17), disks=4
    )


def run(workload, fraction=0.2, **kwargs):
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), fraction
    )
    env = JoinEnvironment(workload, memory)
    return ParallelHashLoopsJoin(**kwargs).run(env)


class TestAlgorithm:
    @pytest.mark.parametrize("disks", [1, 2, 4])
    def test_correct_at_all_widths(self, disks):
        wl = generate_workload(
            WorkloadSpec(r_objects=400, s_objects=400, seed=9), disks=disks
        )
        result = run(wl)
        assert verify_pairs(wl, result.pairs) == 400

    def test_correct_with_tiny_chunks(self, workload):
        # MRproc barely holds a couple of entries: many chunk flushes.
        memory = MemoryParameters(m_rproc_bytes=300, m_sproc_bytes=16_384)
        env = JoinEnvironment(workload, memory)
        result = ParallelHashLoopsJoin().run(env)
        assert verify_pairs(workload, result.pairs) == 600

    def test_synchronized_variant_correct(self, workload):
        result = run(workload, synchronize_phases=True)
        assert verify_pairs(workload, result.pairs) == 600

    def test_checksum_matches_oracle(self, workload):
        memory = MemoryParameters.from_fractions(
            workload.relation_parameters(), 0.2
        )
        env = JoinEnvironment(workload, memory)
        result = ParallelHashLoopsJoin().run(env, collect_pairs=False)
        assert result.checksum == expected_checksum(workload)

    def test_beats_nested_loops_at_low_memory(self):
        wl = generate_workload(WorkloadSpec.paper_validation(scale=0.05), 4)
        memory = MemoryParameters.from_fractions(
            wl.relation_parameters(), 0.05
        )
        hl = ParallelHashLoopsJoin().run(
            JoinEnvironment(wl, memory), collect_pairs=False
        )
        nl = ParallelNestedLoopsJoin().run(
            JoinEnvironment(wl, memory), collect_pairs=False
        )
        assert hl.elapsed_ms < nl.elapsed_ms

    def test_chunk_capacity_reported(self, workload):
        result = run(workload)
        assert result.detail["chunk_capacity"] >= 1.0


class TestModel:
    def test_chunk_capacity_formula(self):
        memory = mem(0.1)
        per = PAPER.r_bytes + MACHINE.heap_pointer_bytes
        assert chunk_capacity(MACHINE, PAPER, memory) == memory.m_rproc_bytes // per

    def test_expected_distinct_pages_bounds(self):
        assert expected_distinct_pages(100, 0) == 0.0
        assert expected_distinct_pages(100, 10_000) <= 100.0
        assert expected_distinct_pages(100, 50) == pytest.approx(
            100 * (1 - 0.99**50)
        )

    def test_cheaper_than_nested_loops_everywhere(self):
        for fraction in (0.02, 0.05, 0.1, 0.3):
            memory = mem(fraction)
            hl = hash_loops_cost(MACHINE, PAPER, memory).total_ms
            nl = nested_loops_cost(MACHINE, PAPER, memory).total_ms
            assert hl <= nl * 1.02, fraction

    def test_monotone_nonincreasing_in_memory(self):
        totals = [
            hash_loops_cost(MACHINE, PAPER, mem(f)).total_ms
            for f in (0.02, 0.05, 0.1, 0.3)
        ]
        assert all(b <= a + 1e-6 for a, b in zip(totals, totals[1:]))

    def test_pass_structure(self):
        report = hash_loops_cost(MACHINE, PAPER, mem(0.1))
        assert [p.name for p in report.passes] == ["setup", "pass0", "pass1"]
        assert report.derived["s_pages_read_pass0"] > 0
