"""Correctness and behaviour tests for the three parallel joins."""

import pytest

from repro.joins import (
    JoinEnvironment,
    ParallelGraceJoin,
    ParallelNestedLoopsJoin,
    ParallelSortMergeJoin,
    expected_checksum,
    make_algorithm,
    verify_pairs,
)
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload


def run(workload, algo, fraction=0.2, g_bytes=4096, collect=True):
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), fraction, g_bytes=g_bytes
    )
    env = JoinEnvironment(workload, memory)
    return algo.run(env, collect_pairs=collect)


@pytest.fixture(scope="module")
def workloads():
    return {
        d: generate_workload(
            WorkloadSpec(r_objects=600, s_objects=600, seed=17), disks=d
        )
        for d in (1, 2, 4)
    }


class TestNestedLoops:
    @pytest.mark.parametrize("disks", [1, 2, 4])
    def test_correct_at_all_widths(self, workloads, disks):
        result = run(workloads[disks], ParallelNestedLoopsJoin())
        assert verify_pairs(workloads[disks], result.pairs) == 600

    def test_synchronized_variant_also_correct(self, workloads):
        result = run(workloads[4], ParallelNestedLoopsJoin(synchronize_phases=True))
        assert verify_pairs(workloads[4], result.pairs) == 600

    def test_sync_flag_recorded(self, workloads):
        result = run(workloads[4], ParallelNestedLoopsJoin(synchronize_phases=True))
        assert result.detail["synchronized"] == 1.0

    def test_spilled_objects_are_the_remote_pointers(self, workloads):
        wl = workloads[4]
        result = run(wl, ParallelNestedLoopsJoin())
        remote = sum(
            1
            for partition_index, partition in enumerate(wl.r_partitions)
            for obj in partition
            if wl.pointer_map.partition_of(obj.sptr) != partition_index
        )
        assert result.detail["rp_objects"] == float(remote)

    def test_low_memory_slower_than_high(self, workloads):
        slow = run(workloads[4], ParallelNestedLoopsJoin(), fraction=0.03)
        fast = run(workloads[4], ParallelNestedLoopsJoin(), fraction=0.8)
        assert slow.elapsed_ms > fast.elapsed_ms

    def test_tiny_g_buffer_still_correct(self, workloads):
        result = run(workloads[4], ParallelNestedLoopsJoin(), g_bytes=300)
        assert verify_pairs(workloads[4], result.pairs) == 600

    def test_elapsed_positive_and_setup_included(self, workloads):
        result = run(workloads[4], ParallelNestedLoopsJoin())
        assert result.elapsed_ms > result.setup_ms > 0


class TestSortMerge:
    @pytest.mark.parametrize("disks", [1, 2, 4])
    def test_correct_at_all_widths(self, workloads, disks):
        result = run(workloads[disks], ParallelSortMergeJoin())
        assert verify_pairs(workloads[disks], result.pairs) == 600

    def test_multiple_merge_passes_forced_by_tiny_memory(self, workloads):
        wl = workloads[4]
        # ~5 pages per Rproc: IRUN ~ 150, runs ~ 1 per proc... shrink more.
        memory = MemoryParameters(m_rproc_bytes=3 * 4096, m_sproc_bytes=8 * 4096)
        env = JoinEnvironment(wl, memory)
        result = ParallelSortMergeJoin().run(env)
        assert verify_pairs(wl, result.pairs) == 600

    def test_npass_reported(self, workloads):
        result = run(workloads[4], ParallelSortMergeJoin())
        assert result.detail["npass"] >= 1.0
        assert result.detail["irun"] >= 1.0

    def test_unsynchronized_variant_correct(self, workloads):
        result = run(workloads[4], ParallelSortMergeJoin(synchronize_phases=False))
        assert verify_pairs(workloads[4], result.pairs) == 600

    def test_s_partition_read_sequentially(self, workloads):
        """After sorting, each S page should fault at most once per proc."""
        wl = workloads[4]
        result = run(wl, ParallelSortMergeJoin(), fraction=0.5, collect=False)
        s_pages = sum(seg_pages(wl, i) for i in range(4))
        sproc_faults = sum(
            stats.faults
            for name, stats in result.stats.memory.items()
            if name.startswith("Sproc")
        )
        assert sproc_faults <= s_pages


def seg_pages(workload, i):
    objects = workload.pointer_map.partition_size(i)
    per_page = 4096 // workload.spec.s_bytes
    return -(-objects // per_page)


class TestGrace:
    @pytest.mark.parametrize("disks", [1, 2, 4])
    def test_correct_at_all_widths(self, workloads, disks):
        result = run(workloads[disks], ParallelGraceJoin())
        assert verify_pairs(workloads[disks], result.pairs) == 600

    @pytest.mark.parametrize("buckets", [1, 3, 16])
    def test_correct_for_any_bucket_count(self, workloads, buckets):
        result = run(workloads[4], ParallelGraceJoin(buckets=buckets))
        assert verify_pairs(workloads[4], result.pairs) == 600

    def test_tsize_one_degenerates_to_single_chain(self, workloads):
        result = run(workloads[4], ParallelGraceJoin(buckets=4, tsize=1))
        assert verify_pairs(workloads[4], result.pairs) == 600

    def test_bucket_count_recorded(self, workloads):
        result = run(workloads[4], ParallelGraceJoin(buckets=7))
        assert result.detail["buckets"] == 7.0

    def test_s_read_once_with_ample_memory(self, workloads):
        """Order-preserving bucketing: S pages fault at most once each."""
        wl = workloads[4]
        result = run(wl, ParallelGraceJoin(buckets=4), fraction=0.5, collect=False)
        s_pages = sum(seg_pages(wl, i) for i in range(4))
        sproc_faults = sum(
            stats.faults
            for name, stats in result.stats.memory.items()
            if name.startswith("Sproc")
        )
        assert sproc_faults <= s_pages

    def test_thrashing_measurable_when_buckets_exceed_frames(self, workloads):
        wl = workloads[4]
        calm = run(wl, ParallelGraceJoin(buckets=2), fraction=0.5)
        thrash = run(wl, ParallelGraceJoin(buckets=40), fraction=0.03)
        assert thrash.stats.total_blocks_written > calm.stats.total_blocks_written


class TestCrossAlgorithm:
    @pytest.mark.parametrize("name", ["nested-loops", "sort-merge", "grace"])
    def test_checksum_matches_oracle_without_pair_retention(self, workloads, name):
        wl = workloads[4]
        result = run(wl, make_algorithm(name), collect=False)
        assert result.pairs is None
        assert result.checksum == expected_checksum(wl)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_algorithms_agree_across_seeds(self, seed):
        wl = generate_workload(
            WorkloadSpec(r_objects=400, s_objects=400, seed=seed), disks=4
        )
        checksums = set()
        for name in ("nested-loops", "sort-merge", "grace"):
            checksums.add(run(wl, make_algorithm(name), collect=False).checksum)
        assert len(checksums) == 1
        assert checksums.pop() == expected_checksum(wl)

    @pytest.mark.parametrize(
        "distribution,args",
        [
            ("permutation", {}),
            ("zipf", {"theta": 1.0}),
            ("partition_hot", {"hot_fraction": 0.7, "hot_span": 0.2}),
            ("clustered", {"run_length": 16}),
        ],
    )
    def test_all_algorithms_correct_under_skewed_distributions(
        self, distribution, args
    ):
        wl = generate_workload(
            WorkloadSpec(
                r_objects=500,
                s_objects=500,
                distribution=distribution,
                distribution_args=args,
                seed=8,
            ),
            disks=4,
        )
        for name in ("nested-loops", "sort-merge", "grace"):
            result = run(wl, make_algorithm(name), collect=False)
            assert result.checksum == expected_checksum(wl), name
