"""Tests for per-pass checkpoint timing on the join algorithms."""

import pytest

from repro.joins import ALGORITHMS, JoinEnvironment, make_algorithm
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload

EXPECTED_PASSES = {
    "nested-loops": ["pass0", "pass1"],
    "sort-merge": [
        "pass0", "pass1", "pass2-sort", "merge-passes", "final-merge-join",
    ],
    "grace": ["pass0", "pass1", "probe-join"],
    "hash-loops": ["pass0", "pass1"],
    "hybrid-hash": ["pass0", "pass1", "probe-join"],
}


@pytest.fixture(scope="module")
def runs():
    workload = generate_workload(
        WorkloadSpec(r_objects=600, s_objects=600, seed=17), disks=4
    )
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), 0.15
    )
    out = {}
    for name in ALGORITHMS:
        env = JoinEnvironment(workload, memory)
        out[name] = make_algorithm(name).run(env, collect_pairs=False)
    return out


class TestCheckpointStructure:
    @pytest.mark.parametrize("name", sorted(EXPECTED_PASSES))
    def test_expected_pass_labels_in_order(self, runs, name):
        assert list(runs[name].pass_ms) == EXPECTED_PASSES[name]

    @pytest.mark.parametrize("name", sorted(EXPECTED_PASSES))
    def test_durations_nonnegative(self, runs, name):
        for label, duration in runs[name].pass_ms.items():
            assert duration >= 0.0, label

    @pytest.mark.parametrize("name", sorted(EXPECTED_PASSES))
    def test_durations_sum_close_to_elapsed(self, runs, name):
        run = runs[name]
        total = sum(run.pass_ms.values()) + run.setup_ms
        # The final disk drain happens after the last checkpoint, so the
        # checkpointed total may be slightly below elapsed — never above.
        assert total <= run.elapsed_ms + 1e-6
        assert total > 0.9 * run.elapsed_ms

    def test_pass0_dominated_by_scan(self, runs):
        """For nested loops at this memory, pass 1 (random remote S) costs
        at least a comparable amount to pass 0 — both are nontrivial."""
        run = runs["nested-loops"]
        assert run.pass_ms["pass0"] > 0
        assert run.pass_ms["pass1"] > 0


class TestEnvironmentCheckpoints:
    def test_manual_checkpoints(self):
        workload = generate_workload(
            WorkloadSpec(r_objects=64, s_objects=64, seed=1), disks=2
        )
        memory = MemoryParameters(m_rproc_bytes=8192, m_sproc_bytes=8192)
        env = JoinEnvironment(workload, memory)
        env.rprocs[0].advance(100.0)
        env.checkpoint("a")
        env.rprocs[1].advance(250.0)
        env.checkpoint("b")
        durations = env.pass_durations()
        assert durations["a"] == pytest.approx(100.0)
        assert durations["b"] == pytest.approx(150.0)
