"""Property-based tests: all five algorithms agree on random workloads.

Each generated case is a small random workload (random sizes, disk counts,
pointer distributions, memory grants); the property is the library's core
invariant — every algorithm produces exactly the oracle join output.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.joins import (
    ALGORITHMS,
    JoinEnvironment,
    expected_checksum,
    make_algorithm,
)
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload

workload_params = st.fixed_dictionaries(
    {
        "r_objects": st.integers(min_value=16, max_value=400),
        "s_objects": st.integers(min_value=8, max_value=400),
        "disks": st.sampled_from([1, 2, 3, 4]),
        "seed": st.integers(min_value=0, max_value=2**16),
        "distribution": st.sampled_from(
            ["uniform", "permutation", "zipf", "partition_hot", "clustered"]
        ),
    }
)

memory_params = st.fixed_dictionaries(
    {
        # Down to near-starvation (a handful of frames) and up to ample.
        "m_rproc_bytes": st.integers(min_value=2_048, max_value=262_144),
        "m_sproc_bytes": st.integers(min_value=4_096, max_value=262_144),
        "g_bytes": st.sampled_from([300, 1_024, 4_096]),
    }
)


def build_workload(params):
    return generate_workload(
        WorkloadSpec(
            r_objects=params["r_objects"],
            s_objects=params["s_objects"],
            distribution=params["distribution"],
            seed=params["seed"],
        ),
        disks=params["disks"],
    )


class TestAllAlgorithmsMatchOracle:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(wl=workload_params, mem=memory_params)
    def test_every_algorithm_produces_the_oracle_join(self, wl, mem):
        workload = build_workload(wl)
        memory = MemoryParameters(**mem)
        oracle = expected_checksum(workload)
        for name in ALGORITHMS:
            env = JoinEnvironment(workload, memory)
            result = make_algorithm(name).run(env, collect_pairs=False)
            assert result.checksum == oracle, (name, wl, mem)
            assert result.pair_count == workload.r_objects_total

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(wl=workload_params)
    def test_elapsed_time_positive_and_setup_bounded(self, wl):
        workload = build_workload(wl)
        memory = MemoryParameters(m_rproc_bytes=32_768, m_sproc_bytes=32_768)
        for name in ALGORITHMS:
            env = JoinEnvironment(workload, memory)
            result = make_algorithm(name).run(env, collect_pairs=False)
            assert result.elapsed_ms > 0
            assert 0 < result.setup_ms < result.elapsed_ms


class TestAlgorithmSpecificKnobs:
    @settings(max_examples=10, deadline=None)
    @given(
        buckets=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_grace_any_bucket_count(self, buckets, seed):
        workload = generate_workload(
            WorkloadSpec(r_objects=200, s_objects=200, seed=seed), disks=2
        )
        memory = MemoryParameters(m_rproc_bytes=16_384, m_sproc_bytes=16_384)
        env = JoinEnvironment(workload, memory)
        result = make_algorithm("grace", buckets=buckets).run(
            env, collect_pairs=False
        )
        assert result.checksum == expected_checksum(workload)

    @settings(max_examples=10, deadline=None)
    @given(
        buckets=st.integers(min_value=2, max_value=12),
        data=st.data(),
    )
    def test_hybrid_any_resident_split(self, buckets, data):
        resident = data.draw(st.integers(min_value=0, max_value=buckets - 1))
        workload = generate_workload(
            WorkloadSpec(r_objects=200, s_objects=200, seed=5), disks=2
        )
        memory = MemoryParameters(m_rproc_bytes=16_384, m_sproc_bytes=16_384)
        env = JoinEnvironment(workload, memory)
        result = make_algorithm(
            "hybrid-hash", buckets=buckets, resident_buckets=resident
        ).run(env, collect_pairs=False)
        assert result.checksum == expected_checksum(workload)
