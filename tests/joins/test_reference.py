"""Tests for the oracle join and verification."""

import pytest

from repro.core.records import JoinedPair
from repro.joins.reference import (
    JoinVerificationError,
    expected_checksum,
    reference_join,
    verify_pairs,
)
from repro.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload(WorkloadSpec(r_objects=100, s_objects=100, seed=2), 2)


class TestReferenceJoin:
    def test_one_pair_per_r_object(self, workload):
        assert len(reference_join(workload)) == 100

    def test_pairs_follow_pointers(self, workload):
        for pair in reference_join(workload):
            assert workload.s_objects[pair.sid].value == pair.s_value


class TestVerifyPairs:
    def test_accepts_correct_output(self, workload):
        pairs = reference_join(workload)
        assert verify_pairs(workload, pairs) == 100

    def test_accepts_any_order(self, workload):
        pairs = list(reversed(reference_join(workload)))
        assert verify_pairs(workload, pairs) == 100

    def test_rejects_missing_pair(self, workload):
        pairs = reference_join(workload)[:-1]
        with pytest.raises(JoinVerificationError, match="missing"):
            verify_pairs(workload, pairs)

    def test_rejects_duplicated_pair(self, workload):
        pairs = reference_join(workload)
        with pytest.raises(JoinVerificationError, match="unexpected"):
            verify_pairs(workload, pairs + [pairs[0]])

    def test_rejects_corrupted_pair(self, workload):
        pairs = reference_join(workload)
        bad = JoinedPair(
            rid=pairs[0].rid, sid=pairs[0].sid,
            r_payload=pairs[0].r_payload + 1, s_value=pairs[0].s_value,
        )
        with pytest.raises(JoinVerificationError):
            verify_pairs(workload, [bad] + pairs[1:])


class TestExpectedChecksum:
    def test_stable(self, workload):
        assert expected_checksum(workload) == expected_checksum(workload)

    def test_differs_across_workloads(self, workload):
        other = generate_workload(
            WorkloadSpec(r_objects=100, s_objects=100, seed=3), 2
        )
        assert expected_checksum(workload) != expected_checksum(other)
