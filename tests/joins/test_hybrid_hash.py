"""Tests for the hybrid-hash extension (algorithm + model)."""

import pytest

from repro.joins import (
    JoinEnvironment,
    ParallelGraceJoin,
    ParallelHybridHashJoin,
    expected_checksum,
    verify_pairs,
)
from repro.model import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
    grace_cost,
    hybrid_hash_cost,
)
from repro.model.hybrid_hash import default_resident_buckets
from repro.workload import WorkloadSpec, generate_workload

MACHINE = MachineParameters()
PAPER = RelationParameters()


def mem(fraction):
    return MemoryParameters.from_fractions(PAPER, fraction)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=600, s_objects=600, seed=17), disks=4
    )


def run(workload, fraction=0.2, **kwargs):
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), fraction
    )
    env = JoinEnvironment(workload, memory)
    return ParallelHybridHashJoin(**kwargs).run(env)


class TestAlgorithm:
    @pytest.mark.parametrize("disks", [1, 2, 4])
    def test_correct_at_all_widths(self, disks):
        wl = generate_workload(
            WorkloadSpec(r_objects=400, s_objects=400, seed=9), disks=disks
        )
        result = run(wl)
        assert verify_pairs(wl, result.pairs) == 400

    @pytest.mark.parametrize("r0", [0, 1, 3])
    def test_correct_for_any_resident_count(self, workload, r0):
        result = run(workload, buckets=4, resident_buckets=r0)
        assert verify_pairs(workload, result.pairs) == 600
        assert result.detail["resident_buckets"] == float(r0)

    def test_zero_resident_degenerates_to_grace_output(self, workload):
        hh = run(workload, buckets=4, resident_buckets=0)
        assert verify_pairs(workload, hh.pairs) == 600

    def test_all_but_one_resident(self, workload):
        result = run(workload, buckets=5, resident_buckets=4)
        assert verify_pairs(workload, result.pairs) == 600

    def test_invalid_resident_count_rejected(self, workload):
        from repro.joins.base import JoinExecutionError

        with pytest.raises(JoinExecutionError):
            run(workload, buckets=4, resident_buckets=4)

    def test_checksum_matches_oracle(self, workload):
        memory = MemoryParameters.from_fractions(
            workload.relation_parameters(), 0.2
        )
        env = JoinEnvironment(workload, memory)
        result = ParallelHybridHashJoin().run(env, collect_pairs=False)
        assert result.checksum == expected_checksum(workload)

    def test_resident_buckets_beat_grace(self):
        """The hybrid saving: skip spill+probe for the resident fraction."""
        wl = generate_workload(WorkloadSpec.paper_validation(scale=0.1), 4)
        memory = MemoryParameters.from_fractions(wl.relation_parameters(), 0.3)
        hh = ParallelHybridHashJoin(buckets=8, resident_buckets=4).run(
            JoinEnvironment(wl, memory), collect_pairs=False
        )
        gr = ParallelGraceJoin(buckets=8).run(
            JoinEnvironment(wl, memory), collect_pairs=False
        )
        assert hh.elapsed_ms < gr.elapsed_ms


class TestModel:
    def test_default_resident_buckets_bounds(self):
        for fraction in (0.02, 0.1, 0.5):
            r0 = default_resident_buckets(MACHINE, PAPER, mem(fraction), 16)
            assert 0 <= r0 < 16

    def test_more_memory_more_resident_buckets(self):
        small = default_resident_buckets(MACHINE, PAPER, mem(0.05), 16)
        large = default_resident_buckets(MACHINE, PAPER, mem(0.5), 16)
        assert large >= small

    def test_zero_resident_matches_grace_model(self):
        memory = mem(0.05)
        hh = hybrid_hash_cost(
            MACHINE, PAPER, memory, buckets=16, resident_buckets=0
        )
        gr = grace_cost(MACHINE, PAPER, memory, buckets=16)
        assert hh.total_ms == pytest.approx(gr.total_ms, rel=1e-6)

    def test_resident_buckets_reduce_predicted_cost(self):
        memory = mem(0.2)
        base = hybrid_hash_cost(
            MACHINE, PAPER, memory, buckets=16, resident_buckets=0
        )
        hybrid = hybrid_hash_cost(
            MACHINE, PAPER, memory, buckets=16, resident_buckets=8
        )
        assert hybrid.total_ms < base.total_ms

    def test_invalid_resident_rejected(self):
        with pytest.raises(ParameterError):
            hybrid_hash_cost(
                MACHINE, PAPER, mem(0.1), buckets=4, resident_buckets=7
            )

    def test_derived_fields(self):
        report = hybrid_hash_cost(
            MACHINE, PAPER, mem(0.1), buckets=12, resident_buckets=3
        )
        assert report.derived["buckets"] == 12.0
        assert report.derived["resident_buckets"] == 3.0
        assert [p.name for p in report.passes] == [
            "setup", "pass0", "pass1", "probe-join",
        ]
