"""Tests for join infrastructure: phases, collector, environment."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.joins.base import (
    JoinEnvironment,
    JoinExecutionError,
    PairCollector,
    ceil_div,
    chunked,
    phase_partner,
)
from repro.core.records import RObject, SObject
from repro.model import MemoryParameters
from repro.workload import WorkloadSpec, generate_workload


class TestPhasePartner:
    @settings(max_examples=30, deadline=None)
    @given(d=st.integers(min_value=2, max_value=12))
    def test_each_process_visits_every_remote_partition_once(self, d):
        for i in range(d):
            visited = [phase_partner(i, t, d) for t in range(1, d)]
            assert sorted(visited) == sorted(j for j in range(d) if j != i)

    @settings(max_examples=30, deadline=None)
    @given(d=st.integers(min_value=2, max_value=12))
    def test_each_phase_is_a_bijection(self, d):
        for t in range(1, d):
            targets = [phase_partner(i, t, d) for i in range(d)]
            assert sorted(targets) == list(range(d))

    def test_phase_out_of_range_rejected(self):
        with pytest.raises(JoinExecutionError):
            phase_partner(0, 0, 4)
        with pytest.raises(JoinExecutionError):
            phase_partner(0, 4, 4)


class TestPairCollector:
    def test_counts_and_keeps_pairs(self):
        collector = PairCollector()
        collector.emit(RObject(1, 2, 3), SObject(2, 4, 5))
        assert collector.count == 1
        assert collector.pairs[0].rid == 1

    def test_discards_pairs_when_asked(self):
        collector = PairCollector(keep_pairs=False)
        collector.emit(RObject(1, 2, 3), SObject(2, 4, 5))
        assert collector.count == 1
        assert collector.pairs == []

    def test_checksum_order_independent(self):
        items = [(RObject(i, i, i), SObject(i, i * 3, 0)) for i in range(50)]
        a, b = PairCollector(False), PairCollector(False)
        for r, s in items:
            a.emit(r, s)
        for r, s in reversed(items):
            b.emit(r, s)
        assert a.checksum == b.checksum

    def test_checksum_detects_missing_pair(self):
        items = [(RObject(i, i, i), SObject(i, i * 3, 0)) for i in range(50)]
        a, b = PairCollector(False), PairCollector(False)
        for r, s in items:
            a.emit(r, s)
        for r, s in items[:-1]:
            b.emit(r, s)
        assert a.checksum != b.checksum


class TestHelpers:
    def test_chunked(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_chunked_rejects_nonpositive(self):
        with pytest.raises(JoinExecutionError):
            chunked([1], 0)

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3


class TestJoinEnvironment:
    @pytest.fixture(scope="class")
    def env(self):
        workload = generate_workload(
            WorkloadSpec(r_objects=256, s_objects=256, seed=3), disks=4
        )
        memory = MemoryParameters(m_rproc_bytes=16_384, m_sproc_bytes=32_768)
        return JoinEnvironment(workload, memory)

    def test_one_process_pair_per_disk(self, env):
        assert len(env.rprocs) == len(env.sprocs) == 4

    def test_frames_match_memory_grant(self, env):
        assert env.rprocs[0].memory.frames == 4
        assert env.sprocs[0].memory.frames == 8

    def test_segments_on_their_disks(self, env):
        for i in range(4):
            assert env.r_segments[i].disk.disk_id == i
            assert env.s_segments[i].disk.disk_id == i

    def test_base_segments_hold_workload(self, env):
        assert env.r_segments[0].peek(0) == env.workload.r_partitions[0][0]
        assert env.s_segments[1].peek(0) == env.workload.s_partition(1)[0]

    def test_sub_counts_sum_to_partition(self, env):
        counts = env.sub_counts(0)
        assert sum(counts) == len(env.workload.r_partitions[0])

    def test_barrier_aligns_clocks(self, env):
        env.rprocs[0].advance(100.0)
        env.barrier(env.rprocs)
        assert all(p.clock_ms >= 100.0 for p in env.rprocs)

    def test_disk_count_adapts_to_workload(self):
        workload = generate_workload(
            WorkloadSpec(r_objects=64, s_objects=64, seed=3), disks=2
        )
        memory = MemoryParameters(m_rproc_bytes=8192, m_sproc_bytes=8192)
        env = JoinEnvironment(workload, memory)
        assert len(env.machine.disks) == 2
