"""Tests for demand-paged memory."""

import pytest

from repro.sim.disk import SimDisk
from repro.sim.errors import MemoryError_
from repro.sim.memory import PagedMemory
from repro.sim.segment import SimSegment


def make_segment(n_objects=320, initialized=True, disk=None, start=0, seg_id=1):
    segment = SimSegment(
        segment_id=seg_id,
        name=f"seg{seg_id}",
        disk=disk or SimDisk(0),
        start_block=start,
        capacity_objects=n_objects,
        object_bytes=128,
        page_size=4096,
    )
    if initialized:
        segment.mark_all_initialized()
    return segment


class TestAccessAccounting:
    def test_first_access_faults(self):
        mem = PagedMemory(frames=4)
        seg = make_segment()
        cost = mem.access(seg, 0)
        assert cost > 0
        assert mem.stats.faults == 1

    def test_second_access_hits(self):
        mem = PagedMemory(frames=4)
        seg = make_segment()
        mem.access(seg, 0)
        assert mem.access(seg, 0) == 0.0
        assert mem.stats.faults == 1
        assert mem.stats.accesses == 2

    def test_demand_zero_page_free_to_load(self):
        mem = PagedMemory(frames=4)
        seg = make_segment(initialized=False)
        assert mem.access(seg, 0, write=True) == 0.0
        assert mem.stats.faults == 1
        assert seg.disk.stats.blocks_read == 0

    def test_hit_rate(self):
        mem = PagedMemory(frames=4)
        seg = make_segment()
        for _ in range(9):
            mem.access(seg, 0)
        assert mem.stats.hit_rate == pytest.approx(8 / 9)


class TestEviction:
    def test_clean_eviction_costs_nothing_extra(self):
        mem = PagedMemory(frames=1)
        seg = make_segment()
        mem.access(seg, 0)
        before_writes = seg.disk.stats.blocks_written
        mem.access(seg, 1)  # second page evicts the first (clean)
        assert seg.disk.stats.blocks_written == before_writes
        assert mem.stats.evictions == 1
        assert mem.stats.dirty_evictions == 0

    def test_dirty_eviction_writes_back(self):
        mem = PagedMemory(frames=1)
        seg = make_segment()
        mem.access(seg, 0, write=True)
        mem.access(seg, 1)
        assert mem.stats.dirty_evictions == 1
        # Write-behind queues the block; pending or written either way.
        assert seg.disk.pending_write_count + seg.disk.stats.blocks_written >= 1

    def test_evicted_demand_zero_page_becomes_initialized(self):
        mem = PagedMemory(frames=1)
        seg = make_segment(initialized=False)
        mem.access(seg, 0, write=True)
        mem.access(seg, 1, write=True)
        assert 0 in seg.initialized_pages

    def test_reload_after_eviction_faults_again(self):
        mem = PagedMemory(frames=1)
        seg = make_segment()
        mem.access(seg, 0)
        mem.access(seg, 1)
        cost = mem.access(seg, 0)
        assert cost > 0
        assert mem.stats.faults == 3

    def test_resident_count_bounded_by_frames(self):
        mem = PagedMemory(frames=3)
        seg = make_segment()
        for page in range(8):
            mem.access(seg, page)
        assert mem.resident_count == 3


class TestFlushAndDrop:
    def test_flush_writes_dirty_pages_once(self):
        mem = PagedMemory(frames=4)
        seg = make_segment()
        mem.access(seg, 0, write=True)
        mem.access(seg, 1, write=True)
        cost = mem.flush()
        assert cost > 0
        assert mem.flush() == 0.0  # now clean

    def test_flush_single_segment_only(self):
        mem = PagedMemory(frames=4)
        disk = SimDisk(0)
        a = make_segment(disk=disk, seg_id=1, start=disk.allocate(10))
        b = make_segment(disk=disk, seg_id=2, start=disk.allocate(10))
        mem.access(a, 0, write=True)
        mem.access(b, 0, write=True)
        mem.flush(a)
        assert mem.flush(b) > 0.0  # b was untouched by the first flush

    def test_drop_segment_discard_loses_dirty_data(self):
        mem = PagedMemory(frames=4)
        seg = make_segment(initialized=False)
        mem.access(seg, 0, write=True)
        cost = mem.drop_segment(seg, discard=True)
        assert cost == 0.0
        assert mem.resident_count == 0
        assert 0 not in seg.initialized_pages

    def test_drop_segment_writes_back_by_default(self):
        mem = PagedMemory(frames=4)
        seg = make_segment()
        mem.access(seg, 0, write=True)
        assert mem.drop_segment(seg) > 0.0

    def test_is_resident(self):
        mem = PagedMemory(frames=4)
        seg = make_segment()
        mem.access(seg, 0)
        assert mem.is_resident(seg, 0)
        assert not mem.is_resident(seg, 1)


class TestConfiguration:
    def test_rejects_zero_frames(self):
        with pytest.raises(MemoryError_):
            PagedMemory(frames=0)

    def test_policy_by_name(self):
        mem = PagedMemory(frames=2, policy="fifo")
        seg = make_segment()
        mem.access(seg, 0)
        mem.access(seg, 0)  # touch should not matter under FIFO
        mem.access(seg, 1)
        mem.access(seg, 2)
        assert not mem.is_resident(seg, 0)
