"""Tests for segments and regions."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.disk import SimDisk
from repro.sim.errors import SegmentError
from repro.sim.segment import (
    Region,
    SimSegment,
    carve_regions,
    region_capacity_with_alignment,
)


def make_segment(capacity=320, object_bytes=128):
    return SimSegment(
        segment_id=1,
        name="seg",
        disk=SimDisk(0),
        start_block=16,
        capacity_objects=capacity,
        object_bytes=object_bytes,
        page_size=4096,
    )


class TestSimSegment:
    def test_objects_per_page(self):
        assert make_segment().objects_per_page == 32

    def test_page_count(self):
        assert make_segment(capacity=320).n_pages == 10
        assert make_segment(capacity=321).n_pages == 11

    def test_empty_segment_still_has_a_page(self):
        assert make_segment(capacity=0).n_pages == 1

    def test_page_of(self):
        seg = make_segment()
        assert seg.page_of(0) == 0
        assert seg.page_of(31) == 0
        assert seg.page_of(32) == 1

    def test_block_of_page_offsets_by_start(self):
        seg = make_segment()
        assert seg.block_of_page(0) == 16
        assert seg.block_of_page(3) == 19

    def test_out_of_range_index_rejected(self):
        seg = make_segment(capacity=10)
        with pytest.raises(SegmentError):
            seg.page_of(10)
        with pytest.raises(SegmentError):
            seg.block_of_page(99)

    def test_poke_peek_roundtrip(self):
        seg = make_segment()
        seg.poke(5, "hello")
        assert seg.peek(5) == "hello"

    def test_oversized_object_rejected(self):
        with pytest.raises(SegmentError):
            make_segment(object_bytes=8192)

    def test_mark_all_initialized(self):
        seg = make_segment(capacity=64)
        seg.mark_all_initialized()
        assert seg.initialized_pages == {0, 1}

    @given(index=st.integers(min_value=0, max_value=319))
    def test_page_of_consistent_with_layout(self, index):
        seg = make_segment()
        assert seg.page_of(index) == index // 32


class TestRegion:
    def test_append_protocol(self):
        seg = make_segment()
        region = Region(seg, start=32, capacity=10)
        idx = region.next_index()
        assert idx == 32
        region.commit_append()
        assert region.count == 1
        assert list(region.indices()) == [32]

    def test_overflow_rejected(self):
        seg = make_segment()
        region = Region(seg, start=0, capacity=1)
        region.commit_append()
        with pytest.raises(SegmentError):
            region.next_index()

    def test_region_outside_segment_rejected(self):
        seg = make_segment(capacity=10)
        with pytest.raises(SegmentError):
            Region(seg, start=5, capacity=6)

    def test_is_empty(self):
        seg = make_segment()
        region = Region(seg, start=0, capacity=5)
        assert region.is_empty
        region.commit_append()
        assert not region.is_empty


class TestCarveRegions:
    def test_regions_page_aligned(self):
        seg = make_segment(capacity=320)
        regions = carve_regions(seg, [10, 10, 10])
        starts = [r.start for r in regions]
        assert starts == [0, 32, 64]  # each rounded up to a page boundary

    def test_exact_page_multiple_packs_tightly(self):
        seg = make_segment(capacity=320)
        regions = carve_regions(seg, [32, 32])
        assert [r.start for r in regions] == [0, 32]

    def test_capacity_check(self):
        seg = make_segment(capacity=64)
        with pytest.raises(SegmentError):
            carve_regions(seg, [33, 33])

    def test_labels_mismatch_rejected(self):
        seg = make_segment()
        with pytest.raises(SegmentError):
            carve_regions(seg, [1, 2], labels=["only-one"])

    def test_alignment_capacity_helper_matches(self):
        capacities = [10, 33, 7]
        total = region_capacity_with_alignment(capacities, 32)
        seg = make_segment(capacity=total)
        regions = carve_regions(seg, capacities)
        last = regions[-1]
        assert last.start + last.capacity <= total

    @given(
        capacities=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=6
        )
    )
    def test_helper_always_sufficient(self, capacities):
        total = region_capacity_with_alignment(capacities, 32)
        seg = make_segment(capacity=max(total, 1))
        regions = carve_regions(seg, capacities)
        # No two regions share a page.
        pages = set()
        for region in regions:
            if region.capacity == 0:
                continue
            first = region.start // 32
            last = (region.start + region.capacity - 1) // 32
            span = set(range(first, last + 1))
            assert not pages & span
            pages |= span
