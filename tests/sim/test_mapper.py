"""Tests for mapping setup costs (newMap/openMap/deleteMap)."""

import pytest

from repro.sim.disk import DiskGeometry, SimDisk
from repro.sim.errors import SegmentError
from repro.sim.mapper import MappingCosts, SegmentMapper


def make_mapper():
    return SegmentMapper(costs=MappingCosts(), page_size=4096)


class TestMappingCosts:
    def test_cost_ordering(self):
        costs = MappingCosts()
        for pages in (10, 1000, 12800):
            assert (
                costs.new_map_ms(pages)
                > costs.open_map_ms(pages)
                > costs.delete_map_ms(pages)
            )

    def test_linear_growth(self):
        costs = MappingCosts(base_ms=0.0)
        assert costs.new_map_ms(200) == pytest.approx(2 * costs.new_map_ms(100))


class TestSegmentMapper:
    def test_new_map_charges_setup(self):
        mapper = make_mapper()
        disk = SimDisk(0)
        mapper.new_map("a", disk, 320, 128)
        assert mapper.setup_ms == pytest.approx(mapper.costs.new_map_ms(10))

    def test_new_map_allocates_disk_space(self):
        mapper = make_mapper()
        disk = SimDisk(0)
        seg = mapper.new_map("a", disk, 320, 128)
        assert seg.n_pages == 10
        assert disk.allocated_blocks == 10

    def test_open_map_charges_less_than_new(self):
        mapper = make_mapper()
        seg = mapper.new_map("a", SimDisk(0), 320, 128)
        new_cost = mapper.take_setup_ms()
        mapper.open_map(seg)
        assert mapper.setup_ms < new_cost

    def test_delete_map_frees_space_and_data(self):
        mapper = make_mapper()
        disk = SimDisk(0)
        seg = mapper.new_map("a", disk, 320, 128)
        seg.mark_all_initialized()
        mapper.delete_map(seg)
        assert disk.allocated_blocks == 0
        assert not seg.initialized_pages

    def test_double_delete_rejected(self):
        mapper = make_mapper()
        seg = mapper.new_map("a", SimDisk(0), 32, 128)
        mapper.delete_map(seg)
        with pytest.raises(SegmentError):
            mapper.delete_map(seg)

    def test_open_deleted_rejected(self):
        mapper = make_mapper()
        seg = mapper.new_map("a", SimDisk(0), 32, 128)
        mapper.delete_map(seg)
        with pytest.raises(SegmentError):
            mapper.open_map(seg)

    def test_take_setup_resets(self):
        mapper = make_mapper()
        mapper.new_map("a", SimDisk(0), 32, 128)
        assert mapper.take_setup_ms() > 0
        assert mapper.setup_ms == 0.0

    def test_ids_unique(self):
        mapper = make_mapper()
        disk = SimDisk(0)
        a = mapper.new_map("a", disk, 32, 128)
        b = mapper.new_map("b", disk, 32, 128)
        assert a.segment_id != b.segment_id
