"""Tests for the simulated mechanical disk."""

import random

import pytest

from repro.sim.disk import DiskGeometry, SimDisk
from repro.sim.errors import DiskError


class TestDiskGeometry:
    def test_sequential_access_cheapest(self):
        geo = DiskGeometry()
        assert geo.access_ms(1) < geo.access_ms(1000)

    def test_same_position_pays_transfer_only(self):
        geo = DiskGeometry()
        assert geo.access_ms(0) == geo.transfer_ms

    def test_within_track_no_seek(self):
        geo = DiskGeometry(track_blocks=32)
        assert geo.access_ms(32) == geo.transfer_ms + geo.settle_ms

    def test_seek_grows_with_distance(self):
        geo = DiskGeometry()
        assert geo.access_ms(10_000) > geo.access_ms(100)

    def test_rejects_bad_parameters(self):
        with pytest.raises(DiskError):
            DiskGeometry(size_blocks=0)
        with pytest.raises(DiskError):
            DiskGeometry(transfer_ms=-1.0)
        with pytest.raises(DiskError):
            DiskGeometry(write_queue_depth=0)


class TestReads:
    def test_read_moves_arm(self):
        disk = SimDisk(0)
        disk.read_block(500)
        assert disk.arm_position == 500

    def test_read_counts_stats(self):
        disk = SimDisk(0)
        disk.read_block(1)
        disk.read_block(2)
        assert disk.stats.blocks_read == 2
        assert disk.stats.read_ms > 0

    def test_sequential_scan_cheaper_than_random(self):
        rng = random.Random(3)
        seq_disk, rnd_disk = SimDisk(0), SimDisk(1)
        n = 200
        seq = sum(seq_disk.read_block(i) for i in range(n))
        rnd = sum(rnd_disk.read_block(rng.randrange(20_000)) for _ in range(n))
        assert rnd > 1.5 * seq

    def test_out_of_range_rejected(self):
        disk = SimDisk(0)
        with pytest.raises(DiskError):
            disk.read_block(disk.geometry.size_blocks)
        with pytest.raises(DiskError):
            disk.read_block(-1)


class TestWriteBehind:
    def test_writes_deferred_until_queue_full(self):
        disk = SimDisk(0)
        depth = disk.geometry.write_queue_depth
        for i in range(depth - 1):
            disk.write_block(i * 100)
        assert disk.stats.blocks_written == 0
        assert disk.pending_write_count == depth - 1

    def test_queue_full_triggers_flush(self):
        disk = SimDisk(0)
        depth = disk.geometry.write_queue_depth
        for i in range(depth):
            disk.write_block(i * 100)
        assert disk.stats.blocks_written == depth
        assert disk.pending_write_count == 0

    def test_explicit_flush_drains_queue(self):
        disk = SimDisk(0)
        disk.write_block(10)
        cost = disk.flush()
        assert cost > 0
        assert disk.pending_write_count == 0
        assert disk.stats.flushes >= 1

    def test_flush_empty_queue_free(self):
        assert SimDisk(0).flush() == 0.0

    def test_elevator_writes_cheaper_than_random_reads(self):
        """The mechanism behind dttw < dttr: sorted batches seek less."""
        rng = random.Random(7)
        blocks = [rng.randrange(12_800) for _ in range(256)]
        reader, writer = SimDisk(0), SimDisk(1)
        read_cost = sum(reader.read_block(b) for b in blocks)
        write_cost = sum(writer.write_block(b) for b in blocks) + writer.flush()
        assert write_cost < read_cost

    def test_flush_sweeps_toward_nearer_end(self):
        disk = SimDisk(0)
        disk.read_block(10_000)  # park the arm high
        for b in (100, 5_000, 9_900):
            disk.write_block(b)
        disk.flush()
        # Sweep must end at the far end from the start position.
        assert disk.arm_position == 100


class TestAllocation:
    def test_contiguous_bump_allocation(self):
        disk = SimDisk(0)
        a = disk.allocate(100)
        b = disk.allocate(50)
        assert a == 0
        assert b == 100
        assert disk.allocated_blocks == 150

    def test_free_last_allocation_reclaims(self):
        disk = SimDisk(0)
        disk.allocate(100)
        b = disk.allocate(50)
        disk.free(b, 50)
        assert disk.allocated_blocks == 100

    def test_free_middle_is_noop(self):
        disk = SimDisk(0)
        a = disk.allocate(100)
        disk.allocate(50)
        disk.free(a, 100)
        assert disk.allocated_blocks == 150

    def test_exhaustion_rejected(self):
        disk = SimDisk(0, geometry=DiskGeometry(size_blocks=10))
        with pytest.raises(DiskError):
            disk.allocate(11)

    def test_zero_allocation_rejected(self):
        with pytest.raises(DiskError):
            SimDisk(0).allocate(0)
