"""Tests for the assembled machine and simulated processes."""

import pytest

from repro.core.records import SObject
from repro.sim.errors import SimulationError
from repro.sim.machine import SimConfig, SimMachine
from repro.sim.segment import Region


def make_machine(disks=2):
    return SimMachine(SimConfig().with_disks(disks))


class TestSimConfig:
    def test_with_disks_and_policy(self):
        cfg = SimConfig().with_disks(8).with_policy("clock")
        assert cfg.disks == 8
        assert cfg.replacement_policy == "clock"

    def test_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            SimConfig(disks=0)


class TestSimMachine:
    def test_builds_one_disk_per_controller(self):
        machine = make_machine(disks=3)
        assert len(machine.disks) == 3
        assert [d.disk_id for d in machine.disks] == [0, 1, 2]

    def test_duplicate_process_name_rejected(self):
        machine = make_machine()
        machine.create_process("p", frames=2)
        with pytest.raises(SimulationError):
            machine.create_process("p", frames=2)

    def test_process_lookup(self):
        machine = make_machine()
        p = machine.create_process("p", frames=2)
        assert machine.process("p") is p
        with pytest.raises(SimulationError):
            machine.process("ghost")

    def test_load_base_segment_free_and_initialized(self):
        machine = make_machine()
        objects = [SObject(i, i, i) for i in range(64)]
        seg = machine.load_base_segment("S0", 0, objects, 128)
        assert machine.mapper.setup_ms == 0.0
        assert seg.initialized_pages == {0, 1}
        assert seg.peek(5) == objects[5]

    def test_new_segment_charges_setup(self):
        machine = make_machine()
        machine.new_segment("tmp", 0, 64, 128)
        assert machine.mapper.setup_ms > 0
        assert machine.stats.map_operations == 1

    def test_recycle_segment_clears_data_and_charges(self):
        machine = make_machine()
        seg = machine.new_segment("tmp", 0, 64, 128)
        seg.mark_all_initialized()
        before = machine.mapper.setup_ms
        machine.recycle_segment(seg)
        assert machine.mapper.setup_ms > before
        assert not seg.initialized_pages
        assert machine.stats.map_operations == 3

    def test_delete_segment_drops_resident_pages(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=4)
        seg = machine.new_segment("tmp", 0, 64, 128)
        proc.write(seg, 0, "x")
        machine.delete_segment(seg)
        assert proc.memory.resident_count == 0

    def test_elapsed_includes_serial_setup(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=2)
        proc.advance(100.0)
        machine.new_segment("tmp", 0, 64, 128)
        assert machine.elapsed_ms > 100.0


class TestSimProcess:
    def test_read_charges_fault_then_hits(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=4)
        objects = [SObject(i, i, i) for i in range(64)]
        seg = machine.load_base_segment("S0", 0, objects, 128)
        assert proc.clock_ms == 0.0
        obj = proc.read(seg, 0)
        assert obj == objects[0]
        first = proc.clock_ms
        assert first > 0
        proc.read(seg, 1)  # same page
        assert proc.clock_ms == first

    def test_write_stores_value(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=4)
        seg = machine.new_segment("tmp", 0, 64, 128)
        proc.write(seg, 3, "payload")
        assert seg.peek(3) == "payload"

    def test_append_via_region(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=4)
        seg = machine.new_segment("tmp", 0, 64, 128)
        region = Region(seg, start=0, capacity=10)
        idx = proc.append(region, "a")
        assert idx == 0
        assert region.count == 1

    def test_cpu_charges(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=2)
        proc.charge_map(10)
        proc.charge_hash(5)
        cfg = machine.config
        assert proc.clock_ms == pytest.approx(10 * cfg.map_ms + 5 * cfg.hash_ms)
        assert machine.stats.cpu_map_calls == 10
        assert machine.stats.cpu_hash_calls == 5

    def test_heap_charges_update_stats(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=2)
        proc.charge_compare(3)
        proc.charge_swap(2)
        proc.charge_heap_transfer(1)
        assert machine.stats.heap_compares == 3
        assert machine.stats.heap_swaps == 2
        assert machine.stats.heap_transfers == 1

    def test_transfers_count_bytes(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=2)
        proc.transfer_private(1000)
        proc.transfer_to_shared(500)
        assert machine.stats.bytes_moved_private == 1000
        assert machine.stats.bytes_moved_shared == 500

    def test_sync_to_never_rewinds(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=2)
        proc.advance(50.0)
        proc.sync_to(20.0)
        assert proc.clock_ms == 50.0
        proc.sync_to(80.0)
        assert proc.clock_ms == 80.0

    def test_negative_advance_rejected(self):
        machine = make_machine()
        proc = machine.create_process("p", frames=2)
        with pytest.raises(SimulationError):
            proc.advance(-1.0)
