"""Property-based tests of the simulated disk's mechanical invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.disk import DiskGeometry, SimDisk

block = st.integers(min_value=0, max_value=65_535)


class TestAccessCostProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(block, min_size=1, max_size=60))
    def test_every_read_costs_at_least_transfer_time(self, blocks):
        disk = SimDisk(0)
        for b in blocks:
            assert disk.read_block(b) >= disk.geometry.transfer_ms

    @settings(max_examples=50, deadline=None)
    @given(st.lists(block, min_size=1, max_size=60))
    def test_stats_match_operations(self, blocks):
        disk = SimDisk(0)
        total = sum(disk.read_block(b) for b in blocks)
        assert disk.stats.blocks_read == len(blocks)
        assert disk.stats.read_ms == pytest.approx(total)

    @settings(max_examples=50, deadline=None)
    @given(distance=st.integers(min_value=0, max_value=60_000))
    def test_cost_monotone_in_distance(self, distance):
        geo = DiskGeometry()
        assert geo.access_ms(distance) <= geo.access_ms(distance + 1000) + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(st.lists(block, min_size=2, max_size=40))
    def test_sorted_visit_never_dearer_than_reverse_worst_case(self, blocks):
        """Visiting blocks in sorted order costs no more than the total of
        visiting them in an order that maximizes backtracking."""
        ordered, scrambled = SimDisk(0), SimDisk(1)
        asc = sorted(blocks)
        cost_sorted = sum(ordered.read_block(b) for b in asc)
        # Worst-ish case: alternate extremes.
        zigzag = []
        lo, hi = 0, len(asc) - 1
        while lo <= hi:
            zigzag.append(asc[lo])
            if lo != hi:
                zigzag.append(asc[hi])
            lo += 1
            hi -= 1
        cost_zigzag = sum(scrambled.read_block(b) for b in zigzag)
        assert cost_sorted <= cost_zigzag + 1e-9


class TestWriteBehindProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(block, min_size=1, max_size=80))
    def test_all_writes_eventually_hit_disk(self, blocks):
        disk = SimDisk(0)
        for b in blocks:
            disk.write_block(b)
        disk.flush()
        assert disk.stats.blocks_written == len(blocks)
        assert disk.pending_write_count == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(block, min_size=1, max_size=80))
    def test_double_flush_is_idempotent(self, blocks):
        disk = SimDisk(0)
        for b in blocks:
            disk.write_block(b)
        disk.flush()
        assert disk.flush() == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(block, min_size=8, max_size=64))
    def test_total_time_accounted(self, blocks):
        disk = SimDisk(0)
        charged = sum(disk.write_block(b) for b in blocks) + disk.flush()
        enqueue = len(blocks) * disk.geometry.write_enqueue_ms
        assert charged == pytest.approx(disk.stats.write_ms + enqueue)


class TestAllocatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=512), max_size=20))
    def test_allocations_disjoint_and_ordered(self, sizes):
        disk = SimDisk(0)
        cursor = 0
        for size in sizes:
            if cursor + size > disk.geometry.size_blocks:
                break
            start = disk.allocate(size)
            assert start == cursor
            cursor += size
        assert disk.allocated_blocks == cursor
