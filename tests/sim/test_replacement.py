"""Tests for the page replacement policies."""

import pytest

from repro.sim.errors import MemoryError_
from repro.sim.replacement import (
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    make_policy,
)


class TestLru:
    def test_evicts_least_recently_used(self):
        lru = LruPolicy()
        for key in "abc":
            lru.insert(key)
        lru.touch("a")
        assert lru.evict() == "b"

    def test_insert_order_without_touches(self):
        lru = LruPolicy()
        for key in "abc":
            lru.insert(key)
        assert [lru.evict() for _ in range(3)] == ["a", "b", "c"]

    def test_double_insert_rejected(self):
        lru = LruPolicy()
        lru.insert("a")
        with pytest.raises(MemoryError_):
            lru.insert("a")

    def test_touch_missing_rejected(self):
        with pytest.raises(MemoryError_):
            LruPolicy().touch("ghost")

    def test_evict_empty_rejected(self):
        with pytest.raises(MemoryError_):
            LruPolicy().evict()

    def test_remove_is_idempotent(self):
        lru = LruPolicy()
        lru.insert("a")
        lru.remove("a")
        lru.remove("a")
        assert len(lru) == 0

    def test_contains_and_iter(self):
        lru = LruPolicy()
        lru.insert("a")
        lru.insert("b")
        assert "a" in lru and "c" not in lru
        assert set(lru) == {"a", "b"}


class TestClock:
    def test_second_chance_spares_referenced_page(self):
        clock = ClockPolicy()
        for key in "abc":
            clock.insert(key)
        # All reference bits set: the hand clears a's and b's and c's bits,
        # wraps, and evicts a (now unreferenced).
        assert clock.evict() == "a"

    def test_touched_page_survives_one_sweep(self):
        clock = ClockPolicy()
        for key in "abc":
            clock.insert(key)
        clock.evict()  # clears bits, evicts "a"
        clock.touch("b")
        assert clock.evict() == "c"  # b was re-referenced, c was not

    def test_approximates_lru_on_simple_pattern(self):
        clock = ClockPolicy()
        for key in "abcd":
            clock.insert(key)
        victim = clock.evict()
        assert victim == "a"

    def test_double_insert_rejected(self):
        clock = ClockPolicy()
        clock.insert("a")
        with pytest.raises(MemoryError_):
            clock.insert("a")

    def test_evict_empty_rejected(self):
        with pytest.raises(MemoryError_):
            ClockPolicy().evict()


class TestFifo:
    def test_touch_does_not_change_order(self):
        fifo = FifoPolicy()
        for key in "abc":
            fifo.insert(key)
        fifo.touch("a")
        assert fifo.evict() == "a"

    def test_fifo_order(self):
        fifo = FifoPolicy()
        for key in "abc":
            fifo.insert(key)
        assert [fifo.evict() for _ in range(3)] == ["a", "b", "c"]

    def test_touch_missing_rejected(self):
        with pytest.raises(MemoryError_):
            FifoPolicy().touch("ghost")


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LruPolicy), ("clock", ClockPolicy), ("fifo", FifoPolicy)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU"), LruPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(MemoryError_):
            make_policy("optimal")
