"""Tests for the paging trace recorder."""

import pytest

from repro.sim.disk import SimDisk
from repro.sim.memory import PagedMemory
from repro.sim.segment import SimSegment
from repro.sim.trace import (
    TraceRecorder,
    attach_recorder,
    detach_recorder,
    fault_profile,
    render_fault_strip,
)


def make_segment(name="seg", capacity=320, seg_id=1, disk=None):
    disk = disk or SimDisk(0)
    segment = SimSegment(
        segment_id=seg_id,
        name=name,
        disk=disk,
        start_block=disk.allocate(10),
        capacity_objects=capacity,
        object_bytes=128,
        page_size=4096,
    )
    segment.mark_all_initialized()
    return segment


class TestRecorder:
    def test_records_every_access(self):
        mem = PagedMemory(frames=4)
        seg = make_segment()
        recorder = attach_recorder(mem)
        mem.access(seg, 0)
        mem.access(seg, 0)
        mem.access(seg, 1, write=True)
        assert recorder.access_count == 3
        assert recorder.fault_count == 2
        assert recorder.events[1].fault is False
        assert recorder.events[2].write is True

    def test_detach_stops_recording(self):
        mem = PagedMemory(frames=4)
        seg = make_segment()
        recorder = attach_recorder(mem)
        mem.access(seg, 0)
        detach_recorder(mem)
        mem.access(seg, 1)
        assert recorder.access_count == 1

    def test_detach_without_attach_is_noop(self):
        mem = PagedMemory(frames=4)
        detach_recorder(mem)  # must not raise

    def test_traced_cost_identical(self):
        plain = PagedMemory(frames=2)
        traced = PagedMemory(frames=2)
        attach_recorder(traced)
        disk_a, disk_b = SimDisk(0), SimDisk(1)
        seg_a = make_segment(disk=disk_a)
        seg_b = make_segment(disk=disk_b)
        pattern = [0, 1, 2, 0, 1, 3, 0]
        cost_a = sum(plain.access(seg_a, p) for p in pattern)
        cost_b = sum(traced.access(seg_b, p) for p in pattern)
        assert cost_a == pytest.approx(cost_b)

    def test_faults_by_segment(self):
        mem = PagedMemory(frames=8)
        disk = SimDisk(0)
        a = make_segment(name="A", seg_id=1, disk=disk)
        b = make_segment(name="B", seg_id=2, disk=disk)
        recorder = attach_recorder(mem)
        mem.access(a, 0)
        mem.access(a, 1)
        mem.access(b, 0)
        assert recorder.faults_by_segment() == {"A": 2, "B": 1}

    def test_eviction_flagged(self):
        mem = PagedMemory(frames=1)
        seg = make_segment()
        recorder = attach_recorder(mem)
        mem.access(seg, 0, write=True)
        mem.access(seg, 1)
        assert recorder.events[1].evicted_segment is not None
        assert recorder.events[1].evicted_dirty is True

    def test_premature_refaults(self):
        mem = PagedMemory(frames=1)
        seg = make_segment()
        recorder = attach_recorder(mem)
        for page in (0, 1, 0, 1, 0):
            mem.access(seg, page)
        assert recorder.premature_refaults("seg") == 3
        assert recorder.premature_refaults("other") == 0


class TestProfiles:
    def _recorder_with_pattern(self, faults):
        recorder = TraceRecorder()
        seg = make_segment()
        for i, fault in enumerate(faults):
            recorder.record(seg, i % 4, False, fault, None, False)
        return recorder

    def test_fault_profile_rates(self):
        recorder = self._recorder_with_pattern([True] * 10 + [False] * 10)
        profile = fault_profile(recorder, buckets=2)
        assert profile[0] == pytest.approx(1.0)
        assert profile[-1] == pytest.approx(0.0)

    def test_fault_profile_empty(self):
        assert fault_profile(TraceRecorder(), buckets=5) == [0.0] * 5

    def test_fault_profile_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            fault_profile(TraceRecorder(), buckets=0)

    def test_render_fault_strip_extremes(self):
        recorder = self._recorder_with_pattern([True] * 30 + [False] * 30)
        strip = render_fault_strip(recorder, width=2)
        assert strip[0] == "#"
        assert strip[-1] == " "

    def test_render_strip_length(self):
        recorder = self._recorder_with_pattern([True, False] * 100)
        assert len(render_fault_strip(recorder, width=40)) <= 40
