"""Tests for the shared G-buffer channel."""

import pytest

from repro.core.records import RObject, SObject
from repro.sim.errors import SimulationError
from repro.sim.machine import SimConfig, SimMachine
from repro.sim.sharedbuf import GBufferChannel


def make_channel(g_bytes=4096, frames=8):
    machine = SimMachine(SimConfig().with_disks(1))
    s_objects = [SObject(i, i * 10, i) for i in range(256)]
    s_segment = machine.load_base_segment("S0", 0, s_objects, 128)
    rproc = machine.create_process("R", frames=frames)
    sproc = machine.create_process("S", frames=frames)
    channel = GBufferChannel(
        rproc=rproc,
        sproc=sproc,
        s_segment=s_segment,
        g_bytes=g_bytes,
        r_bytes=128,
        sptr_bytes=8,
        s_bytes=128,
    )
    return machine, channel, rproc, sproc


class TestBatching:
    def test_batch_capacity_from_g(self):
        _, channel, _, _ = make_channel(g_bytes=4096)
        assert channel.batch_capacity == 4096 // (128 + 8 + 128)

    def test_requests_buffered_until_capacity(self):
        _, channel, _, _ = make_channel()
        delivered = []
        for i in range(channel.batch_capacity - 1):
            channel.request(RObject(i, i, 0), i, lambda r, s: delivered.append((r, s)))
        assert delivered == []
        assert channel.batches_flushed == 0

    def test_full_batch_auto_flushes(self):
        _, channel, _, _ = make_channel()
        delivered = []
        for i in range(channel.batch_capacity):
            channel.request(RObject(i, i, 0), i, lambda r, s: delivered.append((r, s)))
        assert len(delivered) == channel.batch_capacity
        assert channel.batches_flushed == 1

    def test_flush_partial_batch(self):
        _, channel, _, _ = make_channel()
        delivered = []
        channel.request(RObject(0, 5, 0), 5, lambda r, s: delivered.append((r, s)))
        channel.flush(lambda r, s: delivered.append((r, s)))
        assert len(delivered) == 1
        r, s = delivered[0]
        assert s.sid == 5

    def test_flush_empty_is_noop(self):
        _, channel, _, _ = make_channel()
        channel.flush(lambda r, s: pytest.fail("nothing should be delivered"))
        assert channel.batches_flushed == 0


class TestAccounting:
    def test_two_context_switches_per_batch(self):
        machine, channel, _, _ = make_channel()
        channel.request(RObject(0, 0, 0), 0, lambda r, s: None)
        channel.flush(lambda r, s: None)
        assert machine.stats.context_switches == 2

    def test_rproc_waits_for_service(self):
        _, channel, rproc, sproc = make_channel()
        channel.request(RObject(0, 0, 0), 0, lambda r, s: None)
        channel.flush(lambda r, s: None)
        # Synchronous exchange: the requester's clock is at least the
        # server's after the batch completes.
        assert rproc.clock_ms >= sproc.clock_ms

    def test_sproc_faults_charged_on_its_memory(self):
        machine, channel, _, sproc = make_channel()
        channel.request(RObject(0, 200, 0), 200, lambda r, s: None)
        channel.flush(lambda r, s: None)
        assert machine.stats.memory_stats("S").faults >= 1
        assert machine.stats.memory_stats("R").faults == 0

    def test_duplicate_offsets_hit_sproc_cache(self):
        machine, channel, _, _ = make_channel()
        for _ in range(4):
            channel.request(RObject(0, 7, 0), 7, lambda r, s: None)
        channel.flush(lambda r, s: None)
        assert machine.stats.memory_stats("S").faults == 1

    def test_shared_transfer_bytes_counted(self):
        machine, channel, _, _ = make_channel()
        channel.request(RObject(0, 0, 0), 0, lambda r, s: None)
        channel.flush(lambda r, s: None)
        # R side moves r + sptr, S side moves s.
        assert machine.stats.bytes_moved_shared == 128 + 8 + 128


class TestValidation:
    def test_zero_g_rejected(self):
        machine = SimMachine(SimConfig().with_disks(1))
        seg = machine.load_base_segment("S0", 0, [SObject(0, 0, 0)], 128)
        r = machine.create_process("R", frames=1)
        s = machine.create_process("S", frames=1)
        with pytest.raises(SimulationError):
            GBufferChannel(r, s, seg, 0, 128, 8, 128)

    def test_tiny_g_still_processes_one_at_a_time(self):
        _, channel, _, _ = make_channel(g_bytes=1)
        assert channel.batch_capacity == 1
        delivered = []
        channel.request(RObject(0, 3, 0), 3, lambda r, s: delivered.append(s.sid))
        assert delivered == [3]
