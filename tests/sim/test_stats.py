"""Tests for the statistics containers."""

import pytest

from repro.sim.stats import DiskStats, MachineStats, MemoryStats


class TestDiskStats:
    def test_totals(self):
        stats = DiskStats(blocks_read=3, blocks_written=2)
        assert stats.blocks_total == 5


class TestMemoryStats:
    def test_hit_rate_no_accesses(self):
        assert MemoryStats().hit_rate == 1.0

    def test_hit_rate(self):
        stats = MemoryStats(accesses=10, faults=3)
        assert stats.hit_rate == pytest.approx(0.7)


class TestMachineStats:
    def test_lazily_created_substats(self):
        stats = MachineStats()
        stats.disk_stats(0).blocks_read += 4
        stats.disk_stats(1).blocks_written += 2
        stats.memory_stats("p").faults += 7
        assert stats.total_blocks_read == 4
        assert stats.total_blocks_written == 2
        assert stats.total_faults == 7

    def test_substats_are_stable_references(self):
        stats = MachineStats()
        assert stats.disk_stats(0) is stats.disk_stats(0)
        assert stats.memory_stats("x") is stats.memory_stats("x")

    def test_summary_mentions_key_counters(self):
        stats = MachineStats(context_switches=12)
        stats.disk_stats(0).blocks_read = 34
        text = stats.summary()
        assert "34" in text and "12" in text
