"""MetricsRegistry semantics: keys, merges, snapshots, the null registry."""

import json
import pytest

from repro.obs import (
    DEFAULT_MS_BUCKETS,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    active,
    activate,
    collecting,
    deactivate,
    metric_key,
    parse_metric_key,
)


class TestMetricKeys:
    def test_plain_name_round_trips(self):
        assert metric_key("storage.flush", {}) == "storage.flush"
        assert parse_metric_key("storage.flush") == ("storage.flush", {})

    def test_labels_are_sorted_and_round_trip(self):
        key = metric_key("storage.read.bytes", {"kind": "RP", "op": "open"})
        assert key == "storage.read.bytes{kind=RP,op=open}"
        assert parse_metric_key(key) == (
            "storage.read.bytes",
            {"kind": "RP", "op": "open"},
        )

    def test_label_order_does_not_matter(self):
        assert metric_key("m", {"b": 2, "a": 1}) == metric_key(
            "m", {"a": 1, "b": 2}
        )


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("records", 10, kind="R")
        registry.count("records", 5, kind="R")
        registry.count("records", 3, kind="S")
        assert registry.counter_value("records", kind="R") == 15
        assert registry.counter_value("records", kind="S") == 3
        assert registry.counter_value("records", kind="missing") == 0

    def test_counters_named_sums_across_labels(self):
        registry = MetricsRegistry()
        registry.count("storage.read.bytes", 100, kind="R")
        registry.count("storage.read.bytes", 200, kind="S")
        named = registry.counters_named("storage.read.bytes")
        assert sum(named.values()) == 300

    def test_gauges_keep_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("worker.wall_ms", 12.5, worker=0)
        registry.gauge("worker.wall_ms", 99.0, worker=0)
        key = metric_key("worker.wall_ms", {"worker": 0})
        assert registry.gauges[key] == 99.0


class TestHistograms:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        registry.observe("span_ms", 0.5)
        registry.observe("span_ms", 5000.0)
        hist = registry.histograms["span_ms"]
        assert hist.count == 2
        assert hist.total == pytest.approx(5000.5)
        assert hist.min == pytest.approx(0.5)
        assert hist.max == pytest.approx(5000.0)
        assert sum(hist.bucket_counts) == 2

    def test_mismatched_bounds_refuse_to_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.observe("m", 1.0)
        right.observe("m", 1.0, bounds=(1.0, 2.0))
        with pytest.raises(MetricsError):
            left.merge(right)

    def test_bounds_must_be_strictly_increasing(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.observe("m", 1.0, bounds=(2.0, 1.0))


class TestMergeSemantics:
    """Cross-process merges must be associative and lossless.

    The runner harvests one snapshot per worker task and folds them into
    the driver registry in harvest order; these properties guarantee the
    totals do not depend on which worker finished first.
    """

    @staticmethod
    def _worker_registry(worker, records):
        registry = MetricsRegistry()
        registry.count("storage.read.records", records, kind="R")
        registry.count("worker.tasks", 1, task="pass0")
        registry.gauge("worker.wall_ms", 10.0 * (worker + 1), worker=worker)
        for i in range(records):
            registry.observe("span_ms", 0.1 * (i + 1), span="task")
        return registry

    def test_merge_is_associative(self):
        parts = [self._worker_registry(w, records=3 + w) for w in range(3)]

        left = MetricsRegistry.merged(
            [MetricsRegistry.merged(parts[:2]), parts[2]]
        )
        right = MetricsRegistry.merged(
            [parts[0], MetricsRegistry.merged(parts[1:])]
        )
        assert left.snapshot() == right.snapshot()

    def test_merge_order_does_not_matter(self):
        parts = [self._worker_registry(w, records=5) for w in range(4)]
        forward = MetricsRegistry.merged(parts)
        backward = MetricsRegistry.merged(reversed(parts))
        assert forward.snapshot() == backward.snapshot()

    def test_merge_is_lossless(self):
        parts = [self._worker_registry(w, records=4) for w in range(4)]
        merged = MetricsRegistry.merged(parts)

        assert merged.counter_value(
            "storage.read.records", kind="R"
        ) == 4 * len(parts)
        assert merged.counter_value("worker.tasks", task="pass0") == len(parts)
        # Disjointly-labelled gauges all survive.
        for worker in range(4):
            key = metric_key("worker.wall_ms", {"worker": worker})
            assert merged.gauges[key] == 10.0 * (worker + 1)
        hist_key = metric_key("span_ms", {"span": "task"})
        hist = merged.histograms[hist_key]
        assert hist.count == sum(p.histograms[hist_key].count for p in parts)
        assert hist.total == pytest.approx(
            sum(p.histograms[hist_key].total for p in parts)
        )

    def test_merge_accepts_snapshot_dicts(self):
        parts = [self._worker_registry(w, records=2) for w in range(3)]
        from_objects = MetricsRegistry.merged(parts)
        from_snapshots = MetricsRegistry.merged(
            json.loads(json.dumps(p.snapshot())) for p in parts
        )
        assert from_objects.snapshot() == from_snapshots.snapshot()

    def test_gauge_collision_takes_max(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("worker.wall_ms", 10.0, worker=0)
        right.gauge("worker.wall_ms", 25.0, worker=0)
        merged = MetricsRegistry.merged([left, right])
        assert merged.gauges[metric_key("worker.wall_ms", {"worker": 0})] == 25.0


class TestSnapshots:
    """Snapshots are the cross-process wire format (worker sidecar files)."""

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.count("storage.write.bytes", 4096, kind="PAIRS")
        registry.gauge("worker.wall_ms", 7.25, worker=2)
        registry.observe("span_ms", 3.0, span="pass/task")

        wire = json.dumps(registry.snapshot())
        restored = MetricsRegistry.from_snapshot(json.loads(wire))
        assert restored.snapshot() == registry.snapshot()

    def test_unknown_snapshot_version_is_rejected(self):
        snapshot = MetricsRegistry().snapshot()
        snapshot["snapshot_version"] = 99
        with pytest.raises(MetricsError):
            MetricsRegistry.from_snapshot(snapshot)

    def test_default_bucket_bounds_are_shared(self):
        registry = MetricsRegistry()
        registry.observe("m", 1.0)
        assert tuple(registry.histograms["m"].bounds) == DEFAULT_MS_BUCKETS


class TestActivation:
    def test_inactive_default_is_disabled_null_registry(self):
        assert isinstance(active(), NullRegistry)
        assert not active().enabled
        assert not active()

    def test_null_registry_absorbs_everything(self):
        null = NullRegistry()
        null.count("c", 1)
        null.gauge("g", 1.0)
        null.observe("h", 1.0)
        assert null.snapshot()["counters"] == {}

    def test_activate_deactivate_nest(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        activate(outer)
        try:
            assert active() is outer
            activate(inner)
            try:
                assert active() is inner
            finally:
                deactivate()
            assert active() is outer
        finally:
            deactivate()
        assert not active().enabled

    def test_collecting_context_manager(self):
        with collecting() as registry:
            assert active() is registry
            active().count("c", 1)
        assert not active().enabled
        assert registry.counter_value("c") == 1
