"""The exported stats document: schema validity, golden shape, comparison.

The golden file ``golden_stats_shape.json`` pins the *structure* of the
document a real instrumented run emits — section names, per-pass labels,
per-worker summary fields, per-segment kinds, counter/gauge key sets and
span paths — without pinning timings, which vary run to run.  Any schema
change (renamed counter, dropped section, new pass label) fails here and
forces a conscious update: regenerate with ``REPRO_REGEN_GOLDEN=1``.
"""

import json
from pathlib import Path

import pytest

from repro import config
from repro.model import (
    MachineParameters,
    MemoryParameters,
    RelationParameters,
    grace_cost,
)
from repro.obs import (
    SCHEMA_VERSION,
    StatsSchemaError,
    build_sim_stats_document,
    compare_with_model,
    load_stats_document,
    schema_problems,
    validate_stats_document,
    write_stats_document,
)
from repro.parallel import run_real_join
from repro.sim.stats import MachineStats
from repro.workload import WorkloadSpec, generate_workload

GOLDEN = Path(__file__).parent / "golden_stats_shape.json"


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        WorkloadSpec(r_objects=800, s_objects=800, seed=21), disks=4
    )


@pytest.fixture(scope="module")
def real_document(workload, tmp_path_factory):
    root = tmp_path_factory.mktemp("obs") / "db"
    result = run_real_join(
        "grace", workload, str(root), use_processes=False, collect_metrics=True
    )
    return result.stats_document(workload)


def document_shape(document: dict) -> dict:
    """Reduce a document to its run-independent structural skeleton."""
    return {
        "top_level": sorted(document),
        "schema_version": document["schema_version"],
        "kind": document["kind"],
        "meta": {
            "fields": sorted(document["meta"]),
            "algorithm": document["meta"]["algorithm"],
            "backend": document["meta"]["backend"],
        },
        "totals": {
            "fields": sorted(document["totals"]),
            "counters": sorted(document["totals"]["counters"]),
            "gauges": sorted(document["totals"]["gauges"]),
            "histograms": sorted(document["totals"]["histograms"]),
        },
        "per_pass": {
            label: sorted(entry)
            for label, entry in sorted(document["per_pass"].items())
        },
        "per_worker": {
            label: {
                worker: sorted(summary)
                for worker, summary in sorted(workers.items())
            }
            for label, workers in sorted(document["per_worker"].items())
        },
        "per_segment": {
            kind: sorted(entry)
            for kind, entry in sorted(document["per_segment"].items())
        },
        "span_paths": sorted({s["path"] for s in document["spans"]}),
    }


class TestRealDocument:
    def test_document_is_schema_valid(self, real_document):
        assert schema_problems(real_document) == []
        validate_stats_document(real_document)

    def test_shape_matches_golden(self, real_document):
        shape = document_shape(real_document)
        if config.env_flag("regen_golden"):
            GOLDEN.write_text(
                json.dumps(shape, indent=2, sort_keys=True) + "\n"
            )
        golden = json.loads(GOLDEN.read_text())
        assert shape == golden, (
            "exported stats document structure drifted from the golden "
            "shape; if intentional, regenerate with REPRO_REGEN_GOLDEN=1 "
            "and document the change in docs/metrics_schema.md"
        )

    def test_per_worker_summaries_account_for_the_join(self, real_document, workload):
        partition_workers = real_document["per_worker"]["partition"]
        assert sorted(partition_workers) == [
            str(d) for d in range(workload.disks)
        ]
        probe_workers = real_document["per_worker"]["probe"].values()
        assert sum(w["pairs"] for w in probe_workers) == workload.r_objects_total
        for workers in real_document["per_worker"].values():
            for summary in workers.values():
                assert summary["wall_ms"] > 0
                assert summary["pages_touched_est"] >= 0

    def test_segment_section_covers_base_spill_and_output(self, real_document):
        kinds = set(real_document["per_segment"])
        assert {"R", "S", "BS", "PAIRS"} <= kinds
        pairs = real_document["per_segment"]["PAIRS"]
        assert pairs["created"] > 0
        assert pairs["write_records"] > 0

    def test_round_trips_through_disk(self, real_document, tmp_path):
        path = tmp_path / "stats.json"
        write_stats_document(path, real_document)
        assert load_stats_document(path) == json.loads(
            json.dumps(real_document)
        )


class TestSchemaProblems:
    def test_missing_version_is_reported(self, real_document):
        broken = dict(real_document)
        del broken["schema_version"]
        assert any("schema_version" in p for p in schema_problems(broken))

    def test_future_version_is_rejected(self, real_document):
        broken = dict(real_document)
        broken["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in p for p in schema_problems(broken))

    def test_missing_section_is_reported(self, real_document):
        broken = dict(real_document)
        del broken["per_segment"]
        assert any("per_segment" in p for p in schema_problems(broken))

    def test_orphan_per_worker_pass_is_reported(self, real_document):
        broken = json.loads(json.dumps(real_document))
        broken["per_worker"]["phantom"] = {}
        assert any("phantom" in p for p in schema_problems(broken))

    def test_write_refuses_invalid_documents(self, tmp_path):
        with pytest.raises(StatsSchemaError):
            write_stats_document(tmp_path / "bad.json", {"kind": "nonsense"})
        assert not (tmp_path / "bad.json").exists() or True

    def test_non_mapping_document(self):
        assert schema_problems([1, 2, 3])


class TestSimDocument:
    def test_duck_typed_result_exports_valid_document(self):
        class FakeRun:
            algorithm = "grace"
            elapsed_ms = 120.0
            setup_ms = 4.0
            pair_count = 800
            checksum = 1234
            stats = MachineStats(context_switches=7)
            pass_ms = {"pass0": 40.0, "pass1": 30.0, "probe-join": 50.0}
            per_process_ms = {"Rproc0": 110.0, "Sproc": 60.0}

        document = build_sim_stats_document(FakeRun())
        assert schema_problems(document) == []
        assert document["meta"]["backend"] == "simulator"
        assert document["totals"]["counters"]["sim.context_switches"] == 7
        assert document["per_worker"]["run"]["Rproc0"]["wall_ms"] == 110.0


class TestModelComparison:
    @pytest.fixture(scope="class")
    def report(self):
        relations = RelationParameters(r_objects=800, s_objects=800)
        memory = MemoryParameters.from_fractions(relations, 0.1)
        return grace_cost(MachineParameters(), relations, memory)

    def test_compare_aligns_measured_and_model_passes(self, real_document, report):
        comparison = compare_with_model(real_document, report)
        assert comparison.algorithm == "grace"
        assert {row.measured_pass for row in comparison.rows} == {
            "partition",
            "probe",
        }
        assert sum(row.measured_share for row in comparison.rows) == pytest.approx(1.0)
        assert sum(row.predicted_share for row in comparison.rows) == pytest.approx(1.0)
        # The model's setup pass has no measured twin; it must be surfaced,
        # not silently dropped.
        assert comparison.unaligned_model_ms > 0
        text = comparison.describe()
        assert "partition" in text and "probe" in text

    def test_unknown_algorithm_is_rejected(self, real_document, report):
        broken = json.loads(json.dumps(real_document))
        broken["meta"]["algorithm"] = "hash-loops"
        with pytest.raises(StatsSchemaError):
            compare_with_model(broken, report)
