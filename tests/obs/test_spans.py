"""Span tracing: nesting paths, histogram feed, disabled-mode behaviour."""

import pytest

from repro.obs import MetricsRegistry, NullRegistry, collecting, metric_key, span


class TestSpanRecording:
    def test_single_span_records_name_path_and_time(self):
        registry = MetricsRegistry()
        with span("pass", registry=registry, algo="grace", pass_no=0):
            pass
        assert len(registry.spans) == 1
        record = registry.spans[0]
        assert record["name"] == "pass"
        assert record["path"] == "pass"
        assert record["depth"] == 0
        assert record["ms"] >= 0
        assert record["attrs"] == {"algo": "grace", "pass_no": 0}

    def test_nested_spans_build_slash_paths(self):
        registry = MetricsRegistry()
        with span("join", registry=registry):
            with span("pass0", registry=registry):
                with span("task", registry=registry):
                    pass
            with span("pass1", registry=registry):
                pass
        paths = [s["path"] for s in registry.spans]
        # Spans close innermost-first.
        assert paths == ["join/pass0/task", "join/pass0", "join/pass1", "join"]
        assert [s["depth"] for s in registry.spans] == [2, 1, 1, 0]

    def test_sibling_spans_do_not_inherit_closed_prefixes(self):
        registry = MetricsRegistry()
        with span("a", registry=registry):
            pass
        with span("b", registry=registry):
            pass
        assert [s["path"] for s in registry.spans] == ["a", "b"]

    def test_spans_feed_the_span_ms_histogram(self):
        registry = MetricsRegistry()
        with span("outer", registry=registry):
            with span("inner", registry=registry):
                pass
        assert metric_key("span_ms", {"span": "outer"}) in registry.histograms
        assert metric_key("span_ms", {"span": "outer/inner"}) in registry.histograms

    def test_exceptions_are_recorded_and_stack_unwinds(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with span("outer", registry=registry):
                with span("inner", registry=registry):
                    raise ValueError("boom")
        assert [s.get("error") for s in registry.spans] == [
            "ValueError",
            "ValueError",
        ]
        # The span stack must be empty again: a later span starts fresh.
        with span("after", registry=registry):
            pass
        assert registry.spans[-1]["path"] == "after"

    def test_non_json_attrs_are_stringified(self):
        registry = MetricsRegistry()
        with span("s", registry=registry, path=object()):
            pass
        assert isinstance(registry.spans[0]["attrs"]["path"], str)


class TestActiveRegistryIntegration:
    def test_span_uses_the_active_registry(self):
        with collecting() as registry:
            with span("pass"):
                with span("task"):
                    pass
        assert [s["path"] for s in registry.spans] == ["pass/task", "pass"]

    def test_disabled_registry_records_nothing(self):
        null = NullRegistry()
        with span("pass", registry=null):
            pass
        assert null.spans == []
        assert null.histograms == {}

    def test_no_active_registry_is_a_no_op(self):
        # Outside any collecting() scope, spans must be inert.
        with span("pass", algo="grace"):
            pass
