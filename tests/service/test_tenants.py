"""Tenant policy config: parsing, inheritance, resolution, strictness."""

from __future__ import annotations

import json

import pytest

from repro.service.tenants import (
    TenantConfig,
    TenantError,
    TenantPolicy,
    parse_budget,
)


# ------------------------------------------------------------- parse_budget

def test_parse_budget_accepts_bytes_and_suffixes():
    assert parse_budget(None, "f") is None
    assert parse_budget(4096, "f") == 4096
    assert parse_budget("256K", "f") == 256 * 1024
    assert parse_budget("2M", "f") == 2 * 1024 * 1024
    assert parse_budget("1G", "f") == 1 << 30
    assert parse_budget(" 64m ", "f") == 64 << 20  # whitespace + lowercase


@pytest.mark.parametrize("bad", ["", "abc", "12Q", -1, 0, True, 1.5, []])
def test_parse_budget_rejects_garbage(bad):
    with pytest.raises(TenantError):
        parse_budget(bad, "f")


# ------------------------------------------------------------------ parsing

def test_parse_full_config():
    config = TenantConfig.parse({
        "default": {"priority": 1, "mem_budget": "64M"},
        "tenants": {
            "interactive": {"priority": 10, "max_concurrent": 2},
            "batch": {"on_pressure": "queue", "deadline_s": 30},
        },
        "strict": False,
    })
    interactive = config.resolve("interactive")
    assert interactive.priority == 10
    assert interactive.max_concurrent == 2
    # Listed tenants inherit unset fields from the default policy.
    assert interactive.mem_budget_bytes == 64 << 20
    batch = config.resolve("batch")
    assert batch.priority == 1  # inherited
    assert batch.on_pressure == "queue"
    assert batch.deadline_s == 30.0


def test_unknown_tenant_falls_back_to_default_renamed():
    config = TenantConfig.parse({"default": {"mem_budget": 4096}})
    policy = config.resolve("walk-in")
    assert policy.name == "walk-in"  # accounting stays per-tenant
    assert policy.mem_budget_bytes == 4096


def test_strict_config_rejects_unknown_tenants():
    config = TenantConfig.parse({
        "tenants": {"known": {}},
        "strict": True,
    })
    assert config.resolve("known").name == "known"
    with pytest.raises(TenantError, match="strict"):
        config.resolve("stranger")


def test_none_tenant_resolves_to_the_default_policy():
    config = TenantConfig.open_default()
    assert config.resolve(None).name == "default"


@pytest.mark.parametrize("raw, match", [
    ({"bogus": 1}, "unknown top-level"),
    ({"default": {"nope": 1}}, "unknown fields"),
    ({"default": {"priority": "high"}}, "priority must be"),
    ({"default": {"on_pressure": "panic"}}, "on_pressure"),
    ({"default": {"max_concurrent": 0}}, "max_concurrent"),
    ({"default": {"deadline_s": -1}}, "deadline_s"),
    ({"tenants": {"t": 5}}, "must be an object"),
    ({"strict": "yes"}, "'strict' must be a boolean"),
    ([], "must be an object"),
])
def test_invalid_configs_are_rejected(raw, match):
    with pytest.raises(TenantError, match=match):
        TenantConfig.parse(raw)


def test_load_from_file(tmp_path):
    path = tmp_path / "tenants.json"
    path.write_text(json.dumps({"tenants": {"a": {"priority": 3}}}))
    config = TenantConfig.load(path)
    assert config.resolve("a").priority == 3
    with pytest.raises(TenantError, match="cannot read"):
        TenantConfig.load(tmp_path / "absent.json")
    (tmp_path / "broken.json").write_text("{nope")
    with pytest.raises(TenantError, match="not valid JSON"):
        TenantConfig.load(tmp_path / "broken.json")


def test_tenant_limits_only_lists_capped_tenants():
    config = TenantConfig.parse({
        "tenants": {
            "capped": {"max_concurrent": 1},
            "free": {"priority": 5},
        },
    })
    assert config.tenant_limits() == {"capped": 1}


def test_policy_as_dict_round_trips_fields():
    policy = TenantPolicy(
        name="t", priority=2, mem_budget_bytes=1024, on_pressure="fail"
    )
    doc = policy.as_dict()
    assert doc["name"] == "t"
    assert doc["priority"] == 2
    assert doc["mem_budget_bytes"] == 1024
    assert doc["on_pressure"] == "fail"
