"""Framing unit tests: the wire contract of the join-service protocol."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_round_trip_one_frame(pair):
    a, b = pair
    message = {"op": "join", "algorithm": "grace", "n": 42, "nested": {"x": [1, 2]}}
    send_frame(a, message)
    assert recv_frame(b) == message


def test_round_trip_many_frames_in_order(pair):
    a, b = pair
    for i in range(20):
        send_frame(a, {"seq": i})
    for i in range(20):
        assert recv_frame(b) == {"seq": i}


def test_clean_eof_between_frames_is_none(pair):
    a, b = pair
    send_frame(a, {"last": True})
    a.close()
    assert recv_frame(b) == {"last": True}
    assert recv_frame(b) is None


def test_eof_mid_frame_is_a_protocol_error(pair):
    a, b = pair
    # A length prefix promising 100 bytes, then death after 3.
    a.sendall(struct.pack(">I", 100) + b"abc")
    a.close()
    with pytest.raises(ProtocolError, match="mid-frame"):
        recv_frame(b)


def test_oversized_length_prefix_is_refused(pair):
    a, b = pair
    a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="corrupt"):
        recv_frame(b)


def test_non_json_payload_is_a_protocol_error(pair):
    a, b = pair
    payload = b"\xff\xfe not json"
    a.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError, match="not valid JSON"):
        recv_frame(b)


def test_non_object_payload_is_a_protocol_error(pair):
    a, b = pair
    payload = b"[1, 2, 3]"
    a.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError, match="expected an object"):
        recv_frame(b)


def test_oversized_outgoing_frame_is_refused(pair):
    a, _ = pair
    with pytest.raises(ProtocolError, match="exceeds"):
        send_frame(a, {"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_large_frame_survives_chunked_delivery(pair):
    a, b = pair
    message = {"blob": "y" * 300_000}  # far beyond one recv() chunk

    # sendall on a socketpair can block against an unread peer buffer, so
    # feed from a thread while the other end drains.
    sender = threading.Thread(target=send_frame, args=(a, message))
    sender.start()
    try:
        assert recv_frame(b) == message
    finally:
        sender.join()
