"""End-to-end join-service daemon tests: one process, real sockets.

Most tests run the daemon inline (``use_processes=False``) so four-
algorithm coverage stays fast; one test exercises the real shared
worker pool.  Every join the daemon serves is compared bit-identically
(pair count + checksum) against a direct ``run_real_join`` of the same
workload — the service must be a transport, never a transformation.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.export import validate_stats_document
from repro.parallel.faults import flip_payload_bit
from repro.parallel.runner import REAL_ALGORITHMS, run_real_join
from repro.service import (
    ClientError,
    JoinService,
    JoinServiceClient,
    ServiceConfig,
    TenantConfig,
)
from repro.service.server import sweep_service_root
from repro.storage.segment import MappedSegment
from repro.workload.generator import WorkloadSpec, generate_workload

SCALE = 0.01  # -> 1,024 objects after the service's max(64, 102_400 * scale)
SEED = 23
DISKS = 2


def direct_result(algorithm, tmp_path, *, mem_budget=None, collect_pairs=False):
    """What the daemon's answer must match: a solo run of the same workload."""
    workload = generate_workload(
        WorkloadSpec(
            r_objects=int(102_400 * SCALE),
            s_objects=int(102_400 * SCALE),
            seed=SEED,
        ),
        DISKS,
    )
    return run_real_join(
        algorithm,
        workload,
        str(tmp_path / f"direct-{algorithm}"),
        use_processes=False,
        collect_pairs=collect_pairs,
        mem_budget=mem_budget,
    )


@pytest.fixture
def make_service(tmp_path):
    services = []

    def build(tenants=None, **overrides):
        overrides.setdefault("use_processes", False)
        config = ServiceConfig(
            root=str(tmp_path / "svc-root"),
            socket_path=str(tmp_path / "join.sock"),
            disks=DISKS,
            **overrides,
        )
        service = JoinService(config, tenants)
        service.start()
        services.append(service)
        return service

    yield build
    for service in services:
        service.close()


def join_args(**extra):
    return {"scale": SCALE, "seed": SEED, "disks": DISKS, **extra}


# ------------------------------------------------------- serving correctness

def test_all_algorithms_bit_identical_to_direct_runs(make_service, tmp_path):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        for algorithm in sorted(REAL_ALGORITHMS):
            reply = client.join(algorithm, **join_args())
            direct = direct_result(algorithm, tmp_path)
            assert reply.pair_count == direct.pair_count, algorithm
            assert reply.checksum == direct.checksum, algorithm


def test_streamed_pairs_match_collected_pairs(make_service, tmp_path):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        reply = client.join("grace", stream_pairs=True, **join_args())
    assert reply.streamed_pairs == reply.pair_count
    direct = direct_result("grace", tmp_path, collect_pairs=True)
    assert sorted(reply.pairs) == sorted(tuple(p) for p in direct.pairs)


def test_second_request_reuses_the_warm_store(make_service):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        cold = client.join("hybrid-hash", **join_args())
        warm = client.join("nested-loops", **join_args())  # same workload
    assert not cold.reused_store
    assert warm.reused_store
    assert warm.pair_count == cold.pair_count
    assert warm.checksum == cold.checksum
    assert service.registry.counters["service.store_reuses_total"] == 1


def test_shared_worker_pool_serves_bit_identically(make_service, tmp_path):
    service = make_service(use_processes=True, pool_workers=2)
    with JoinServiceClient(service.config.socket_path) as client:
        first = client.join("sort-merge", **join_args())
        second = client.join("grace", **join_args())
    direct = direct_result("sort-merge", tmp_path)
    assert first.pair_count == direct.pair_count
    assert first.checksum == direct.checksum
    assert second.checksum == direct.checksum  # same workload, same output
    assert second.reused_store


# --------------------------------------------------- multi-tenant admission

def test_concurrent_tenants_under_shared_budget_stay_bit_identical(
    make_service, tmp_path
):
    """Satellite: two tenants at once, one degraded, neither corrupted."""
    tenants = TenantConfig.parse({
        "tenants": {
            "fast": {"priority": 10},
            # A budget small enough to force the plan down the ladder.
            "slow": {"priority": 0, "mem_budget": "64K"},
        },
    })
    service = make_service(tenants, max_concurrent=1)
    solo = direct_result("hybrid-hash", tmp_path)
    degraded_solo = direct_result(
        "hybrid-hash", tmp_path / "degraded", mem_budget=64 << 10
    )
    assert degraded_solo.degradations_total > 0  # the budget really bites

    replies = {}
    barrier = threading.Barrier(2)

    def submit(tenant):
        with JoinServiceClient(service.config.socket_path) as client:
            barrier.wait()
            replies[tenant] = client.join(
                "hybrid-hash", tenant=tenant, **join_args()
            )

    threads = [
        threading.Thread(target=submit, args=(name,))
        for name in ("fast", "slow")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for tenant, reply in replies.items():
        assert reply.pair_count == solo.pair_count, tenant
        assert reply.checksum == solo.checksum, tenant
    assert replies["slow"].degradations == degraded_solo.degradations_total
    assert replies["fast"].degradations == 0

    tenants_doc = service.stats_document()["service"]["tenants"]
    assert tenants_doc["fast"]["admitted"] == 1
    assert tenants_doc["slow"]["admitted"] == 1
    assert tenants_doc["slow"]["degraded"] == degraded_solo.degradations_total
    # With one slot, whoever arrived second waited for the first.
    queued = sum(t["queued"] for t in tenants_doc.values())
    assert queued <= 1


def test_saturated_governor_rejects_fail_mode_tenant(make_service):
    tenants = TenantConfig.parse({
        "tenants": {"impatient": {"on_pressure": "fail"}},
    })
    service = make_service(tenants, max_concurrent=1)
    holder = service.governor.admit(tenant="elsewhere")
    try:
        with JoinServiceClient(service.config.socket_path) as client:
            with pytest.raises(ClientError) as excinfo:
                client.join("grace", tenant="impatient", **join_args())
        assert excinfo.value.code == "rejected"
    finally:
        holder.release()
    tenants_doc = service.stats_document()["service"]["tenants"]
    assert tenants_doc["impatient"]["rejected"] == 1


def test_strict_tenant_config_rejects_strangers(make_service):
    tenants = TenantConfig.parse({
        "tenants": {"known": {}},
        "strict": True,
    })
    service = make_service(tenants)
    with JoinServiceClient(service.config.socket_path) as client:
        with pytest.raises(ClientError) as excinfo:
            client.join("grace", tenant="stranger", **join_args())
        assert excinfo.value.code == "unknown-tenant"
        # The same connection still serves a legitimate tenant.
        reply = client.join("grace", tenant="known", **join_args())
        assert reply.pair_count > 0


def test_unknown_algorithm_is_a_bad_request(make_service):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        with pytest.raises(ClientError) as excinfo:
            client.join("quantum-join", **join_args())
        assert excinfo.value.code == "bad-request"


# ------------------------------------------------------------ startup sweep

def _publish_segment(path, records=3):
    """A real, checksum-footed segment the startup scrub can verify."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with MappedSegment.create(path, capacity=max(records, 1)) as seg:
        for i in range(records):
            seg.append_record(bytes([i % 251]) * seg.layout.record_bytes)
    return path


def test_startup_sweep_removes_orphans_but_keeps_warm_segments(tmp_path):
    root = tmp_path / "svc-root"
    store = root / "stores" / "wl-dead" / "disk0"
    store.mkdir(parents=True)
    _publish_segment(store / "R.seg")  # intact: the daemon's warm cache
    (store / "RP_3.seg.tmp").write_bytes(b"dead writer's tmp")
    (store / "metrics_probe_0.json").write_text("{}")
    (root / "stores" / "wl-dead" / "faults.json").write_text("{}")
    (root / "stores" / "wl-dead" / "metrics.on").write_text("")
    (root / "stores" / "wl-dead" / "fault_attempt_scan_0").write_text("2")
    # Durable recovery state must ride out the sweep untouched.
    (root / "stores" / "wl-dead" / "checkpoint.json").write_text("{}")
    journal_dir = root / "journal"
    journal_dir.mkdir()
    (journal_dir / "req-1.json").write_text('{"state": "done"}')

    service = JoinService(ServiceConfig(
        root=str(root),
        socket_path=str(tmp_path / "join.sock"),
        disks=DISKS,
        use_processes=False,
    ))
    service.start()
    try:
        assert service.startup_sweep == {
            "seg_tmp": 1, "sidecars": 1, "control_files": 3,
            "scrubbed": 1, "corrupt": 0, "evicted": 0,
        }
        assert (store / "R.seg").exists()  # the daemon's cache survives
        assert not (store / "RP_3.seg.tmp").exists()
        assert not (store / "metrics_probe_0.json").exists()
        assert (root / "stores" / "wl-dead" / "checkpoint.json").exists()
        assert (journal_dir / "req-1.json").exists()
        # The sweep is logged into the stats document.
        document = service.stats_document()
        assert document["service"]["startup_sweep"] == service.startup_sweep
    finally:
        service.close()


def test_startup_scrub_deletes_corrupt_segments_and_evicts_the_store(tmp_path):
    root = tmp_path / "svc-root"
    store = root / "stores" / "wl-rot"
    rotten = _publish_segment(store / "disk0" / "R.seg")
    flip_payload_bit(rotten, record=1, bit=3)
    intact_sibling = _publish_segment(store / "disk0" / "S.seg")
    # A corrupt *temp* artifact only costs itself, not its store.
    other = root / "stores" / "wl-ok"
    corrupt_temp = _publish_segment(other / "disk0" / "RP_0.seg")
    flip_payload_bit(corrupt_temp, record=0, bit=0)
    survivor = _publish_segment(other / "disk0" / "R.seg")

    counts = sweep_service_root(root)
    assert counts["corrupt"] == 2
    assert counts["scrubbed"] == 2  # S.seg + the other store's R.seg
    assert counts["evicted"] == 1  # wl-rot's intact S.seg, dropped whole
    assert not rotten.exists()
    assert not intact_sibling.exists()  # half a warm store is no store
    assert not corrupt_temp.exists()
    assert survivor.exists()


# ------------------------------------------------------ stats doc & shutdown

def test_stats_document_is_valid_v5_with_latency(make_service):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        client.join("grace", **join_args())
        client.join("sort-merge", **join_args())
        document = client.stats()
    validate_stats_document(document)
    assert document["schema_version"] == 5
    assert document["meta"]["backend"] == "join-service"
    section = document["service"]
    assert section["requests_total"] == 2
    assert section["latency_ms"]["count"] == 2
    assert section["latency_ms"]["p50"] > 0
    assert section["latency_ms"]["p99"] >= section["latency_ms"]["p50"]
    assert section["latency_ms"]["max"] >= section["latency_ms"]["p99"]


def test_join_reply_can_carry_the_run_stats_document(make_service):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        reply = client.join("hybrid-hash", with_stats=True, **join_args())
    assert reply.stats_document is not None
    validate_stats_document(reply.stats_document)
    assert reply.stats_document["meta"]["algorithm"] == "hybrid-hash"


def test_ping_reports_the_algorithm_menu(make_service):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        pong = client.ping()
    assert pong["algorithms"] == sorted(REAL_ALGORITHMS)
    assert pong["uptime_s"] >= 0


def test_client_shutdown_stops_the_daemon_cleanly(make_service, tmp_path):
    service = make_service()
    socket_path = tmp_path / "join.sock"
    with JoinServiceClient(str(socket_path)) as client:
        client.join("grace", **join_args())
        client.shutdown()
    service.close()
    assert not socket_path.exists()
    # No unpublished segments or run debris left anywhere in the root.
    root = tmp_path / "svc-root"
    assert list(root.rglob("*.seg.tmp")) == []
    assert list(root.rglob("metrics_*.json")) == []
    leftovers = {p.stem.split("_")[0] for p in root.rglob("*.seg")}
    assert leftovers <= {"R", "S"}  # warm base relations only


def test_connection_survives_a_protocol_error_frame(make_service):
    import socket as socketlib
    import struct

    service = make_service()
    raw = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    raw.connect(service.config.socket_path)
    try:
        payload = b"[]"  # an array, not an object
        raw.sendall(struct.pack(">I", len(payload)) + payload)
        from repro.service.protocol import recv_frame

        frame = recv_frame(raw)
        assert frame["kind"] == "error"
        assert frame["code"] == "bad-frame"
    finally:
        raw.close()
    # The daemon is still serving.
    with JoinServiceClient(service.config.socket_path) as client:
        assert client.ping()["algorithms"]
