"""Crash-resumable, idempotent, corruption-safe service behaviour.

The failure-model contract (docs/serving.md):

* a retried request id whose first attempt completed **replays** the
  stored answer, bit-identical, without re-executing;
* one whose first attempt died with a previous daemon **resumes** from
  the store's pass-level checkpoint;
* a concurrent duplicate id is refused with a classified error;
* an oversized or corrupt frame gets ``bad-frame``, a corrupt published
  segment gets ``corrupt-data`` — never garbage pairs;
* SIGTERM drains: in-flight requests still deliver their terminal frame
  and the socket file is removed on exit;
* the client retries transport failures against the same id with
  backoff, and never retries a daemon-classified error.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.parallel.engine.executor import RealJoinError
from repro.parallel.faults import ALGORITHM_TASKS, FaultPlan, flip_payload_bit
from repro.parallel.runner import run_real_join
from repro.service import (
    ClientError,
    JoinService,
    JoinServiceClient,
    ServiceConfig,
)
from repro.service.journal import RequestJournal, valid_request_id
from repro.service.protocol import MAX_FRAME_BYTES, recv_frame, send_frame
from repro.workload.generator import WorkloadSpec, generate_workload

SCALE = 0.01
SEED = 23
DISKS = 2


@pytest.fixture
def make_service(tmp_path):
    services = []

    def build(tenants=None, **overrides):
        overrides.setdefault("use_processes", False)
        config = ServiceConfig(
            root=str(tmp_path / "svc-root"),
            socket_path=str(tmp_path / "join.sock"),
            disks=DISKS,
            **overrides,
        )
        service = JoinService(config, tenants)
        service.start()
        services.append(service)
        return service

    yield build
    for service in services:
        service.close()


def join_args(**extra):
    return {"scale": SCALE, "seed": SEED, "disks": DISKS, **extra}


def service_workload():
    """Exactly the workload the daemon derives from these join args."""
    objects = max(64, int(102_400 * SCALE))
    return generate_workload(
        WorkloadSpec(r_objects=objects, s_objects=objects, seed=SEED),
        DISKS,
    )


def service_signature():
    spec_args = {
        "scale": float(SCALE),
        "seed": SEED,
        "disks": DISKS,
        "distribution": "uniform",
    }
    return "wl-" + hashlib.sha1(
        json.dumps(spec_args, sort_keys=True).encode()
    ).hexdigest()[:16]


# ------------------------------------------------------------- idempotency

def test_completed_request_id_replays_without_reexecuting(make_service):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        first = client.join("grace", request_id="req-once", **join_args())
        again = client.join("grace", request_id="req-once", **join_args())
    assert first.replayed is False
    assert again.replayed is True
    assert again.pair_count == first.pair_count
    assert again.checksum == first.checksum
    # One execution, one replay — requests_total counts executions only.
    assert service.stats_document()["service"]["requests_total"] == 1
    replays = sum(
        service.registry.counters_named("service.replayed_total").values()
    )
    assert replays == 1


def test_invalid_request_id_is_a_bad_request(make_service):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        with pytest.raises(ClientError) as excinfo:
            client.join(
                "grace", request_id="../escape", retries=0, **join_args()
            )
    assert excinfo.value.code == "bad-request"
    assert not valid_request_id("../escape")
    assert valid_request_id("req_1:a.b-c")


def test_duplicate_inflight_id_is_refused(make_service):
    service = make_service()
    with service._inflight_lock:
        service._inflight.add("req-busy")
    try:
        with JoinServiceClient(service.config.socket_path) as client:
            with pytest.raises(ClientError) as excinfo:
                client.join(
                    "grace", request_id="req-busy", retries=0, **join_args()
                )
        assert excinfo.value.code == "duplicate-request"
    finally:
        with service._inflight_lock:
            service._inflight.discard("req-busy")


def test_failed_requests_are_forgotten_not_replayed(make_service, monkeypatch):
    import repro.service.server as server_module

    def explode(*args, **kwargs):
        raise server_module.RealJoinError("injected execution failure")

    monkeypatch.setattr(server_module, "run_real_join", explode)
    service = make_service()
    journal = RequestJournal(service.config.root)
    with JoinServiceClient(service.config.socket_path) as client:
        with pytest.raises(ClientError) as excinfo:
            client.join(
                "grace", request_id="req-fail", retries=0, **join_args()
            )
    assert excinfo.value.code == "failed"
    # An error frame is not an answer worth replaying: no journal entry
    # survives, so a retry would re-execute from scratch.
    assert journal.get("req-fail") is None


# -------------------------------------------------------- daemon-side resume

def crash_last_pass(algorithm: str) -> FaultPlan:
    task = ALGORITHM_TASKS[algorithm][-1]
    return FaultPlan.parse(json.dumps({
        "faults": [
            {"kind": "crash", "task": task, "partition": 0, "attempt": a}
            for a in range(4)
        ]
    }))


def test_interrupted_request_resumes_after_daemon_restart(tmp_path):
    """A join that died with daemon #1 — journal entry still ``running``,
    checkpoint manifest in its warm store — is resumed, not redone, when
    its retry reaches daemon #2."""
    root = tmp_path / "svc-root"
    store = root / "stores" / f"{service_signature()}-0"
    workload = service_workload()
    with pytest.raises(RealJoinError):
        run_real_join(
            "grace", workload, str(store),
            use_processes=False, keep_store=True, collect_pairs=False,
            retries=0, fallback_inline=False,
            fault_plan=crash_last_pass("grace"),
        )
    assert (store / "checkpoint.json").exists()
    RequestJournal(root).begin("req-zombie", {
        "algorithm": "grace", "tenant": "default",
    })

    baseline = run_real_join(
        "grace", workload, str(tmp_path / "direct"),
        use_processes=False, collect_pairs=False,
    )
    service = JoinService(ServiceConfig(
        root=str(root),
        socket_path=str(tmp_path / "join.sock"),
        disks=DISKS,
        use_processes=False,
    ))
    service.start()
    try:
        assert service.interrupted_requests == ["req-zombie"]
        with JoinServiceClient(service.config.socket_path) as client:
            reply = client.join(
                "grace", request_id="req-zombie", **join_args()
            )
        assert reply.resumed is True
        assert reply.passes_skipped >= 1
        assert reply.pair_count == baseline.pair_count
        assert reply.checksum == baseline.checksum
        resumed_total = sum(
            service.registry.counters_named("service.resumed_total").values()
        )
        assert resumed_total == 1
    finally:
        service.close()


# ----------------------------------------------------- corruption never served

def test_oversized_frame_gets_a_classified_bad_frame_error(make_service):
    service = make_service()
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.connect(service.config.socket_path)
        # The length prefix alone condemns the frame — the server never
        # reads (or buffers) a payload it has already refused.
        sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        frame = recv_frame(sock)
        assert frame["kind"] == "error"
        assert frame["code"] == "bad-frame"
        # The daemon closed the conversation after the classified error.
        assert recv_frame(sock) is None
    # And it is still serving fresh connections.
    with JoinServiceClient(service.config.socket_path) as client:
        assert client.ping()["uptime_s"] >= 0


def test_bit_flipped_pairs_segment_yields_corrupt_data_not_garbage(
    make_service, monkeypatch
):
    """Corruption landing between a pass barrier and the streaming read
    must surface as a ``corrupt-data`` error frame — never as pairs."""
    import repro.service.server as server_module

    real_run = run_real_join

    def run_and_rot(*args, **kwargs):
        result = real_run(*args, **kwargs)
        victim = next(p for p in result.pair_files if p.count > 0)
        flip_payload_bit(victim.path, record=0, bit=4)
        return result

    monkeypatch.setattr(server_module, "run_real_join", run_and_rot)
    service = make_service()
    delivered = []
    with JoinServiceClient(service.config.socket_path) as client:
        with pytest.raises(ClientError) as excinfo:
            client.join(
                "grace", stream_pairs=True, on_pairs=delivered.extend,
                retries=0, **join_args(),
            )
    assert excinfo.value.code == "corrupt-data"
    assert delivered == []  # not one garbage pair crossed the wire
    corrupt_total = sum(
        service.registry.counters_named("service.corrupt_total").values()
    )
    assert corrupt_total == 1


# ------------------------------------------------------------- client retry

class FlakyServer(threading.Thread):
    """Accepts twice: drops the first connection cold, serves the second."""

    def __init__(self, socket_path: str):
        super().__init__(daemon=True)
        self.socket_path = socket_path
        self.requests_seen = []
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(socket_path)
        self._listener.listen(2)

    def run(self):
        # Connection 1: read the request, then vanish mid-conversation.
        conn, _ = self._listener.accept()
        self.requests_seen.append(recv_frame(conn))
        conn.close()
        # Connection 2: serve the retry properly.
        conn, _ = self._listener.accept()
        request = recv_frame(conn)
        self.requests_seen.append(request)
        send_frame(conn, {
            "kind": "accepted",
            "request_id": request["request_id"],
            "tenant": "default",
            "algorithm": request["algorithm"],
        })
        send_frame(conn, {
            "kind": "result",
            "request_id": request["request_id"],
            "tenant": "default",
            "algorithm": request["algorithm"],
            "pair_count": 7,
            "checksum": 99,
            "wall_ms": 1.0,
            "request_ms": 1.0,
            "kernel_mode": "scalar",
        })
        conn.close()
        self._listener.close()


def test_client_retries_transport_breaks_with_the_same_id(tmp_path):
    server = FlakyServer(str(tmp_path / "flaky.sock"))
    server.start()
    client = JoinServiceClient(str(tmp_path / "flaky.sock"), timeout=10)
    try:
        reply = client.join(
            "grace", retries=2, backoff_s=0.01, **join_args()
        )
    finally:
        client.close()
        server.join(timeout=10)
    assert reply.pair_count == 7
    assert reply.attempts == 2
    first, second = server.requests_seen
    assert first["request_id"] == second["request_id"]  # idempotent retry


def test_classified_errors_are_never_retried(make_service):
    service = make_service()
    with JoinServiceClient(service.config.socket_path) as client:
        with pytest.raises(ClientError) as excinfo:
            client.join("quantum-join", retries=5, **join_args())
    assert excinfo.value.code == "bad-request"
    bad_requests = sum(
        service.registry.counters_named("service.bad_requests_total").values()
    )
    assert bad_requests == 1


def test_deadline_expiry_is_classified_and_bounds_the_call(tmp_path):
    path = tmp_path / "void.sock"
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(str(path))
    listener.listen(1)
    try:
        client = JoinServiceClient(str(path), timeout=0.2)
        started = time.perf_counter()
        with pytest.raises(ClientError) as excinfo:
            client.join(
                "grace", retries=50, backoff_s=0.05, deadline_s=0.5,
                **join_args(),
            )
        elapsed = time.perf_counter() - started
        client.close()
    finally:
        listener.close()
    assert excinfo.value.code == "deadline"
    assert elapsed < 5.0  # bounded by the deadline, not by 50 retries


# ------------------------------------------------------------ graceful drain

def test_sigterm_drains_inflight_requests_then_exits(tmp_path):
    socket_path = tmp_path / "drain.sock"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", str(socket_path),
            "--root", str(tmp_path / "svc-root"),
            "--disks", str(DISKS), "--inline",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(
            Path(__file__).resolve().parents[2] / "src"
        )},
    )
    try:
        deadline = time.time() + 30
        while not socket_path.exists():
            assert time.time() < deadline, proc.stdout.read()
            assert proc.poll() is None, proc.stdout.read()
            time.sleep(0.1)
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(60)
            sock.connect(str(socket_path))
            send_frame(sock, {
                "op": "join", "algorithm": "grace", **join_args(),
            })
            accepted = recv_frame(sock)
            assert accepted["kind"] == "accepted"
            # The daemon is now mid-join; ask it to die politely.
            proc.send_signal(signal.SIGTERM)
            result = recv_frame(sock)
            assert result["kind"] == "result"
            assert result["pair_count"] > 0
        assert proc.wait(timeout=60) == 0
        assert not socket_path.exists()  # socket file removed on exit
        output = proc.stdout.read()
        assert "draining in-flight requests" in output
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
