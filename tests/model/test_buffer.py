"""Tests for the Mackert–Lohman Ylru buffer model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.buffer import BufferModelError, ylru, ylru_detailed


class TestYlruBasics:
    def test_zero_lookups_no_faults(self):
        assert ylru(1000, 100, 1000, 50, 0) == 0.0

    def test_single_lookup_first_access_faults(self):
        est = ylru(1000, 100, 1000, 50, 1)
        assert 0.0 < est <= 1.0

    def test_rejects_nonpositive_relation(self):
        with pytest.raises(BufferModelError):
            ylru(0, 100, 100, 10, 5)

    def test_rejects_negative_lookups(self):
        with pytest.raises(BufferModelError):
            ylru(100, 100, 100, 10, -1)

    def test_unsaturated_branch_is_occupancy(self):
        # With a huge buffer the estimate is classical occupancy:
        # t * (1 - q^x), and never exceeds the page count.
        est = ylru_detailed(1000, 100, 1000, 10_000, 500)
        assert not est.saturated
        assert est.faults <= 100

    def test_saturated_branch_engaged_at_small_buffer(self):
        est = ylru_detailed(25_600, 800, 25_600, 100, 20_000)
        assert est.saturated
        assert est.faults > 800 * (100 / 800)

    def test_steady_state_rate_near_miss_ratio(self):
        # Unique keys, b/t = 0.5: each extra lookup should fault ~0.5 times.
        t, b = 800, 400
        est1 = ylru(25_600, t, 25_600, b, 10_000)
        est2 = ylru(25_600, t, 25_600, b, 10_001)
        assert est2 - est1 == pytest.approx(1 - b / t, rel=0.05)

    def test_buffer_larger_than_relation_caps_at_pages(self):
        assert ylru(1000, 50, 1000, 100, 100_000) <= 50 + 0.001


class TestYlruProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        t=st.integers(min_value=1, max_value=500),
        b=st.integers(min_value=1, max_value=600),
        x=st.integers(min_value=0, max_value=2000),
    )
    def test_faults_bounded(self, t, b, x):
        n = t * 16
        faults = ylru(n, t, n, b, x)
        assert 0.0 <= faults <= min(t, b) + x + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        t=st.integers(min_value=2, max_value=300),
        b=st.integers(min_value=1, max_value=200),
    )
    def test_monotone_in_lookups(self, t, b):
        n = t * 8
        series = [ylru(n, t, n, b, x) for x in (0, 10, 100, 1000)]
        assert all(later >= earlier - 1e-9 for earlier, later in zip(series, series[1:]))

    @settings(max_examples=40, deadline=None)
    @given(t=st.integers(min_value=2, max_value=300))
    def test_bigger_buffer_never_more_faults(self, t):
        n = t * 8
        x = t * 4
        small = ylru(n, t, n, max(1, t // 8), x)
        large = ylru(n, t, n, t, x)
        assert large <= small + 1e-9

    def test_continuity_at_saturation_point(self):
        # The two branches agree at x = n.
        est = ylru_detailed(10_000, 500, 10_000, 100, 1)
        n = est.saturation_lookups
        below = ylru(10_000, 500, 10_000, 100, n)
        above = ylru(10_000, 500, 10_000, 100, n + 1)
        assert above - below < 1.5  # at most ~one extra fault
