"""Tests for the heap cost formulas of the sort-merge model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.heaps import (
    HeapCostParameters,
    HeapModelError,
    delete_insert_unit_cost,
    floyd_build_cost,
    heapsort_cost,
    merge_pass_cost,
)

COSTS = HeapCostParameters(compare_ms=1.0, swap_ms=2.0, transfer_ms=0.5)


class TestHeapCostParameters:
    def test_rejects_negative(self):
        with pytest.raises(HeapModelError):
            HeapCostParameters(compare_ms=-1.0, swap_ms=0.0, transfer_ms=0.0)


class TestFloydBuild:
    def test_zero_elements_free(self):
        assert floyd_build_cost(0, COSTS) == 0.0

    def test_matches_paper_formula(self):
        n = 1000
        expected = 1.77 * n * (1.0 + 2.0 / 2.0) + n * 0.5
        assert floyd_build_cost(n, COSTS) == pytest.approx(expected)

    def test_linear_in_n(self):
        assert floyd_build_cost(2000, COSTS) == pytest.approx(
            2 * floyd_build_cost(1000, COSTS)
        )

    def test_rejects_negative_count(self):
        with pytest.raises(HeapModelError):
            floyd_build_cost(-1, COSTS)


class TestHeapsortCost:
    def test_zero_elements_free(self):
        assert heapsort_cost(0, 100, COSTS) == 0.0

    def test_grows_with_run_length(self):
        assert heapsort_cost(1000, 1024, COSTS) > heapsort_cost(1000, 64, COSTS)

    def test_n_log_irun_form(self):
        got = heapsort_cost(100, 256, COSTS)
        assert got == pytest.approx(100 * 8 * (1.0 + 0.5))

    def test_rejects_nonpositive_run(self):
        with pytest.raises(HeapModelError):
            heapsort_cost(10, 0, COSTS)


class TestDeleteInsert:
    def test_single_run_needs_no_heap(self):
        assert delete_insert_unit_cost(1, COSTS) == 0.0

    def test_never_negative(self):
        for h in range(1, 200):
            assert delete_insert_unit_cost(h, COSTS) >= 0.0

    @settings(max_examples=50, deadline=None)
    @given(h=st.integers(min_value=2, max_value=5000))
    def test_bounded_by_log(self, h):
        import math

        unit = delete_insert_unit_cost(h, COSTS)
        per_level = 2.0 * COSTS.compare_ms + COSTS.swap_ms
        assert unit <= (math.log2(h) + 1) * per_level

    def test_monotone_nondecreasing_overall(self):
        values = [delete_insert_unit_cost(h, COSTS) for h in (2, 4, 8, 32, 128, 1024)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_rejects_nonpositive_heap(self):
        with pytest.raises(HeapModelError):
            delete_insert_unit_cost(0, COSTS)


class TestMergePassCost:
    def test_includes_two_transfers_per_element(self):
        got = merge_pass_cost(100, 1, COSTS)
        assert got == pytest.approx(100 * 2 * COSTS.transfer_ms)

    def test_scales_linearly_with_elements(self):
        assert merge_pass_cost(200, 8, COSTS) == pytest.approx(
            2 * merge_pass_cost(100, 8, COSTS)
        )

    def test_rejects_negative_elements(self):
        with pytest.raises(HeapModelError):
            merge_pass_cost(-1, 8, COSTS)
