"""Property-based hardening of all five cost models.

Random-but-valid machine/relation/memory combinations must always produce
finite, non-negative, internally-consistent predictions — the model is an
optimizer component, and an optimizer must never crash or return garbage
on an unusual-but-legal input.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.experiment import MODEL_FUNCTIONS
from repro.model import (
    MachineParameters,
    MemoryParameters,
    RelationParameters,
)

machines = st.builds(
    MachineParameters,
    disks=st.integers(min_value=1, max_value=16),
    context_switch_ms=st.floats(min_value=0.0, max_value=5.0),
    map_ms=st.floats(min_value=0.0, max_value=0.1),
    hash_ms=st.floats(min_value=0.0, max_value=0.1),
    compare_ms=st.floats(min_value=0.0, max_value=0.1),
    swap_ms=st.floats(min_value=0.0, max_value=0.1),
    transfer_ms=st.floats(min_value=0.0, max_value=0.1),
)

relations = st.builds(
    RelationParameters,
    r_objects=st.integers(min_value=64, max_value=500_000),
    s_objects=st.integers(min_value=64, max_value=500_000),
    r_bytes=st.sampled_from([64, 128, 256, 512]),
    s_bytes=st.sampled_from([64, 128, 256, 512]),
    skew=st.floats(min_value=1.0, max_value=3.0),
)

memories = st.builds(
    MemoryParameters,
    m_rproc_bytes=st.integers(min_value=8_192, max_value=64 << 20),
    m_sproc_bytes=st.integers(min_value=8_192, max_value=64 << 20),
    g_bytes=st.sampled_from([512, 4_096, 65_536]),
)


@pytest.mark.parametrize("name", sorted(MODEL_FUNCTIONS))
class TestModelRobustness:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(machine=machines, relation=relations, memory=memories)
    def test_cost_finite_nonnegative_consistent(
        self, name, machine, relation, memory
    ):
        report = MODEL_FUNCTIONS[name](machine, relation, memory)
        assert math.isfinite(report.total_ms)
        assert report.total_ms >= 0.0
        component_sum = (
            report.disk_ms
            + report.transfer_ms
            + report.cpu_ms
            + report.context_switch_ms
            + report.setup_ms
        )
        assert report.total_ms == pytest.approx(component_sum)
        for p in report.passes:
            assert p.total_ms >= 0.0, p.name

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(relation=relations)
    def test_more_memory_never_hurts_much(self, name, relation):
        """8x the memory never raises the prediction by more than a third.

        The bound is deliberately loose: some models legitimately creep up
        with memory (sort-merge's sort band is ``2*r*IRUN/B``, so bigger
        runs pay a slightly worse per-block rate; plan parameters step).
        The property guards against catastrophic inversions, not wiggles.
        """
        machine = MachineParameters()
        small = MemoryParameters.from_fractions(relation, 0.05)
        large = MemoryParameters.from_fractions(relation, 0.4)
        cost_small = MODEL_FUNCTIONS[name](machine, relation, small).total_ms
        cost_large = MODEL_FUNCTIONS[name](machine, relation, large).total_ms
        assert cost_large <= cost_small * 1.34
