"""Tests for the parameter sensitivity analysis."""

import pytest

from repro.model import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
    grace_cost,
    nested_loops_cost,
    sort_merge_cost,
)
from repro.model.curves import InterpolatedCurve, LinearCurve
from repro.model.sensitivity import (
    CURVE_PARAMETERS,
    SCALAR_PARAMETERS,
    parameter_sensitivity,
    render_sensitivities,
    scale_interpolated,
    scale_linear,
)

MACHINE = MachineParameters()
PAPER = RelationParameters()
MEMORY = MemoryParameters.from_fractions(PAPER, 0.05)


class TestCurveScaling:
    def test_interpolated_values_scale(self):
        curve = InterpolatedCurve(points=((1.0, 2.0), (10.0, 4.0)))
        scaled = scale_interpolated(curve, 2.0)
        assert scaled(1.0) == 4.0
        assert scaled(10.0) == 8.0
        assert curve(1.0) == 2.0  # original untouched

    def test_linear_coefficients_scale(self):
        scaled = scale_linear(LinearCurve(base=2.0, slope=1.0), 0.5)
        assert scaled(10.0) == pytest.approx(6.0)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ParameterError):
            scale_interpolated(InterpolatedCurve(points=((0.0, 1.0), (1.0, 2.0))), 0)


class TestParameterSensitivity:
    @pytest.fixture(scope="class")
    def grace_sensitivities(self):
        return parameter_sensitivity(grace_cost, MACHINE, PAPER, MEMORY)

    def test_all_parameters_reported(self, grace_sensitivities):
        names = {s.parameter for s in grace_sensitivities}
        assert names == set(SCALAR_PARAMETERS) | set(CURVE_PARAMETERS)

    def test_sorted_by_magnitude(self, grace_sensitivities):
        magnitudes = [abs(s.elasticity) for s in grace_sensitivities]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_disk_read_rate_dominates_grace(self, grace_sensitivities):
        assert grace_sensitivities[0].parameter == "dttr"
        assert grace_sensitivities[0].elasticity > 0.3

    def test_elasticities_sum_to_one(self, grace_sensitivities):
        """Cost is a sum of parameter-proportional terms, so the elasticity
        over the full parameter set partitions the unit."""
        total = sum(s.elasticity for s in grace_sensitivities)
        assert total == pytest.approx(1.0, abs=0.02)

    def test_compare_cost_matters_for_sort_merge_only(self):
        sm = {
            s.parameter: s.elasticity
            for s in parameter_sensitivity(sort_merge_cost, MACHINE, PAPER, MEMORY)
        }
        nl = {
            s.parameter: s.elasticity
            for s in parameter_sensitivity(nested_loops_cost, MACHINE, PAPER, MEMORY)
        }
        assert sm["compare_ms"] > nl["compare_ms"]
        assert nl["compare_ms"] == pytest.approx(0.0, abs=1e-9)

    def test_subset_of_parameters(self):
        results = parameter_sensitivity(
            grace_cost, MACHINE, PAPER, MEMORY, parameters=("dttr",)
        )
        assert len(results) == 1
        assert results[0].parameter == "dttr"

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ParameterError):
            parameter_sensitivity(
                grace_cost, MACHINE, PAPER, MEMORY, parameters=("warp_factor",)
            )

    def test_bad_step_rejected(self):
        with pytest.raises(ParameterError):
            parameter_sensitivity(grace_cost, MACHINE, PAPER, MEMORY, step=0.0)

    def test_render(self, grace_sensitivities):
        text = render_sensitivities("grace", grace_sensitivities)
        assert "dttr" in text
        assert "elasticity" in text
