"""Tests for partition geometry and the batched context-switch cost."""

import pytest

from repro.model.geometry import (
    batched_context_switch_cost,
    nested_loops_geometry,
    synchronized_geometry,
)
from repro.model.parameters import (
    MachineParameters,
    ParameterError,
    RelationParameters,
)

MACHINE = MachineParameters()
PAPER = RelationParameters()  # 102,400 objects, D = 4


class TestNestedLoopsGeometry:
    def test_even_split(self):
        geo = nested_loops_geometry(MACHINE, PAPER)
        assert geo.r_i == pytest.approx(25_600)
        assert geo.s_i == pytest.approx(25_600)

    def test_local_share_is_one_over_d_squared(self):
        geo = nested_loops_geometry(MACHINE, PAPER)
        assert geo.r_ii == pytest.approx(102_400 / 16)

    def test_rp_is_remainder(self):
        geo = nested_loops_geometry(MACHINE, PAPER)
        assert geo.rp_i == pytest.approx(geo.r_i - geo.r_ii)

    def test_skew_inflates_local_share_only(self):
        skewed = RelationParameters(skew=1.5)
        geo = nested_loops_geometry(MACHINE, skewed)
        base = nested_loops_geometry(MACHINE, PAPER)
        assert geo.r_ii == pytest.approx(base.r_ii * 1.5)
        assert geo.r_i == pytest.approx(base.r_i)  # Ri not skew-adjusted

    def test_page_counts(self):
        geo = nested_loops_geometry(MACHINE, PAPER)
        assert geo.pages_r_i == pytest.approx(800)
        assert geo.pages_s_i == pytest.approx(800)


class TestSynchronizedGeometry:
    def test_paper_rp_formula(self):
        # |RPi| = (|R| * skew / D) * (1 - 1/D)
        geo = synchronized_geometry(MACHINE, PAPER)
        assert geo.rp_i == pytest.approx(102_400 / 4 * (1 - 1 / 4))

    def test_skew_inflates_whole_pass(self):
        skewed = RelationParameters(skew=1.2)
        geo = synchronized_geometry(MACHINE, skewed)
        base = synchronized_geometry(MACHINE, PAPER)
        assert geo.rp_i > base.rp_i
        assert geo.r_ii == pytest.approx(base.r_ii * 1.2)

    def test_local_share_capped_at_partition(self):
        extreme = RelationParameters(skew=100.0)
        geo = synchronized_geometry(MACHINE, extreme)
        assert geo.r_ii <= geo.r_i

    def test_single_disk_degenerates(self):
        machine = MACHINE.with_disks(1)
        geo = synchronized_geometry(machine, PAPER)
        assert geo.rp_i == pytest.approx(0.0)
        assert geo.r_ii == pytest.approx(geo.r_i)


class TestBatchedContextSwitch:
    def test_zero_requests_free(self):
        assert batched_context_switch_cost(MACHINE, PAPER, 0, 4096) == 0.0

    def test_one_batch_costs_two_switches(self):
        cost = batched_context_switch_cost(MACHINE, PAPER, 1, 4096)
        assert cost == pytest.approx(2 * MACHINE.context_switch_ms)

    def test_batch_capacity_from_g(self):
        # G=4096, tuple=264 bytes -> 15 per batch; 16 requests = 2 batches.
        cost = batched_context_switch_cost(MACHINE, PAPER, 16, 4096)
        assert cost == pytest.approx(4 * MACHINE.context_switch_ms)

    def test_tiny_buffer_one_request_per_batch(self):
        cost = batched_context_switch_cost(MACHINE, PAPER, 10, 1)
        assert cost == pytest.approx(20 * MACHINE.context_switch_ms)
