"""Tests for the cost report types."""

import pytest

from repro.model.report import JoinCostReport, PassCost


def make_report() -> JoinCostReport:
    return JoinCostReport(
        algorithm="demo",
        passes=(
            PassCost(name="setup", setup_ms=10.0),
            PassCost(name="pass0", disk_ms=100.0, transfer_ms=5.0, cpu_ms=2.0),
            PassCost(name="pass1", disk_ms=50.0, context_switch_ms=3.0),
        ),
        derived={"k": 1.0},
    )


class TestPassCost:
    def test_total_sums_components(self):
        p = PassCost(
            name="x", disk_ms=1.0, transfer_ms=2.0, cpu_ms=3.0,
            context_switch_ms=4.0, setup_ms=5.0,
        )
        assert p.total_ms == pytest.approx(15.0)

    def test_defaults_zero(self):
        assert PassCost(name="empty").total_ms == 0.0


class TestJoinCostReport:
    def test_total_sums_passes(self):
        assert make_report().total_ms == pytest.approx(170.0)

    def test_component_aggregates(self):
        r = make_report()
        assert r.disk_ms == pytest.approx(150.0)
        assert r.setup_ms == pytest.approx(10.0)
        assert r.context_switch_ms == pytest.approx(3.0)

    def test_pass_named(self):
        assert make_report().pass_named("pass0").disk_ms == 100.0

    def test_pass_named_missing_raises(self):
        with pytest.raises(KeyError):
            make_report().pass_named("nope")

    def test_component_table_layout(self):
        table = make_report().component_table()
        assert set(table) == {"setup", "pass0", "pass1"}
        assert table["pass0"]["disk"] == 100.0
        assert table["pass0"]["total"] == pytest.approx(107.0)

    def test_describe_mentions_algorithm_and_passes(self):
        text = make_report().describe()
        assert "demo" in text
        assert "pass0" in text and "pass1" in text
