"""Tests for the Johnson–Kotz urn model and the Grace thrashing estimate."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.urn import (
    ThrashingEstimate,
    UrnModelError,
    empty_urn_pmf_johnson_kotz,
    grace_thrashing_estimate,
    occupied_urn_distribution,
    prob_empty_at_most,
)


class TestJohnsonKotzPmf:
    def test_no_balls_all_empty(self):
        assert empty_urn_pmf_johnson_kotz(0, 5, 5) == 1.0
        assert empty_urn_pmf_johnson_kotz(0, 5, 4) == 0.0

    def test_one_ball_one_occupied(self):
        assert empty_urn_pmf_johnson_kotz(1, 5, 4) == pytest.approx(1.0)

    def test_two_balls_two_urns(self):
        # P[one empty] = P[both balls in same urn] = 1/2.
        assert empty_urn_pmf_johnson_kotz(2, 2, 1) == pytest.approx(0.5)
        assert empty_urn_pmf_johnson_kotz(2, 2, 0) == pytest.approx(0.5)

    def test_all_empty_impossible_with_balls(self):
        assert empty_urn_pmf_johnson_kotz(3, 4, 4) == 0.0

    def test_rejects_invalid_arguments(self):
        with pytest.raises(UrnModelError):
            empty_urn_pmf_johnson_kotz(1, 0, 0)
        with pytest.raises(UrnModelError):
            empty_urn_pmf_johnson_kotz(1, 3, 4)

    @settings(max_examples=30, deadline=None)
    @given(
        balls=st.integers(min_value=0, max_value=40),
        urns=st.integers(min_value=1, max_value=12),
    )
    def test_matches_stable_dp(self, balls, urns):
        """Closed form and occupancy DP agree (the DP is the reference)."""
        pmf = occupied_urn_distribution(balls, urns)
        for empty in range(urns + 1):
            closed = empty_urn_pmf_johnson_kotz(balls, urns, empty)
            dp = pmf[urns - empty]
            assert closed == pytest.approx(dp, abs=1e-9)


class TestOccupancyDp:
    def test_pmf_sums_to_one(self):
        pmf = occupied_urn_distribution(50, 10)
        assert sum(pmf) == pytest.approx(1.0)

    def test_expected_occupied_matches_closed_form(self):
        balls, urns = 100, 30
        pmf = occupied_urn_distribution(balls, urns)
        expected = sum(u * p for u, p in enumerate(pmf))
        closed = urns * (1 - (1 - 1 / urns) ** balls)
        assert expected == pytest.approx(closed, rel=1e-9)

    def test_occupied_never_exceeds_balls(self):
        pmf = occupied_urn_distribution(3, 10)
        assert all(p == 0.0 for p in pmf[4:])

    def test_rejects_negative_balls(self):
        with pytest.raises(UrnModelError):
            occupied_urn_distribution(-1, 5)


class TestProbEmptyAtMost:
    def test_threshold_extremes(self):
        assert prob_empty_at_most(10, 5, -1) == 0.0
        assert prob_empty_at_most(10, 5, 5) == 1.0

    def test_monotone_in_threshold(self):
        values = [prob_empty_at_most(20, 10, k) for k in range(11)]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestGraceThrashing:
    def test_no_thrashing_with_ample_memory(self):
        est = grace_thrashing_estimate(
            hashed_objects=1000, buckets=8, frames=500, disks=4,
            objects_per_block=32,
        )
        assert est.premature_replacements == 0.0
        assert est.extra_blocks == 0.0

    def test_thrashing_when_buckets_exceed_frames(self):
        est = grace_thrashing_estimate(
            hashed_objects=2000, buckets=64, frames=16, disks=4,
            objects_per_block=32,
        )
        assert est.premature_replacements > 0.0
        assert est.extra_read_blocks == est.extra_write_blocks

    def test_replacements_bounded_by_hashed_objects(self):
        est = grace_thrashing_estimate(
            hashed_objects=500, buckets=256, frames=4, disks=4,
            objects_per_block=32,
        )
        assert est.premature_replacements <= 500.0

    def test_more_memory_never_more_thrashing(self):
        frames_series = [8, 16, 32, 64, 128]
        values = [
            grace_thrashing_estimate(
                hashed_objects=2000, buckets=48, frames=f, disks=4,
                objects_per_block=32,
            ).premature_replacements
            for f in frames_series
        ]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_fine_epochs_at_least_coarse_at_low_memory(self):
        kwargs = dict(
            hashed_objects=2000, buckets=64, frames=12, disks=4,
            objects_per_block=32,
        )
        coarse = grace_thrashing_estimate(**kwargs)
        fine = grace_thrashing_estimate(first_epoch_width=1, **kwargs)
        assert fine.premature_replacements >= coarse.premature_replacements

    def test_zero_hashed_objects(self):
        est = grace_thrashing_estimate(
            hashed_objects=0, buckets=8, frames=4, disks=4, objects_per_block=32
        )
        assert est.premature_replacements == 0.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(UrnModelError):
            grace_thrashing_estimate(10, 0, 4, 4, 32)
        with pytest.raises(UrnModelError):
            grace_thrashing_estimate(10, 4, 0, 4, 32)
        with pytest.raises(UrnModelError):
            grace_thrashing_estimate(-1, 4, 4, 4, 32)

    @settings(max_examples=20, deadline=None)
    @given(
        hashed=st.integers(min_value=0, max_value=3000),
        buckets=st.integers(min_value=1, max_value=96),
        frames=st.integers(min_value=1, max_value=256),
    )
    def test_estimate_always_finite_and_nonnegative(self, hashed, buckets, frames):
        est = grace_thrashing_estimate(
            hashed_objects=hashed, buckets=buckets, frames=frames, disks=4,
            objects_per_block=32,
        )
        assert est.premature_replacements >= 0.0
        assert math.isfinite(est.premature_replacements)
        assert est.premature_replacements <= hashed + 1e-9
