"""Behavioural tests of the three join cost models (paper 5.3, 6.3, 7.3)."""

import pytest

from repro.model import (
    MachineParameters,
    MemoryParameters,
    RelationParameters,
    grace_cost,
    grace_plan,
    merge_plan,
    nested_loops_cost,
    sort_merge_cost,
)

MACHINE = MachineParameters()
PAPER = RelationParameters()


def mem(fraction: float) -> MemoryParameters:
    return MemoryParameters.from_fractions(PAPER, fraction)


class TestNestedLoopsModel:
    def test_positive_total(self):
        assert nested_loops_cost(MACHINE, PAPER, mem(0.1)).total_ms > 0

    def test_monotone_nonincreasing_in_memory(self):
        totals = [
            nested_loops_cost(MACHINE, PAPER, mem(f)).total_ms
            for f in (0.05, 0.1, 0.2, 0.4, 0.7)
        ]
        assert all(b <= a + 1e-6 for a, b in zip(totals, totals[1:]))

    def test_has_expected_passes(self):
        report = nested_loops_cost(MACHINE, PAPER, mem(0.1))
        assert [p.name for p in report.passes] == ["setup", "pass0", "pass1"]

    def test_setup_counts_all_partitions(self):
        report = nested_loops_cost(MACHINE, PAPER, mem(0.1))
        single = (
            MACHINE.open_map(800) + MACHINE.open_map(800)
            + MACHINE.new_map(report.derived["rp_i"] / 32)
        )
        assert report.setup_ms == pytest.approx(4 * single)

    def test_fault_estimates_shrink_with_memory(self):
        low = nested_loops_cost(MACHINE, PAPER, mem(0.05)).derived
        high = nested_loops_cost(MACHINE, PAPER, mem(0.2)).derived
        assert high["si_faults_pass1"] < low["si_faults_pass1"]

    def test_components_sum_to_total(self):
        report = nested_loops_cost(MACHINE, PAPER, mem(0.1))
        component_sum = (
            report.disk_ms + report.transfer_ms + report.cpu_ms
            + report.context_switch_ms + report.setup_ms
        )
        assert report.total_ms == pytest.approx(component_sum)

    def test_more_disks_less_time_per_proc(self):
        four = nested_loops_cost(MACHINE, PAPER, mem(0.1)).total_ms
        eight = nested_loops_cost(MACHINE.with_disks(8), PAPER, mem(0.1)).total_ms
        assert eight < four


class TestSortMergeModel:
    def test_positive_total(self):
        assert sort_merge_cost(MACHINE, PAPER, mem(0.02)).total_ms > 0

    def test_npass_decreases_with_memory(self):
        plans = [merge_plan(MACHINE, PAPER, mem(f)) for f in (0.005, 0.02, 0.1)]
        npasses = [p.npass for p in plans]
        assert all(b <= a for a, b in zip(npasses, npasses[1:]))
        assert npasses[0] > npasses[-1]

    def test_lrun_consistent_with_npass(self):
        plan = merge_plan(MACHINE, PAPER, mem(0.01))
        # After npass - 1 fan-ins the runs collapse to lrun <= nrun_last.
        assert plan.lrun <= plan.nrun_last
        assert plan.lrun >= 1

    def test_irun_fills_memory(self):
        memory = mem(0.02)
        plan = merge_plan(MACHINE, PAPER, memory)
        per = PAPER.r_bytes + MACHINE.heap_pointer_bytes
        assert plan.irun == memory.m_rproc_bytes // per

    def test_extra_pass_has_visible_cost_step(self):
        # Crossing an NPASS boundary produces a discontinuity (Figure 5b).
        report_by_frac = {
            f: sort_merge_cost(MACHINE, PAPER, mem(f)) for f in (0.008, 0.02)
        }
        assert (
            report_by_frac[0.008].derived["npass"]
            > report_by_frac[0.02].derived["npass"]
        )
        assert (
            report_by_frac[0.008].pass_named("merge-passes").total_ms
            > report_by_frac[0.02].pass_named("merge-passes").total_ms
        )

    def test_has_expected_passes(self):
        report = sort_merge_cost(MACHINE, PAPER, mem(0.02))
        names = [p.name for p in report.passes]
        assert names == [
            "setup", "pass0", "pass1", "pass2-sort", "merge-passes",
            "final-merge-join",
        ]

    def test_single_merge_pass_has_no_recycle_setup(self):
        report = sort_merge_cost(MACHINE, PAPER, mem(0.1))
        if report.derived["npass"] == 1:
            assert report.pass_named("merge-passes").total_ms == 0.0


class TestGraceModel:
    def test_positive_total(self):
        assert grace_cost(MACHINE, PAPER, mem(0.05)).total_ms > 0

    def test_default_plan_buckets_shrink_with_memory(self):
        small = grace_plan(MACHINE, PAPER, mem(0.02))
        large = grace_plan(MACHINE, PAPER, mem(0.08))
        assert small.buckets > large.buckets

    def test_fixed_k_produces_thrashing_knee(self):
        k = grace_plan(MACHINE, PAPER, mem(0.02)).buckets
        low = grace_cost(MACHINE, PAPER, mem(0.015), buckets=k)
        high = grace_cost(MACHINE, PAPER, mem(0.08), buckets=k)
        assert low.derived["thrashing_extra_ms"] > 0
        assert high.derived["thrashing_extra_ms"] == pytest.approx(0.0, abs=1e-6)
        assert low.total_ms > high.total_ms

    def test_refinements_increase_low_memory_prediction(self):
        k = grace_plan(MACHINE, PAPER, mem(0.02)).buckets
        faithful = grace_cost(MACHINE, PAPER, mem(0.02), buckets=k)
        refined = grace_cost(
            MACHINE, PAPER, mem(0.02), buckets=k,
            include_pass1_thrashing=True, fine_epochs=True,
        )
        assert refined.total_ms > faithful.total_ms

    def test_refinements_negligible_at_high_memory(self):
        k = grace_plan(MACHINE, PAPER, mem(0.02)).buckets
        faithful = grace_cost(MACHINE, PAPER, mem(0.08), buckets=k)
        refined = grace_cost(
            MACHINE, PAPER, mem(0.08), buckets=k,
            include_pass1_thrashing=True, fine_epochs=True,
        )
        assert refined.total_ms == pytest.approx(faithful.total_ms, rel=0.05)

    def test_has_expected_passes(self):
        report = grace_cost(MACHINE, PAPER, mem(0.05))
        assert [p.name for p in report.passes] == [
            "setup", "pass0", "pass1", "probe-join",
        ]

    def test_explicit_buckets_respected(self):
        report = grace_cost(MACHINE, PAPER, mem(0.05), buckets=13, tsize=99)
        assert report.derived["buckets"] == 13.0
        assert report.derived["tsize"] == 99.0


class TestAlgorithmOrdering:
    def test_grace_beats_sort_merge_beats_nested_loops(self):
        """The paper's headline ordering at comparable (ample) memory."""
        memory = mem(0.05)
        nl = nested_loops_cost(MACHINE, PAPER, memory).total_ms
        sm = sort_merge_cost(MACHINE, PAPER, memory).total_ms
        gr = grace_cost(MACHINE, PAPER, memory).total_ms
        assert gr < sm < nl
