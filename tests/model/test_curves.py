"""Tests for the measured-curve value objects."""

import pytest
from hypothesis import given, strategies as st

from repro.model.curves import (
    CurveError,
    InterpolatedCurve,
    LinearCurve,
    paper_delete_map_curve,
    paper_dttr_curve,
    paper_dttw_curve,
    paper_new_map_curve,
    paper_open_map_curve,
)


class TestInterpolatedCurve:
    def test_exact_points_returned(self):
        curve = InterpolatedCurve(points=((1.0, 6.0), (100.0, 10.0)))
        assert curve(1.0) == 6.0
        assert curve(100.0) == 10.0

    def test_midpoint_interpolates_linearly(self):
        curve = InterpolatedCurve(points=((0.0, 0.0), (10.0, 10.0)))
        assert curve(5.0) == pytest.approx(5.0)
        assert curve(2.5) == pytest.approx(2.5)

    def test_clamps_below_first_point(self):
        curve = InterpolatedCurve(points=((10.0, 4.0), (20.0, 8.0)))
        assert curve(0.0) == 4.0

    def test_clamps_above_last_point(self):
        curve = InterpolatedCurve(points=((10.0, 4.0), (20.0, 8.0)))
        assert curve(1e9) == 8.0

    def test_multi_segment_interpolation(self):
        curve = InterpolatedCurve(points=((0.0, 0.0), (10.0, 10.0), (20.0, 0.0)))
        assert curve(15.0) == pytest.approx(5.0)

    def test_needs_two_points(self):
        with pytest.raises(CurveError):
            InterpolatedCurve(points=((1.0, 1.0),))

    def test_rejects_non_increasing_x(self):
        with pytest.raises(CurveError):
            InterpolatedCurve(points=((1.0, 1.0), (1.0, 2.0)))

    def test_rejects_negative_values(self):
        with pytest.raises(CurveError):
            InterpolatedCurve(points=((1.0, -1.0), (2.0, 2.0)))

    def test_from_samples_sorts(self):
        curve = InterpolatedCurve.from_samples([(10.0, 5.0), (1.0, 1.0)])
        assert curve.xs == (1.0, 10.0)

    def test_from_samples_averages_duplicates(self):
        curve = InterpolatedCurve.from_samples(
            [(1.0, 2.0), (1.0, 4.0), (5.0, 10.0)]
        )
        assert curve(1.0) == pytest.approx(3.0)

    @given(st.floats(min_value=0.0, max_value=200.0))
    def test_interpolation_within_value_bounds(self, x):
        curve = InterpolatedCurve(points=((0.0, 2.0), (50.0, 9.0), (100.0, 5.0)))
        assert 2.0 <= curve(x) <= 9.0

    def test_monotone_curve_stays_monotone(self):
        curve = paper_dttr_curve()
        samples = [curve(x) for x in range(1, 13000, 97)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))


class TestLinearCurve:
    def test_evaluation(self):
        curve = LinearCurve(base=2.0, slope=0.5)
        assert curve(10.0) == pytest.approx(7.0)

    def test_zero_argument_gives_base(self):
        assert LinearCurve(base=3.0, slope=1.0)(0.0) == 3.0

    def test_rejects_negative_argument(self):
        with pytest.raises(CurveError):
            LinearCurve(base=1.0, slope=1.0)(-1.0)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(CurveError):
            LinearCurve(base=-1.0, slope=1.0)

    def test_fit_recovers_exact_line(self):
        samples = [(x, 5.0 + 2.0 * x) for x in (1.0, 10.0, 100.0)]
        fit = LinearCurve.fit(samples)
        assert fit.base == pytest.approx(5.0)
        assert fit.slope == pytest.approx(2.0)

    def test_fit_clamps_negative_intercept(self):
        samples = [(1.0, 0.0), (2.0, 10.0), (3.0, 20.0)]
        fit = LinearCurve.fit(samples)
        assert fit.base >= 0.0

    def test_fit_needs_two_samples(self):
        with pytest.raises(CurveError):
            LinearCurve.fit([(1.0, 1.0)])

    def test_fit_rejects_degenerate_x(self):
        with pytest.raises(CurveError):
            LinearCurve.fit([(1.0, 1.0), (1.0, 2.0)])


class TestPaperCurves:
    def test_dttr_shape(self):
        curve = paper_dttr_curve()
        assert curve(1) == pytest.approx(6.0)
        assert curve(12800) == pytest.approx(22.0)

    def test_writes_cheaper_than_reads_at_every_band(self):
        dttr, dttw = paper_dttr_curve(), paper_dttw_curve()
        for band in (1, 100, 1000, 5000, 12800):
            assert dttw(band) <= dttr(band)

    def test_mapping_cost_ordering(self):
        new, opn, dele = (
            paper_new_map_curve(),
            paper_open_map_curve(),
            paper_delete_map_curve(),
        )
        for size in (100, 1000, 12800):
            assert new(size) > opn(size) > dele(size)

    def test_new_map_magnitude_matches_figure_1b(self):
        # ~12 seconds for a 12,800-block mapping in the paper's figure.
        assert paper_new_map_curve()(12800) == pytest.approx(12005, rel=0.05)
