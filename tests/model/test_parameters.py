"""Tests for the model parameter sets and page arithmetic."""

import pytest

from repro.model.parameters import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
    objects_per_page,
    pages_for,
)


class TestPagesFor:
    def test_exact_fit(self):
        # 32 objects of 128 bytes fill one 4K page.
        assert pages_for(32, 128, 4096) == 1

    def test_one_extra_object_needs_new_page(self):
        assert pages_for(33, 128, 4096) == 2

    def test_zero_objects(self):
        assert pages_for(0, 128, 4096) == 0

    def test_paper_relation_page_count(self):
        # 102,400 x 128 B over 4K pages = 3,200 pages.
        assert pages_for(102_400, 128, 4096) == 3_200

    def test_object_larger_than_page(self):
        assert pages_for(3, 10_000, 4096) == 3 * 3  # ceil(10000/4096) = 3

    def test_object_not_dividing_page_wastes_tail(self):
        # 4096 // 100 = 40 objects per page.
        assert pages_for(41, 100, 4096) == 2

    def test_negative_objects_rejected(self):
        with pytest.raises(ParameterError):
            pages_for(-1, 128, 4096)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ParameterError):
            pages_for(1, 0, 4096)


class TestObjectsPerPage:
    def test_paper_layout(self):
        assert objects_per_page(128, 4096) == 32

    def test_at_least_one(self):
        assert objects_per_page(10_000, 4096) == 1

    def test_rejects_bad_sizes(self):
        with pytest.raises(ParameterError):
            objects_per_page(0, 4096)


class TestMachineParameters:
    def test_defaults_are_paper_flavoured(self, machine):
        assert machine.page_size == 4096
        assert machine.disks == 4

    def test_with_disks(self, machine):
        assert machine.with_disks(8).disks == 8
        assert machine.disks == 4  # original untouched

    def test_rejects_nonpositive_page_size(self):
        with pytest.raises(ParameterError):
            MachineParameters(page_size=0)

    def test_rejects_negative_costs(self):
        with pytest.raises(ParameterError):
            MachineParameters(map_ms=-1.0)

    def test_rejects_nonpositive_disks(self):
        with pytest.raises(ParameterError):
            MachineParameters(disks=0)


class TestRelationParameters:
    def test_paper_defaults(self):
        rel = RelationParameters()
        assert rel.r_objects == rel.s_objects == 102_400
        assert rel.r_bytes == rel.s_bytes == 128

    def test_pages(self, machine):
        rel = RelationParameters()
        assert rel.pages_r(machine) == 3_200
        assert rel.pages_s(machine) == 3_200

    def test_join_tuple_bytes(self):
        rel = RelationParameters()
        assert rel.join_tuple_bytes == 128 + 8 + 128

    def test_rejects_skew_below_one(self):
        with pytest.raises(ParameterError):
            RelationParameters(skew=0.9)

    def test_rejects_empty_relations(self):
        with pytest.raises(ParameterError):
            RelationParameters(r_objects=0)


class TestMemoryParameters:
    def test_frames(self, machine):
        mem = MemoryParameters(m_rproc_bytes=40_960, m_sproc_bytes=8_192)
        assert mem.rproc_frames(machine) == 10
        assert mem.sproc_frames(machine) == 2

    def test_frames_never_zero(self, machine):
        mem = MemoryParameters(m_rproc_bytes=1, m_sproc_bytes=1)
        assert mem.rproc_frames(machine) == 1

    def test_from_fractions_uses_r_bytes_total(self):
        rel = RelationParameters(r_objects=1000, r_bytes=128)
        mem = MemoryParameters.from_fractions(rel, 0.5)
        assert mem.m_rproc_bytes == 64_000
        assert mem.m_sproc_bytes == 64_000  # defaults to the same grant

    def test_from_fractions_separate_s_fraction(self):
        rel = RelationParameters(r_objects=1000, r_bytes=128)
        mem = MemoryParameters.from_fractions(rel, 0.5, s_fraction=0.25)
        assert mem.m_sproc_bytes == 32_000

    def test_from_fractions_rejects_nonpositive(self):
        rel = RelationParameters()
        with pytest.raises(ParameterError):
            MemoryParameters.from_fractions(rel, 0.0)

    def test_rejects_nonpositive_buffer(self):
        with pytest.raises(ParameterError):
            MemoryParameters(m_rproc_bytes=1, m_sproc_bytes=1, g_bytes=0)
