"""Core data structures: records, virtual pointers, partitioning, heaps."""

from repro.core.partition import (
    classify_by_target,
    partition_skew,
    split_evenly,
    sub_partition_counts,
    workload_skew,
)
from repro.core.pheap import (
    CountingInstrumentation,
    HeapError,
    NullInstrumentation,
    PointerHeap,
    heapsort_pointers,
)
from repro.core.pointer import PointerError, PointerMap
from repro.core.records import JoinedPair, RObject, SObject, join_pair

__all__ = [
    "CountingInstrumentation",
    "HeapError",
    "JoinedPair",
    "NullInstrumentation",
    "PointerError",
    "PointerHeap",
    "PointerMap",
    "RObject",
    "SObject",
    "classify_by_target",
    "heapsort_pointers",
    "join_pair",
    "partition_skew",
    "split_evenly",
    "sub_partition_counts",
    "workload_skew",
]
