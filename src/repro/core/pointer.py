"""Virtual-pointer arithmetic over the partitioned inner relation.

S is partitioned across the ``D`` disks into equal-sized partitions
``S1 ... SD`` (paper section 4), and "the containing partition for an
object of S can be computed, in time ``map``, from a pointer to that
object".  :class:`PointerMap` is that computation: global S index to
``(partition, offset)`` and back.

When ``|S|`` does not divide evenly, the first ``|S| mod D`` partitions
hold one extra object, keeping partition sizes within one of each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

try:  # pragma: no cover - numpy ships with the toolchain; guarded anyway
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class PointerError(ValueError):
    """Raised for out-of-range virtual pointers."""


@dataclass(frozen=True)
class PointerMap:
    """Maps global S indices to (partition, local offset) pairs."""

    s_objects: int
    partitions: int

    def __post_init__(self) -> None:
        if self.s_objects <= 0:
            raise PointerError("S must contain at least one object")
        if self.partitions <= 0:
            raise PointerError("there must be at least one partition")

    @property
    def _base(self) -> int:
        return self.s_objects // self.partitions

    @property
    def _remainder(self) -> int:
        return self.s_objects % self.partitions

    def partition_size(self, partition: int) -> int:
        """Number of S-objects in the given partition."""
        self._check_partition(partition)
        return self._base + (1 if partition < self._remainder else 0)

    def partition_start(self, partition: int) -> int:
        """Global index of the first S-object in the partition."""
        self._check_partition(partition)
        return self._base * partition + min(partition, self._remainder)

    def partition_of(self, sptr: int) -> int:
        """The paper's ``MAP(sptr)``: which partition holds the object."""
        self._check_pointer(sptr)
        base, rem = self._base, self._remainder
        boundary = (base + 1) * rem  # first index of the base-sized partitions
        if sptr < boundary:
            return sptr // (base + 1)
        return rem + (sptr - boundary) // base if base else rem

    def offset_of(self, sptr: int) -> int:
        """Local offset of the object within its partition."""
        return sptr - self.partition_start(self.partition_of(sptr))

    def locate(self, sptr: int) -> tuple[int, int]:
        """(partition, offset) of a global pointer."""
        partition = self.partition_of(sptr)
        return partition, sptr - self.partition_start(partition)

    # ------------------------------------------------------------- batches
    #
    # The scalar methods above pay property lookups and range checks per
    # call, which dominates the real backend's redistribution passes.  The
    # batch forms hoist the partition geometry into locals, validate the
    # whole batch with one min/max, and run the arithmetic in a single
    # comprehension.

    def locate_many(self, sptrs: Sequence[int]) -> list[tuple[int, int]]:
        """(partition, offset) for a whole batch of global pointers."""
        if not sptrs:
            return []
        if min(sptrs) < 0 or max(sptrs) >= self.s_objects:
            raise PointerError(
                f"pointer outside [0, {self.s_objects}) in batch"
            )
        base, rem = self._base, self._remainder
        boundary = (base + 1) * rem
        out: list[tuple[int, int]] = []
        append = out.append
        for sptr in sptrs:
            if sptr < boundary:
                partition = sptr // (base + 1)
                append((partition, sptr - partition * (base + 1)))
            else:
                spill = sptr - boundary
                local = spill // base if base else 0
                append((rem + local, spill - local * base))
        return out

    def offset_many(self, sptrs: Sequence[int]) -> list[int]:
        """Local offsets for a whole batch of global pointers."""
        if not sptrs:
            return []
        if min(sptrs) < 0 or max(sptrs) >= self.s_objects:
            raise PointerError(
                f"pointer outside [0, {self.s_objects}) in batch"
            )
        base, rem = self._base, self._remainder
        boundary = (base + 1) * rem
        out: list[int] = []
        append = out.append
        for sptr in sptrs:
            if sptr < boundary:
                append(sptr % (base + 1))
            else:
                spill = sptr - boundary
                append(spill % base if base else spill)
        return out

    # ------------------------------------------------------------- arrays
    #
    # The vectorized kernel path: same geometry, computed over whole u64
    # arrays.  Both branches of the partition split are evaluated on their
    # masked subsets only, so no discarded lane ever wraps around.

    def locate_array(self, sptrs) -> tuple:
        """(partitions, offsets) u64 arrays for a batch of pointers."""
        n = len(sptrs)
        if n == 0:
            empty = _np.empty(0, dtype=_np.uint64)
            return empty, empty.copy()
        if int(sptrs.max()) >= self.s_objects:
            raise PointerError(
                f"pointer outside [0, {self.s_objects}) in batch"
            )
        base, rem = self._base, self._remainder
        boundary = (base + 1) * rem
        parts = _np.empty(n, dtype=_np.uint64)
        offs = _np.empty(n, dtype=_np.uint64)
        small = sptrs < boundary
        a = sptrs[small]
        p = a // (base + 1)
        parts[small] = p
        offs[small] = a - p * (base + 1)
        big = ~small
        if base and big.any():
            b = sptrs[big] - boundary
            q = b // base
            parts[big] = rem + q
            offs[big] = b - q * base
        return parts, offs

    def offset_array(self, sptrs):
        """Local offsets (u64 array) for a batch of pointers."""
        return self.locate_array(sptrs)[1]

    def global_index(self, partition: int, offset: int) -> int:
        """Inverse of :meth:`locate`."""
        if not 0 <= offset < self.partition_size(partition):
            raise PointerError(
                f"offset {offset} outside partition {partition} "
                f"(size {self.partition_size(partition)})"
            )
        return self.partition_start(partition) + offset

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.partitions:
            raise PointerError(
                f"partition {partition} outside [0, {self.partitions})"
            )

    def _check_pointer(self, sptr: int) -> None:
        if not 0 <= sptr < self.s_objects:
            raise PointerError(f"pointer {sptr} outside [0, {self.s_objects})")
