"""Instrumented pointer heaps for the sort-merge join (paper section 6).

The sort-merge algorithm sorts runs with a heap of *pointers* to R-objects
(Floyd construction + heapsort with Munro's bounce optimization) and merges
sorted runs with delete-insert operations on a heap of run cursors.  This
module implements those structures over real data while charging every
primitive — compare, swap, transfer — through an instrumentation hook, so
the simulated CPU time reflects the exact operation counts the run
performed and can be compared against the model's closed-form charges.

Implementation notes:

* :meth:`PointerHeap.pop_min` uses Floyd's "bounce" deletion: the hole left
  by the minimum is sifted to a leaf choosing the smaller child (one
  comparison per level), the last element is dropped into the hole and then
  bubbled up (expected O(1) comparisons).  Average cost per deletion is
  ``log2(n)`` comparisons plus a transfer — exactly the term the paper
  charges for heapsort.
* :meth:`PointerHeap.replace_min` is the classic delete-insert siftdown
  (two comparisons and possibly one swap per level), matching the model's
  ``g(h)`` term for the merge passes.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, List, Optional, Protocol, Sequence, TypeVar

T = TypeVar("T")


class HeapError(RuntimeError):
    """Raised on misuse of the pointer heap."""


class Instrumentation(Protocol):
    """Cost hooks; a SimProcess satisfies this protocol directly."""

    def charge_compare(self, count: int = 1) -> None: ...

    def charge_swap(self, count: int = 1) -> None: ...

    def charge_heap_transfer(self, count: int = 1) -> None: ...


class NullInstrumentation:
    """No-cost instrumentation for plain (non-simulated) use and tests."""

    def charge_compare(self, count: int = 1) -> None:
        pass

    def charge_swap(self, count: int = 1) -> None:
        pass

    def charge_heap_transfer(self, count: int = 1) -> None:
        pass


class CountingInstrumentation:
    """Counts operations without charging time (used by property tests)."""

    def __init__(self) -> None:
        self.compares = 0
        self.swaps = 0
        self.transfers = 0

    def charge_compare(self, count: int = 1) -> None:
        self.compares += count

    def charge_swap(self, count: int = 1) -> None:
        self.swaps += count

    def charge_heap_transfer(self, count: int = 1) -> None:
        self.transfers += count


class PointerHeap(Generic[T]):
    """A binary min-heap with instrumented primitives."""

    def __init__(
        self,
        items: Sequence[T] = (),
        key: Callable[[T], Any] = lambda item: item,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self._key = key
        self._instr = instrumentation or NullInstrumentation()
        self._heap: List[T] = list(items)
        self._instr.charge_heap_transfer(len(self._heap))
        self._floyd_build()

    # ------------------------------------------------------------ plumbing

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_empty(self) -> bool:
        return not self._heap

    def peek_min(self) -> T:
        if not self._heap:
            raise HeapError("peek on empty heap")
        return self._heap[0]

    def _less(self, a: T, b: T) -> bool:
        self._instr.charge_compare()
        return self._key(a) < self._key(b)

    def _swap(self, i: int, j: int) -> None:
        self._instr.charge_swap()
        heap = self._heap
        heap[i], heap[j] = heap[j], heap[i]

    # ------------------------------------------------------- construction

    def _floyd_build(self) -> None:
        n = len(self._heap)
        for root in range(n // 2 - 1, -1, -1):
            self._sift_down(root)

    def _sift_down(self, index: int) -> None:
        heap = self._heap
        n = len(heap)
        while True:
            left = 2 * index + 1
            if left >= n:
                return
            child = left
            right = left + 1
            if right < n and self._less(heap[right], heap[left]):
                child = right
            if self._less(heap[child], heap[index]):
                self._swap(index, child)
                index = child
            else:
                return

    def _sift_up(self, index: int) -> None:
        heap = self._heap
        while index > 0:
            parent = (index - 1) // 2
            if self._less(heap[index], heap[parent]):
                self._swap(index, parent)
                index = parent
            else:
                return

    # --------------------------------------------------------- operations

    def push(self, item: T) -> None:
        self._instr.charge_heap_transfer()
        self._heap.append(item)
        self._sift_up(len(self._heap) - 1)

    def pop_min(self) -> T:
        """Remove and return the minimum using Floyd's bounce deletion."""
        heap = self._heap
        if not heap:
            raise HeapError("pop on empty heap")
        self._instr.charge_heap_transfer()
        minimum = heap[0]
        last = heap.pop()
        if not heap:
            return minimum

        # Sift the hole down along the smaller-child path (one comparison
        # per level), then drop the last element in and bubble it up.
        n = len(heap)
        hole = 0
        while True:
            left = 2 * hole + 1
            if left >= n:
                break
            child = left
            right = left + 1
            if right < n and self._less(heap[right], heap[left]):
                child = right
            heap[hole] = heap[child]
            hole = child
        heap[hole] = last
        self._sift_up(hole)
        return minimum

    def replace_min(self, item: T) -> T:
        """Delete-insert: swap the minimum for a new item (merge step)."""
        heap = self._heap
        if not heap:
            raise HeapError("replace_min on empty heap")
        self._instr.charge_heap_transfer(2)  # old element out, new one in
        minimum = heap[0]
        heap[0] = item
        self._sift_down(0)
        return minimum

    def drain(self) -> List[T]:
        """Pop everything in ascending order (heapsort's second half)."""
        out = []
        while self._heap:
            out.append(self.pop_min())
        return out


def heapsort_pointers(
    items: Sequence[T],
    key: Callable[[T], Any] = lambda item: item,
    instrumentation: Optional[Instrumentation] = None,
) -> List[T]:
    """Sort by building a pointer heap and repeatedly deleting minima.

    This is the paper's run-sorting procedure: the items are (pointers to)
    the R-objects of one run; the sorted order is returned so the caller
    can move the actual objects in place.
    """
    heap: PointerHeap[T] = PointerHeap(
        items, key=key, instrumentation=instrumentation
    )
    return heap.drain()
