"""Object records for the pointer-based join.

R-objects carry the join attribute as a *virtual pointer* (``sptr``) — the
global index of an S-object — which is the defining trait of the paper's
algorithms: the pointer induces an implicit physical ordering of S, so S
never needs sorting or hashing.

Records are plain named tuples: the simulator accounts their size through
the declared ``r_bytes``/``s_bytes``, so the Python-side representation can
stay minimal while payload fields keep join verification meaningful.
"""

from __future__ import annotations

from typing import NamedTuple


class RObject(NamedTuple):
    """One object of the outer relation R."""

    rid: int       # unique identifier
    sptr: int      # virtual pointer: global index into S
    payload: int   # carried data, exercised by verification checksums


class SObject(NamedTuple):
    """One object of the inner relation S."""

    sid: int       # unique identifier == its global index
    value: int     # joined attribute value
    payload: int


class JoinedPair(NamedTuple):
    """One output tuple of the join."""

    rid: int
    sid: int
    r_payload: int
    s_value: int


def join_pair(r: RObject, s: SObject) -> JoinedPair:
    """Form the output tuple for a matched R/S pair."""
    return JoinedPair(rid=r.rid, sid=s.sid, r_payload=r.payload, s_value=s.value)
