"""Partitioning helpers and the paper's skew measure (section 4).

``Ri,j`` is the subset of partition ``Ri`` whose join attributes point into
``Sj``.  The skew of a partitioning is
``skew = max_j |Ri,j| / (|Ri| / D)`` — how much the largest sub-partition
exceeds an even split — and it enters the cost models differently for the
synchronized and unsynchronized algorithms.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.pointer import PointerMap
from repro.core.records import RObject


def classify_by_target(
    r_objects: Iterable[RObject], pointer_map: PointerMap
) -> List[List[RObject]]:
    """Split one R partition into its ``Ri,j`` sub-partitions."""
    groups: List[List[RObject]] = [[] for _ in range(pointer_map.partitions)]
    for obj in r_objects:
        groups[pointer_map.partition_of(obj.sptr)].append(obj)
    return groups


def sub_partition_counts(
    r_objects: Iterable[RObject], pointer_map: PointerMap
) -> List[int]:
    """``|Ri,j|`` for each j, without materializing the groups."""
    counts = [0] * pointer_map.partitions
    for obj in r_objects:
        counts[pointer_map.partition_of(obj.sptr)] += 1
    return counts


def partition_skew(counts: Sequence[int]) -> float:
    """Skew of one partition's sub-partition counts."""
    total = sum(counts)
    if total == 0:
        return 1.0
    even_share = total / len(counts)
    return max(counts) / even_share


def workload_skew(
    r_partitions: Sequence[Sequence[RObject]], pointer_map: PointerMap
) -> float:
    """Worst-case skew across all R partitions (gates the slowest process)."""
    worst = 1.0
    for partition in r_partitions:
        counts = sub_partition_counts(partition, pointer_map)
        worst = max(worst, partition_skew(counts))
    return worst


def split_evenly(objects: Sequence[RObject], partitions: int) -> List[List[RObject]]:
    """Divide R into equal-sized partitions (within one object).

    The paper assumes R "is also divided into equal-sized partitions"; the
    split is by position, which for a randomly-generated R is equivalent to
    a random assignment.
    """
    if partitions <= 0:
        raise ValueError("need at least one partition")
    base, remainder = divmod(len(objects), partitions)
    out: List[List[RObject]] = []
    cursor = 0
    for i in range(partitions):
        size = base + (1 if i < remainder else 0)
        out.append(list(objects[cursor : cursor + size]))
        cursor += size
    return out
