"""Analytical cost model for parallel pointer-based nested loops (paper 5.3).

Pass 0 reads ``Ri`` sequentially; objects pointing into the local ``Si`` are
joined immediately through the shared G buffer, the rest are spilled into
the sub-partitioned temporary area ``RPi`` on the same disk.  Pass 1 walks
the ``RPi,j`` sub-partitions in ``D - 1`` staggered, unsynchronized phases,
joining each against the remote ``Sj`` through that partition's Sproc.

Disk layout on disk ``i`` is ``[ Ri | Si | RPi ]``, so the worst-case band
of disk-arm movement in pass 0 spans all three areas and in pass 1 spans
``Si`` and ``RPi`` (the paper treats the remote S partition as equally
sized, so the band expression is unchanged).  Random reads and writes are
interspersed, so every dtt cost is charged at the random (banded) rate.
"""

from __future__ import annotations

from repro.model.buffer import ylru_detailed
from repro.model.geometry import (
    batched_context_switch_cost,
    nested_loops_geometry,
)
from repro.model.parameters import (
    MachineParameters,
    MemoryParameters,
    RelationParameters,
)
from repro.model.report import JoinCostReport, PassCost


def nested_loops_cost(
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
) -> JoinCostReport:
    """Predicted elapsed time per Rproc for the nested-loops join."""
    geo = nested_loops_geometry(machine, relations)
    d = machine.disks
    join_bytes = relations.join_tuple_bytes
    s_frames = memory.sproc_frames(machine)

    # ---- pass 0: sequential Ri scan, spill to RPi, local immediate join.
    band0 = geo.pages_r_i + geo.pages_s_i + geo.pages_rp_i
    dttr0 = machine.dttr(band0)
    dttw0 = machine.dttw(band0)

    read_ri = geo.pages_r_i * dttr0
    write_rp = geo.pages_rp_i * dttw0
    si_est0 = ylru_detailed(
        n_tuples=max(1, round(geo.rs_i)),
        t_pages=max(1, round(geo.pages_s_i)),
        i_keys=max(1, round(geo.rs_i)),
        b_frames=s_frames,
        x_lookups=geo.r_ii,
    )
    read_si_pass0 = si_est0.faults * dttr0

    transfer0 = (
        geo.rp_i * relations.r_bytes * machine.mt_pp_ms_per_byte
        + geo.r_ii * join_bytes * machine.mt_ps_ms_per_byte
    )
    cpu0 = geo.r_i * machine.map_ms
    cs0 = batched_context_switch_cost(machine, relations, geo.r_ii, memory.g_bytes)

    pass0 = PassCost(
        name="pass0",
        disk_ms=read_ri + write_rp + read_si_pass0,
        transfer_ms=transfer0,
        cpu_ms=cpu0,
        context_switch_ms=cs0,
    )

    # ---- pass 1: staggered phases over RPi,j against remote Sj.
    band1 = geo.pages_s_i + geo.pages_rp_i
    dttr1 = machine.dttr(band1)

    read_rp = geo.pages_rp_i * dttr1
    si_est1 = ylru_detailed(
        n_tuples=max(1, round(geo.rs_i)),
        t_pages=max(1, round(geo.pages_s_i)),
        i_keys=max(1, round(geo.rs_i)),
        b_frames=s_frames,
        x_lookups=geo.rp_i,
    )
    read_si_pass1 = si_est1.faults * dttr1

    transfer1 = geo.rp_i * join_bytes * machine.mt_ps_ms_per_byte
    cs1 = batched_context_switch_cost(machine, relations, geo.rp_i, memory.g_bytes)

    pass1 = PassCost(
        name="pass1",
        disk_ms=read_rp + read_si_pass1,
        transfer_ms=transfer1,
        context_switch_ms=cs1,
    )

    # ---- mapping setup: serial across the D partitions.
    setup_ms = d * (
        machine.open_map(geo.pages_r_i)
        + machine.open_map(geo.pages_s_i)
        + machine.new_map(geo.pages_rp_i)
    )
    setup = PassCost(name="setup", setup_ms=setup_ms)

    derived = {
        "r_i": geo.r_i,
        "r_ii": geo.r_ii,
        "rp_i": geo.rp_i,
        "band_pass0_blocks": band0,
        "band_pass1_blocks": band1,
        "si_faults_pass0": si_est0.faults,
        "si_faults_pass1": si_est1.faults,
        "sproc_frames": float(s_frames),
    }
    return JoinCostReport(
        algorithm="nested-loops", passes=(setup, pass0, pass1), derived=derived
    )
