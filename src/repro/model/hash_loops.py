"""Cost model for the pointer-based hash-loops join (extension).

The paper's related work (§2.3) discusses the Hash-Loops pointer join of
Lieuwen, DeWitt and Mehta and defers modelling further hash-based variants
to future work (§7: "Modelling of other more modern hash-based join
algorithms will be done in future work").  This module supplies that model
for the memory-mapped environment, alongside the executable algorithm in
:mod:`repro.joins.hash_loops`.

Hash-loops refines nested loops: instead of dereferencing each S-pointer as
it is found, R-objects are collected into a memory-sized *chunk* hashed by
the S **page** they reference; when the chunk fills, the distinct pages are
visited in ascending order, so each S page is read at most once per chunk
and the disk arm sweeps forward.  Expected distinct pages per chunk follow
the classical occupancy form ``t * (1 - (1 - 1/t)**c)``.

Geometry and the pass-0/pass-1 redistribution structure are exactly nested
loops' (unsynchronized phases, skew absorbed by the missing barrier), so
the comparison between the two models isolates the chunking effect.
"""

from __future__ import annotations

import math

from repro.model.buffer import ylru
from repro.model.geometry import (
    batched_context_switch_cost,
    nested_loops_geometry,
)
from repro.model.parameters import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
)
from repro.model.report import JoinCostReport, PassCost


def chunk_capacity(machine: MachineParameters, relations: RelationParameters,
                   memory: MemoryParameters) -> int:
    """R-objects per in-memory chunk: the chunk plus its table fit MRproc."""
    per_object = relations.r_bytes + machine.heap_pointer_bytes
    capacity = memory.m_rproc_bytes // per_object
    if capacity < 1:
        raise ParameterError("MRproc cannot hold a single chunk entry")
    return capacity


def expected_distinct_pages(pages: float, references: float) -> float:
    """Occupancy: expected distinct pages hit by ``references`` lookups.

    Defined for fractional page counts (tiny partitions occupy less than a
    page): at or below one page every lookup hits the same page, and the
    estimate can never exceed either the page count or the lookup count.
    """
    if pages <= 0 or references <= 0:
        return 0.0
    if pages <= 1.0:
        return min(pages, references)
    raw = pages * (1.0 - (1.0 - 1.0 / pages) ** references)
    return min(raw, pages, references)


def _chunked_page_reads(pages: float, lookups: float, capacity: int) -> float:
    """Total S pages touched across all chunks of one pass (closed form).

    Every full chunk contributes the same occupancy expectation, so the sum
    collapses to ``full_chunks * E[capacity] + E[remainder]``.
    """
    if lookups <= 0:
        return 0.0
    full_chunks, remainder = divmod(lookups, capacity)
    total = full_chunks * expected_distinct_pages(pages, capacity)
    if remainder > 0:
        total += expected_distinct_pages(pages, remainder)
    return total


def _whole_pass_faults(geo, s_frames: int, lookups: float) -> float:
    """Mackert–Lohman fault bound for a whole pass of S lookups."""
    if lookups <= 0:
        return 0.0
    return ylru(
        n_tuples=max(1, round(geo.rs_i)),
        t_pages=max(1, round(geo.pages_s_i)),
        i_keys=max(1, round(geo.rs_i)),
        b_frames=s_frames,
        x_lookups=lookups,
    )


def hash_loops_cost(
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
) -> JoinCostReport:
    """Predicted elapsed time per Rproc for the hash-loops join."""
    geo = nested_loops_geometry(machine, relations)
    d = machine.disks
    join_bytes = relations.join_tuple_bytes
    capacity = chunk_capacity(machine, relations, memory)

    # ---- pass 0: Ri scan; spill remote objects, chunk-join local ones.
    band0 = geo.pages_r_i + geo.pages_s_i + geo.pages_rp_i
    dttr0 = machine.dttr(band0)
    dttw0 = machine.dttw(band0)

    s_frames = memory.sproc_frames(machine)

    pages0 = _chunked_page_reads(geo.pages_s_i, geo.r_ii, capacity)
    # The per-chunk occupancy sum assumes a cold Sproc buffer each chunk;
    # when the buffer retains pages across chunks the Mackert–Lohman bound
    # for the whole pass is tighter, so take the minimum of the two.
    pages0 = min(pages0, _whole_pass_faults(geo, s_frames, geo.r_ii))

    pass0 = PassCost(
        name="pass0",
        disk_ms=(
            geo.pages_r_i * dttr0
            + geo.pages_rp_i * dttw0
            + pages0 * dttr0
        ),
        transfer_ms=(
            geo.rp_i * relations.r_bytes * machine.mt_pp_ms_per_byte
            + geo.r_ii * join_bytes * machine.mt_ps_ms_per_byte
        ),
        cpu_ms=geo.r_i * machine.map_ms + geo.r_ii * machine.hash_ms,
        context_switch_ms=batched_context_switch_cost(
            machine, relations, geo.r_ii, memory.g_bytes
        ),
    )

    # ---- pass 1: chunk-join each RPi,j against its remote partition.
    band1 = geo.pages_s_i + geo.pages_rp_i
    dttr1 = machine.dttr(band1)
    per_phase = geo.rp_i / (d - 1) if d > 1 else 0.0
    pages1 = 0.0
    if d > 1 and per_phase > 0:
        pages1 = (d - 1) * _chunked_page_reads(
            geo.pages_s_i, per_phase, capacity
        )
        pages1 = min(pages1, _whole_pass_faults(geo, s_frames, geo.rp_i))

    pass1 = PassCost(
        name="pass1",
        disk_ms=geo.pages_rp_i * dttr1 + pages1 * dttr1,
        transfer_ms=geo.rp_i * join_bytes * machine.mt_ps_ms_per_byte,
        cpu_ms=geo.rp_i * machine.hash_ms,
        context_switch_ms=batched_context_switch_cost(
            machine, relations, geo.rp_i, memory.g_bytes
        ),
    )

    setup = PassCost(
        name="setup",
        setup_ms=d * (
            machine.open_map(geo.pages_r_i)
            + machine.open_map(geo.pages_s_i)
            + machine.new_map(geo.pages_rp_i)
        ),
    )

    derived = {
        "r_i": geo.r_i,
        "r_ii": geo.r_ii,
        "rp_i": geo.rp_i,
        "chunk_capacity": float(capacity),
        "band_pass0_blocks": band0,
        "band_pass1_blocks": band1,
        "s_pages_read_pass0": pages0,
        "s_pages_read_pass1": pages1,
    }
    return JoinCostReport(
        algorithm="hash-loops", passes=(setup, pass0, pass1), derived=derived
    )
