"""Measured machine-dependent cost curves.

The paper's analytical model is parameterized by *measured* machine
functions rather than first-principles hardware constants:

* ``dttr(band)`` / ``dttw(band)`` — average time to transfer one block to or
  from disk when random accesses span a band of the given size, in blocks
  (paper Figure 1a).  The paper measures these on its Fujitsu drives and
  interpolates; we do the same, either from the built-in paper-shaped
  defaults or from points measured on the simulated disk by
  :mod:`repro.harness.calibrate`.
* ``newMap`` / ``openMap`` / ``deleteMap`` — cost of creating, opening and
  destroying a memory mapping of a given size in blocks (paper Figure 1b).
  These are linear in the mapping size.

Both curve families are represented here as small, explicit value objects so
that model code reads like the paper's formulas.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence, Tuple


class CurveError(ValueError):
    """Raised when a curve is constructed from unusable points."""


@dataclass(frozen=True)
class InterpolatedCurve:
    """Piecewise-linear interpolation through measured ``(x, y)`` points.

    Outside the measured range the curve is clamped to the first/last
    measured value, matching how the paper treats its measured disk
    functions (band sizes beyond the measured area are "large enough to
    obtain an average access time").
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise CurveError("an interpolated curve needs at least two points")
        xs = [x for x, _ in self.points]
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise CurveError("curve x-coordinates must be strictly increasing")
        if any(y < 0 for _, y in self.points):
            raise CurveError("curve values must be non-negative")

    @property
    def xs(self) -> Tuple[float, ...]:
        return tuple(x for x, _ in self.points)

    @property
    def ys(self) -> Tuple[float, ...]:
        return tuple(y for _, y in self.points)

    def __call__(self, x: float) -> float:
        xs = self.xs
        ys = self.ys
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        hi = bisect.bisect_right(xs, x)
        lo = hi - 1
        span = xs[hi] - xs[lo]
        frac = (x - xs[lo]) / span
        return ys[lo] + frac * (ys[hi] - ys[lo])

    @classmethod
    def from_samples(cls, samples: Sequence[Tuple[float, float]]) -> "InterpolatedCurve":
        """Build a curve from unsorted measured samples.

        Duplicate x-coordinates are averaged, as repeated calibration runs of
        the same band size produce several samples.
        """
        grouped: dict[float, list[float]] = {}
        for x, y in samples:
            grouped.setdefault(float(x), []).append(float(y))
        points = tuple(
            (x, sum(vals) / len(vals)) for x, vals in sorted(grouped.items())
        )
        return cls(points)


@dataclass(frozen=True)
class LinearCurve:
    """An affine cost function ``y = base + slope * x``.

    The paper's Figure 1b shows all three mapping-setup costs growing
    linearly with mapping size ("constructing the page table and acquiring
    disk space increases linearly with the size of the file mapped").
    """

    base: float
    slope: float

    def __post_init__(self) -> None:
        if self.base < 0 or self.slope < 0:
            raise CurveError("linear curve coefficients must be non-negative")

    def __call__(self, x: float) -> float:
        if x < 0:
            raise CurveError(f"curve argument must be non-negative, got {x}")
        return self.base + self.slope * x

    @classmethod
    def fit(cls, samples: Sequence[Tuple[float, float]]) -> "LinearCurve":
        """Least-squares fit of a line through measured samples.

        Used by the calibration harness to turn measured mapping-setup
        samples into the model's ``newMap``/``openMap``/``deleteMap``
        functions, mirroring the paper's measurement-then-model pipeline.
        """
        if len(samples) < 2:
            raise CurveError("fitting a line needs at least two samples")
        n = len(samples)
        sx = sum(x for x, _ in samples)
        sy = sum(y for _, y in samples)
        sxx = sum(x * x for x, _ in samples)
        sxy = sum(x * y for x, y in samples)
        denom = n * sxx - sx * sx
        if denom == 0:
            raise CurveError("cannot fit a line through samples with equal x")
        slope = (n * sxy - sx * sy) / denom
        base = (sy - slope * sx) / n
        # Measured setup costs are physically non-negative; tiny negative
        # intercepts from fit noise are clamped.
        return cls(base=max(base, 0.0), slope=max(slope, 0.0))


def paper_dttr_curve() -> InterpolatedCurve:
    """Paper-shaped read transfer curve (Figure 1a), ms per 4K block."""
    return InterpolatedCurve(
        points=(
            (1.0, 6.0),
            (800.0, 8.0),
            (1600.0, 9.5),
            (3200.0, 12.0),
            (6400.0, 16.0),
            (9600.0, 19.0),
            (12800.0, 22.0),
        )
    )


def paper_dttw_curve() -> InterpolatedCurve:
    """Paper-shaped write transfer curve (Figure 1a), ms per 4K block.

    Writes are cheaper than reads because dirty pages are written back
    lazily, which permits shortest-seek scheduling of the queued blocks.
    """
    return InterpolatedCurve(
        points=(
            (1.0, 6.0),
            (800.0, 7.2),
            (1600.0, 8.0),
            (3200.0, 10.0),
            (6400.0, 13.0),
            (9600.0, 15.0),
            (12800.0, 17.0),
        )
    )


def paper_new_map_curve() -> LinearCurve:
    """Paper-shaped ``newMap`` cost (Figure 1b), ms per mapping of n blocks."""
    return LinearCurve(base=5.0, slope=0.9375)


def paper_open_map_curve() -> LinearCurve:
    """Paper-shaped ``openMap`` cost (Figure 1b)."""
    return LinearCurve(base=4.0, slope=0.625)


def paper_delete_map_curve() -> LinearCurve:
    """Paper-shaped ``deleteMap`` cost (Figure 1b)."""
    return LinearCurve(base=2.0, slope=0.234)
