"""The paper's quantitative analytical model (sections 3, 5.3, 6.3, 7.3).

Public surface:

* parameter sets — :class:`MachineParameters`, :class:`RelationParameters`,
  :class:`MemoryParameters`;
* measured-curve types — :class:`InterpolatedCurve`, :class:`LinearCurve`;
* the three join cost models — :func:`nested_loops_cost`,
  :func:`sort_merge_cost`, :func:`grace_cost` — each returning a
  :class:`JoinCostReport`;
* the component sub-models — :func:`ylru` (Mackert–Lohman) and
  :func:`grace_thrashing_estimate` (Johnson–Kotz urn model).
"""

from repro.model.buffer import BufferModelError, LruEstimate, ylru, ylru_detailed
from repro.model.curves import (
    CurveError,
    InterpolatedCurve,
    LinearCurve,
    paper_delete_map_curve,
    paper_dttr_curve,
    paper_dttw_curve,
    paper_new_map_curve,
    paper_open_map_curve,
)
from repro.model.geometry import (
    PartitionGeometry,
    batched_context_switch_cost,
    nested_loops_geometry,
    synchronized_geometry,
)
from repro.model.grace import GracePlan, grace_cost, grace_plan
from repro.model.heaps import (
    HeapCostParameters,
    HeapModelError,
    delete_insert_unit_cost,
    floyd_build_cost,
    heapsort_cost,
    merge_pass_cost,
)
from repro.model.hash_loops import (
    chunk_capacity,
    expected_distinct_pages,
    hash_loops_cost,
)
from repro.model.hybrid_hash import hybrid_hash_cost
from repro.model.nested_loops import nested_loops_cost
from repro.model.parameters import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
    objects_per_page,
    pages_for,
)
from repro.model.report import JoinCostReport, PassCost
from repro.model.sensitivity import (
    CURVE_PARAMETERS,
    SCALAR_PARAMETERS,
    Sensitivity,
    parameter_sensitivity,
    render_sensitivities,
    scale_interpolated,
    scale_linear,
)
from repro.model.sort_merge import MergePlan, merge_plan, sort_merge_cost
from repro.model.urn import (
    ThrashingEstimate,
    UrnModelError,
    empty_urn_pmf_johnson_kotz,
    grace_thrashing_estimate,
    occupied_urn_distribution,
    prob_empty_at_most,
)

__all__ = [
    "BufferModelError",
    "CurveError",
    "GracePlan",
    "HeapCostParameters",
    "HeapModelError",
    "InterpolatedCurve",
    "JoinCostReport",
    "LinearCurve",
    "LruEstimate",
    "MachineParameters",
    "MemoryParameters",
    "MergePlan",
    "ParameterError",
    "PartitionGeometry",
    "PassCost",
    "SCALAR_PARAMETERS",
    "CURVE_PARAMETERS",
    "Sensitivity",
    "RelationParameters",
    "ThrashingEstimate",
    "UrnModelError",
    "batched_context_switch_cost",
    "delete_insert_unit_cost",
    "empty_urn_pmf_johnson_kotz",
    "floyd_build_cost",
    "grace_cost",
    "grace_plan",
    "grace_thrashing_estimate",
    "hash_loops_cost",
    "hybrid_hash_cost",
    "chunk_capacity",
    "expected_distinct_pages",
    "heapsort_cost",
    "merge_pass_cost",
    "merge_plan",
    "nested_loops_cost",
    "nested_loops_geometry",
    "objects_per_page",
    "occupied_urn_distribution",
    "pages_for",
    "parameter_sensitivity",
    "render_sensitivities",
    "scale_interpolated",
    "scale_linear",
    "paper_delete_map_curve",
    "paper_dttr_curve",
    "paper_dttw_curve",
    "paper_new_map_curve",
    "paper_open_map_curve",
    "prob_empty_at_most",
    "sort_merge_cost",
    "synchronized_geometry",
    "ylru",
    "ylru_detailed",
]
