"""Parameter sensitivity of the join cost models.

The paper offers its model as "a high-level filter for data structure and
algorithm designers to predict general performance behaviour without having
to construct and test specific approaches".  A designer's first question of
such a filter is *which machine parameter matters*: would a faster disk, a
cheaper context switch, or a larger page help this join most?

:func:`parameter_sensitivity` answers it numerically: each machine constant
(and each measured curve, scaled as a whole) is perturbed by a relative
step and the model re-evaluated; the reported **elasticity** is the
percentage change in predicted cost per percent change in the parameter.
An elasticity of 1.0 means the cost is proportional to that parameter;
0 means it does not matter at this operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

from repro.model.curves import InterpolatedCurve, LinearCurve
from repro.model.parameters import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
)
from repro.model.report import JoinCostReport

ModelFn = Callable[..., JoinCostReport]

SCALAR_PARAMETERS = (
    "context_switch_ms",
    "mt_pp_ms_per_byte",
    "mt_ps_ms_per_byte",
    "mt_sp_ms_per_byte",
    "mt_ss_ms_per_byte",
    "map_ms",
    "hash_ms",
    "compare_ms",
    "swap_ms",
    "transfer_ms",
)

CURVE_PARAMETERS = ("dttr", "dttw", "new_map", "open_map", "delete_map")


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of the predicted cost with respect to one parameter."""

    parameter: str
    base_value: float          # the scalar, or 1.0 for whole-curve scaling
    elasticity: float

    @property
    def matters(self) -> bool:
        return abs(self.elasticity) > 0.01


def scale_interpolated(curve: InterpolatedCurve, factor: float) -> InterpolatedCurve:
    """A copy of a measured curve with every value scaled."""
    if factor <= 0:
        raise ParameterError("curve scale factor must be positive")
    return InterpolatedCurve(
        points=tuple((x, y * factor) for x, y in curve.points)
    )


def scale_linear(curve: LinearCurve, factor: float) -> LinearCurve:
    """A copy of a fitted line with both coefficients scaled."""
    if factor <= 0:
        raise ParameterError("curve scale factor must be positive")
    return LinearCurve(base=curve.base * factor, slope=curve.slope * factor)


def _perturbed(machine: MachineParameters, parameter: str, factor: float) -> MachineParameters:
    if parameter in SCALAR_PARAMETERS:
        return replace(machine, **{parameter: getattr(machine, parameter) * factor})
    if parameter in CURVE_PARAMETERS:
        curve = getattr(machine, parameter)
        if isinstance(curve, InterpolatedCurve):
            return replace(machine, **{parameter: scale_interpolated(curve, factor)})
        return replace(machine, **{parameter: scale_linear(curve, factor)})
    raise ParameterError(f"unknown machine parameter {parameter!r}")


def parameter_sensitivity(
    model_fn: ModelFn,
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
    parameters: Sequence[str] = SCALAR_PARAMETERS + CURVE_PARAMETERS,
    step: float = 0.1,
    **model_kwargs,
) -> List[Sensitivity]:
    """Central-difference elasticities, sorted by magnitude (largest first)."""
    if not 0 < step < 1:
        raise ParameterError("step must be within (0, 1)")
    base_cost = model_fn(machine, relations, memory, **model_kwargs).total_ms
    if base_cost <= 0:
        raise ParameterError("base model cost must be positive")

    results: List[Sensitivity] = []
    for parameter in parameters:
        up = model_fn(
            _perturbed(machine, parameter, 1 + step), relations, memory,
            **model_kwargs,
        ).total_ms
        down = model_fn(
            _perturbed(machine, parameter, 1 - step), relations, memory,
            **model_kwargs,
        ).total_ms
        elasticity = (up - down) / (2 * step * base_cost)
        base_value = (
            getattr(machine, parameter)
            if parameter in SCALAR_PARAMETERS
            else 1.0
        )
        results.append(
            Sensitivity(
                parameter=parameter,
                base_value=float(base_value),
                elasticity=elasticity,
            )
        )
    results.sort(key=lambda s: abs(s.elasticity), reverse=True)
    return results


def render_sensitivities(
    algorithm: str, sensitivities: Sequence[Sensitivity]
) -> str:
    """A tornado-style text table of elasticities."""
    from repro.harness.report import format_table

    rows = [
        [s.parameter, s.base_value, f"{s.elasticity:+.3f}",
         "#" * min(40, int(abs(s.elasticity) * 40 + 0.5))]
        for s in sensitivities
    ]
    return "\n".join(
        [
            f"== parameter sensitivity: {algorithm} "
            "(elasticity = %cost per %parameter) ==",
            format_table(["parameter", "base", "elasticity", ""], rows),
        ]
    )
