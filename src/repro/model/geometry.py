"""Partition geometry shared by the three cost models (paper section 4).

The relations are partitioned across ``D`` disks: ``Ri`` and ``Si`` live on
disk ``i``, together with the temporary areas (``RPi``, ``RSi``, ``Mergei``)
that an algorithm creates there.  The models reason about *expected*
cardinalities, so everything here is real-valued.

The skew adjustment differs per algorithm and is the subtlest point of the
paper's analysis:

* **Nested loops** runs its phases *unsynchronized*, so the skew in the
  ``RPi,j`` sub-partitions is absorbed by the extra parallelism; only
  ``|Ri,i|`` is inflated by skew and ``|RPi| = |Ri| - |Ri,i|``.
* **Sort-merge and Grace** synchronize between phases, so each pass must
  account for the worst-case partition: ``|Ri,i| = (|Ri|/D) * skew`` and
  ``|RPi| = |Ri| * skew - |Ri,i|``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.parameters import (
    MachineParameters,
    ParameterError,
    RelationParameters,
    objects_per_page,
)


@dataclass(frozen=True)
class PartitionGeometry:
    """Expected per-partition cardinalities and page counts (floats)."""

    r_i: float          # |Ri|   objects of R on this Rproc
    r_ii: float         # |Ri,i| objects of Ri whose pointer stays local
    rp_i: float         # |RPi|  objects spilled to the temporary area
    rs_i: float         # |RSi|  objects of R pointing into Si (sort-merge/Grace)
    s_i: float          # |Si|   objects of S on this disk
    pages_r_i: float    # P_Ri
    pages_rp_i: float   # P_RPi
    pages_rs_i: float   # P_RSi
    pages_s_i: float    # P_Si

    def __post_init__(self) -> None:
        for name in ("r_i", "r_ii", "rp_i", "rs_i", "s_i"):
            if getattr(self, name) < 0:
                raise ParameterError(f"{name} cannot be negative")


def _pages(objects: float, object_bytes: int, machine: MachineParameters) -> float:
    per_page = objects_per_page(object_bytes, machine.page_size)
    return objects / per_page


def nested_loops_geometry(
    machine: MachineParameters, relations: RelationParameters
) -> PartitionGeometry:
    """Geometry for the unsynchronized nested-loops analysis (5.3).

    ``|Ri,i| = (|R| / D^2) * skew`` for the largest local sub-partition and
    ``|RPi| = |Ri| - |Ri,i|``; ``Ri`` itself is *not* skew-adjusted because
    the missing synchronization lets fast processes run ahead.
    """
    d = machine.disks
    r_i = relations.r_objects / d
    r_ii = relations.r_objects / (d * d) * relations.skew
    r_ii = min(r_ii, r_i)
    rp_i = r_i - r_ii
    rs_i = relations.r_objects / d  # only used by the Ylru arguments
    s_i = relations.s_objects / d
    return PartitionGeometry(
        r_i=r_i,
        r_ii=r_ii,
        rp_i=rp_i,
        rs_i=rs_i,
        s_i=s_i,
        pages_r_i=_pages(r_i, relations.r_bytes, machine),
        pages_rp_i=_pages(rp_i, relations.r_bytes, machine),
        pages_rs_i=_pages(rs_i, relations.r_bytes, machine),
        pages_s_i=_pages(s_i, relations.s_bytes, machine),
    )


def synchronized_geometry(
    machine: MachineParameters, relations: RelationParameters
) -> PartitionGeometry:
    """Geometry for the synchronized sort-merge/Grace analyses (6.3, 7.3).

    With a barrier between phases, the slowest (most skewed) partition
    gates every pass: ``|Ri,i| = (|Ri| / D) * skew`` and
    ``|RPi| = |Ri| * skew - |Ri,i| = (|R| * skew / D) * (1 - 1/D)``.
    """
    d = machine.disks
    r_i = relations.r_objects / d
    r_ii = min(r_i / d * relations.skew, r_i)
    rp_i = max(r_i * relations.skew - r_ii, 0.0)
    rs_i = relations.r_objects / d
    s_i = relations.s_objects / d
    return PartitionGeometry(
        r_i=r_i,
        r_ii=r_ii,
        rp_i=rp_i,
        rs_i=rs_i,
        s_i=s_i,
        pages_r_i=_pages(r_i, relations.r_bytes, machine),
        pages_rp_i=_pages(rp_i, relations.r_bytes, machine),
        pages_rs_i=_pages(rs_i, relations.r_bytes, machine),
        pages_s_i=_pages(s_i, relations.s_bytes, machine),
    )


def batched_context_switch_cost(
    machine: MachineParameters,
    relations: RelationParameters,
    requested_objects: float,
    g_bytes: int,
) -> float:
    """``g(h) = 2 * CS * ceil(h / (G / (r + sptr + s)))`` (paper 5.3).

    Requests for S-objects are batched through the shared G-sized buffer;
    each batch costs two context switches (Rproc -> Sproc -> Rproc).
    """
    if requested_objects <= 0:
        return 0.0
    batch_capacity = max(1, g_bytes // relations.join_tuple_bytes)
    batches = math.ceil(requested_objects / batch_capacity)
    return 2.0 * machine.context_switch_ms * batches
