"""Cost model for the pointer-based hybrid-hash join (extension; §2.3).

Hybrid hash is Grace with the first ``R0`` buckets *resident*: their
R-objects join on the fly through the G buffer instead of being spilled to
``RSi`` and probed later.  Relative to the Grace model (§7.3) this:

* removes the spill write and probe read for the resident fraction
  ``R0/K`` of the redistributed relation;
* adds immediate S dereferences during passes 0 and 1, charged through the
  Mackert–Lohman buffer model over the resident slice of ``Si`` (the
  order-preserving hash confines them to a contiguous ``R0/K`` of the
  partition, so they hit the Sproc buffer once the slice is cached);
* shrinks the urn-model thrashing base to the spilled buckets ``K - R0``.

``R0 = 0`` reproduces the Grace model term for term.
"""

from __future__ import annotations

from repro.model.buffer import ylru
from repro.model.geometry import (
    batched_context_switch_cost,
    synchronized_geometry,
)
from repro.model.grace import grace_plan
from repro.model.parameters import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
    objects_per_page,
)
from repro.model.report import JoinCostReport, PassCost
from repro.model.urn import grace_thrashing_estimate


def default_resident_buckets(
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
    buckets: int,
) -> int:
    """Resident buckets whose S slices fit half the Sproc buffer."""
    if buckets < 1:
        raise ParameterError("bucket count must be at least 1")
    s_i = relations.s_objects / machine.disks
    s_pages = s_i / objects_per_page(relations.s_bytes, machine.page_size)
    frames = memory.sproc_frames(machine)
    pages_per_bucket = max(1.0, s_pages / buckets)
    resident = int((frames / 2) / pages_per_bucket)
    return max(0, min(buckets - 1, resident))


def hybrid_hash_cost(
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
    buckets: int | None = None,
    resident_buckets: int | None = None,
    tsize: int | None = None,
) -> JoinCostReport:
    """Predicted elapsed time per Rproc for the hybrid-hash join."""
    geo = synchronized_geometry(machine, relations)
    d = machine.disks
    plan = grace_plan(machine, relations, memory, buckets=buckets, tsize=tsize)
    k = plan.buckets
    r0 = (
        resident_buckets
        if resident_buckets is not None
        else default_resident_buckets(machine, relations, memory, k)
    )
    if not 0 <= r0 < k:
        raise ParameterError(f"resident buckets {r0} must be within [0, {k})")
    spilled_frac = (k - r0) / k
    resident_frac = r0 / k
    join_bytes = relations.join_tuple_bytes
    frames = memory.rproc_frames(machine)
    s_frames = memory.sproc_frames(machine)
    r_per_block = objects_per_page(relations.r_bytes, machine.page_size)

    pages_rs_spilled = geo.pages_rs_i * spilled_frac
    resident_s_pages = max(1.0, geo.pages_s_i * resident_frac)

    def resident_join_faults(lookups: float) -> float:
        """Ylru over the resident slice of Si."""
        if lookups <= 0 or resident_frac == 0:
            return 0.0
        slice_objects = max(1, round(geo.s_i * resident_frac))
        return ylru(
            n_tuples=slice_objects,
            t_pages=max(1, round(resident_s_pages)),
            i_keys=slice_objects,
            b_frames=s_frames,
            x_lookups=lookups,
        )

    # ---- pass 0.
    band0 = geo.pages_r_i + geo.pages_s_i + pages_rs_spilled + geo.pages_rp_i
    spilled_r_ii_pages = geo.r_ii * spilled_frac / r_per_block
    thrash = grace_thrashing_estimate(
        hashed_objects=round(geo.r_ii * spilled_frac),
        buckets=max(1, k - r0),
        frames=frames,
        disks=d,
        objects_per_block=r_per_block,
    )
    thrash_ms = thrash.extra_read_blocks * machine.dttr(
        band0
    ) + thrash.extra_write_blocks * machine.dttw(band0)
    resident0 = geo.r_ii * resident_frac
    pass0 = PassCost(
        name="pass0",
        disk_ms=(
            geo.pages_r_i * machine.dttr(band0)
            + geo.pages_rp_i * machine.dttw(band0)
            + (spilled_r_ii_pages + (k - r0)) * machine.dttw(band0)
            + resident_join_faults(resident0) * machine.dttr(band0)
            + thrash_ms
        ),
        transfer_ms=(
            geo.r_i * relations.r_bytes * machine.mt_pp_ms_per_byte
            + resident0 * join_bytes * machine.mt_ps_ms_per_byte
        ),
        cpu_ms=geo.r_i * machine.map_ms + geo.r_ii * machine.hash_ms,
        context_switch_ms=batched_context_switch_cost(
            machine, relations, resident0, memory.g_bytes
        ),
    )

    # ---- pass 1.
    band1 = pages_rs_spilled + geo.pages_rp_i
    resident1 = geo.rp_i * resident_frac
    pass1 = PassCost(
        name="pass1",
        disk_ms=(
            geo.pages_rp_i * machine.dttr(band1)
            + (geo.pages_rp_i * spilled_frac + (k - r0)) * machine.dttw(band1)
            + resident_join_faults(resident1) * machine.dttr(band1)
        ),
        transfer_ms=(
            geo.rp_i * spilled_frac * relations.r_bytes * machine.mt_pp_ms_per_byte
            + resident1 * join_bytes * machine.mt_ps_ms_per_byte
        ),
        cpu_ms=geo.rp_i * machine.hash_ms,
        context_switch_ms=batched_context_switch_cost(
            machine, relations, resident1, memory.g_bytes
        ),
    )

    # ---- probe passes over the spilled buckets only.
    spilled_rs = geo.rs_i * spilled_frac
    band_probe = max(1.0, pages_rs_spilled / (2.0 * max(1, k - r0)))
    probe = PassCost(
        name="probe-join",
        disk_ms=(
            (pages_rs_spilled + geo.pages_s_i * spilled_frac)
            * machine.dttr(band_probe)
        ),
        transfer_ms=spilled_rs * join_bytes * machine.mt_ps_ms_per_byte,
        cpu_ms=spilled_rs * machine.hash_ms,
        context_switch_ms=batched_context_switch_cost(
            machine, relations, spilled_rs, memory.g_bytes
        ),
    )

    setup = PassCost(
        name="setup",
        setup_ms=d * (
            machine.open_map(geo.pages_r_i)
            + machine.open_map(geo.pages_s_i)
            + machine.new_map(pages_rs_spilled + geo.pages_rp_i)
            + machine.open_map(pages_rs_spilled)
        ),
    )

    derived = {
        "r_i": geo.r_i,
        "r_ii": geo.r_ii,
        "rp_i": geo.rp_i,
        "rs_i": geo.rs_i,
        "buckets": float(k),
        "resident_buckets": float(r0),
        "tsize": float(plan.tsize),
        "rproc_frames": float(frames),
        "band_pass0_blocks": band0,
        "band_pass1_blocks": band1,
        "premature_replacements": thrash.premature_replacements,
        "thrashing_extra_ms": thrash_ms,
    }
    return JoinCostReport(
        algorithm="hybrid-hash", passes=(setup, pass0, pass1, probe),
        derived=derived,
    )
