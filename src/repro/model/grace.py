"""Analytical cost model for the parallel pointer-based Grace join (7.3).

Passes 0 and 1 mirror sort-merge except that R-objects are *hashed* into one
of ``K`` order-preserving buckets of ``RSi`` instead of being appended.  The
first hash function clusters by join-attribute value so that bucket ``j``
holds strictly smaller S-locations than bucket ``j+1``; the in-memory second
hash (range ``TSIZE``) then refines each bucket, and because common
references share a chain, every referenced S-object is read exactly once —
and sequentially, thanks to the monotone bucketing.

The distinguishing model term is the urn-model *thrashing correction*
(:func:`repro.model.urn.grace_thrashing_estimate`): at low memory, LRU
prematurely evicts partially-filled bucket pages during pass 0, and each
premature eviction costs one extra write plus one extra read.  This term
produces the characteristic upturn of Figure 5(c) at small memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.geometry import (
    batched_context_switch_cost,
    synchronized_geometry,
)
from repro.model.parameters import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
    objects_per_page,
)
from repro.model.report import JoinCostReport, PassCost
from repro.model.urn import grace_thrashing_estimate


@dataclass(frozen=True)
class GracePlan:
    """Chosen Grace parameters (paper 7.2)."""

    buckets: int   # K
    tsize: int     # range of the in-memory refining hash


def grace_plan(
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
    buckets: int | None = None,
    tsize: int | None = None,
) -> GracePlan:
    """Choose ``K`` and ``TSIZE`` if the caller did not.

    ``K`` is chosen so one bucket of ``RSi``, its hash-table overhead *and*
    the S-objects the bucket references all fit in MRproc simultaneously
    (paper 7.2: "each BSi,j along with its associated hash table overhead
    fits entirely in memory", plus the 7.1 assumption that the referenced
    S-objects of a chain fit in the remaining memory).  Each bucket object
    therefore claims ``r + hp + s`` bytes, and a 3x safety factor absorbs
    table underutilization — matching the knee position of Figure 5(c).

    Note that ``K`` is a *design constant* of an experiment series: the
    Figure 5(c) sweep holds the K chosen for its design point fixed while
    memory shrinks underneath it, which is precisely what produces the
    thrashing upturn at low memory.
    """
    if buckets is None:
        rs_i = relations.r_objects / machine.disks
        per_object = (
            relations.r_bytes + machine.heap_pointer_bytes + relations.s_bytes
        )
        objects_per_bucket = max(1.0, memory.m_rproc_bytes / (3.0 * per_object))
        buckets = max(1, math.ceil(rs_i / objects_per_bucket))
    if buckets < 1:
        raise ParameterError("bucket count must be at least 1")
    if tsize is None:
        tsize = max(16, buckets * 4)
    if tsize < 1:
        raise ParameterError("TSIZE must be at least 1")
    return GracePlan(buckets=buckets, tsize=tsize)


def grace_cost(
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
    buckets: int | None = None,
    tsize: int | None = None,
    include_pass1_thrashing: bool = False,
    fine_epochs: bool = False,
) -> JoinCostReport:
    """Predicted elapsed time per Rproc for the Grace join.

    The default is the *paper-faithful* model, which charges the urn-model
    thrashing correction in pass 0 only and uses a first epoch of width K.
    The paper itself reports that this underpredicts at low memory
    (Figure 5c); two documented refinements close most of that gap:

    * ``include_pass1_thrashing`` — pass 1 hashes the ``RPi,j`` into K
      bucket streams under the same memory pressure as pass 0, so the same
      urn argument applies per phase (with a single sequential read stream
      filling pages instead of ``D - 1`` spill streams);
    * ``fine_epochs`` — evaluate the eviction probability with unit-width
      epochs from the start instead of the paper's coarse width-K first
      epoch.
    """
    geo = synchronized_geometry(machine, relations)
    d = machine.disks
    plan = grace_plan(machine, relations, memory, buckets=buckets, tsize=tsize)
    k = plan.buckets
    join_bytes = relations.join_tuple_bytes
    frames = memory.rproc_frames(machine)
    r_per_block = objects_per_page(relations.r_bytes, machine.page_size)

    # ---- pass 0: Ri scan; spill to RPi, hash local objects into K buckets.
    band0 = geo.pages_r_i + geo.pages_s_i + geo.pages_rs_i + geo.pages_rp_i
    pages_r_ii = geo.r_ii / r_per_block
    # Writing |Ri,i| objects into K buckets dirties up to K extra partial
    # pages beyond the dense page count.
    write_rs0 = (pages_r_ii + k) * machine.dttw(band0)
    first_width = 1 if fine_epochs else None
    thrash = grace_thrashing_estimate(
        hashed_objects=round(geo.r_ii),
        buckets=k,
        frames=frames,
        disks=d,
        objects_per_block=r_per_block,
        first_epoch_width=first_width,
    )
    thrash_ms = thrash.extra_read_blocks * machine.dttr(
        band0
    ) + thrash.extra_write_blocks * machine.dttw(band0)
    pass0 = PassCost(
        name="pass0",
        disk_ms=(
            geo.pages_r_i * machine.dttr(band0)
            + geo.pages_rp_i * machine.dttw(band0)
            + write_rs0
            + thrash_ms
        ),
        transfer_ms=geo.r_i * relations.r_bytes * machine.mt_pp_ms_per_byte,
        cpu_ms=geo.r_i * machine.map_ms + geo.r_ii * machine.hash_ms,
    )

    # ---- pass 1: RPi,j read in staggered phases, hashed into the RSj.
    band1 = geo.pages_rs_i + geo.pages_rp_i
    thrash1_ms = 0.0
    thrash1_replacements = 0.0
    if include_pass1_thrashing and d > 1:
        # One phase hashes |RPi,j| = rp_i / (D-1) objects into the K bucket
        # streams; the only other fill stream is the sequential RPi read,
        # so the fill rate corresponds to disks=2 in the urn argument.
        per_phase = round(geo.rp_i / (d - 1))
        phase_thrash = grace_thrashing_estimate(
            hashed_objects=per_phase,
            buckets=k,
            frames=frames,
            disks=2,
            objects_per_block=r_per_block,
            first_epoch_width=first_width,
        )
        thrash1_replacements = phase_thrash.premature_replacements * (d - 1)
        thrash1_ms = (d - 1) * (
            phase_thrash.extra_read_blocks * machine.dttr(band1)
            + phase_thrash.extra_write_blocks * machine.dttw(band1)
        )
    pass1 = PassCost(
        name="pass1",
        disk_ms=(
            geo.pages_rp_i * machine.dttr(band1)
            + (geo.pages_rp_i + k) * machine.dttw(band1)
            + thrash1_ms
        ),
        transfer_ms=geo.rp_i * relations.r_bytes * machine.mt_pp_ms_per_byte,
        cpu_ms=geo.rp_i * machine.hash_ms,
    )

    # ---- probe passes 1+j: each bucket into the in-memory table, then a
    # sequential, once-only read of the referenced S-objects.
    band_probe = max(1.0, geo.pages_rs_i / (2.0 * k))
    probe_disk = (geo.pages_rs_i + geo.pages_s_i) * machine.dttr(band_probe)
    probe_cpu = geo.rs_i * machine.hash_ms
    probe_xfer = geo.rs_i * join_bytes * machine.mt_ps_ms_per_byte
    probe_cs = batched_context_switch_cost(
        machine, relations, geo.rs_i, memory.g_bytes
    )
    probe = PassCost(
        name="probe-join",
        disk_ms=probe_disk,
        transfer_ms=probe_xfer,
        cpu_ms=probe_cpu,
        context_switch_ms=probe_cs,
    )

    # ---- mapping setup (serial across the D partitions).
    setup_ms = d * (
        machine.open_map(geo.pages_r_i)
        + machine.open_map(geo.pages_s_i)
        + machine.new_map(geo.pages_rs_i + geo.pages_rp_i)
        + machine.open_map(geo.pages_rs_i)
    )
    setup = PassCost(name="setup", setup_ms=setup_ms)

    derived = {
        "r_i": geo.r_i,
        "r_ii": geo.r_ii,
        "rp_i": geo.rp_i,
        "rs_i": geo.rs_i,
        "buckets": float(k),
        "tsize": float(plan.tsize),
        "rproc_frames": float(frames),
        "band_pass0_blocks": band0,
        "band_pass1_blocks": band1,
        "band_probe_blocks": band_probe,
        "premature_replacements": thrash.premature_replacements,
        "thrashing_extra_ms": thrash_ms,
        "pass1_premature_replacements": thrash1_replacements,
        "pass1_thrashing_extra_ms": thrash1_ms,
    }
    return JoinCostReport(
        algorithm="grace", passes=(setup, pass0, pass1, probe), derived=derived
    )
