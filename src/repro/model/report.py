"""Structured cost reports produced by the analytical models.

Every model evaluation returns a :class:`JoinCostReport` that decomposes the
predicted elapsed time of one Rproc (which, by the paper's argument of
contention-free D-fold parallelism, is also the predicted elapsed time of
the whole join) into per-pass components:

* ``disk_ms``          — page transfers charged through dttr/dttw;
* ``transfer_ms``      — memory-to-memory object movement (MTpp/MTps/...);
* ``cpu_ms``           — map/hash/heap computation;
* ``context_switch_ms``— Rproc/Sproc hand-offs through the G buffer;
* ``setup_ms``         — newMap/openMap/deleteMap costs.

``derived`` carries the intermediate quantities of the analysis (partition
cardinalities, band sizes, IRUN/NPASS, Ylru fault counts, ...) so tests and
the validation harness can inspect the model's internals, and so the report
doubles as the "high-level filter" the paper intends for designers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


@dataclass(frozen=True)
class PassCost:
    """Predicted cost of one pass of a join algorithm, milliseconds."""

    name: str
    disk_ms: float = 0.0
    transfer_ms: float = 0.0
    cpu_ms: float = 0.0
    context_switch_ms: float = 0.0
    setup_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.disk_ms
            + self.transfer_ms
            + self.cpu_ms
            + self.context_switch_ms
            + self.setup_ms
        )


@dataclass(frozen=True)
class JoinCostReport:
    """Full model prediction for one parallel pointer-based join."""

    algorithm: str
    passes: Tuple[PassCost, ...]
    derived: Mapping[str, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        """Predicted elapsed time per Rproc (= total join time)."""
        return sum(p.total_ms for p in self.passes)

    @property
    def disk_ms(self) -> float:
        return sum(p.disk_ms for p in self.passes)

    @property
    def transfer_ms(self) -> float:
        return sum(p.transfer_ms for p in self.passes)

    @property
    def cpu_ms(self) -> float:
        return sum(p.cpu_ms for p in self.passes)

    @property
    def context_switch_ms(self) -> float:
        return sum(p.context_switch_ms for p in self.passes)

    @property
    def setup_ms(self) -> float:
        return sum(p.setup_ms for p in self.passes)

    def pass_named(self, name: str) -> PassCost:
        for p in self.passes:
            if p.name == name:
                return p
        raise KeyError(f"no pass named {name!r} in {self.algorithm} report")

    def component_table(self) -> Dict[str, Dict[str, float]]:
        """Nested dict view (pass -> component -> ms) for display code."""
        table: Dict[str, Dict[str, float]] = {}
        for p in self.passes:
            table[p.name] = {
                "disk": p.disk_ms,
                "transfer": p.transfer_ms,
                "cpu": p.cpu_ms,
                "context_switch": p.context_switch_ms,
                "setup": p.setup_ms,
                "total": p.total_ms,
            }
        return table

    def describe(self) -> str:
        """Human-readable multi-line summary, used by examples and benches."""
        lines = [f"{self.algorithm}: predicted {self.total_ms:,.1f} ms/Rproc"]
        for p in self.passes:
            lines.append(
                f"  {p.name:<14} total={p.total_ms:>12,.1f} ms  "
                f"(disk={p.disk_ms:,.1f}, xfer={p.transfer_ms:,.1f}, "
                f"cpu={p.cpu_ms:,.1f}, cs={p.context_switch_ms:,.1f}, "
                f"setup={p.setup_ms:,.1f})"
            )
        return "\n".join(lines)
