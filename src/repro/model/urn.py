"""Urn-model approximation of Grace-join thrashing (paper section 7.3).

At low memory, pass 0 of the Grace algorithm hashes R-objects into ``K``
bucket pages while the LRU replacement policy ages partially-filled bucket
pages out of memory; a bucket page that is evicted before it fills costs one
extra write (the eviction) and one extra read (the next hit).  The paper
approximates the expected number of such premature replacements with an urn
model built on the Johnson–Kotz occupancy distribution.

Two implementations of the occupancy distribution are provided:

* :func:`empty_urn_pmf_johnson_kotz` — the closed-form alternating sum from
  Johnson & Kotz (1977, p. 110).  Exact but numerically fragile for large
  ball counts, so it is used for cross-checking.
* :func:`occupied_urn_distribution` — a stable O(n*m) dynamic program over
  the number of occupied urns, used by the thrashing estimate.

Reconstruction note (OCR): the printed eviction condition is garbled, so the
threshold is rebuilt from the paper's narrative.  With ``F_j`` fill events
and ``D`` current pages in memory at the start of epoch ``j``, a bucket page
has been pushed out of a ``frames``-page memory iff the number of *distinct*
bucket pages touched, ``K - (empty urns)``, satisfies
``(K - empty) + F_j + D >= frames``, i.e. ``empty <= K + F_j + D - frames``.
Epoch sizes follow the paper: the first epoch spans ``K`` hashed objects and
every later epoch spans one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


class UrnModelError(ValueError):
    """Raised for impossible urn-model arguments."""


def empty_urn_pmf_johnson_kotz(balls: int, urns: int, empty: int) -> float:
    """P[exactly ``empty`` urns are empty after ``balls`` random throws].

    Closed form from Johnson & Kotz::

        Pr[X = k] = C(m, k) (1 - k/m)^n  sum_{j=0}^{m-k} C(m-k, j) (-1)^j
                    (1 - j/(m-k))^n

    The alternating sum loses precision once ``n`` is large relative to
    ``m``; prefer :func:`occupied_urn_distribution` in model code.
    """
    m, n, k = urns, balls, empty
    if m <= 0:
        raise UrnModelError("need at least one urn")
    if n < 0 or k < 0 or k > m:
        raise UrnModelError("invalid ball or empty-urn count")
    if n == 0:
        return 1.0 if k == m else 0.0
    if k == m:
        return 0.0  # at least one urn holds a ball
    total = 0.0
    rest = m - k
    for j in range(rest + 1):
        term = math.comb(rest, j) * ((-1.0) ** j) * (1.0 - j / rest) ** n
        total += term
    prob = math.comb(m, k) * (1.0 - k / m) ** n * total
    return min(max(prob, 0.0), 1.0)


def occupied_urn_distribution(balls: int, urns: int) -> List[float]:
    """PMF over the number of *occupied* urns after ``balls`` throws.

    Stable DP on the classical occupancy recurrence: a new ball either lands
    in an already-occupied urn (probability ``u/m``) or claims a new one.
    """
    m = urns
    if m <= 0:
        raise UrnModelError("need at least one urn")
    if balls < 0:
        raise UrnModelError("ball count cannot be negative")
    pmf = [0.0] * (m + 1)
    pmf[0] = 1.0
    return _advance_occupancy(pmf, m, balls)


def _concentrated_estimate(
    hashed_objects: int,
    buckets: int,
    frames: int,
    disks: int,
    objects_per_block: int,
    first_epoch_width: int | None,
) -> ThrashingEstimate:
    """Large-K approximation: occupancy replaced by its expectation.

    ``p_j`` becomes an indicator: the page counts as evicted once the
    expected distinct-buckets-touched plus fill events plus current pages
    exceed the frame count.
    """
    miss_q = 1.0 - 1.0 / buckets
    first_width = buckets if first_epoch_width is None else max(1, first_epoch_width)
    horizon = min(hashed_objects, int(math.ceil(-math.log(1e-9) * buckets)))
    prob_sum = 0.0
    h_j = 0
    j = 0
    # Later epochs can be coarsened at large K: the re-hit mass declines
    # smoothly, so steps of ~K/256 objects lose no meaningful resolution.
    later_width = max(1, buckets // 256)
    while h_j < horizon:
        width = first_width if j == 0 else later_width
        h_next = h_j + width
        y_j = miss_q**h_j - miss_q**h_next
        if y_j <= 0.0:
            break
        occupied = buckets * (1.0 - miss_q**h_j)
        fill_events = (h_j * (disks - 1)) // objects_per_block
        if occupied + fill_events + disks >= frames:
            prob_sum += y_j
        h_j = h_next
        j += 1
    replacements = hashed_objects * prob_sum
    return ThrashingEstimate(
        premature_replacements=replacements,
        extra_read_blocks=replacements,
        extra_write_blocks=replacements,
    )


def _advance_occupancy(pmf: List[float], urns: int, balls: int) -> List[float]:
    """Advance an occupied-urn PMF by ``balls`` additional throws."""
    m = urns
    for _ in range(balls):
        nxt = [0.0] * (m + 1)
        for u, p in enumerate(pmf):
            if p == 0.0:
                continue
            nxt[u] += p * (u / m)
            if u < m:
                nxt[u + 1] += p * ((m - u) / m)
        pmf = nxt
    return pmf


def prob_empty_at_most(balls: int, urns: int, threshold: int) -> float:
    """P[number of empty urns <= threshold] after ``balls`` throws."""
    if threshold < 0:
        return 0.0
    if threshold >= urns:
        return 1.0
    pmf = occupied_urn_distribution(balls, urns)
    # empty <= threshold  <=>  occupied >= urns - threshold
    return sum(pmf[urns - threshold :])


@dataclass(frozen=True)
class ThrashingEstimate:
    """Expected extra I/O from premature bucket-page replacement."""

    premature_replacements: float
    extra_read_blocks: float
    extra_write_blocks: float

    @property
    def extra_blocks(self) -> float:
        return self.extra_read_blocks + self.extra_write_blocks


def grace_thrashing_estimate(
    hashed_objects: int,
    buckets: int,
    frames: int,
    disks: int,
    objects_per_block: int,
    max_epochs: int | None = None,
    first_epoch_width: int | None = None,
) -> ThrashingEstimate:
    """Expected premature replacements of RSi bucket pages in Grace pass 0.

    Parameters mirror the paper: ``hashed_objects`` is ``|Ri,i|``,
    ``buckets`` is ``K``, ``frames`` is ``MRproc/B``, ``disks`` is ``D`` and
    ``objects_per_block`` is ``B / r``.

    For each epoch ``j`` (epoch 0 spans ``K`` hashed objects, later epochs
    span one object each):

    * ``H_j``  — objects hashed before the epoch starts;
    * ``y_j``  — probability the page's second hit falls in epoch ``j``:
      ``(1 - 1/K)**H_j - (1 - 1/K)**H_{j+1}``;
    * ``F_j``  — fill events so far, ``floor(H_j * (D - 1) / B_objs)``
      (only the ``D-1`` RPi,j streams fill pages at a meaningful rate; the
      RSi fill rate of ``1/(K * B_objs)`` is negligible, per the paper);
    * ``p_j``  — probability the page was already evicted, i.e.
      ``P[empty urns <= K + F_j + D - frames]`` after ``H_j`` throws.

    Expected premature replacements = ``|Ri,i| * sum_j p_j * y_j``, each one
    costing one extra block write and one extra block read.

    ``first_epoch_width`` defaults to ``K`` — the paper: "For our
    computations we used size K for the first epoch and 1 for the rest."
    Passing 1 gives a finer (and at very low memory, noticeably larger)
    estimate; the coarse default systematically underpredicts there, which
    is the bias the paper itself reports for Figure 5(c).
    """
    if buckets <= 0:
        raise UrnModelError("bucket count must be positive")
    if hashed_objects < 0:
        raise UrnModelError("hashed object count cannot be negative")
    if frames <= 0:
        raise UrnModelError("frame count must be positive")
    if disks <= 0:
        raise UrnModelError("disk count must be positive")
    if objects_per_block <= 0:
        raise UrnModelError("objects_per_block must be positive")
    if hashed_objects == 0:
        return ThrashingEstimate(0.0, 0.0, 0.0)

    if frames >= buckets + disks + hashed_objects * (disks - 1) // objects_per_block:
        # Memory can hold every bucket page, every fill event and the
        # current pages simultaneously: no premature replacement possible.
        return ThrashingEstimate(0.0, 0.0, 0.0)

    miss_q = 1.0 - 1.0 / buckets
    if buckets > 512:
        # For very large K the occupancy count concentrates sharply around
        # its expectation, so the exact DP (O(H*K)) gains nothing: use the
        # deterministic-threshold approximation instead.
        return _concentrated_estimate(
            hashed_objects, buckets, frames, disks, objects_per_block,
            first_epoch_width,
        )
    if max_epochs is None:
        # Once the re-hit probability mass is exhausted the tail adds
        # nothing; (1 - 1/K)^H < eps bounds the horizon.
        horizon = int(math.ceil(-math.log(1e-9) * buckets))
        max_epochs = min(hashed_objects, horizon)

    # Epoch boundaries: H_0 = 0 is the moment of the *first* hit; the paper
    # starts counting after a page is hit, so epoch 0 spans K objects.
    # The occupancy PMF is advanced incrementally (one ball per step) so the
    # whole sweep over epochs costs O(H_max * K) rather than O(H_max^2 * K).
    prob_sum = 0.0
    h_j = 0
    pmf = [0.0] * (buckets + 1)
    pmf[0] = 1.0
    first_width = buckets if first_epoch_width is None else max(1, first_epoch_width)
    for j in range(max_epochs):
        width = first_width if j == 0 else 1
        h_next = h_j + width
        y_j = miss_q**h_j - miss_q**h_next
        if y_j <= 0.0:
            break
        fill_events = (h_j * (disks - 1)) // objects_per_block
        threshold = buckets + fill_events + disks - frames
        if threshold >= buckets:
            p_j = 1.0
        elif threshold < 0:
            p_j = 0.0
        else:
            # empty <= threshold  <=>  occupied >= buckets - threshold
            p_j = sum(pmf[buckets - threshold :])
        prob_sum += p_j * y_j
        pmf = _advance_occupancy(pmf, buckets, width)
        h_j = h_next
        if p_j >= 1.0 - 1e-12 and miss_q**h_j < 1e-9:
            break

    replacements = hashed_objects * prob_sum
    return ThrashingEstimate(
        premature_replacements=replacements,
        extra_read_blocks=replacements,
        extra_write_blocks=replacements,
    )
