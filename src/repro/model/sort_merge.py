"""Analytical cost model for parallel pointer-based sort-merge (paper 6.3).

Passes 0 and 1 mirror nested loops except that objects are *written out* to
``RSi`` (the set of all R-objects pointing into ``Si``) instead of being
joined.  Pass 2 heap-sorts ``RSi`` in runs of ``IRUN`` objects; subsequent
passes merge ``NRUNABL`` runs at a time between ``RSi`` and ``Mergei``; the
final pass merges the last ``LRUN`` runs and joins against a *sequential*
scan of ``Si`` (the payoff of sorting by the S-pointer).

Parameter choices (paper 6.2):

* ``IRUN = floor(MRproc / (r + hp))`` — the longest run, plus its pointer
  heap, that fits in memory;
* ``NRUNABL = MRproc / (3B)`` for all but the last pass and
  ``NRUNLAST = MRproc / (2B)`` for the last — memory is deliberately
  *underutilized* to stop LRU from evicting still-active output pages;
* ``NPASS``/``LRUN`` follow from the run-count collapse (see
  :func:`merge_plan`; reconstruction documented in DESIGN.md).

Disk layout on disk ``i`` is ``[ Ri | Si | RSi | RPi | Mergei ]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.geometry import (
    batched_context_switch_cost,
    synchronized_geometry,
)
from repro.model.heaps import (
    HeapCostParameters,
    floyd_build_cost,
    heapsort_cost,
    merge_pass_cost,
)
from repro.model.parameters import (
    MachineParameters,
    MemoryParameters,
    ParameterError,
    RelationParameters,
)
from repro.model.report import JoinCostReport, PassCost


@dataclass(frozen=True)
class MergePlan:
    """Derived sort-merge plan: run length, fan-ins and pass count."""

    irun: int
    nrun_abl: int
    nrun_last: int
    initial_runs: int
    npass: int
    lrun: int


def merge_plan(
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
) -> MergePlan:
    """Choose IRUN/NRUN and derive NPASS and LRUN (paper 6.2/6.3).

    ``NPASS`` is the smallest number of merging passes after which the runs
    collapse into at most ``NRUNLAST``; each non-final pass divides the run
    count by ``NRUNABL``.  ``LRUN`` is the number of runs remaining on the
    final pass.
    """
    irun = memory.m_rproc_bytes // (relations.r_bytes + machine.heap_pointer_bytes)
    if irun < 1:
        raise ParameterError(
            "MRproc too small to hold a single R-object and its heap pointer"
        )
    nrun_abl = max(2, memory.m_rproc_bytes // (3 * machine.page_size))
    nrun_last = max(2, memory.m_rproc_bytes // (2 * machine.page_size))

    r_i = math.ceil(relations.r_objects / machine.disks)
    initial_runs = max(1, math.ceil(r_i / irun))

    npass = 1
    remaining = initial_runs
    while remaining > nrun_last:
        remaining = math.ceil(remaining / nrun_abl)
        npass += 1
    lrun = max(
        1, math.ceil(initial_runs / nrun_abl ** (npass - 1))
    )
    return MergePlan(
        irun=irun,
        nrun_abl=nrun_abl,
        nrun_last=nrun_last,
        initial_runs=initial_runs,
        npass=npass,
        lrun=lrun,
    )


def sort_merge_cost(
    machine: MachineParameters,
    relations: RelationParameters,
    memory: MemoryParameters,
) -> JoinCostReport:
    """Predicted elapsed time per Rproc for the sort-merge join."""
    geo = synchronized_geometry(machine, relations)
    d = machine.disks
    plan = merge_plan(machine, relations, memory)
    heap_costs = HeapCostParameters(
        compare_ms=machine.compare_ms,
        swap_ms=machine.swap_ms,
        transfer_ms=machine.transfer_ms,
    )
    pages_merge = geo.pages_rs_i  # Mergei is sized like RSi
    join_bytes = relations.join_tuple_bytes
    rs_count = geo.rs_i

    # ---- pass 0: Ri scan; spill Ri,j to RPi, write Ri,i to RSi.
    band0 = geo.pages_r_i + geo.pages_s_i + geo.pages_rs_i + geo.pages_rp_i
    pass0 = PassCost(
        name="pass0",
        disk_ms=(
            geo.pages_r_i * machine.dttr(band0)
            + geo.pages_rs_i * machine.dttw(band0)
            + geo.pages_rp_i * machine.dttw(band0)
        ),
        transfer_ms=geo.r_i * relations.r_bytes * machine.mt_pp_ms_per_byte,
        cpu_ms=geo.r_i * machine.map_ms,
    )

    # ---- pass 1: RPi read sequentially, contributions written to the RSj.
    band1 = geo.pages_rs_i + geo.pages_rp_i
    pass1 = PassCost(
        name="pass1",
        disk_ms=(
            geo.pages_rs_i * machine.dttw(band1)
            + geo.pages_rp_i * machine.dttr(band1)
        ),
        transfer_ms=geo.rp_i * relations.r_bytes * machine.mt_pp_ms_per_byte,
    )

    # ---- pass 2: heap-sort runs of IRUN objects in place.
    band_sort = max(1.0, 2.0 * relations.r_bytes * plan.irun / machine.page_size)
    sort_disk = geo.pages_rs_i * (
        machine.dttr(band_sort) + machine.dttw(band_sort)
    )
    n_sorted = round(rs_count)
    sort_cpu = floyd_build_cost(n_sorted, heap_costs) + heapsort_cost(
        n_sorted, plan.irun, heap_costs
    )
    pass2 = PassCost(
        name="pass2-sort",
        disk_ms=sort_disk,
        transfer_ms=rs_count * relations.r_bytes * machine.mt_pp_ms_per_byte,
        cpu_ms=sort_cpu,
    )

    # ---- merging passes (all but last): NRUNABL-way merges RSi <-> Mergei.
    extra_merges = plan.npass - 1
    band_abl = geo.pages_rs_i + geo.pages_rp_i + pages_merge
    merge_disk = extra_merges * geo.pages_rs_i * (
        machine.dttr(band_abl) + machine.dttw(band_abl)
    )
    merge_cpu = extra_merges * merge_pass_cost(n_sorted, plan.nrun_abl, heap_costs)
    merge_xfer = (
        extra_merges * rs_count * relations.r_bytes * machine.mt_pp_ms_per_byte
    )
    # Swapping the source/destination areas re-creates the mapping each pass.
    merge_setup = extra_merges * (
        machine.delete_map(pages_merge) + machine.new_map(pages_merge)
    )
    merge_passes = PassCost(
        name="merge-passes",
        disk_ms=merge_disk,
        transfer_ms=merge_xfer,
        cpu_ms=merge_cpu,
        setup_ms=merge_setup,
    )

    # ---- final pass: LRUN-way merge joined against a sequential Si scan.
    band_last = (
        geo.pages_s_i
        + geo.pages_rs_i
        + (geo.pages_rp_i + pages_merge) * ((plan.npass - 1) % 2)
    )
    last_disk = geo.pages_rs_i * machine.dttr(band_last) + geo.pages_s_i * machine.dttr(
        band_last
    )
    last_cpu = merge_pass_cost(n_sorted, plan.lrun, heap_costs)
    last_xfer = rs_count * join_bytes * machine.mt_ps_ms_per_byte
    last_cs = batched_context_switch_cost(machine, relations, rs_count, memory.g_bytes)
    last_pass = PassCost(
        name="final-merge-join",
        disk_ms=last_disk,
        transfer_ms=last_xfer,
        cpu_ms=last_cpu,
        context_switch_ms=last_cs,
    )

    # ---- mapping setup (serial across the D partitions).
    setup_ms = d * (
        machine.open_map(geo.pages_r_i)
        + machine.open_map(geo.pages_s_i)
        + machine.new_map(geo.pages_rs_i)
        + machine.new_map(geo.pages_rp_i)
        + machine.new_map(pages_merge)
    )
    setup = PassCost(name="setup", setup_ms=setup_ms)

    derived = {
        "r_i": geo.r_i,
        "r_ii": geo.r_ii,
        "rp_i": geo.rp_i,
        "rs_i": geo.rs_i,
        "irun": float(plan.irun),
        "nrun_abl": float(plan.nrun_abl),
        "nrun_last": float(plan.nrun_last),
        "initial_runs": float(plan.initial_runs),
        "npass": float(plan.npass),
        "lrun": float(plan.lrun),
        "band_pass0_blocks": band0,
        "band_pass1_blocks": band1,
        "band_sort_blocks": band_sort,
        "band_abl_blocks": band_abl,
        "band_last_blocks": band_last,
    }
    return JoinCostReport(
        algorithm="sort-merge",
        passes=(setup, pass0, pass1, pass2, merge_passes, last_pass),
        derived=derived,
    )
