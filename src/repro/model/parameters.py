"""Parameter sets for the analytical model (paper section 3).

The model describes a shared-memory multiprocessor in which each process
owns a segment with private memory, communicates through shared memory, and
``D`` disk controllers allow parallel I/O.  All times are in **milliseconds**
and all sizes in **bytes** unless a name says otherwise; disk curves are in
milliseconds per ``page_size`` block.

Three parameter groups mirror the paper:

* :class:`MachineParameters` — the measured/architectural machine constants
  (``B``, ``D``, ``CS``, the four memory-transfer rates, the measured disk
  and mapping curves, and the per-operation CPU costs ``map``, ``hash``,
  ``compare``, ``swap``, ``transfer``).
* :class:`RelationParameters` — ``|R|``, ``|S|``, object sizes ``r``/``s``,
  the S-pointer size, and the partition skew.
* :class:`MemoryParameters` — the per-process memory grants ``MRproc`` and
  ``MSproc`` plus the shared join buffer size ``G``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.model.curves import (
    InterpolatedCurve,
    LinearCurve,
    paper_delete_map_curve,
    paper_dttr_curve,
    paper_dttw_curve,
    paper_new_map_curve,
    paper_open_map_curve,
)


class ParameterError(ValueError):
    """Raised when a parameter set is internally inconsistent."""


@dataclass(frozen=True)
class MachineParameters:
    """Machine constants of the model (paper section 3 diagram).

    The defaults are calibrated to the paper's testbed flavour (Sequent
    Symmetry, 4K virtual-memory blocks, Fujitsu drives whose measured
    curves appear in Figure 1).
    """

    page_size: int = 4096
    disks: int = 4
    context_switch_ms: float = 0.2
    # Combined read+write memory transfer times, ms per byte.
    mt_pp_ms_per_byte: float = 1.0e-4
    mt_ps_ms_per_byte: float = 1.5e-4
    mt_sp_ms_per_byte: float = 1.5e-4
    mt_ss_ms_per_byte: float = 2.0e-4
    # Per-operation CPU costs, ms.
    map_ms: float = 0.002
    hash_ms: float = 0.004
    compare_ms: float = 0.004
    swap_ms: float = 0.006
    transfer_ms: float = 0.003
    heap_pointer_bytes: int = 8
    # Measured machine functions.
    dttr: InterpolatedCurve = field(default_factory=paper_dttr_curve)
    dttw: InterpolatedCurve = field(default_factory=paper_dttw_curve)
    new_map: LinearCurve = field(default_factory=paper_new_map_curve)
    open_map: LinearCurve = field(default_factory=paper_open_map_curve)
    delete_map: LinearCurve = field(default_factory=paper_delete_map_curve)

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ParameterError("page_size must be positive")
        if self.disks <= 0:
            raise ParameterError("disks must be positive")
        if self.context_switch_ms < 0:
            raise ParameterError("context_switch_ms must be non-negative")
        for name in (
            "mt_pp_ms_per_byte",
            "mt_ps_ms_per_byte",
            "mt_sp_ms_per_byte",
            "mt_ss_ms_per_byte",
            "map_ms",
            "hash_ms",
            "compare_ms",
            "swap_ms",
            "transfer_ms",
        ):
            if getattr(self, name) < 0:
                raise ParameterError(f"{name} must be non-negative")
        if self.heap_pointer_bytes <= 0:
            raise ParameterError("heap_pointer_bytes must be positive")

    def with_disks(self, disks: int) -> "MachineParameters":
        """A copy of this machine with a different disk/partition count."""
        return replace(self, disks=disks)


@dataclass(frozen=True)
class RelationParameters:
    """Sizes of the joining relations (paper section 4).

    ``skew`` follows the paper's definition
    ``skew = max_j |Ri,j| / (|Ri| / D)`` — how much the largest
    sub-partition exceeds a perfectly even split.  A uniformly random
    pointer distribution gives skew very close to 1.0.
    """

    r_objects: int = 102_400
    s_objects: int = 102_400
    r_bytes: int = 128
    s_bytes: int = 128
    sptr_bytes: int = 8
    skew: float = 1.0

    def __post_init__(self) -> None:
        if self.r_objects <= 0 or self.s_objects <= 0:
            raise ParameterError("relation cardinalities must be positive")
        if self.r_bytes <= 0 or self.s_bytes <= 0:
            raise ParameterError("object sizes must be positive")
        if self.sptr_bytes <= 0:
            raise ParameterError("sptr_bytes must be positive")
        if self.skew < 1.0:
            raise ParameterError(
                "skew is max sub-partition over the even share and cannot "
                f"be below 1.0 (got {self.skew})"
            )

    def pages_r(self, machine: MachineParameters) -> int:
        """P_R: pages occupied by the whole of R."""
        return pages_for(self.r_objects, self.r_bytes, machine.page_size)

    def pages_s(self, machine: MachineParameters) -> int:
        """P_S: pages occupied by the whole of S."""
        return pages_for(self.s_objects, self.s_bytes, machine.page_size)

    @property
    def join_tuple_bytes(self) -> int:
        """Bytes moved through shared memory per joined pair: r + sptr + s."""
        return self.r_bytes + self.sptr_bytes + self.s_bytes


@dataclass(frozen=True)
class MemoryParameters:
    """Per-process memory grants and the shared join buffer.

    ``m_rproc_bytes`` is the paper's x-axis control variable MRproci; the
    validation sweeps express it as a fraction of ``|R| * r``.
    """

    m_rproc_bytes: int
    m_sproc_bytes: int
    g_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.m_rproc_bytes <= 0:
            raise ParameterError("m_rproc_bytes must be positive")
        if self.m_sproc_bytes <= 0:
            raise ParameterError("m_sproc_bytes must be positive")
        if self.g_bytes <= 0:
            raise ParameterError("g_bytes must be positive")

    def rproc_frames(self, machine: MachineParameters) -> int:
        """Page frames available to each Rproc."""
        return self.rproc_frames_for(machine.page_size)

    def sproc_frames(self, machine: MachineParameters) -> int:
        """Page frames available to each Sproc."""
        return self.sproc_frames_for(machine.page_size)

    def rproc_frames_for(self, page_size: int) -> int:
        """Rproc page frames for an explicit page size (simulator side)."""
        return max(1, self.m_rproc_bytes // page_size)

    def sproc_frames_for(self, page_size: int) -> int:
        """Sproc page frames for an explicit page size (simulator side)."""
        return max(1, self.m_sproc_bytes // page_size)

    @classmethod
    def from_fractions(
        cls,
        relations: RelationParameters,
        r_fraction: float,
        s_fraction: float | None = None,
        g_bytes: int = 4096,
    ) -> "MemoryParameters":
        """Build memory grants from fractions of the R relation size.

        This matches the paper's Figure 5 x-axis, where memory per Rproc is
        reported as ``MRproci / |R|`` with ``|R|`` measured in bytes.
        When ``s_fraction`` is omitted the Sproc receives the same grant.
        """
        if r_fraction <= 0:
            raise ParameterError("r_fraction must be positive")
        total_r_bytes = relations.r_objects * relations.r_bytes
        m_r = max(1, int(total_r_bytes * r_fraction))
        if s_fraction is None:
            m_s = m_r
        else:
            if s_fraction <= 0:
                raise ParameterError("s_fraction must be positive")
            m_s = max(1, int(total_r_bytes * s_fraction))
        return cls(m_rproc_bytes=m_r, m_sproc_bytes=m_s, g_bytes=g_bytes)


def pages_for(objects: int, object_bytes: int, page_size: int) -> int:
    """Number of whole pages needed to hold ``objects`` fixed-size objects.

    Objects never straddle page boundaries in the paper's exact-positioning
    stores, so a page holds ``floor(page_size / object_bytes)`` objects.
    """
    if objects < 0:
        raise ParameterError("object count cannot be negative")
    if object_bytes <= 0 or page_size <= 0:
        raise ParameterError("sizes must be positive")
    if object_bytes > page_size:
        # Large objects span ceil(object_bytes / page_size) pages each.
        return objects * math.ceil(object_bytes / page_size)
    per_page = page_size // object_bytes
    return math.ceil(objects / per_page) if objects else 0


def objects_per_page(object_bytes: int, page_size: int) -> int:
    """Objects stored per page under the no-straddling layout."""
    if object_bytes <= 0 or page_size <= 0:
        raise ParameterError("sizes must be positive")
    return max(1, page_size // object_bytes)
