"""Heap cost accounting for the sort-merge model (paper section 6.3).

The sort-merge algorithm sorts runs of R-object pointers with heapsort and
merges sorted runs with delete-insert operations on a heap of run cursors.
The paper charges three primitive costs, all measured machine constants:

* ``compare``  — comparing two heap elements (pointers to R-objects);
* ``swap``     — exchanging two heap elements;
* ``transfer`` — moving an element into or out of the heap.

Three formulas are implemented:

* :func:`floyd_build_cost` — Floyd's bottom-up heap construction, which the
  paper charges ``1.77 * n * (compare + swap/2) + n * transfer`` (the 1.77
  constant is the known average-case bound from Gonnet & Munro, "Heaps on
  Heaps").
* :func:`heapsort_cost` — repeated deletion of minima using Munro's
  variant, ``n * log2(IRUN) * (compare + transfer)`` on average.
* :func:`delete_insert_cost` — the per-element cost ``g(h)`` of a
  delete-insert on a merge heap of ``h`` run cursors.

Reconstruction note for ``g(h)``: the scan prints
``g(h) = (2*compare + swap) * ((h-1)*k - h/2 - 2k)/h`` with
``k = floor(log h) + 1``.  We implement the standard average path-length
approximation ``g(h) = (2*compare + swap) * ((h+1)*k - h/2 - 2**k)/h``
(clamped at zero), which is monotone non-decreasing in ``h`` and behaves as
``Theta(log h)``, the known cost of a delete-insert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

FLOYD_AVERAGE_CONSTANT = 1.77


class HeapModelError(ValueError):
    """Raised for meaningless heap-cost arguments."""


@dataclass(frozen=True)
class HeapCostParameters:
    """The three measured heap primitive costs, milliseconds each."""

    compare_ms: float
    swap_ms: float
    transfer_ms: float

    def __post_init__(self) -> None:
        if self.compare_ms < 0 or self.swap_ms < 0 or self.transfer_ms < 0:
            raise HeapModelError("heap primitive costs must be non-negative")


def floyd_build_cost(n_elements: int, costs: HeapCostParameters) -> float:
    """Average cost of Floyd's heap construction over ``n`` elements."""
    if n_elements < 0:
        raise HeapModelError("element count cannot be negative")
    if n_elements == 0:
        return 0.0
    build = FLOYD_AVERAGE_CONSTANT * n_elements * (
        costs.compare_ms + costs.swap_ms / 2.0
    )
    load = n_elements * costs.transfer_ms
    return build + load


def heapsort_cost(n_elements: int, run_length: int, costs: HeapCostParameters) -> float:
    """Average cost of heapsorting ``n`` elements in runs of ``run_length``.

    The paper's expression is ``|RSi| * log(IRUN) * (compare + transfer)``:
    every element is deleted from a heap whose size is bounded by the run
    length, paying one comparison and one transfer per level on average
    (Munro's variant halves the usual two-comparison descent).
    """
    if n_elements < 0:
        raise HeapModelError("element count cannot be negative")
    if run_length <= 0:
        raise HeapModelError("run length must be positive")
    if n_elements == 0:
        return 0.0
    levels = math.log2(max(run_length, 2))
    return n_elements * levels * (costs.compare_ms + costs.transfer_ms)


def delete_insert_unit_cost(heap_size: int, costs: HeapCostParameters) -> float:
    """``g(h)``: average cost of one delete-insert on a heap of ``h`` runs."""
    if heap_size <= 0:
        raise HeapModelError("heap size must be positive")
    h = heap_size
    if h == 1:
        return 0.0  # a single run needs no heap discipline
    k = math.floor(math.log2(h)) + 1
    path = ((h + 1) * k - h / 2.0 - 2.0**k) / h
    return max(path, 0.0) * (2.0 * costs.compare_ms + costs.swap_ms)


def merge_pass_cost(
    n_elements: int, heap_size: int, costs: HeapCostParameters
) -> float:
    """Cost of one merge pass: ``(g(h) + 2*transfer) * n`` (paper 6.3).

    Every element is deleted from and a successor inserted into the cursor
    heap (the ``g(h)`` term) and moved through the heap twice (in and out,
    the ``2 * transfer`` term).
    """
    if n_elements < 0:
        raise HeapModelError("element count cannot be negative")
    unit = delete_insert_unit_cost(heap_size, costs) + 2.0 * costs.transfer_ms
    return n_elements * unit
