"""Mackert–Lohman finite-LRU-buffer page-fault approximation.

The join algorithms read the inner relation S through a finite LRU buffer
(the Sproc's memory).  The paper approximates the resulting number of page
faults with the validated I/O model of Mackert and Lohman [ACM TODS 14(3)]:

Given a relation of ``N`` tuples over ``t`` pages with ``i`` distinct key
values, accessed through a ``b``-page LRU buffer using ``x`` key values to
retrieve all matching tuples, the expected number of page faults is::

    Ylru(N, t, i, b, x) = t * (1 - q**x)                      if x <= n
                          t * (1 - q**n) + t*p*(x - n)*q**n   if x >  n

where ``q = 1 - p = (1 - 1/max(t, i)) ** (N / min(t, i))`` and
``n = max{ j : j <= i and t*(1 - q**j) <= b }`` is the number of lookups
after which the buffer saturates.

Reconstruction note: the scanned paper prints the saturated branch as
``t(1-q^n) + p(x-n)q^n``.  Dimensionally the per-lookup fault rate there must
be the expected *pages touched per lookup* (``t*p``) times the probability a
given page is absent from the buffer (``q**n = 1 - b/t`` at saturation), so
the factor ``t`` was lost in scanning; we restore it.  With ``N == i``
(unique keys, the paper's experimental workload) this gives a saturated fault
rate of ``1 - b/t`` per lookup, which is the physically correct steady state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class BufferModelError(ValueError):
    """Raised for meaningless Ylru arguments."""


@dataclass(frozen=True)
class LruEstimate:
    """The Ylru estimate plus the intermediate quantities, for inspection."""

    faults: float
    q: float
    saturation_lookups: int
    saturated: bool


def ylru_detailed(n_tuples: int, t_pages: int, i_keys: int, b_frames: float, x_lookups: float) -> LruEstimate:
    """Full Mackert–Lohman estimate with intermediates.

    ``b_frames`` and ``x_lookups`` may be fractional (the model divides
    memory grants by the page size without rounding).
    """
    if n_tuples <= 0 or t_pages <= 0 or i_keys <= 0:
        raise BufferModelError("N, t and i must be positive")
    if b_frames < 0 or x_lookups < 0:
        raise BufferModelError("b and x must be non-negative")
    if x_lookups == 0:
        return LruEstimate(faults=0.0, q=1.0, saturation_lookups=0, saturated=False)

    hi = max(t_pages, i_keys)
    lo = min(t_pages, i_keys)
    q = (1.0 - 1.0 / hi) ** (n_tuples / lo)
    p = 1.0 - q

    n = _saturation_point(t_pages, i_keys, b_frames, q)

    if x_lookups <= n:
        faults = t_pages * (1.0 - q**x_lookups)
        return LruEstimate(faults=faults, q=q, saturation_lookups=n, saturated=False)
    steady_rate = t_pages * p * q**n
    faults = t_pages * (1.0 - q**n) + steady_rate * (x_lookups - n)
    # The approximation can slightly exceed the trivial ceiling of one fault
    # per lookup plus a cold buffer; clamp to keep downstream costs sane.
    ceiling = min(t_pages, b_frames) + x_lookups
    return LruEstimate(
        faults=min(faults, ceiling), q=q, saturation_lookups=n, saturated=True
    )


def ylru(n_tuples: int, t_pages: int, i_keys: int, b_frames: float, x_lookups: float) -> float:
    """Expected LRU page faults — the paper's ``Ylru(N, t, i, b, x)``."""
    return ylru_detailed(n_tuples, t_pages, i_keys, b_frames, x_lookups).faults


def _saturation_point(t_pages: int, i_keys: int, b_frames: float, q: float) -> int:
    """``n = max{ j <= i : t*(1 - q**j) <= b }`` via the closed form.

    ``t*(1 - q**j) <= b`` rearranges to ``j <= log_q(1 - b/t)`` when
    ``b < t``; when ``b >= t`` every ``j`` qualifies and ``n = i``.
    """
    if b_frames >= t_pages:
        return i_keys
    if b_frames <= 0 or q <= 0.0:
        return 0
    if q >= 1.0:
        # Degenerate: lookups never touch new pages; the buffer never fills.
        return i_keys
    limit = math.log(1.0 - b_frames / t_pages) / math.log(q)
    return min(i_keys, max(0, math.floor(limit)))
