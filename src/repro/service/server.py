"""The join-service daemon: an always-on, multi-tenant runner facade.

One :class:`JoinService` owns what a per-run invocation of
``run_real_join`` would otherwise create and destroy every time:

* a **persistent worker pool** — pool processes stay warm across
  requests (workers are stateless; they open stores by path per task),
  so a request pays dispatch, not fork+import;
* **warm stores** — each distinct workload signature gets a store
  directory that survives between requests (``keep_store=True`` +
  ``reuse_store=True``), so R/S segments are materialized once and the
  OS page cache stays hot across requests that join the same relations;
* a **shared governor** — the bounded admission queue, extended with the
  tenant policy table's per-tenant budgets, priorities and concurrency
  caps (``docs/serving.md``);
* the **service registry** — ``service.*`` counters and the request
  latency histogram that become the schema-v5 ``service`` section.

Requests arrive over a unix socket as length-prefixed JSON frames
(:mod:`repro.service.protocol`); pair output streams back in bounded
batches read straight from the run's mapped PAIRS segments, never
materialized whole on either side.

On startup — before the socket accepts anything — the daemon sweeps the
whole service root for orphans of dead predecessors: unpublished
``*.seg.tmp`` segments (flock-probed, so a live writer's tmp survives),
metrics sidecars/markers, fault plans and budget files.  A join run
sweeps its own store, but only *inside* a run; a daemon that crashed
mid-request leaves debris no future run would touch, hence the
service-level sweep (:func:`sweep_service_root`), logged into the stats
document's ``service.startup_sweep``.

The sweep also *scrubs* the warm-store cache: every published ``*.seg``
is payload-checksum verified, corrupt segments are deleted on the spot
(a corrupt cached artifact is strictly worse than a cold one — a
recompute is correct, a corrupt serve is not), and a store whose base
R/S rotted is evicted whole so the next request rebuilds it.  Pass-level
checkpoint manifests (``checkpoint.json``) and the request journal
survive the sweep: they are exactly the state a restarted daemon resumes
from.  Requests carry idempotent client-generated ids, journaled before
execution (:mod:`repro.service.journal`); a retried id whose first
attempt completed replays the stored result, and one whose first attempt
died with a previous daemon re-executes with ``resume=True`` against the
store's checkpoint manifest, skipping the passes already proved good.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.governor.budget import GOVERNOR_FILE
from repro.governor.errors import ResourceExhausted
from repro.governor.governor import ResourceGovernor
from repro.obs.export import build_service_stats_document
from repro.obs.registry import MetricsRegistry
from repro.parallel.engine.executor import RealJoinError
from repro.parallel.engine.task import (
    KERNEL_MODE_MARKER,
    KERNEL_MODES,
    OBS_MARKER,
)
from repro.parallel.faults import FAULTS_FILE
from repro.parallel.runner import REAL_ALGORITHMS, run_real_join
from repro.service.journal import RequestJournal, valid_request_id
from repro.service.protocol import ProtocolError, recv_frame, send_frame
from repro.service.tenants import TenantConfig, TenantError, TenantPolicy
from repro.storage.relation import iter_pairs_file
from repro.storage.segment import StorageError, scrub_segment
from repro.storage.store import Store, _tmp_writer_alive
from repro.workload.generator import Workload, WorkloadSpec, generate_workload


class ServiceError(RuntimeError):
    """The daemon cannot start or serve (not a per-request failure)."""


#: Control files a dead run may leave in a store root; all run-scoped.
_CONTROL_FILES = (OBS_MARKER, KERNEL_MODE_MARKER, FAULTS_FILE, GOVERNOR_FILE)


def sweep_service_root(root: str | Path) -> Dict[str, int]:
    """Sweep and scrub every store under ``root`` after a daemon death.

    Returns what was removed or verified, by category: ``seg_tmp``
    (unpublished segments whose writer no longer holds its create-time
    flock), ``sidecars`` (worker metrics snapshots), ``control_files``
    (metrics/kernel-mode markers, fault plans and attempt counters,
    budget files), ``scrubbed`` (published segments whose payload
    checksum was fully verified), ``corrupt`` (segments that failed the
    scrub — deleted), and ``evicted`` (intact base segments dropped
    because a sibling R/S in the same store rotted: half a warm store is
    not a warm store, and a later materialize must find neither half).

    Published ``*.seg`` data that *passes* its scrub is left in place —
    that is the daemon's cache, not debris.  Checkpoint manifests
    (``checkpoint.json``) and the request journal directory are
    deliberately untouched: they are the state a restarted daemon
    resumes interrupted requests from.
    """
    root = Path(root)
    counts = {
        "seg_tmp": 0, "sidecars": 0, "control_files": 0,
        "scrubbed": 0, "corrupt": 0, "evicted": 0,
    }
    if not root.exists():
        return counts
    for path in root.rglob("*.seg.tmp"):
        if _tmp_writer_alive(path):
            continue
        path.unlink(missing_ok=True)
        counts["seg_tmp"] += 1
    for path in root.rglob("metrics_*.json"):
        if path.parent.name == "journal":
            continue  # journal entries are durable state, not debris
        path.unlink(missing_ok=True)
        counts["sidecars"] += 1
    for name in _CONTROL_FILES:
        for path in root.rglob(name):
            path.unlink(missing_ok=True)
            counts["control_files"] += 1
    for path in root.rglob("fault_attempt_*"):
        path.unlink(missing_ok=True)
        counts["control_files"] += 1
    # Scrub what survived the sweep: the warm cache is only warm if its
    # bytes still match the checksums they were published with.
    rotten_bases: set = set()
    for path in sorted(root.rglob("*.seg")):
        try:
            scrub_segment(path)
            counts["scrubbed"] += 1
        except StorageError:
            path.unlink(missing_ok=True)
            counts["corrupt"] += 1
            if path.name in ("R.seg", "S.seg"):
                # disk<i>/R.seg — two parents up is the store directory.
                rotten_bases.add(path.parent.parent)
    for store_dir in rotten_bases:
        for base in store_dir.glob("disk*/R.seg"):
            base.unlink(missing_ok=True)
            counts["evicted"] += 1
        for base in store_dir.glob("disk*/S.seg"):
            base.unlink(missing_ok=True)
            counts["evicted"] += 1
    return counts


@dataclass
class ServiceConfig:
    """Everything a :class:`JoinService` needs beyond the tenant table."""

    root: str
    socket_path: str
    disks: int = 4
    max_concurrent: int = 2
    queue_limit: int = 8
    pool_workers: Optional[int] = None
    #: ``False`` runs kernels inline in the request threads — no pool at
    #: all.  Meant for tests and single-shot debugging, not serving.
    use_processes: bool = True
    collect_metrics: bool = True
    #: Pairs per streamed ``pairs`` frame.
    stream_batch: int = 4096
    #: Default workload geometry for requests that do not override it.
    default_scale: float = 0.05
    default_seed: int = 96


@dataclass
class _StoreEntry:
    """One warm store directory for one workload signature."""

    path: Path
    busy: bool = False
    materialized: bool = False


@dataclass
class _Caches:
    """Workloads and warm stores, keyed by workload signature."""

    workloads: Dict[str, Workload] = field(default_factory=dict)
    stores: Dict[str, List[_StoreEntry]] = field(default_factory=dict)


class JoinService:
    """The daemon.  ``start()`` it, ``serve_forever()`` or poll, ``close()``."""

    def __init__(
        self, config: ServiceConfig, tenants: Optional[TenantConfig] = None
    ) -> None:
        self.config = config
        self.tenants = tenants if tenants is not None else TenantConfig.open_default()
        self.governor = ResourceGovernor(
            max_concurrent=config.max_concurrent,
            queue_limit=config.queue_limit,
            tenant_limits=self.tenants.tenant_limits(),
        )
        self.registry = MetricsRegistry()
        self.startup_sweep: Dict[str, int] = {}
        self._metrics_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        self._caches = _Caches()
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_cond = threading.Condition()
        self._pool_users = 0
        self._pool_recycles = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._shutdown = threading.Event()
        self._started = False
        self._started_at = 0.0
        self._active_requests = 0
        self._requests_seen = 0
        self._journal: Optional[RequestJournal] = None
        self._inflight: set = set()
        self._inflight_lock = threading.Lock()
        #: Request ids found still ``running`` in the journal at startup —
        #: joins that died with a previous daemon, awaiting their retry.
        self.interrupted_requests: List[str] = []

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Sweep orphans, warm the pool, bind the socket, start accepting."""
        if self._started:
            raise ServiceError("service already started")
        config = self.config
        root = Path(config.root)
        root.mkdir(parents=True, exist_ok=True)
        self.startup_sweep = sweep_service_root(root)
        self._journal = RequestJournal(root)
        self.interrupted_requests = self._journal.interrupted()
        with self._metrics_lock:
            for kind, n in self.startup_sweep.items():
                self.registry.count("service.swept_total", n, kind=kind)
            if self.interrupted_requests:
                self.registry.count(
                    "service.interrupted_requests",
                    len(self.interrupted_requests),
                )
        if config.use_processes:
            workers = config.pool_workers or config.disks
            self._pool = multiprocessing.Pool(processes=workers)
        socket_path = Path(config.socket_path)
        socket_path.parent.mkdir(parents=True, exist_ok=True)
        socket_path.unlink(missing_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(str(socket_path))
        except OSError as error:
            listener.close()
            raise ServiceError(
                f"cannot bind service socket {socket_path}: {error}"
            )
        listener.listen(16)
        self._listener = listener
        self._started = True
        self._started_at = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="join-service-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Block the calling thread until someone shuts the daemon down."""
        if not self._started:
            self.start()
        self._shutdown.wait()
        self.close()

    def request_shutdown(self) -> None:
        """Begin a graceful drain (signal-handler safe).

        Stops accepting new connections and unblocks ``serve_forever()``;
        requests already in flight run to completion — their connection
        threads are joined by :meth:`close`, so a client mid-stream still
        receives its terminal frame before the daemon exits.
        """
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def close(self) -> None:
        """Stop accepting, drain request threads, retire the pool."""
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        for thread in list(self._conn_threads):
            thread.join(timeout=30)
        self._conn_threads.clear()
        with self._pool_cond:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
        Path(self.config.socket_path).unlink(missing_ok=True)

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at if self._started else 0.0

    # ----------------------------------------------------------------- serving

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._shutdown.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                break  # listener closed — shutdown
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="join-service-conn", daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    request = recv_frame(conn)
                except ProtocolError as error:
                    self._count("service.protocol_errors_total")
                    try:
                        send_frame(conn, _error("bad-frame", str(error)))
                    except OSError:
                        pass
                    return
                if request is None:
                    return  # clean EOF
                if not self._dispatch(conn, request):
                    return
        except OSError:
            pass  # peer vanished mid-reply; nothing to tell it
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, conn: socket.socket, request: dict) -> bool:
        """Handle one request frame; False ends the connection."""
        op = request.get("op")
        if op == "ping":
            send_frame(conn, {
                "kind": "pong",
                "uptime_s": self.uptime_s,
                "algorithms": sorted(REAL_ALGORITHMS),
            })
            return True
        if op == "stats":
            send_frame(conn, {"kind": "stats", "document": self.stats_document()})
            return True
        if op == "shutdown":
            send_frame(conn, {"kind": "bye"})
            # Unblock serve_forever()/the accept loop right away.
            self.request_shutdown()
            return False
        if op == "join":
            self._handle_join(conn, request)
            return True
        send_frame(conn, _error("bad-request", f"unknown op {op!r}"))
        return True

    # -------------------------------------------------------------------- join

    def _handle_join(self, conn: socket.socket, request: dict) -> None:
        started = time.perf_counter()
        try:
            algorithm, spec_args, policy, priority, deadline_s = (
                self._validate(request)
            )
        except TenantError as error:
            self._note_rejection(request.get("tenant"))
            send_frame(conn, _error("unknown-tenant", str(error)))
            return
        except ServiceError as error:
            self._count("service.bad_requests_total")
            send_frame(conn, _error("bad-request", str(error)))
            return
        request_id = request.get("request_id")
        if request_id is None:
            request_id = self._next_request_id()
        elif not valid_request_id(request_id):
            self._count("service.bad_requests_total")
            send_frame(conn, _error(
                "bad-request",
                f"request_id must be 1-128 chars of [A-Za-z0-9_.:-], "
                f"starting alphanumeric: {request_id!r}",
            ))
            return
        journaled = self._journal.get(request_id) if self._journal else None
        if journaled is not None and journaled.get("state") == "done":
            # Idempotent replay: the first attempt completed; a retry
            # gets the stored answer, not a re-execution.  The run's
            # pair segments were swept at first completion, so a replay
            # never streams pairs — the counts and checksum stand in.
            self._count("service.replayed_total", tenant=policy.name)
            send_frame(conn, {
                "kind": "accepted",
                "request_id": request_id,
                "tenant": policy.name,
                "algorithm": algorithm,
            })
            send_frame(conn, dict(
                journaled.get("result", {}),
                replayed=True,
                streamed_pairs=0,
            ))
            return
        with self._inflight_lock:
            if request_id in self._inflight:
                self._count("service.duplicate_requests_total")
                send_frame(conn, _error(
                    "duplicate-request",
                    f"request {request_id!r} is already executing",
                    request_id=request_id,
                ))
                return
            self._inflight.add(request_id)
        # A journal entry still ``running`` belongs to a join that died
        # with a previous daemon: re-execute with resume, so passes the
        # dead daemon checkpointed are skipped, not recomputed.
        resume = journaled is not None and journaled.get("state") == "running"
        if resume:
            self._count("service.resumed_total", tenant=policy.name)
        self._count(
            "service.requests_total", tenant=policy.name, algo=algorithm
        )
        send_frame(conn, {
            "kind": "accepted",
            "request_id": request_id,
            "tenant": policy.name,
            "algorithm": algorithm,
        })
        workload, signature = self._workload_for(spec_args)
        with self._metrics_lock:
            self._active_requests += 1
            self.registry.gauge(
                "service.queue_depth_peak",
                float(max(
                    self.governor.snapshot()["waiting"],
                    self.registry.gauges.get("service.queue_depth_peak", 0.0),
                )),
            )
        def finish(frame: dict) -> None:
            # Latency is observed *before* the terminal frame goes out, so
            # a stats request issued the instant a client sees its result
            # already counts this request.
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            frame.setdefault("request_ms", elapsed_ms)
            with self._metrics_lock:
                self.registry.observe("service.request_ms", elapsed_ms)
                self.registry.observe(
                    "service.request_ms", elapsed_ms, tenant=policy.name
                )
            send_frame(conn, frame)

        if self._journal is not None:
            self._journal.begin(request_id, {
                "algorithm": algorithm,
                "tenant": policy.name,
                "spec_args": spec_args,
            })
        try:
            with self._lease_store(signature, spec_args["disks"]) as entry:
                result, reused = self._execute(
                    algorithm, workload, entry, policy, priority, request,
                    resume=resume, deadline_s=deadline_s,
                )
                self.governor.note_degraded(
                    policy.name, result.degradations_total
                )
                frame = self._stream_result(
                    conn, request, request_id, policy, result, entry, reused
                )
                if self._journal is not None:
                    if frame.get("kind") == "result":
                        # Cache the terminal frame for idempotent replay —
                        # minus the stats document, which describes *this*
                        # execution, not the request's answer.
                        self._journal.finish(request_id, {
                            key: value for key, value in frame.items()
                            if key != "stats_document"
                        })
                    else:
                        self._journal.forget(request_id)
                finish(frame)
        except ResourceExhausted as error:
            if self._journal is not None:
                self._journal.forget(request_id)
            self._count(
                "service.exhausted_total",
                tenant=policy.name, resource=error.resource,
            )
            finish(_error(
                "rejected" if error.resource == "admission" else "exhausted",
                error.describe(),
                request_id=request_id,
            ))
        except RealJoinError as error:
            if self._journal is not None:
                self._journal.forget(request_id)
            self._count("service.failed_total", tenant=policy.name)
            self._recycle_pool()
            finish(_error("failed", str(error), request_id=request_id))
        except StorageError as error:
            # Integrity machinery caught corruption mid-request; the
            # classified error frame is the contract — garbage pairs are
            # never served.
            if self._journal is not None:
                self._journal.forget(request_id)
            self._count("service.corrupt_total", tenant=policy.name)
            finish(_error("corrupt-data", str(error), request_id=request_id))
        finally:
            with self._inflight_lock:
                self._inflight.discard(request_id)
            with self._metrics_lock:
                self._active_requests -= 1

    def _validate(self, request: dict):
        algorithm = request.get("algorithm")
        if algorithm not in REAL_ALGORITHMS:
            raise ServiceError(
                f"unknown algorithm {algorithm!r}; "
                f"choices: {sorted(REAL_ALGORITHMS)}"
            )
        policy = self.tenants.resolve(request.get("tenant"))
        priority = request.get("priority")
        if priority is None:
            priority = policy.priority
        elif not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError("priority must be an integer")
        else:
            # A request may lower its own priority (batch work marking
            # itself preemptible) but never raise it above its tenant's.
            priority = min(priority, policy.priority)
        scale = request.get("scale", self.config.default_scale)
        if not isinstance(scale, (int, float)) or scale <= 0:
            raise ServiceError(f"scale must be a positive number: {scale!r}")
        seed = request.get("seed", self.config.default_seed)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ServiceError(f"seed must be an integer: {seed!r}")
        disks = request.get("disks", self.config.disks)
        if not isinstance(disks, int) or isinstance(disks, bool) or disks < 1:
            raise ServiceError(f"disks must be a positive integer: {disks!r}")
        kernels = request.get("kernels")
        if kernels is not None and kernels not in KERNEL_MODES:
            raise ServiceError(
                f"unknown kernel mode {kernels!r}; choices: {KERNEL_MODES}"
            )
        distribution = request.get("distribution", "uniform")
        if not isinstance(distribution, str):
            raise ServiceError("distribution must be a string")
        deadline_s = request.get("deadline_s")
        if deadline_s is not None and (
            not isinstance(deadline_s, (int, float))
            or isinstance(deadline_s, bool)
            or deadline_s <= 0
        ):
            raise ServiceError(
                f"deadline_s must be a positive number: {deadline_s!r}"
            )
        spec_args = {
            "scale": float(scale),
            "seed": seed,
            "disks": disks,
            "distribution": distribution,
        }
        return algorithm, spec_args, policy, priority, deadline_s

    def _workload_for(self, spec_args: dict):
        signature = "wl-" + hashlib.sha1(
            json.dumps(spec_args, sort_keys=True).encode()
        ).hexdigest()[:16]
        with self._cache_lock:
            workload = self._caches.workloads.get(signature)
        if workload is None:
            objects = max(64, int(102_400 * spec_args["scale"]))
            spec = WorkloadSpec(
                r_objects=objects,
                s_objects=objects,
                distribution=spec_args["distribution"],
                seed=spec_args["seed"],
            )
            workload = generate_workload(spec, spec_args["disks"])
            with self._cache_lock:
                self._caches.workloads.setdefault(signature, workload)
        return workload, signature

    @contextmanager
    def _lease_store(self, signature: str, disks: int):
        """Exclusive use of one warm store directory for ``signature``.

        Concurrent requests for the same workload each get their own
        store (created on demand), so no two runs ever share control
        files or temps; a store freed by one request is the next one's
        warm start.  A store directory inherited from a previous daemon
        whose base relations all survived the startup scrub is warm
        already — marking it materialized prevents the next request from
        colliding with (or needlessly re-creating) the published R/S.
        """
        with self._cache_lock:
            entries = self._caches.stores.setdefault(signature, [])
            entry = next((e for e in entries if not e.busy), None)
            if entry is None:
                entry = _StoreEntry(
                    path=Path(self.config.root)
                    / "stores"
                    / f"{signature}-{len(entries)}"
                )
                if all(
                    (entry.path / f"disk{disk}" / f"{name}.seg").exists()
                    for disk in range(disks)
                    for name in ("R", "S")
                ):
                    entry.materialized = True
                entries.append(entry)
            entry.busy = True
        try:
            yield entry
        finally:
            with self._cache_lock:
                entry.busy = False

    def _execute(self, algorithm, workload, entry, policy: TenantPolicy,
                 priority: int, request: dict, *,
                 resume: bool = False, deadline_s: Optional[float] = None):
        reused = entry.materialized
        if reused:
            self._count("service.store_reuses_total")
        # The effective deadline is the tighter of the tenant policy's
        # and the one the client propagated with the request.
        effective_deadline = policy.deadline_s
        if deadline_s is not None:
            effective_deadline = (
                deadline_s if effective_deadline is None
                else min(effective_deadline, deadline_s)
            )
        with self._borrow_pool() as pool:
            result = run_real_join(
                algorithm,
                workload,
                str(entry.path),
                use_processes=self.config.use_processes,
                pool=pool,
                keep_store=True,
                reuse_store=reused,
                resume=resume,
                collect_pairs=False,
                collect_metrics=self.config.collect_metrics,
                mem_budget=policy.mem_budget_bytes,
                disk_budget=policy.disk_budget_bytes,
                on_pressure=policy.on_pressure,
                governor=self.governor,
                deadline_s=effective_deadline,
                tenant=policy.name,
                priority=priority,
                kernels=request.get("kernels"),
            )
        entry.materialized = True
        if result.timeouts_total:
            # A timed-out task leaves the shared pool with an abandoned
            # worker; retire it before the next request inherits the mess.
            self._recycle_pool()
        return result, reused

    @contextmanager
    def _borrow_pool(self):
        if not self.config.use_processes:
            yield None
            return
        with self._pool_cond:
            while self._pool is None and not self._shutdown.is_set():
                self._pool_cond.wait(timeout=1)
            if self._pool is None:
                raise RealJoinError("service is shutting down")
            pool = self._pool
            self._pool_users += 1
        try:
            yield pool
        finally:
            with self._pool_cond:
                self._pool_users -= 1
                self._pool_cond.notify_all()

    def _recycle_pool(self) -> None:
        """Replace the shared pool once no request is borrowing it."""
        if not self.config.use_processes or self._shutdown.is_set():
            return
        with self._pool_cond:
            dirty, self._pool = self._pool, None
            while self._pool_users > 0:
                self._pool_cond.wait(timeout=1)
            if dirty is not None:
                dirty.terminate()
                dirty.join()
            workers = self.config.pool_workers or self.config.disks
            self._pool = multiprocessing.Pool(processes=workers)
            self._pool_recycles += 1
            self._pool_cond.notify_all()
        self._count("service.pool_recycles_total")

    def _stream_result(self, conn, request, request_id, policy,
                       result, entry, reused: bool) -> dict:
        """Stream pair frames (if asked); return the final result frame."""
        stream = bool(request.get("stream_pairs"))
        streamed = 0
        if stream:
            batch_size = self.config.stream_batch
            batch: List[list] = []
            try:
                for pair_file in result.pair_files:
                    for pair in iter_pairs_file(pair_file.path, batch_size):
                        batch.append(list(pair))
                        if len(batch) >= batch_size:
                            send_frame(conn, {
                                "kind": "pairs",
                                "request_id": request_id,
                                "count": len(batch),
                                "pairs": batch,
                            })
                            streamed += len(batch)
                            batch = []
            except StorageError as error:
                # A published PAIRS segment failed its payload checksum
                # between the barrier and the read — the client gets a
                # classified error, never silently-wrong pairs.
                self._sweep_temps(entry, result)
                self._count("service.corrupt_total", tenant=policy.name)
                return _error(
                    "corrupt-data", str(error), request_id=request_id
                )
            if batch:
                send_frame(conn, {
                    "kind": "pairs",
                    "request_id": request_id,
                    "count": len(batch),
                    "pairs": batch,
                })
                streamed += len(batch)
        # The streamed segments are spent; drop every temp so the warm
        # store holds only R/S for the next lease.
        self._sweep_temps(entry, result)
        governor_doc = result.governor or {}
        self._count("service.pairs_total", result.pair_count,
                    algo=result.algorithm)
        return {
            "kind": "result",
            "request_id": request_id,
            "tenant": policy.name,
            "algorithm": result.algorithm,
            "pair_count": result.pair_count,
            "checksum": result.checksum,
            "wall_ms": result.wall_ms,
            "kernel_mode": result.kernel_mode,
            "streamed_pairs": streamed,
            "reused_store": reused,
            "admission": governor_doc.get("admission"),
            "queued_ms": governor_doc.get("queued_ms", 0.0),
            "degradations": result.degradations_total,
            "retries": result.retries_total,
            "timeouts": result.timeouts_total,
            "inline_fallbacks": result.inline_fallbacks,
            "resumed": bool((result.resume or {}).get("resumed", False)),
            "passes_skipped": int(
                (result.resume or {}).get("passes_skipped", 0)
            ),
            **(
                {"stats_document": result.stats_document()}
                if request.get("with_stats")
                else {}
            ),
        }

    def _sweep_temps(self, entry: _StoreEntry, result) -> None:
        for pair_file in result.pair_files:
            Path(pair_file.path).unlink(missing_ok=True)
        try:
            disks = sum(
                1 for p in entry.path.glob("disk*") if p.is_dir()
            )
            if disks:
                Store(entry.path, disks).cleanup_temps()
        except OSError:
            pass

    # ------------------------------------------------------------------- stats

    def _count(self, name: str, value: float = 1, **labels) -> None:
        with self._metrics_lock:
            self.registry.count(name, value, **labels)

    def _note_rejection(self, tenant: Optional[str]) -> None:
        self.governor.note_rejected(tenant if isinstance(tenant, str) else None)
        self._count("service.unknown_tenant_total")

    def _next_request_id(self) -> str:
        with self._metrics_lock:
            self._requests_seen += 1
            return f"r{self._requests_seen}-{os.getpid()}"

    def stats_document(self) -> dict:
        """The schema-v5 service stats document, as of right now."""
        governor_snapshot = self.governor.snapshot()
        tenants = governor_snapshot["tenants"]
        # Configured-but-idle tenants still appear, with zero counts.
        for name in self.tenants.tenants:
            tenants.setdefault(
                name,
                {"admitted": 0, "queued": 0, "rejected": 0, "degraded": 0},
            )
        with self._metrics_lock:
            registry = MetricsRegistry.from_snapshot(self.registry.snapshot())
            active_requests = self._active_requests
        return build_service_stats_document(
            registry,
            tenants=tenants,
            queue_depth=governor_snapshot["waiting"],
            active_requests=active_requests,
            startup_sweep=self.startup_sweep,
            uptime_s=self.uptime_s,
            meta={
                "socket": str(self.config.socket_path),
                "disks": self.config.disks,
                "max_concurrent": self.config.max_concurrent,
                "queue_limit": self.config.queue_limit,
                "use_processes": self.config.use_processes,
                "pool_recycles": self._pool_recycles,
                "strict_tenants": self.tenants.strict,
            },
        )


def _error(code: str, message: str, **extra) -> dict:
    return {"kind": "error", "code": code, "error": message, **extra}
