"""Durable request journal for the join-service daemon.

One file per request id under ``<service root>/journal/``, written with
the same tmp-write/atomic-rename protocol as segments and checkpoint
manifests, so a reader only ever sees a complete entry.  The journal is
what makes client-generated request ids *idempotent* across daemon
crashes:

* ``begin`` records a request the moment it is accepted (state
  ``running``), with everything needed to re-execute it — algorithm,
  workload arguments, tenant;
* ``finish`` flips the entry to ``done`` and caches the terminal result
  frame, so a retry of an already-completed id replays the stored
  answer instead of re-running the join;
* an entry still ``running`` when a daemon starts up is an *interrupted*
  request: the join died with the previous daemon.  Its warm store may
  hold a pass-level checkpoint manifest, so the retry that re-submits
  the id runs with ``resume=True`` and skips the passes the dead daemon
  already proved.

Failed requests are *forgotten* (the entry is deleted): an error frame
is not a result worth replaying, and a retry should re-execute from
scratch rather than be served last time's failure.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Dict, List, Optional

JOURNAL_DIR = "journal"

#: Completed entries kept for idempotent replay; the oldest beyond this
#: are pruned at each ``finish`` so the journal cannot grow unboundedly.
DONE_ENTRIES_KEPT = 256

#: Client-generated ids become file names; anything outside this set is
#: rejected before it can traverse paths or collide with sweeps.
_REQUEST_ID = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.:-]{0,127}")


def valid_request_id(request_id: object) -> bool:
    """Whether ``request_id`` is safe to journal (and thus to accept)."""
    return isinstance(request_id, str) and bool(
        _REQUEST_ID.fullmatch(request_id)
    )


class RequestJournal:
    """The daemon's on-disk request log, one JSON file per request id."""

    def __init__(self, root: str | Path) -> None:
        self.dir = Path(root) / JOURNAL_DIR
        self.dir.mkdir(parents=True, exist_ok=True)

    def path(self, request_id: str) -> Path:
        return self.dir / f"{request_id}.json"

    def _write(self, request_id: str, entry: dict) -> None:
        target = self.path(request_id)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(entry, indent=1))
        os.replace(tmp, target)

    def begin(self, request_id: str, record: dict) -> None:
        """Journal an accepted request before any work starts."""
        self._write(request_id, {
            "state": "running",
            "started_at": time.time(),
            "request": record,
        })

    def finish(self, request_id: str, result_frame: dict) -> None:
        """Flip an entry to ``done``, caching the frame a retry replays."""
        entry = self.get(request_id) or {"request": {}}
        entry.update(
            state="done",
            finished_at=time.time(),
            result=result_frame,
        )
        self._write(request_id, entry)
        self._prune_done()

    def forget(self, request_id: str) -> None:
        """Drop an entry (failed request — nothing worth replaying)."""
        target = self.path(request_id)
        target.unlink(missing_ok=True)
        target.with_name(target.name + ".tmp").unlink(missing_ok=True)

    def get(self, request_id: str) -> Optional[dict]:
        """The entry for ``request_id``, or None (absent/unreadable)."""
        try:
            entry = json.loads(self.path(request_id).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("state") not in (
            "running", "done",
        ):
            return None
        return entry

    def entries(self) -> Dict[str, dict]:
        """Every readable entry, keyed by request id."""
        found: Dict[str, dict] = {}
        for path in sorted(self.dir.glob("*.json")):
            entry = self.get(path.stem)
            if entry is not None:
                found[path.stem] = entry
        return found

    def interrupted(self) -> List[str]:
        """Request ids still ``running`` — in flight when a daemon died.

        Called at startup (before the socket accepts anything), when no
        request can legitimately be running; each id names a join whose
        store may hold a resumable checkpoint manifest.
        """
        return [
            request_id
            for request_id, entry in self.entries().items()
            if entry.get("state") == "running"
        ]

    def _prune_done(self) -> None:
        done = [
            (entry.get("finished_at", 0.0), request_id)
            for request_id, entry in self.entries().items()
            if entry.get("state") == "done"
        ]
        if len(done) <= DONE_ENTRIES_KEPT:
            return
        done.sort()
        for _, request_id in done[: len(done) - DONE_ENTRIES_KEPT]:
            self.forget(request_id)
