"""The caller side of the join service: a thin blocking client.

:class:`JoinServiceClient` speaks the length-prefixed JSON protocol of
:mod:`repro.service.protocol` over a unix socket and nothing else — it
imports no storage, engine or numpy code, so any process on the host can
submit joins to a running daemon.  One client holds one connection;
requests on it are sequential (the daemon itself interleaves *across*
connections, one thread each).

``join`` returns a :class:`JoinReply`; with ``stream_pairs=True`` the
reply's ``pairs`` accumulates the streamed batches (or flow through the
caller's ``on_pairs`` callback instead, for joins too big to hold).

Every join carries an idempotent request id (client-generated unless the
caller supplies one) and retries *transport* failures — a connection
refused, reset, or closed mid-conversation — with exponential backoff
against the same id, so a daemon restart under the client turns into a
resumed (or replayed) request instead of a lost one.  Errors the daemon
itself classified (``bad-request``, ``rejected``, ``corrupt-data``, …)
are never retried: the daemon answered; asking again would not change
the answer.
"""

from __future__ import annotations

import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.service.protocol import ProtocolError, recv_frame, send_frame


class ClientError(RuntimeError):
    """The daemon refused the request or the conversation broke down."""

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


@dataclass
class JoinReply:
    """One join's outcome as reported over the wire."""

    request_id: str
    tenant: str
    algorithm: str
    pair_count: int
    checksum: int
    wall_ms: float
    request_ms: float
    kernel_mode: str
    streamed_pairs: int = 0
    reused_store: bool = False
    admission: Optional[str] = None
    queued_ms: float = 0.0
    degradations: int = 0
    retries: int = 0
    timeouts: int = 0
    inline_fallbacks: int = 0
    replayed: bool = False
    resumed: bool = False
    passes_skipped: int = 0
    attempts: int = 1
    stats_document: Optional[dict] = None
    pairs: List[tuple] = field(default_factory=list)


class JoinServiceClient:
    """``with JoinServiceClient(socket_path) as client: client.join(...)``."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None) -> None:
        self.socket_path = socket_path
        self._timeout = timeout
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self._timeout is not None:
            sock.settimeout(self._timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as error:
            sock.close()
            raise ClientError(
                f"cannot connect to join service at {self.socket_path}: "
                f"{error}"
            )
        return sock

    def _reconnect(self) -> None:
        self.close()
        self._sock = self._connect()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "JoinServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- ops

    def ping(self) -> dict:
        """Round-trip liveness: the daemon's uptime and algorithm list."""
        send_frame(self._sock, {"op": "ping"})
        return self._expect("pong")

    def stats(self) -> dict:
        """The daemon's current schema-v5 service stats document."""
        send_frame(self._sock, {"op": "stats"})
        return self._expect("stats")["document"]

    def shutdown(self) -> None:
        """Ask the daemon to stop serving and exit its accept loop."""
        send_frame(self._sock, {"op": "shutdown"})
        self._expect("bye")

    def join(
        self,
        algorithm: str,
        *,
        tenant: Optional[str] = None,
        scale: Optional[float] = None,
        seed: Optional[int] = None,
        disks: Optional[int] = None,
        distribution: Optional[str] = None,
        kernels: Optional[str] = None,
        priority: Optional[int] = None,
        stream_pairs: bool = False,
        with_stats: bool = False,
        on_pairs: Optional[Callable[[List[tuple]], None]] = None,
        request_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
        retries: int = 2,
        backoff_s: float = 0.25,
    ) -> JoinReply:
        """Run one join; block until its result frame arrives.

        With ``stream_pairs``, pair batches arrive before the result;
        they accumulate on the reply unless ``on_pairs`` consumes them.
        (A retried attempt re-streams from the start, so an ``on_pairs``
        callback may see batches redelivered across attempts; the reply
        only ever holds the final attempt's pairs.)

        ``request_id`` defaults to a fresh UUID; every retry re-submits
        the *same* id, which is what lets a restarted daemon replay or
        resume the request instead of redoing it.  Only transport
        failures retry (``retries`` reconnect attempts, exponential
        ``backoff_s`` doubling per attempt); daemon-classified errors
        raise immediately.  ``deadline_s`` bounds the whole call —
        backoff and all — and is propagated to the daemon, which tightens
        its tenant deadline to the remaining budget.
        """
        if request_id is None:
            request_id = "c-" + uuid.uuid4().hex
        started = time.perf_counter()
        backoff = max(0.0, backoff_s)
        attempt = 0
        while True:
            attempt += 1
            remaining = None
            if deadline_s is not None:
                remaining = deadline_s - (time.perf_counter() - started)
                if remaining <= 0:
                    raise ClientError(
                        f"deadline of {deadline_s}s expired after "
                        f"{attempt - 1} attempt(s)",
                        code="deadline",
                    )
            try:
                reply = self._attempt_join(
                    algorithm,
                    tenant=tenant, scale=scale, seed=seed, disks=disks,
                    distribution=distribution, kernels=kernels,
                    priority=priority, stream_pairs=stream_pairs,
                    with_stats=with_stats, on_pairs=on_pairs,
                    request_id=request_id, deadline_s=remaining,
                    started=started,
                )
                reply.attempts = attempt
                return reply
            except ClientError as error:
                if error.code is not None or attempt > retries:
                    raise
                pause = backoff * (2 ** (attempt - 1))
                if deadline_s is not None:
                    budget = deadline_s - (time.perf_counter() - started)
                    if budget <= 0:
                        raise ClientError(
                            f"deadline of {deadline_s}s expired retrying "
                            f"after: {error}",
                            code="deadline",
                        )
                    pause = min(pause, budget)
                if pause > 0:
                    time.sleep(pause)
                try:
                    self._reconnect()
                except ClientError:
                    continue  # next attempt retries the connect too

    def _attempt_join(
        self,
        algorithm: str,
        *,
        tenant, scale, seed, disks, distribution, kernels, priority,
        stream_pairs: bool, with_stats: bool, on_pairs,
        request_id: str, deadline_s: Optional[float], started: float,
    ) -> JoinReply:
        request = {
            "op": "join",
            "algorithm": algorithm,
            "request_id": request_id,
        }
        for key, value in (
            ("tenant", tenant),
            ("scale", scale),
            ("seed", seed),
            ("disks", disks),
            ("distribution", distribution),
            ("kernels", kernels),
            ("priority", priority),
            ("deadline_s", deadline_s),
        ):
            if value is not None:
                request[key] = value
        if stream_pairs:
            request["stream_pairs"] = True
        if with_stats:
            request["with_stats"] = True
        try:
            send_frame(self._sock, request)
        except OSError as error:
            raise ClientError(f"cannot send request: {error}")
        accepted = self._expect("accepted")
        pairs: List[tuple] = []
        while True:
            frame = self._recv()
            kind = frame.get("kind")
            if kind == "pairs":
                batch = [tuple(p) for p in frame["pairs"]]
                if on_pairs is not None:
                    on_pairs(batch)
                else:
                    pairs.extend(batch)
            elif kind == "result":
                return JoinReply(
                    request_id=frame.get("request_id", accepted["request_id"]),
                    tenant=frame["tenant"],
                    algorithm=frame["algorithm"],
                    pair_count=frame["pair_count"],
                    checksum=frame["checksum"],
                    wall_ms=frame["wall_ms"],
                    request_ms=(time.perf_counter() - started) * 1000.0,
                    kernel_mode=frame["kernel_mode"],
                    streamed_pairs=frame.get("streamed_pairs", 0),
                    reused_store=frame.get("reused_store", False),
                    admission=frame.get("admission"),
                    queued_ms=frame.get("queued_ms", 0.0),
                    degradations=frame.get("degradations", 0),
                    retries=frame.get("retries", 0),
                    timeouts=frame.get("timeouts", 0),
                    inline_fallbacks=frame.get("inline_fallbacks", 0),
                    replayed=frame.get("replayed", False),
                    resumed=frame.get("resumed", False),
                    passes_skipped=frame.get("passes_skipped", 0),
                    stats_document=frame.get("stats_document"),
                    pairs=pairs,
                )
            elif kind == "error":
                raise ClientError(
                    frame.get("error", "join failed"), code=frame.get("code")
                )
            else:
                raise ClientError(
                    f"unexpected frame kind {kind!r} while awaiting result"
                )

    # -------------------------------------------------------------- plumbing

    def _recv(self) -> dict:
        try:
            frame = recv_frame(self._sock)
        except (ProtocolError, OSError) as error:
            raise ClientError(f"conversation with the daemon broke: {error}")
        if frame is None:
            raise ClientError("daemon closed the connection mid-conversation")
        return frame

    def _expect(self, kind: str) -> dict:
        frame = self._recv()
        if frame.get("kind") == "error":
            raise ClientError(
                frame.get("error", "request refused"), code=frame.get("code")
            )
        if frame.get("kind") != kind:
            raise ClientError(
                f"expected a {kind!r} frame, got {frame.get('kind')!r}"
            )
        return frame
