"""The caller side of the join service: a thin blocking client.

:class:`JoinServiceClient` speaks the length-prefixed JSON protocol of
:mod:`repro.service.protocol` over a unix socket and nothing else — it
imports no storage, engine or numpy code, so any process on the host can
submit joins to a running daemon.  One client holds one connection;
requests on it are sequential (the daemon itself interleaves *across*
connections, one thread each).

``join`` returns a :class:`JoinReply`; with ``stream_pairs=True`` the
reply's ``pairs`` accumulates the streamed batches (or flow through the
caller's ``on_pairs`` callback instead, for joins too big to hold).
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.service.protocol import ProtocolError, recv_frame, send_frame


class ClientError(RuntimeError):
    """The daemon refused the request or the conversation broke down."""

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


@dataclass
class JoinReply:
    """One join's outcome as reported over the wire."""

    request_id: str
    tenant: str
    algorithm: str
    pair_count: int
    checksum: int
    wall_ms: float
    request_ms: float
    kernel_mode: str
    streamed_pairs: int = 0
    reused_store: bool = False
    admission: Optional[str] = None
    queued_ms: float = 0.0
    degradations: int = 0
    retries: int = 0
    timeouts: int = 0
    inline_fallbacks: int = 0
    stats_document: Optional[dict] = None
    pairs: List[tuple] = field(default_factory=list)


class JoinServiceClient:
    """``with JoinServiceClient(socket_path) as client: client.join(...)``."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None) -> None:
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            self._sock.connect(socket_path)
        except OSError as error:
            self._sock.close()
            raise ClientError(
                f"cannot connect to join service at {socket_path}: {error}"
            )

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "JoinServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- ops

    def ping(self) -> dict:
        """Round-trip liveness: the daemon's uptime and algorithm list."""
        send_frame(self._sock, {"op": "ping"})
        return self._expect("pong")

    def stats(self) -> dict:
        """The daemon's current schema-v4 service stats document."""
        send_frame(self._sock, {"op": "stats"})
        return self._expect("stats")["document"]

    def shutdown(self) -> None:
        """Ask the daemon to stop serving and exit its accept loop."""
        send_frame(self._sock, {"op": "shutdown"})
        self._expect("bye")

    def join(
        self,
        algorithm: str,
        *,
        tenant: Optional[str] = None,
        scale: Optional[float] = None,
        seed: Optional[int] = None,
        disks: Optional[int] = None,
        distribution: Optional[str] = None,
        kernels: Optional[str] = None,
        priority: Optional[int] = None,
        stream_pairs: bool = False,
        with_stats: bool = False,
        on_pairs: Optional[Callable[[List[tuple]], None]] = None,
    ) -> JoinReply:
        """Run one join; block until its result frame arrives.

        With ``stream_pairs``, pair batches arrive before the result;
        they accumulate on the reply unless ``on_pairs`` consumes them.
        """
        request = {"op": "join", "algorithm": algorithm}
        for key, value in (
            ("tenant", tenant),
            ("scale", scale),
            ("seed", seed),
            ("disks", disks),
            ("distribution", distribution),
            ("kernels", kernels),
            ("priority", priority),
        ):
            if value is not None:
                request[key] = value
        if stream_pairs:
            request["stream_pairs"] = True
        if with_stats:
            request["with_stats"] = True
        started = time.perf_counter()
        send_frame(self._sock, request)
        accepted = self._expect("accepted")
        pairs: List[tuple] = []
        while True:
            frame = self._recv()
            kind = frame.get("kind")
            if kind == "pairs":
                batch = [tuple(p) for p in frame["pairs"]]
                if on_pairs is not None:
                    on_pairs(batch)
                else:
                    pairs.extend(batch)
            elif kind == "result":
                return JoinReply(
                    request_id=frame.get("request_id", accepted["request_id"]),
                    tenant=frame["tenant"],
                    algorithm=frame["algorithm"],
                    pair_count=frame["pair_count"],
                    checksum=frame["checksum"],
                    wall_ms=frame["wall_ms"],
                    request_ms=(time.perf_counter() - started) * 1000.0,
                    kernel_mode=frame["kernel_mode"],
                    streamed_pairs=frame.get("streamed_pairs", 0),
                    reused_store=frame.get("reused_store", False),
                    admission=frame.get("admission"),
                    queued_ms=frame.get("queued_ms", 0.0),
                    degradations=frame.get("degradations", 0),
                    retries=frame.get("retries", 0),
                    timeouts=frame.get("timeouts", 0),
                    inline_fallbacks=frame.get("inline_fallbacks", 0),
                    stats_document=frame.get("stats_document"),
                    pairs=pairs,
                )
            elif kind == "error":
                raise ClientError(
                    frame.get("error", "join failed"), code=frame.get("code")
                )
            else:
                raise ClientError(
                    f"unexpected frame kind {kind!r} while awaiting result"
                )

    # -------------------------------------------------------------- plumbing

    def _recv(self) -> dict:
        try:
            frame = recv_frame(self._sock)
        except (ProtocolError, OSError) as error:
            raise ClientError(f"conversation with the daemon broke: {error}")
        if frame is None:
            raise ClientError("daemon closed the connection mid-conversation")
        return frame

    def _expect(self, kind: str) -> dict:
        frame = self._recv()
        if frame.get("kind") == "error":
            raise ClientError(
                frame.get("error", "request refused"), code=frame.get("code")
            )
        if frame.get("kind") != kind:
            raise ClientError(
                f"expected a {kind!r} frame, got {frame.get('kind')!r}"
            )
        return frame
