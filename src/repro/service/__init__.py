"""The multi-tenant join service: an always-on daemon over the runner.

The paper's joins are one-shot batch runs; the ROADMAP's north star is a
system serving heavy traffic.  This package is the bridge:
:class:`~repro.service.server.JoinService` wraps the runner facade in a
long-lived daemon — a persistent worker pool, warm mmap-backed stores
reused across requests, per-tenant budgets and priorities feeding the
governor's bounded admission queue, and a thin length-prefixed-JSON
protocol over a unix socket with streaming pair delivery straight from
the mapped PAIRS segments.

Layering: ``protocol`` (framing, depends on nothing), ``tenants``
(policy file), ``server`` (the daemon, over ``repro.parallel`` /
``repro.governor`` / ``repro.obs``), ``client`` (the caller side, over
``protocol`` only — a client needs no storage or numpy).

Operator guide: ``docs/serving.md``.
"""

from repro.service.client import ClientError, JoinReply, JoinServiceClient
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.server import (
    JoinService,
    ServiceConfig,
    ServiceError,
    sweep_service_root,
)
from repro.service.tenants import (
    TenantConfig,
    TenantError,
    TenantPolicy,
)

__all__ = [
    "ClientError",
    "JoinReply",
    "JoinService",
    "JoinServiceClient",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ServiceConfig",
    "ServiceError",
    "TenantConfig",
    "TenantError",
    "TenantPolicy",
    "recv_frame",
    "send_frame",
    "sweep_service_root",
]
