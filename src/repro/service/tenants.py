"""Tenant policy: who may run joins, with what budgets, at what priority.

The daemon serves many tenants through one governor; this module is the
declarative side — a small JSON config file mapping tenant names to
their admission policy:

.. code-block:: json

    {
      "default": {"priority": 0, "mem_budget": "64M"},
      "tenants": {
        "interactive": {"priority": 10, "mem_budget": "256M",
                         "max_concurrent": 2},
        "batch": {"priority": 0, "mem_budget": "48M",
                   "on_pressure": "queue", "deadline_s": 30}
      },
      "strict": false
    }

``default`` is the policy applied to any tenant not listed (and the
base every listed tenant inherits from); ``strict: true`` rejects
unknown tenants instead.  Budgets accept raw byte counts or ``K``/``M``/
``G`` suffixed strings.  Field semantics match the runner parameters
they feed: ``mem_budget``/``disk_budget`` arm the resource governor per
request, ``on_pressure`` picks the pressure response (``degrade`` /
``queue`` / ``fail``), ``max_concurrent`` caps the tenant's concurrent
joins inside the shared governor, ``deadline_s`` bounds time spent in
the admission queue, and ``priority`` orders the queue (higher wins).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional

ON_PRESSURE_MODES = ("degrade", "queue", "fail")

_SIZE_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


class TenantError(ValueError):
    """A tenant config (or a request's tenant reference) is invalid."""


def parse_budget(value: object, field: str) -> Optional[int]:
    """``None`` | int bytes | ``"256K"``-style string → bytes or ``None``."""
    if value is None:
        return None
    if isinstance(value, bool):
        raise TenantError(f"{field}: booleans are not byte counts")
    if isinstance(value, int):
        size = value
    elif isinstance(value, str):
        raw = value.strip().upper()
        multiplier = 1
        if raw and raw[-1] in _SIZE_SUFFIXES:
            multiplier = _SIZE_SUFFIXES[raw[-1]]
            raw = raw[:-1]
        try:
            size = int(raw) * multiplier
        except ValueError:
            raise TenantError(
                f"{field}: invalid size {value!r} (expected e.g. 4096, 256K, 2M)"
            )
    else:
        raise TenantError(
            f"{field}: expected bytes or a size string, got "
            f"{type(value).__name__}"
        )
    if size <= 0:
        raise TenantError(f"{field}: size must be positive: {value!r}")
    return size


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission policy, fully resolved."""

    name: str
    priority: int = 0
    mem_budget_bytes: Optional[int] = None
    disk_budget_bytes: Optional[int] = None
    max_concurrent: Optional[int] = None
    on_pressure: str = "degrade"
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.on_pressure not in ON_PRESSURE_MODES:
            raise TenantError(
                f"tenant {self.name!r}: unknown on_pressure "
                f"{self.on_pressure!r}; choices: {sorted(ON_PRESSURE_MODES)}"
            )
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise TenantError(
                f"tenant {self.name!r}: max_concurrent must be >= 1"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise TenantError(
                f"tenant {self.name!r}: deadline_s must be positive"
            )

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "priority": self.priority,
            "mem_budget_bytes": self.mem_budget_bytes,
            "disk_budget_bytes": self.disk_budget_bytes,
            "max_concurrent": self.max_concurrent,
            "on_pressure": self.on_pressure,
            "deadline_s": self.deadline_s,
        }


_POLICY_FIELDS = frozenset(
    {
        "priority",
        "mem_budget",
        "disk_budget",
        "max_concurrent",
        "on_pressure",
        "deadline_s",
    }
)


def _build_policy(name: str, raw: Mapping, base: Mapping) -> TenantPolicy:
    unknown = set(raw) - _POLICY_FIELDS
    if unknown:
        raise TenantError(
            f"tenant {name!r}: unknown fields {sorted(unknown)}; "
            f"valid fields: {sorted(_POLICY_FIELDS)}"
        )
    merged = {**base, **raw}
    priority = merged.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise TenantError(f"tenant {name!r}: priority must be an integer")
    deadline = merged.get("deadline_s")
    if deadline is not None and not isinstance(deadline, (int, float)):
        raise TenantError(f"tenant {name!r}: deadline_s must be a number")
    max_concurrent = merged.get("max_concurrent")
    if max_concurrent is not None and (
        not isinstance(max_concurrent, int) or isinstance(max_concurrent, bool)
    ):
        raise TenantError(f"tenant {name!r}: max_concurrent must be an integer")
    return TenantPolicy(
        name=name,
        priority=priority,
        mem_budget_bytes=parse_budget(
            merged.get("mem_budget"), f"tenant {name!r}: mem_budget"
        ),
        disk_budget_bytes=parse_budget(
            merged.get("disk_budget"), f"tenant {name!r}: disk_budget"
        ),
        max_concurrent=max_concurrent,
        on_pressure=merged.get("on_pressure", "degrade"),
        deadline_s=float(deadline) if deadline is not None else None,
    )


class TenantConfig:
    """The resolved tenant policy table the daemon serves with."""

    def __init__(
        self,
        tenants: Dict[str, TenantPolicy],
        default: TenantPolicy,
        strict: bool = False,
    ) -> None:
        self.tenants = dict(tenants)
        self.default = default
        self.strict = strict

    @classmethod
    def parse(cls, raw: Mapping) -> "TenantConfig":
        if not isinstance(raw, Mapping):
            raise TenantError(
                f"tenant config must be an object, got {type(raw).__name__}"
            )
        unknown = set(raw) - {"default", "tenants", "strict"}
        if unknown:
            raise TenantError(
                f"unknown top-level fields {sorted(unknown)}; "
                "valid: default, tenants, strict"
            )
        base = raw.get("default", {})
        if not isinstance(base, Mapping):
            raise TenantError("'default' must be an object of policy fields")
        default = _build_policy("default", base, {})
        entries = raw.get("tenants", {})
        if not isinstance(entries, Mapping):
            raise TenantError("'tenants' must be an object of name -> policy")
        tenants = {}
        for name, fields in entries.items():
            if not isinstance(fields, Mapping):
                raise TenantError(f"tenant {name!r}: policy must be an object")
            tenants[name] = _build_policy(name, fields, base)
        strict = raw.get("strict", False)
        if not isinstance(strict, bool):
            raise TenantError("'strict' must be a boolean")
        return cls(tenants, default, strict)

    @classmethod
    def load(cls, path: str | Path) -> "TenantConfig":
        try:
            raw = json.loads(Path(path).read_text())
        except OSError as error:
            raise TenantError(f"cannot read tenant config {path}: {error}")
        except json.JSONDecodeError as error:
            raise TenantError(f"tenant config {path} is not valid JSON: {error}")
        return cls.parse(raw)

    @classmethod
    def open_default(cls) -> "TenantConfig":
        """The permissive single-class config: everyone gets ``default``."""
        return cls({}, TenantPolicy(name="default"), strict=False)

    def resolve(self, name: Optional[str]) -> TenantPolicy:
        """The policy a request under ``name`` runs with.

        Unknown tenants fall back to the default policy (re-named so
        accounting stays per-tenant) unless the config is ``strict``.
        """
        if name is None:
            name = self.default.name
        if name in self.tenants:
            return self.tenants[name]
        if self.strict and name != self.default.name:
            raise TenantError(
                f"unknown tenant {name!r} and the tenant config is strict"
            )
        if name == self.default.name:
            return self.default
        return TenantPolicy(
            name=name,
            priority=self.default.priority,
            mem_budget_bytes=self.default.mem_budget_bytes,
            disk_budget_bytes=self.default.disk_budget_bytes,
            max_concurrent=self.default.max_concurrent,
            on_pressure=self.default.on_pressure,
            deadline_s=self.default.deadline_s,
        )

    def tenant_limits(self) -> Dict[str, int]:
        """Per-tenant concurrency caps for the governor constructor."""
        return {
            name: policy.max_concurrent
            for name, policy in self.tenants.items()
            if policy.max_concurrent is not None
        }
