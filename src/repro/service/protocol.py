"""Length-prefixed JSON framing for the join-service socket protocol.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  The framing is symmetric —
requests and responses use the same wire shape — and deliberately dumb:
no negotiation, no compression, no partial frames.  A join's pair output
is the only high-volume payload, and it flows as a sequence of bounded
``pairs`` frames (each a few thousand 4-tuples) so neither side ever
holds a whole join result in one buffer.

The full message vocabulary (ops, response kinds, error codes) is
specified in ``docs/serving.md``; this module only knows bytes and JSON.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

#: Refuse frames larger than this on both sides: a length prefix beyond
#: it means a corrupt stream or a non-protocol peer, not a real message.
#: (A 4096-pair batch frame is ~100 KiB; 64 MiB is three orders of
#: margin.)
MAX_FRAME_BYTES = 64 << 20

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The byte stream violated the framing contract."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and write one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF *between* frames.

    EOF mid-frame (a peer that died while sending) is a
    :class:`ProtocolError`, as is a non-object payload or a length
    beyond :data:`MAX_FRAME_BYTES`.
    """
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame claims {length} bytes "
            f"(limit {MAX_FRAME_BYTES}) — corrupt stream?"
        )
    payload = _recv_exact(sock, length, eof_ok=False)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame payload is not valid JSON: {error}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload is {type(message).__name__}, expected an object"
        )
    return message


def _recv_exact(
    sock: socket.socket, n: int, eof_ok: bool
) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or ``None`` on immediate EOF (if legal)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ProtocolError(
                f"peer closed the connection mid-frame "
                f"({n - remaining}/{n} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""
