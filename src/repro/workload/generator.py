"""Workload generation: build the R and S relations of a join experiment.

The paper's validation workload is two relations of 102,400 objects of 128
bytes each, partitioned over 4 disks, with uniformly random join pointers.
:func:`generate_workload` reproduces that (and variations) deterministically
from a seed, and the resulting :class:`Workload` knows how to describe
itself to the analytical model (:meth:`Workload.relation_parameters`),
including its *measured* partition skew.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.partition import split_evenly, workload_skew
from repro.core.pointer import PointerMap
from repro.core.records import RObject, SObject
from repro.model.parameters import RelationParameters
from repro.workload.distributions import sampler


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a join workload."""

    r_objects: int = 102_400
    s_objects: int = 102_400
    r_bytes: int = 128
    s_bytes: int = 128
    sptr_bytes: int = 8
    distribution: str = "uniform"
    distribution_args: Dict[str, float] = field(default_factory=dict)
    seed: int = 96

    def __post_init__(self) -> None:
        if self.r_objects <= 0 or self.s_objects <= 0:
            raise ValueError("relation cardinalities must be positive")
        if self.r_bytes <= 0 or self.s_bytes <= 0:
            raise ValueError("object sizes must be positive")

    @classmethod
    def paper_validation(cls, scale: float = 1.0, seed: int = 96) -> "WorkloadSpec":
        """The section-8 validation workload, optionally scaled down.

        ``scale = 1.0`` is the paper's full 102,400-object experiment;
        smaller scales keep the object size and distribution while shrinking
        both relations proportionally (handy for CI-speed runs).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        objects = max(64, int(102_400 * scale))
        return cls(r_objects=objects, s_objects=objects, seed=seed)


@dataclass
class Workload:
    """A fully-materialized workload, partitioned for ``D`` processes."""

    spec: WorkloadSpec
    disks: int
    s_objects: List[SObject]
    r_partitions: List[List[RObject]]
    pointer_map: PointerMap

    @property
    def r_objects_total(self) -> int:
        return sum(len(p) for p in self.r_partitions)

    def s_partition(self, partition: int) -> List[SObject]:
        start = self.pointer_map.partition_start(partition)
        size = self.pointer_map.partition_size(partition)
        return self.s_objects[start : start + size]

    def measured_skew(self) -> float:
        """The paper's skew statistic, measured on the actual pointers."""
        return workload_skew(self.r_partitions, self.pointer_map)

    def relation_parameters(self, measured_skew: bool = True) -> RelationParameters:
        """Describe this workload to the analytical model."""
        return RelationParameters(
            r_objects=self.r_objects_total,
            s_objects=len(self.s_objects),
            r_bytes=self.spec.r_bytes,
            s_bytes=self.spec.s_bytes,
            sptr_bytes=self.spec.sptr_bytes,
            skew=self.measured_skew() if measured_skew else 1.0,
        )

    def expected_pairs(self) -> List[tuple[int, int]]:
        """The correct join output as (rid, sid) pairs — the test oracle.

        Every R-object joins exactly the S-object its pointer names, so the
        oracle is immediate from the workload itself.
        """
        return [
            (obj.rid, obj.sptr)
            for partition in self.r_partitions
            for obj in partition
        ]


def generate_workload(spec: WorkloadSpec, disks: int) -> Workload:
    """Materialize a workload for a ``disks``-way parallel join."""
    if disks <= 0:
        raise ValueError("disks must be positive")
    rng = random.Random(spec.seed)

    s_objects = [
        SObject(sid=i, value=rng.randrange(1_000_000), payload=rng.randrange(1 << 30))
        for i in range(spec.s_objects)
    ]

    sample = sampler(spec.distribution)
    pointers: Sequence[int] = sample(
        rng, spec.r_objects, spec.s_objects, **spec.distribution_args
    )
    r_objects = [
        RObject(rid=i, sptr=ptr, payload=rng.randrange(1 << 30))
        for i, ptr in enumerate(pointers)
    ]
    # Shuffle before splitting so positional partitioning is random
    # assignment, matching the paper's "randomly distributed" premise —
    # unless the sampler declares that R's order is part of the
    # distribution (clustered runs would be destroyed by a shuffle).
    if not getattr(sample, "order_matters", False):
        rng.shuffle(r_objects)

    return Workload(
        spec=spec,
        disks=disks,
        s_objects=s_objects,
        r_partitions=split_evenly(r_objects, disks),
        pointer_map=PointerMap(s_objects=spec.s_objects, partitions=disks),
    )
