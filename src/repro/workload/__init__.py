"""Workload generation for the join experiments."""

from repro.workload.distributions import (
    DISTRIBUTIONS,
    DistributionError,
    clustered_pointers,
    distribution_arg_names,
    partition_hot_pointers,
    permutation_pointers,
    sampler,
    uniform_pointers,
    validate_distribution_args,
    zipf_pointers,
)
from repro.workload.generator import Workload, WorkloadSpec, generate_workload
from repro.workload.io import WorkloadIOError, load_workload, save_workload

__all__ = [
    "DISTRIBUTIONS",
    "DistributionError",
    "Workload",
    "WorkloadIOError",
    "WorkloadSpec",
    "clustered_pointers",
    "distribution_arg_names",
    "generate_workload",
    "load_workload",
    "save_workload",
    "partition_hot_pointers",
    "permutation_pointers",
    "sampler",
    "uniform_pointers",
    "validate_distribution_args",
    "zipf_pointers",
]
