"""Workload generation for the join experiments."""

from repro.workload.distributions import (
    DISTRIBUTIONS,
    DistributionError,
    clustered_pointers,
    partition_hot_pointers,
    permutation_pointers,
    sampler,
    uniform_pointers,
    zipf_pointers,
)
from repro.workload.generator import Workload, WorkloadSpec, generate_workload
from repro.workload.io import WorkloadIOError, load_workload, save_workload

__all__ = [
    "DISTRIBUTIONS",
    "DistributionError",
    "Workload",
    "WorkloadIOError",
    "WorkloadSpec",
    "clustered_pointers",
    "generate_workload",
    "load_workload",
    "save_workload",
    "partition_hot_pointers",
    "permutation_pointers",
    "sampler",
    "uniform_pointers",
    "zipf_pointers",
]
