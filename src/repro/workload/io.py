"""Workload persistence: save and reload exact experiment inputs.

A saved workload pins the *materialized* relations — not just the spec and
seed — so an experiment can be re-run bit-identically on another machine,
another backend (simulator vs. real mmap), or a future version whose RNG
stream might differ.  Files are numpy ``.npz`` archives: three parallel
arrays per relation plus the partition layout and the original spec.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.pointer import PointerMap
from repro.core.records import RObject, SObject
from repro.workload.generator import Workload, WorkloadSpec

FORMAT_VERSION = 1


class WorkloadIOError(RuntimeError):
    """Raised for unreadable or inconsistent workload files."""


def save_workload(workload: Workload, path: str | os.PathLike) -> None:
    """Write a workload to an ``.npz`` archive."""
    r_objects = [obj for partition in workload.r_partitions for obj in partition]
    partition_sizes = np.array(
        [len(p) for p in workload.r_partitions], dtype=np.int64
    )
    header = {
        "format_version": FORMAT_VERSION,
        "disks": workload.disks,
        "spec": {
            "r_objects": workload.spec.r_objects,
            "s_objects": workload.spec.s_objects,
            "r_bytes": workload.spec.r_bytes,
            "s_bytes": workload.spec.s_bytes,
            "sptr_bytes": workload.spec.sptr_bytes,
            "distribution": workload.spec.distribution,
            "distribution_args": dict(workload.spec.distribution_args),
            "seed": workload.spec.seed,
        },
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        partition_sizes=partition_sizes,
        r_rid=np.array([o.rid for o in r_objects], dtype=np.int64),
        r_sptr=np.array([o.sptr for o in r_objects], dtype=np.int64),
        r_payload=np.array([o.payload for o in r_objects], dtype=np.int64),
        s_sid=np.array([o.sid for o in workload.s_objects], dtype=np.int64),
        s_value=np.array([o.value for o in workload.s_objects], dtype=np.int64),
        s_payload=np.array(
            [o.payload for o in workload.s_objects], dtype=np.int64
        ),
    )


def load_workload(path: str | os.PathLike) -> Workload:
    """Reload a workload written by :func:`save_workload`."""
    path = Path(path)
    if not path.exists():
        raise WorkloadIOError(f"no workload file at {path}")
    try:
        archive = np.load(path)
    except (OSError, ValueError) as exc:
        raise WorkloadIOError(f"cannot read workload file {path}: {exc}") from exc

    try:
        header = json.loads(bytes(archive["header"]).decode())
    except (KeyError, json.JSONDecodeError) as exc:
        raise WorkloadIOError(f"{path} is not a workload archive") from exc
    if header.get("format_version") != FORMAT_VERSION:
        raise WorkloadIOError(
            f"unsupported workload format {header.get('format_version')!r}"
        )

    spec = WorkloadSpec(**header["spec"])
    disks = int(header["disks"])

    s_objects = [
        SObject(sid=int(sid), value=int(value), payload=int(payload))
        for sid, value, payload in zip(
            archive["s_sid"], archive["s_value"], archive["s_payload"]
        )
    ]
    r_flat = [
        RObject(rid=int(rid), sptr=int(sptr), payload=int(payload))
        for rid, sptr, payload in zip(
            archive["r_rid"], archive["r_sptr"], archive["r_payload"]
        )
    ]

    partition_sizes = [int(n) for n in archive["partition_sizes"]]
    if len(partition_sizes) != disks:
        raise WorkloadIOError(
            f"{path}: partition count {len(partition_sizes)} does not match "
            f"disks {disks}"
        )
    if sum(partition_sizes) != len(r_flat):
        raise WorkloadIOError(f"{path}: partition sizes do not cover R")

    partitions = []
    cursor = 0
    for size in partition_sizes:
        partitions.append(r_flat[cursor : cursor + size])
        cursor += size

    workload = Workload(
        spec=spec,
        disks=disks,
        s_objects=s_objects,
        r_partitions=partitions,
        pointer_map=PointerMap(s_objects=len(s_objects), partitions=disks),
    )
    _validate(workload, path)
    return workload


def _validate(workload: Workload, path: Path) -> None:
    """Sanity-check pointer ranges so corrupt files fail loudly."""
    n_s = len(workload.s_objects)
    for partition in workload.r_partitions:
        for obj in partition:
            if not 0 <= obj.sptr < n_s:
                raise WorkloadIOError(
                    f"{path}: R object {obj.rid} has out-of-range pointer "
                    f"{obj.sptr} (|S| = {n_s})"
                )
