"""Join-attribute (S-pointer) distributions for workload generation.

The paper's experiments assume join attributes "randomly distributed in R"
(uniform, skew ~ 1.0); the extension benches additionally exercise skewed
and clustered reference patterns to probe the algorithms' differing skew
sensitivity.
"""

from __future__ import annotations

import inspect
import math
import random
from functools import lru_cache
from typing import Callable, List, Mapping

Sampler = Callable[[random.Random, int, int], List[int]]


class DistributionError(ValueError):
    """Raised for unknown or ill-parameterized distributions."""


def uniform_pointers(rng: random.Random, count: int, s_objects: int) -> List[int]:
    """Independent uniform pointers — the paper's validation workload."""
    return [rng.randrange(s_objects) for _ in range(count)]


def permutation_pointers(rng: random.Random, count: int, s_objects: int) -> List[int]:
    """Each S-object referenced at most once (a key/foreign-key join).

    When ``count > s_objects`` the permutation repeats, keeping reference
    counts within one of each other.
    """
    pointers: List[int] = []
    while len(pointers) < count:
        block = list(range(s_objects))
        rng.shuffle(block)
        pointers.extend(block[: count - len(pointers)])
    return pointers


@lru_cache(maxsize=16)
def zipf_cumulative_weights(s_objects: int, theta: float) -> tuple[float, ...]:
    """Cumulative Zipf weights for ``rng.choices(cum_weights=...)``.

    Cached per (|S|, theta) so repeated sampling does not rebuild the
    O(|S|) weight list on every call.  ``rank ** theta`` overflows for
    large exponents; the log-space form underflows to 0.0 instead, which
    is the correct limit (rank 1 keeps weight 1.0, the tail vanishes).
    """
    total = 0.0
    cumulative: List[float] = []
    for rank in range(1, s_objects + 1):
        try:
            weight = 1.0 / rank**theta
        except OverflowError:
            weight = math.exp(-theta * math.log(rank))
        total += weight
        cumulative.append(total)
    return tuple(cumulative)


def zipf_pointers(
    rng: random.Random, count: int, s_objects: int, theta: float = 1.0
) -> List[int]:
    """Zipf-distributed references: a few hot S-objects dominate.

    ``theta`` is the usual Zipf exponent; ``theta = 0`` degenerates to
    uniform.  Hot ranks are scattered over S with a fixed multiplicative
    shuffle so popularity skew does not accidentally become *partition*
    skew.
    """
    if not isinstance(theta, (int, float)) or not math.isfinite(theta):
        raise DistributionError("zipf exponent must be a finite number")
    if theta < 0:
        raise DistributionError("zipf exponent must be non-negative")
    cum_weights = zipf_cumulative_weights(s_objects, float(theta))
    ranks = rng.choices(range(s_objects), cum_weights=cum_weights, k=count)
    # Scatter ranks across S: multiply by an odd stride modulo |S|.
    stride = _coprime_stride(s_objects)
    return [(rank * stride + 1) % s_objects for rank in ranks]


def partition_hot_pointers(
    rng: random.Random,
    count: int,
    s_objects: int,
    hot_fraction: float = 0.5,
    hot_span: float = 0.25,
) -> List[int]:
    """Partition-skewed references: ``hot_fraction`` of pointers land in
    the first ``hot_span`` of S.

    This is the distribution that drives the paper's ``skew`` parameter
    above 1.0, gating the synchronized algorithms.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise DistributionError("hot_fraction must be within [0, 1]")
    if not 0.0 < hot_span <= 1.0:
        raise DistributionError("hot_span must be within (0, 1]")
    hot_limit = max(1, int(s_objects * hot_span))
    pointers = []
    for _ in range(count):
        if rng.random() < hot_fraction:
            pointers.append(rng.randrange(hot_limit))
        else:
            pointers.append(rng.randrange(s_objects))
    return pointers


def clustered_pointers(
    rng: random.Random, count: int, s_objects: int, run_length: int = 32
) -> List[int]:
    """Locally-sequential references: runs of consecutive S-objects.

    Models R built by a clustered scan of S — friendly to nested loops'
    buffer, since consecutive dereferences hit the same S pages.
    """
    if run_length < 1:
        raise DistributionError("run_length must be at least 1")
    pointers: List[int] = []
    while len(pointers) < count:
        start = rng.randrange(s_objects)
        for step in range(min(run_length, count - len(pointers))):
            pointers.append((start + step) % s_objects)
    return pointers


# The whole point of clustered references is that R's *order* carries the
# locality; the generator must not shuffle it away.
clustered_pointers.order_matters = True


def _coprime_stride(n: int) -> int:
    """A multiplicative stride coprime with n (for rank scattering)."""
    import math

    stride = max(3, int(n * 0.61803) | 1)
    while math.gcd(stride, n) != 1:
        stride += 2
    return stride


DISTRIBUTIONS: dict[str, Sampler] = {
    "uniform": uniform_pointers,
    "permutation": permutation_pointers,
    "zipf": zipf_pointers,
    "partition_hot": partition_hot_pointers,
    "clustered": clustered_pointers,
}


def sampler(name: str) -> Sampler:
    """Look up a pointer distribution by name."""
    try:
        return DISTRIBUTIONS[name]
    except KeyError:
        raise DistributionError(
            f"unknown distribution {name!r}; choices: {sorted(DISTRIBUTIONS)}"
        ) from None


def distribution_arg_names(name: str) -> List[str]:
    """The keyword parameters a distribution accepts beyond (rng, count, |S|)."""
    return list(inspect.signature(sampler(name)).parameters)[3:]


def validate_distribution_args(name: str, args: Mapping[str, object]) -> None:
    """Reject unknown ``distribution_args`` before any work is done.

    Raises :class:`DistributionError` naming the offending keys and the
    accepted ones, so callers (the CLI in particular) can fail before a
    store is created.
    """
    allowed = distribution_arg_names(name)
    unknown = sorted(set(args) - set(allowed))
    if unknown:
        accepted = ", ".join(allowed) if allowed else "none"
        raise DistributionError(
            f"distribution {name!r} does not accept {unknown}; "
            f"accepted args: {accepted}"
        )
