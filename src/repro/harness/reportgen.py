"""Generate a markdown reproduction report from live runs.

``python -m repro report`` (or :func:`generate_report`) re-runs the paper's
whole evaluation at a chosen scale and renders the outcome — measured
machine curves, every Figure 5 panel with model-vs-experiment error, and
the algorithm comparison — as a self-contained markdown document.  This is
the executable counterpart of the hand-written EXPERIMENTS.md: wherever
that file cites archived numbers, this module reproduces them on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.harness.calibrate import calibrated_machine_parameters
from repro.harness.experiment import run_memory_sweep
from repro.harness.figures import (
    FigureSeries,
    figure_1a,
    figure_1b,
    figure_5a,
    figure_5b,
    figure_5c,
)
from repro.harness.report import shape_summary
from repro.sim.machine import SimConfig
from repro.workload import WorkloadSpec, generate_workload


@dataclass(frozen=True)
class ReportOptions:
    """What to run and how big."""

    scale_5a: float = 0.1
    scale_5b: float = 0.1
    scale_5c: float = 0.5
    disks: int = 4
    seed: int = 96
    comparison_fractions: Sequence[float] = (0.1, 0.15, 0.2, 0.3)
    include_comparison: bool = True


def _figure_markdown(figure: FigureSeries) -> List[str]:
    lines = [f"## {figure.figure_id}: {figure.title}", ""]
    headers = [figure.x_label, *figure.series.keys()]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---:" for _ in headers) + "|")
    for i, x in enumerate(figure.x_values):
        cells = [f"{x:g}"] + [
            f"{series[i]:,.1f}" for series in figure.series.values()
        ]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    for note in figure.notes:
        lines.append(f"> {note}")
    lines.append("")
    return lines


def generate_report(options: ReportOptions | None = None) -> str:
    """Run the full evaluation and return it as one markdown document."""
    options = options or ReportOptions()
    config = SimConfig().with_disks(options.disks)
    machine = calibrated_machine_parameters(config)

    lines: List[str] = [
        "# Reproduction report — Parallel Pointer-Based Joins "
        "in Memory-Mapped Environments (ICDE 1996)",
        "",
        f"Workload scales: 5a/5b at {options.scale_5a}/{options.scale_5b}, "
        f"5c at {options.scale_5c} "
        "(1.0 = the paper's 102,400-object experiment); "
        f"D = {options.disks}; seed = {options.seed}.  "
        "Every simulated join verified against the oracle by checksum.",
        "",
    ]

    lines += _figure_markdown(figure_1a(config))
    lines += _figure_markdown(figure_1b(config))
    shared = dict(disks=options.disks, seed=options.seed, config=config,
                  machine=machine)
    lines += _figure_markdown(figure_5a(scale=options.scale_5a, **shared))
    lines += _figure_markdown(figure_5b(scale=options.scale_5b, **shared))
    lines += _figure_markdown(figure_5c(scale=options.scale_5c, **shared))

    if options.include_comparison:
        lines += _comparison_markdown(options, config, machine)

    return "\n".join(lines)


def _comparison_markdown(options, config, machine) -> List[str]:
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=options.scale_5a, seed=options.seed),
        options.disks,
    )
    sweeps = {
        name: run_memory_sweep(
            name,
            options.comparison_fractions,
            machine=machine,
            sim_config=config,
            workload=workload,
        )
        for name in ("nested-loops", "sort-merge", "grace")
    }
    lines = ["## Algorithm comparison (measured ms/Rproc)", ""]
    headers = ["MRproc/|R|", *sweeps.keys(), "winner"]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---:" for _ in headers) + "|")
    for i, fraction in enumerate(options.comparison_fractions):
        row_values = {name: sweeps[name].sim_series[i] for name in sweeps}
        winner = min(row_values, key=row_values.get)
        cells = [f"{fraction:g}"] + [
            f"{row_values[name]:,.0f}" for name in sweeps
        ] + [winner]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    for name, sweep in sweeps.items():
        lines.append(
            f"> {name}: {shape_summary(sweep.model_series, sweep.sim_series)}"
        )
    lines.append("")
    return lines
