"""Pass-level model validation: attribute agreement (or error) per pass.

The headline validation (Figure 5) compares *total* elapsed time; this
module drills one level down, pairing each pass of a
:class:`~repro.model.report.JoinCostReport` with the measured duration of
the same pass from a :class:`~repro.joins.base.JoinRunResult` checkpoint
stream.  A disagreement localized to one pass points straight at the
model term that needs refinement — this is how the paper's authors found
their Grace pass-0 thrashing term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.harness.report import format_table
from repro.joins.base import JoinRunResult
from repro.model.report import JoinCostReport


@dataclass(frozen=True)
class PassComparison:
    """Model vs. measurement for one pass."""

    name: str
    model_ms: float
    measured_ms: float

    @property
    def relative_error(self) -> Optional[float]:
        if self.measured_ms == 0:
            return None
        return (self.measured_ms - self.model_ms) / self.measured_ms


@dataclass
class ValidationReport:
    """Per-pass attribution for one (model, run) pair."""

    algorithm: str
    passes: List[PassComparison] = field(default_factory=list)
    setup_model_ms: float = 0.0
    setup_measured_ms: float = 0.0

    @property
    def model_total_ms(self) -> float:
        return self.setup_model_ms + sum(p.model_ms for p in self.passes)

    @property
    def measured_total_ms(self) -> float:
        return self.setup_measured_ms + sum(p.measured_ms for p in self.passes)

    def worst_pass(self) -> PassComparison:
        """The pass with the largest absolute time disagreement."""
        if not self.passes:
            raise ValueError("no passes to compare")
        return max(self.passes, key=lambda p: abs(p.measured_ms - p.model_ms))

    def render(self) -> str:
        rows = [
            ["setup", self.setup_model_ms, self.setup_measured_ms, ""]
        ]
        for p in self.passes:
            error = (
                f"{100 * p.relative_error:+.1f}%"
                if p.relative_error is not None
                else "n/a"
            )
            rows.append([p.name, p.model_ms, p.measured_ms, error])
        rows.append(
            ["TOTAL", self.model_total_ms, self.measured_total_ms, ""]
        )
        return "\n".join(
            [
                f"== pass-level validation: {self.algorithm} ==",
                format_table(["pass", "model_ms", "measured_ms", "error"], rows),
            ]
        )


def compare_passes(
    report: JoinCostReport, run: JoinRunResult
) -> ValidationReport:
    """Pair a cost report's passes with a run's checkpoint durations.

    Passes are matched by name; the model's ``setup`` pass pairs with the
    run's serial mapping time.  Model passes without a measured checkpoint
    (or vice versa) appear with a zero on the missing side, so nothing is
    silently dropped.
    """
    validation = ValidationReport(algorithm=report.algorithm)
    measured = dict(run.pass_ms)

    for model_pass in report.passes:
        if model_pass.name == "setup":
            validation.setup_model_ms = model_pass.total_ms
            continue
        validation.passes.append(
            PassComparison(
                name=model_pass.name,
                model_ms=model_pass.total_ms,
                measured_ms=measured.pop(model_pass.name, 0.0),
            )
        )
    # Any measured passes the model does not name.
    for name, measured_ms in measured.items():
        validation.passes.append(
            PassComparison(name=name, model_ms=0.0, measured_ms=measured_ms)
        )
    validation.setup_measured_ms = run.setup_ms
    return validation
