"""Model-validation experiments: run the model and the simulator side by side.

This is the paper's section 8 in code: pick a workload, sweep the memory
grant, and for every point evaluate the analytical prediction *and* execute
the actual join on the simulated machine, verifying the join output by
checksum along the way.  A sweep returns paired series ready for figure
rendering and for quantitative agreement checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.calibrate import calibrated_machine_parameters
from repro.joins import (
    JoinEnvironment,
    expected_checksum,
    make_algorithm,
)
from repro.joins.reference import JoinVerificationError
from repro.model import (
    JoinCostReport,
    MachineParameters,
    MemoryParameters,
    RelationParameters,
    grace_cost,
    hash_loops_cost,
    hybrid_hash_cost,
    nested_loops_cost,
    sort_merge_cost,
)
from repro.sim.machine import SimConfig
from repro.workload import Workload, WorkloadSpec, generate_workload

ModelFn = Callable[..., JoinCostReport]

MODEL_FUNCTIONS: Dict[str, ModelFn] = {
    "nested-loops": nested_loops_cost,
    "sort-merge": sort_merge_cost,
    "grace": grace_cost,
    "hash-loops": hash_loops_cost,  # extension, paper §2.3/§9
    "hybrid-hash": hybrid_hash_cost,  # extension, paper §2.3
}


class ExperimentError(RuntimeError):
    """Raised when an experiment is misconfigured."""


@dataclass(frozen=True)
class SweepPoint:
    """One memory point: prediction vs. measured simulation."""

    fraction: float
    model_ms: float
    sim_ms: float
    model_report: JoinCostReport
    sim_detail: Dict[str, float]
    sim_summary: str

    @property
    def relative_error(self) -> float:
        """(sim - model) / sim, the paper's prediction-quality measure."""
        if self.sim_ms == 0:
            return 0.0
        return (self.sim_ms - self.model_ms) / self.sim_ms


@dataclass
class SweepResult:
    """A full memory sweep for one algorithm."""

    algorithm: str
    scale: float
    disks: int
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def fractions(self) -> List[float]:
        return [p.fraction for p in self.points]

    @property
    def model_series(self) -> List[float]:
        return [p.model_ms for p in self.points]

    @property
    def sim_series(self) -> List[float]:
        return [p.sim_ms for p in self.points]

    def max_relative_error(self) -> float:
        return max(abs(p.relative_error) for p in self.points)


def run_memory_sweep(
    algorithm: str,
    fractions: Sequence[float],
    scale: float = 0.1,
    disks: int = 4,
    seed: int = 96,
    sim_config: SimConfig | None = None,
    machine: MachineParameters | None = None,
    workload: Workload | None = None,
    algo_kwargs: Optional[Dict] = None,
    model_kwargs: Optional[Dict] = None,
    fixed_buckets: Optional[int] = None,
    verify: bool = True,
    g_bytes: int = 4096,
) -> SweepResult:
    """Sweep MRproc (and MSproc with it) across fractions of ``|R|`` bytes.

    ``fixed_buckets`` pins the Grace K across the sweep (it is a design
    constant of an experiment series, which is what produces the Figure 5c
    thrashing knee); when omitted, Grace receives the design-rule K chosen
    at the *smallest* fraction of the sweep.
    """
    if algorithm not in MODEL_FUNCTIONS:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; choices: {sorted(MODEL_FUNCTIONS)}"
        )
    if not fractions:
        raise ExperimentError("a sweep needs at least one fraction")

    config = sim_config or SimConfig()
    if config.disks != disks:
        config = config.with_disks(disks)
    machine = machine or calibrated_machine_parameters(config)
    if workload is None:
        workload = generate_workload(
            WorkloadSpec.paper_validation(scale=scale, seed=seed), disks
        )
    relations = workload.relation_parameters()
    oracle_checksum = expected_checksum(workload) if verify else None

    algo_kwargs = dict(algo_kwargs or {})
    model_kwargs = dict(model_kwargs or {})
    if algorithm == "grace":
        buckets = fixed_buckets
        if buckets is None:
            buckets = _design_point_buckets(
                machine, relations, min(fractions), g_bytes
            )
        algo_kwargs.setdefault("buckets", buckets)
        model_kwargs.setdefault("buckets", buckets)

    result = SweepResult(algorithm=algorithm, scale=scale, disks=disks)
    model_fn = MODEL_FUNCTIONS[algorithm]
    for fraction in fractions:
        memory = MemoryParameters.from_fractions(
            relations, fraction, g_bytes=g_bytes
        )
        report = model_fn(machine, relations, memory, **model_kwargs)

        env = JoinEnvironment(workload, memory, sim_config=config)
        algo = make_algorithm(algorithm, **algo_kwargs)
        run = algo.run(env, collect_pairs=False)
        if oracle_checksum is not None and run.checksum != oracle_checksum:
            raise JoinVerificationError(
                f"{algorithm} at fraction {fraction}: checksum mismatch "
                f"({run.checksum} != {oracle_checksum})"
            )
        result.points.append(
            SweepPoint(
                fraction=fraction,
                model_ms=report.total_ms,
                sim_ms=run.elapsed_ms,
                model_report=report,
                sim_detail=run.detail,
                sim_summary=run.stats.summary(),
            )
        )
    return result


def _design_point_buckets(
    machine: MachineParameters,
    relations: RelationParameters,
    fraction: float,
    g_bytes: int,
) -> int:
    from repro.model.grace import grace_plan

    memory = MemoryParameters.from_fractions(relations, fraction, g_bytes=g_bytes)
    return grace_plan(machine, relations, memory).buckets
