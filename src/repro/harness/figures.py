"""Regeneration of every figure in the paper's evaluation.

The paper's evaluation reports five figure panels and no numbered tables:

* Figure 1(a) — measured disk transfer time vs. band size;
* Figure 1(b) — measured mapping setup time vs. mapping size;
* Figure 5(a,b,c) — predicted vs. measured elapsed time per Rproc for
  nested loops, sort-merge and Grace as the memory grant varies.

Each ``figure_*`` function returns a :class:`FigureSeries` whose
:meth:`~FigureSeries.render` prints the series as a table plus an ASCII
chart.  Scales below 1.0 shrink the relations (the paper's full 102,400
objects are scale 1.0) while preserving every shape of interest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.harness.calibrate import (
    DEFAULT_BAND_SIZES,
    DEFAULT_MAP_SIZES,
    calibrated_machine_parameters,
    measure_disk_curves,
    measure_mapping_curves,
)
from repro.harness.experiment import SweepResult, run_memory_sweep
from repro.harness.report import ascii_chart, format_table, shape_summary
from repro.sim.machine import SimConfig

# The x-axis ranges of the paper's Figure 5 panels.
FIG5A_FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
FIG5B_FRACTIONS = (0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05)
FIG5C_FRACTIONS = (0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08)


@dataclass
class FigureSeries:
    """One regenerated figure: x values plus named y series."""

    figure_id: str
    title: str
    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]]
    notes: List[str] = field(default_factory=list)
    sweep: Optional[SweepResult] = None

    def render(self, chart: bool = True) -> str:
        headers = [self.x_label, *self.series.keys()]
        rows = [
            [x, *(ys[i] for ys in self.series.values())]
            for i, x in enumerate(self.x_values)
        ]
        parts = [f"== {self.figure_id}: {self.title} ==", format_table(headers, rows)]
        if chart:
            parts.append(ascii_chart(self.x_values, self.series))
        parts.extend(self.notes)
        return "\n".join(parts)


def figure_1a(
    config: SimConfig | None = None,
    band_sizes: Sequence[int] = DEFAULT_BAND_SIZES,
    accesses_per_band: int = 600,
    seed: int = 7,
) -> FigureSeries:
    """Figure 1(a): disk transfer time (ms/block) vs. band size."""
    calibration = measure_disk_curves(config, band_sizes, accesses_per_band, seed)
    return FigureSeries(
        figure_id="Figure 1a",
        title="Disk transfer time vs band size (ms per 4K block)",
        x_label="band_blocks",
        x_values=[x for x, _ in calibration.read_samples],
        series={
            "dttr_ms": [y for _, y in calibration.read_samples],
            "dttw_ms": [y for _, y in calibration.write_samples],
        },
        notes=[
            "Expected shape: both monotone increasing; writes cheaper than "
            "reads thanks to write-behind elevator scheduling."
        ],
    )


def figure_1b(
    config: SimConfig | None = None,
    map_sizes_blocks: Sequence[int] = DEFAULT_MAP_SIZES,
) -> FigureSeries:
    """Figure 1(b): memory-mapping setup time vs. mapping size."""
    calibration = measure_mapping_curves(config, map_sizes_blocks)
    return FigureSeries(
        figure_id="Figure 1b",
        title="Memory mapping setup time vs map size (ms)",
        x_label="map_blocks",
        x_values=[s for s, _, _, _ in calibration.samples],
        series={
            "newMap_ms": [n for _, n, _, _ in calibration.samples],
            "openMap_ms": [o for _, _, o, _ in calibration.samples],
            "deleteMap_ms": [d for _, _, _, d in calibration.samples],
        },
        notes=[
            "Expected shape: all linear in size; newMap > openMap > deleteMap."
        ],
    )


def _figure_5(
    figure_id: str,
    algorithm: str,
    fractions: Sequence[float],
    scale: float,
    disks: int,
    seed: int,
    config: SimConfig | None,
    **sweep_kwargs,
) -> FigureSeries:
    sweep = run_memory_sweep(
        algorithm,
        fractions,
        scale=scale,
        disks=disks,
        seed=seed,
        sim_config=config,
        **sweep_kwargs,
    )
    return FigureSeries(
        figure_id=figure_id,
        title=f"{algorithm}: predicted vs measured time per Rproc (ms)",
        x_label="MRproc/|R|",
        x_values=list(sweep.fractions),
        series={"model_ms": sweep.model_series, "experiment_ms": sweep.sim_series},
        notes=[shape_summary(sweep.model_series, sweep.sim_series)],
        sweep=sweep,
    )


def figure_5a(
    scale: float = 0.1,
    fractions: Sequence[float] = FIG5A_FRACTIONS,
    disks: int = 4,
    seed: int = 96,
    config: SimConfig | None = None,
    **sweep_kwargs,
) -> FigureSeries:
    """Figure 5(a): nested loops, model vs experiment over memory."""
    return _figure_5(
        "Figure 5a", "nested-loops", fractions, scale, disks, seed, config,
        **sweep_kwargs,
    )


def figure_5b(
    scale: float = 0.1,
    fractions: Sequence[float] = FIG5B_FRACTIONS,
    disks: int = 4,
    seed: int = 96,
    config: SimConfig | None = None,
    **sweep_kwargs,
) -> FigureSeries:
    """Figure 5(b): sort-merge, model vs experiment over memory.

    Discontinuities appear where an additional merging pass becomes
    necessary (NPASS steps up as memory shrinks).
    """
    return _figure_5(
        "Figure 5b", "sort-merge", fractions, scale, disks, seed, config,
        **sweep_kwargs,
    )


def figure_5c(
    scale: float = 0.5,
    fractions: Sequence[float] = FIG5C_FRACTIONS,
    disks: int = 4,
    seed: int = 96,
    config: SimConfig | None = None,
    **sweep_kwargs,
) -> FigureSeries:
    """Figure 5(c): Grace, model vs experiment over memory.

    The K chosen at the sweep's smallest memory is held fixed across the
    sweep (a design constant), producing the low-memory thrashing upturn.

    The default scale is larger than the other panels' because the knee's
    position is set by *absolute* page counts (frames vs. K): scaling the
    relations down 10x scales the frame grant down 10x while the design
    rule keeps K constant, which would push the knee out of the paper's
    x-range.  Scale 0.5 keeps the knee mid-sweep; scale 1.0 reproduces the
    paper's exact geometry.
    """
    return _figure_5(
        "Figure 5c", "grace", fractions, scale, disks, seed, config,
        **sweep_kwargs,
    )


def all_figures(
    scale: float | None = None, disks: int = 4, seed: int = 96
) -> List[FigureSeries]:
    """Regenerate every figure of the paper's evaluation.

    ``scale=None`` uses each panel's own default (0.1 for 5a/5b, 0.5 for
    5c); a number forces that scale everywhere (1.0 = the paper's full
    102,400-object workload).
    """
    config = SimConfig().with_disks(disks)
    machine = calibrated_machine_parameters(config)
    shared = dict(disks=disks, seed=seed, config=config, machine=machine)
    scale_5a = scale if scale is not None else 0.1
    scale_5b = scale if scale is not None else 0.1
    scale_5c = scale if scale is not None else 0.5
    return [
        figure_1a(config),
        figure_1b(config),
        figure_5a(scale=scale_5a, **shared),
        figure_5b(scale=scale_5b, **shared),
        figure_5c(scale=scale_5c, **shared),
    ]
