"""Crossover analysis: where one join algorithm starts beating another.

A query optimizer using the paper's model ultimately asks one question:
*at this memory grant, which algorithm is cheapest?*  This module answers
the derivative question — at which memory grant does the answer change —
by bisecting the model's cost difference over the memory axis.  Because
the cost curves contain genuine discontinuities (sort-merge NPASS steps,
the Grace thrashing knee), the search brackets sign changes over a grid
first and refines each bracket by bisection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.experiment import MODEL_FUNCTIONS, ExperimentError
from repro.model import MachineParameters, MemoryParameters, RelationParameters


@dataclass(frozen=True)
class Crossover:
    """One point where the cheaper algorithm changes."""

    fraction: float
    cheaper_below: str
    cheaper_above: str


def model_cost(
    algorithm: str,
    machine: MachineParameters,
    relations: RelationParameters,
    fraction: float,
    model_kwargs: Optional[Dict] = None,
    g_bytes: int = 4096,
) -> float:
    """Model cost of one algorithm at one memory fraction."""
    if algorithm not in MODEL_FUNCTIONS:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; choices: {sorted(MODEL_FUNCTIONS)}"
        )
    memory = MemoryParameters.from_fractions(relations, fraction, g_bytes=g_bytes)
    return MODEL_FUNCTIONS[algorithm](
        machine, relations, memory, **(model_kwargs or {})
    ).total_ms


def find_crossovers(
    first: str,
    second: str,
    machine: MachineParameters,
    relations: RelationParameters,
    fractions: Sequence[float] = tuple(i / 100 for i in range(2, 71, 2)),
    tolerance: float = 1e-3,
    first_kwargs: Optional[Dict] = None,
    second_kwargs: Optional[Dict] = None,
) -> List[Crossover]:
    """All memory fractions where the cheaper of two algorithms flips.

    The grid brackets each sign change of ``cost(first) - cost(second)``;
    each bracket is refined by bisection to ``tolerance`` on the fraction.
    Discontinuous flips (a step crossing zero without a root) resolve to
    the step's location, which is exactly the answer an optimizer needs.
    """
    if len(fractions) < 2:
        raise ExperimentError("need at least two grid points")

    def difference(fraction: float) -> float:
        return model_cost(
            first, machine, relations, fraction, first_kwargs
        ) - model_cost(second, machine, relations, fraction, second_kwargs)

    grid = sorted(fractions)
    values = [difference(f) for f in grid]
    crossovers: List[Crossover] = []
    for (f_lo, v_lo), (f_hi, v_hi) in zip(
        zip(grid, values), zip(grid[1:], values[1:])
    ):
        if v_lo == 0.0 or (v_lo < 0) == (v_hi < 0):
            continue
        lo, hi, value_lo = f_lo, f_hi, v_lo
        while hi - lo > tolerance:
            mid = (lo + hi) / 2
            value_mid = difference(mid)
            if value_mid == 0.0:
                lo = hi = mid
                break
            if (value_mid < 0) == (value_lo < 0):
                lo, value_lo = mid, value_mid
            else:
                hi = mid
        point = (lo + hi) / 2
        below, above = (first, second) if v_lo < 0 else (second, first)
        crossovers.append(
            Crossover(fraction=point, cheaper_below=below, cheaper_above=above)
        )
    return crossovers


def cheapest_algorithm(
    machine: MachineParameters,
    relations: RelationParameters,
    fraction: float,
    algorithms: Sequence[str] = ("nested-loops", "sort-merge", "grace"),
    g_bytes: int = 4096,
) -> tuple[str, Dict[str, float]]:
    """The optimizer's answer at one point, plus every candidate's cost."""
    costs = {
        name: model_cost(name, machine, relations, fraction, g_bytes=g_bytes)
        for name in algorithms
    }
    return min(costs, key=costs.get), costs
