"""Plain-text rendering of experiment results (tables and ASCII charts).

The benchmarks print the same rows/series the paper's figures report; a
small ASCII chart accompanies each table so the *shape* — the object of
this reproduction — is visible directly in terminal output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def ascii_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
) -> str:
    """A minimal multi-series ASCII line chart (marker per series)."""
    if not x_values or not series:
        return "(no data)"
    markers = "*o+x#@"
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_min, x_max = min(x_values), max(x_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, ys) in zip(markers, series.items()):
        for x, y in zip(x_values, ys):
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    lines.append(f"{y_max:>12,.0f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 12 + " |" + "".join(row))
    lines.append(f"{y_min:>12,.0f} +" + "".join(grid[-1]))
    lines.append(
        " " * 14 + f"{x_min:<10g}" + " " * max(0, width - 20) + f"{x_max:>10g}"
    )
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(markers, series.keys())
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def shape_summary(model: Sequence[float], sim: Sequence[float]) -> str:
    """One-line agreement summary between a model and a measured series."""
    errors: List[float] = []
    for m, s in zip(model, sim):
        if s:
            errors.append(abs(s - m) / s)
    if not errors:
        return "no comparable points"
    return (
        f"model-vs-experiment relative error: "
        f"mean {100 * sum(errors) / len(errors):.1f} %, "
        f"max {100 * max(errors):.1f} % over {len(errors)} points"
    )
