"""Speedup and scaleup experiments (paper §9 future work).

The paper closes by promising "speedup and scaleup experiments"; this
module provides them as first-class experiments:

* :func:`run_speedup` — fixed problem size, growing ``D``.  Perfect
  speedup halves elapsed time per doubling; the serial mapping setup and
  per-partition constants keep it sub-linear.
* :func:`run_scaleup` — problem size grows proportionally with ``D`` while
  the per-process memory grant stays fixed.  Perfect scaleup keeps elapsed
  time constant; the D-fold serial setup makes it degrade.

Both return structured results with the efficiency metrics the parallel
database literature reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.harness.calibrate import calibrated_machine_parameters
from repro.harness.experiment import ExperimentError, run_memory_sweep
from repro.harness.report import format_table
from repro.sim.machine import SimConfig
from repro.workload import WorkloadSpec, generate_workload


@dataclass(frozen=True)
class ScalingPoint:
    """One machine width in a scaling experiment."""

    disks: int
    elapsed_ms: float
    r_objects: int

    def speedup_vs(self, base: "ScalingPoint") -> float:
        return base.elapsed_ms / self.elapsed_ms

    def efficiency_vs(self, base: "ScalingPoint") -> float:
        return self.speedup_vs(base) / (self.disks / base.disks)


@dataclass
class ScalingResult:
    """A full speedup or scaleup series."""

    kind: str          # "speedup" or "scaleup"
    algorithm: str
    points: List[ScalingPoint] = field(default_factory=list)

    @property
    def base(self) -> ScalingPoint:
        return self.points[0]

    def speedups(self) -> List[float]:
        return [p.speedup_vs(self.base) for p in self.points]

    def efficiencies(self) -> List[float]:
        return [p.efficiency_vs(self.base) for p in self.points]

    def render(self) -> str:
        if self.kind == "speedup":
            headers = ["D", "elapsed_ms", "speedup", "efficiency"]
            rows = [
                [p.disks, p.elapsed_ms, s, e]
                for p, s, e in zip(self.points, self.speedups(), self.efficiencies())
            ]
        else:
            headers = ["D", "|R|", "elapsed_ms", "scaleup"]
            rows = [
                [p.disks, p.r_objects, p.elapsed_ms, self.base.elapsed_ms / p.elapsed_ms]
                for p in self.points
            ]
        title = f"== {self.kind}: {self.algorithm} =="
        return "\n".join([title, format_table(headers, rows)])


def run_speedup(
    algorithm: str = "sort-merge",
    disk_counts: Sequence[int] = (1, 2, 4, 8),
    scale: float = 0.1,
    fraction: float = 0.1,
    seed: int = 96,
    accesses_per_band: int = 200,
    **sweep_kwargs,
) -> ScalingResult:
    """Fixed problem size across growing machine widths.

    Extra keyword arguments flow into :func:`run_memory_sweep` — use them
    to pin algorithm parameters (e.g. ``fixed_buckets``) so only the
    machine width varies across the series.
    """
    _check(disk_counts)
    result = ScalingResult(kind="speedup", algorithm=algorithm)
    for disks in disk_counts:
        elapsed, objects = _one_width(
            algorithm, disks, scale, fraction, seed, accesses_per_band,
            **sweep_kwargs,
        )
        result.points.append(
            ScalingPoint(disks=disks, elapsed_ms=elapsed, r_objects=objects)
        )
    return result


def run_scaleup(
    algorithm: str = "sort-merge",
    disk_counts: Sequence[int] = (1, 2, 4, 8),
    base_scale: float = 0.04,
    fraction: float = 0.1,
    seed: int = 96,
    accesses_per_band: int = 200,
    **sweep_kwargs,
) -> ScalingResult:
    """Problem size grows with D; per-process memory stays constant.

    The memory fraction is interpreted against the *base* problem size, so
    the absolute per-process grant is identical at every width.
    """
    _check(disk_counts)
    result = ScalingResult(kind="scaleup", algorithm=algorithm)
    for disks in disk_counts:
        elapsed, objects = _one_width(
            algorithm,
            disks,
            base_scale * disks,
            fraction / disks,
            seed,
            accesses_per_band,
            **sweep_kwargs,
        )
        result.points.append(
            ScalingPoint(disks=disks, elapsed_ms=elapsed, r_objects=objects)
        )
    return result


def _check(disk_counts: Sequence[int]) -> None:
    if not disk_counts:
        raise ExperimentError("a scaling experiment needs at least one width")
    if any(d < 1 for d in disk_counts):
        raise ExperimentError("disk counts must be positive")
    if list(disk_counts) != sorted(disk_counts):
        raise ExperimentError("disk counts must be increasing")


def _one_width(
    algorithm: str,
    disks: int,
    scale: float,
    fraction: float,
    seed: int,
    accesses_per_band: int,
    **sweep_kwargs,
) -> tuple[float, int]:
    config = SimConfig().with_disks(disks)
    machine = calibrated_machine_parameters(
        config, accesses_per_band=accesses_per_band
    )
    workload = generate_workload(
        WorkloadSpec.paper_validation(scale=scale, seed=seed), disks
    )
    sweep = run_memory_sweep(
        algorithm,
        (fraction,),
        machine=machine,
        sim_config=config,
        workload=workload,
        **sweep_kwargs,
    )
    return sweep.points[0].sim_ms, workload.r_objects_total
