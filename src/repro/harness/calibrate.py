"""Calibration: measure the machine-dependent functions off the simulator.

The paper's methodology measures ``dttr``/``dttw`` (Figure 1a) and the
mapping setup costs (Figure 1b) on the target machine, then feeds those
measured functions into the analytical model.  This module performs the
same measurements against the simulated machine:

* :func:`measure_disk_curves` — for each band size, random single-block
  accesses confined to a band of that size, averaged per block (band size 1
  degenerates to a sequential scan);
* :func:`measure_mapping_curves` — create/open/delete mappings of growing
  sizes and fit the paper's linear cost functions;
* :func:`calibrated_machine_parameters` — assemble a
  :class:`~repro.model.parameters.MachineParameters` whose curves were
  measured on (and therefore exactly describe) a given simulator
  configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from repro.model.curves import InterpolatedCurve, LinearCurve
from repro.model.parameters import MachineParameters
from repro.sim.disk import SimDisk
from repro.sim.machine import SimConfig
from repro.sim.mapper import SegmentMapper

DEFAULT_BAND_SIZES = (1, 100, 400, 800, 1600, 3200, 6400, 9600, 12800)
DEFAULT_MAP_SIZES = (100, 400, 1600, 3200, 6400, 9600, 12800)


@dataclass(frozen=True)
class DiskCalibration:
    """Measured disk transfer curves plus the raw samples."""

    dttr: InterpolatedCurve
    dttw: InterpolatedCurve
    read_samples: Tuple[Tuple[float, float], ...]
    write_samples: Tuple[Tuple[float, float], ...]


@dataclass(frozen=True)
class MappingCalibration:
    """Fitted mapping-setup lines plus the raw samples."""

    new_map: LinearCurve
    open_map: LinearCurve
    delete_map: LinearCurve
    samples: Tuple[Tuple[float, float, float, float], ...]  # (size, new, open, delete)


def measure_disk_curves(
    config: SimConfig | None = None,
    band_sizes: Sequence[int] = DEFAULT_BAND_SIZES,
    accesses_per_band: int = 600,
    seed: int = 7,
) -> DiskCalibration:
    """Measure dttr/dttw against band size, the paper's Figure 1a."""
    config = config or SimConfig()
    rng = random.Random(seed)
    read_samples = []
    write_samples = []
    for band in band_sizes:
        read_samples.append((float(band), _measure_reads(config, band, accesses_per_band, rng)))
        write_samples.append((float(band), _measure_writes(config, band, accesses_per_band, rng)))
    return DiskCalibration(
        dttr=InterpolatedCurve.from_samples(read_samples),
        dttw=InterpolatedCurve.from_samples(write_samples),
        read_samples=tuple(read_samples),
        write_samples=tuple(write_samples),
    )


def _fresh_disk(config: SimConfig, band: int) -> SimDisk:
    geometry = config.disk_geometry
    if geometry.size_blocks < band:
        raise ValueError(
            f"band {band} exceeds the simulated disk ({geometry.size_blocks} blocks)"
        )
    return SimDisk(disk_id=0, geometry=geometry)


def _measure_reads(config: SimConfig, band: int, accesses: int, rng: random.Random) -> float:
    disk = _fresh_disk(config, band)
    total = 0.0
    if band <= 1:
        # Band of one block == sequential access.
        for i in range(accesses):
            total += disk.read_block(i % disk.geometry.size_blocks)
    else:
        for _ in range(accesses):
            total += disk.read_block(rng.randrange(band))
    return total / accesses


def _measure_writes(config: SimConfig, band: int, accesses: int, rng: random.Random) -> float:
    disk = _fresh_disk(config, band)
    total = 0.0
    if band <= 1:
        for i in range(accesses):
            total += disk.write_block(i % disk.geometry.size_blocks)
    else:
        for _ in range(accesses):
            total += disk.write_block(rng.randrange(band))
    total += disk.flush()
    return total / accesses


def measure_mapping_curves(
    config: SimConfig | None = None,
    map_sizes_blocks: Sequence[int] = DEFAULT_MAP_SIZES,
) -> MappingCalibration:
    """Measure newMap/openMap/deleteMap against size, Figure 1b."""
    config = config or SimConfig()
    samples = []
    for size in map_sizes_blocks:
        geometry = config.disk_geometry
        if geometry.size_blocks < size:
            geometry = replace(geometry, size_blocks=size)
        disk = SimDisk(disk_id=0, geometry=geometry)
        mapper = SegmentMapper(costs=config.mapping_costs, page_size=config.page_size)
        objects = size * max(1, config.page_size // 128)

        before = mapper.setup_ms
        segment = mapper.new_map("probe", disk, objects, 128)
        new_ms = mapper.setup_ms - before

        before = mapper.setup_ms
        mapper.open_map(segment)
        open_ms = mapper.setup_ms - before

        before = mapper.setup_ms
        mapper.delete_map(segment)
        delete_ms = mapper.setup_ms - before

        samples.append((float(size), new_ms, open_ms, delete_ms))

    return MappingCalibration(
        new_map=LinearCurve.fit([(s, n) for s, n, _, _ in samples]),
        open_map=LinearCurve.fit([(s, o) for s, _, o, _ in samples]),
        delete_map=LinearCurve.fit([(s, d) for s, _, _, d in samples]),
        samples=tuple(samples),
    )


def calibrated_machine_parameters(
    config: SimConfig | None = None,
    band_sizes: Sequence[int] = DEFAULT_BAND_SIZES,
    accesses_per_band: int = 600,
    seed: int = 7,
) -> MachineParameters:
    """MachineParameters whose measured curves describe this simulator.

    This is the paper's measurement-then-model pipeline closed end to end:
    the returned parameters contain dttr/dttw and the mapping lines as
    *measured* on the simulated hardware, plus the CPU-side constants the
    simulator charges directly.
    """
    config = config or SimConfig()
    disk_cal = measure_disk_curves(config, band_sizes, accesses_per_band, seed)
    map_cal = measure_mapping_curves(config)
    return MachineParameters(
        page_size=config.page_size,
        disks=config.disks,
        context_switch_ms=config.context_switch_ms,
        mt_pp_ms_per_byte=config.mt_pp_ms_per_byte,
        mt_ps_ms_per_byte=config.mt_ps_ms_per_byte,
        mt_sp_ms_per_byte=config.mt_sp_ms_per_byte,
        mt_ss_ms_per_byte=config.mt_ss_ms_per_byte,
        map_ms=config.map_ms,
        hash_ms=config.hash_ms,
        compare_ms=config.compare_ms,
        swap_ms=config.swap_ms,
        transfer_ms=config.transfer_ms,
        heap_pointer_bytes=config.heap_pointer_bytes,
        dttr=disk_cal.dttr,
        dttw=disk_cal.dttw,
        new_map=map_cal.new_map,
        open_map=map_cal.open_map,
        delete_map=map_cal.delete_map,
    )
