"""Experiment harness: calibration, sweeps, figure regeneration, reports."""

from repro.harness.calibrate import (
    DEFAULT_BAND_SIZES,
    DEFAULT_MAP_SIZES,
    DiskCalibration,
    MappingCalibration,
    calibrated_machine_parameters,
    measure_disk_curves,
    measure_mapping_curves,
)
from repro.harness.experiment import (
    MODEL_FUNCTIONS,
    ExperimentError,
    SweepPoint,
    SweepResult,
    run_memory_sweep,
)
from repro.harness.figures import (
    FIG5A_FRACTIONS,
    FIG5B_FRACTIONS,
    FIG5C_FRACTIONS,
    FigureSeries,
    all_figures,
    figure_1a,
    figure_1b,
    figure_5a,
    figure_5b,
    figure_5c,
)
from repro.harness.crossover import (
    Crossover,
    cheapest_algorithm,
    find_crossovers,
    model_cost,
)
from repro.harness.report import ascii_chart, format_table, shape_summary
from repro.harness.scaling import (
    ScalingPoint,
    ScalingResult,
    run_scaleup,
    run_speedup,
)
from repro.harness.reportgen import ReportOptions, generate_report
from repro.harness.validation import (
    PassComparison,
    ValidationReport,
    compare_passes,
)

__all__ = [
    "DEFAULT_BAND_SIZES",
    "DEFAULT_MAP_SIZES",
    "Crossover",
    "DiskCalibration",
    "ExperimentError",
    "FIG5A_FRACTIONS",
    "FIG5B_FRACTIONS",
    "FIG5C_FRACTIONS",
    "FigureSeries",
    "MODEL_FUNCTIONS",
    "MappingCalibration",
    "PassComparison",
    "ReportOptions",
    "ScalingPoint",
    "ScalingResult",
    "SweepPoint",
    "SweepResult",
    "ValidationReport",
    "all_figures",
    "run_scaleup",
    "run_speedup",
    "ascii_chart",
    "calibrated_machine_parameters",
    "cheapest_algorithm",
    "compare_passes",
    "figure_1a",
    "figure_1b",
    "figure_5a",
    "figure_5b",
    "figure_5c",
    "find_crossovers",
    "generate_report",
    "format_table",
    "model_cost",
    "measure_disk_curves",
    "measure_mapping_curves",
    "run_memory_sweep",
    "shape_summary",
]
