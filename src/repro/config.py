"""The repo's runtime knobs, registered in one place.

Every ``REPRO_*`` environment variable the code base consults is declared
here as a :class:`Knob`, so a new knob gets a name, a documented default
and a validated value set exactly once — instead of one ad-hoc
``os.environ.get`` per module.  The accessors below are the *environment
layer* of a fixed precedence order that every knob follows:

1. **CLI flag / explicit argument** — a caller passing a value wins
   outright (``repro join --kernels scalar``, ``run_real_join(
   partitioner="radix")``);
2. **marker file** — run-scoped state installed into the store root by
   the driver (``kernels.mode``, ``partitioner.json``), which reaches
   pool workers that forked before the run began and can change between
   degradation rounds — an env var can do neither;
3. **environment** — the ``REPRO_*`` variable, read through this module;
4. **default** — the knob's declared default.

Modules therefore call this layer only *after* their flag and marker
checks fail (see :func:`repro.parallel.engine.task.resolve_kernel_mode`
for the canonical chain).

This module is import-light on purpose — stdlib only — so the storage
layer, the engine, and the benches can all depend on it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Knob:
    """One registered environment knob."""

    name: str
    env: str
    #: Legal values for choice knobs; ``None`` for free-form/flag knobs.
    choices: Optional[Tuple[str, ...]]
    default: Optional[str]
    description: str


#: Every REPRO_* knob the code base consults, by short name.
KNOBS: Dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob(
            name="kernels",
            env="REPRO_KERNELS",
            choices=("scalar", "vector"),
            default=None,
            description=(
                "stage-kernel implementation fallback for direct kernel "
                "calls and un-marked stores; the run-scoped kernels.mode "
                "marker and the --kernels flag take precedence"
            ),
        ),
        Knob(
            name="partitioner",
            env="REPRO_PARTITIONER",
            choices=("hash", "radix", "learned"),
            default=None,
            description=(
                "partitioning strategy override for the bucketed plans; "
                "an explicit partitioner argument (--partitioner) wins, "
                "and unset leaves each plan's declared strategy"
            ),
        ),
        Knob(
            name="integrity",
            env="REPRO_INTEGRITY",
            choices=None,
            default="on",
            description=(
                "segment payload checksums: 'off'/'0'/'none' disables "
                "writing and verifying (the bench baseline knob; env-"
                "based so forked pool workers inherit it); "
                "configure_integrity() is the in-process override"
            ),
        ),
        Knob(
            name="bench_full",
            env="REPRO_BENCH_FULL",
            choices=None,
            default=None,
            description=(
                "set to 1 to run the full-paper-scale benchmark variants "
                "(102,400 objects) instead of the CI-scaled ones"
            ),
        ),
        Knob(
            name="bench_scale",
            env="REPRO_BENCH_SCALE",
            choices=None,
            default=None,
            description="workload scale factor for the benchmark suites",
        ),
        Knob(
            name="bench_skew_repeats",
            env="REPRO_BENCH_SKEW_REPEATS",
            choices=None,
            default=None,
            description="repeat count for the skew-matrix bench timings",
        ),
        Knob(
            name="smoke_out",
            env="REPRO_SMOKE_OUT",
            choices=None,
            default=None,
            description="write the smoke benches' JSON report to this path",
        ),
        Knob(
            name="regen_golden",
            env="REPRO_REGEN_GOLDEN",
            choices=None,
            default=None,
            description="set to 1 to regenerate golden test fixtures",
        ),
    )
}

#: Values that read as "disabled" for on/off knobs like integrity.
_OFF_VALUES = ("off", "0", "none", "false", "no")


def knob(name: str) -> Knob:
    """The registered knob, by short name (raises on typos)."""
    return KNOBS[name]


def env_value(name: str) -> Optional[str]:
    """The knob's raw environment value, stripped; None when unset/empty."""
    raw = os.environ.get(knob(name).env, "").strip()
    return raw or None


def env_choice(name: str) -> Optional[str]:
    """The knob's environment value validated against its choices.

    Returns None when unset — or when the value is not a legal choice,
    so a stray environment variable degrades to the default instead of
    breaking every run in the shell that exported it.
    """
    entry = knob(name)
    raw = env_value(name)
    if raw is None:
        return None
    value = raw.lower()
    if entry.choices is not None and value not in entry.choices:
        return None
    return value


def env_flag(name: str) -> bool:
    """True when the knob is set to a truthy value (``1``, ``on``, ...)."""
    raw = env_value(name)
    return raw is not None and raw.lower() not in _OFF_VALUES


def env_enabled(name: str, default: bool = True) -> bool:
    """On/off knobs that *default on*: False only for explicit off values."""
    raw = env_value(name)
    if raw is None:
        return default
    return raw.lower() not in _OFF_VALUES


def env_int(name: str, default: int) -> int:
    """The knob as an int, falling back to ``default`` on unset/garbage."""
    raw = env_value(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def env_float(name: str, default: float) -> float:
    """The knob as a float, falling back to ``default`` on unset/garbage."""
    raw = env_value(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return default
