"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures``   — regenerate the paper's evaluation figures;
* ``join``      — run one join on the simulator (or the real mmap backend)
  and verify its output;
* ``model``     — print an analytical cost breakdown without simulating;
* ``sweep``       — a model-vs-experiment memory sweep for one algorithm;
* ``calibrate``   — measure and print the machine-dependent functions;
* ``sensitivity`` — rank machine parameters by cost elasticity;
* ``crossover``   — find where the cheaper of two algorithms flips;
* ``report``      — run the full evaluation and emit a markdown report;
* ``stats``       — validate or model-compare an exported stats document;
* ``serve``       — run the always-on multi-tenant join service daemon;
* ``client``      — talk to a running daemon (ping/join/stats/shutdown).

``join --stats-out FILE`` writes the run's observability document (the
versioned JSON schema of ``docs/metrics_schema.md``) for either backend.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import sys
import tempfile
from typing import Optional, Sequence

from repro.harness.calibrate import (
    calibrated_machine_parameters,
    measure_disk_curves,
    measure_mapping_curves,
)
from repro.harness.experiment import MODEL_FUNCTIONS, run_memory_sweep
from repro.harness.figures import all_figures, figure_1a, figure_1b, figure_5a, figure_5b, figure_5c
from repro.harness.report import format_table, shape_summary
from repro.joins import JoinEnvironment, make_algorithm, verify_pairs
from repro.model import MemoryParameters
from repro.parallel.engine.stages import PARTITIONER_NAMES
from repro.parallel.engine.stages import algorithms as real_algorithms
from repro.workload import (
    DISTRIBUTIONS,
    DistributionError,
    WorkloadSpec,
    generate_workload,
    validate_distribution_args,
)

FIGURE_BUILDERS = {
    "1a": lambda args: figure_1a(),
    "1b": lambda args: figure_1b(),
    "5a": lambda args: figure_5a(scale=args.scale or 0.1),
    "5b": lambda args: figure_5b(scale=args.scale or 0.1),
    "5c": lambda args: figure_5c(scale=args.scale or 0.5),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel pointer-based join algorithms in memory-mapped "
            "environments (ICDE 1996 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "--figure",
        choices=sorted(FIGURE_BUILDERS),
        help="one figure only (default: all)",
    )
    figures.add_argument(
        "--scale", type=float, default=None,
        help="workload scale (1.0 = the paper's 102,400 objects)",
    )

    join = sub.add_parser("join", help="run one verified join")
    _common_workload_args(join)
    # The union of both backends' registries: the simulator's model
    # functions plus every registered real-backend pass plan (the
    # partitioner variants exist only there); _cmd_join rejects the
    # combinations a backend does not implement.
    join.add_argument(
        "algorithm",
        choices=sorted(set(MODEL_FUNCTIONS) | set(real_algorithms())),
    )
    join.add_argument(
        "--fraction", type=float, default=0.1,
        help="memory grant as a fraction of |R| bytes",
    )
    join.add_argument(
        "--real", action="store_true",
        help="run on the real mmap backend instead of the simulator",
    )
    join.add_argument(
        "--stats-out", default=None, metavar="FILE",
        help="write the run's stats document (docs/metrics_schema.md) here",
    )
    join.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per worker task on the real backend",
    )
    join.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="declare a real-backend worker task dead after this long "
             "and retry it (required to detect crashed pool workers)",
    )
    join.add_argument(
        "--fault-plan", default=None, metavar="JSON",
        help="deterministic fault plan for the real backend: a JSON file "
             "path or an inline JSON object (testing/chaos runs)",
    )
    join.add_argument(
        "--mem-budget", default=None, metavar="BYTES",
        help="real-backend memory budget across all workers (suffixes "
             "K/M/G); arms the resource governor",
    )
    join.add_argument(
        "--disk-budget", default=None, metavar="BYTES",
        help="real-backend disk budget for the whole store (suffixes K/M/G)",
    )
    join.add_argument(
        "--max-concurrent", type=int, default=None, metavar="N",
        help="admit at most N concurrent joins through a process-local "
             "resource governor (meaningful with --on-pressure=queue/fail)",
    )
    join.add_argument(
        "--on-pressure", choices=("degrade", "queue", "fail"),
        default="degrade",
        help="what resource pressure does: degrade the plan down the "
             "ladder (default), queue for admission without re-planning, "
             "or fail with a classified error",
    )
    join.add_argument(
        "--store", default=None, metavar="DIR",
        help="real-backend store directory (kept after the run) instead "
             "of a throwaway temporary directory",
    )
    join.add_argument(
        "--kernels", choices=("scalar", "vector"), default=None,
        help="stage-kernel implementation: numpy-vectorized inner loops "
             "(vector, the default when numpy is importable) or the "
             "per-record scalar path (debugging/equivalence baselines); "
             "also settable via REPRO_KERNELS",
    )
    join.add_argument(
        "--partitioner", choices=PARTITIONER_NAMES, default=None,
        help="real-backend partitioning strategy for the bucketed plans: "
             "the paper's order-preserving hash, the cache-budgeted "
             "radix scatter, or the learned equal-depth CDF model; "
             "default is the plan's declared strategy (grace-radix/"
             "grace-learned differ from grace only there); also "
             "settable via REPRO_PARTITIONER",
    )
    join.add_argument(
        "--resume", action="store_true",
        help="real backend: resume from the store's pass-level checkpoint "
             "manifest (requires --store); completed, checksum-verified "
             "passes are replayed instead of recomputed, and the output "
             "is bit-identical to an uninterrupted run",
    )
    join.add_argument(
        "--rebalance", choices=("off", "auto", "on"), default="auto",
        help="real-backend per-partition size rebalancing: shard "
             "oversized partitions into parallel sub-tasks when skewed "
             "(auto, the default), always (on), or never (off); join "
             "output is bit-identical in every mode",
    )

    model = sub.add_parser("model", help="print an analytical prediction")
    _common_workload_args(model)
    model.add_argument("algorithm", choices=sorted(MODEL_FUNCTIONS))
    model.add_argument("--fraction", type=float, default=0.1)

    sweep = sub.add_parser("sweep", help="model-vs-experiment memory sweep")
    _common_workload_args(sweep)
    sweep.add_argument("algorithm", choices=sorted(MODEL_FUNCTIONS))
    sweep.add_argument(
        "--fractions", default="0.05,0.1,0.2",
        help="comma-separated memory fractions",
    )

    calibrate = sub.add_parser(
        "calibrate", help="measure the machine-dependent functions"
    )
    calibrate.add_argument(
        "--accesses", type=int, default=600,
        help="disk accesses per band during measurement",
    )

    sensitivity = sub.add_parser(
        "sensitivity", help="rank machine parameters by cost elasticity"
    )
    _common_workload_args(sensitivity)
    sensitivity.add_argument("algorithm", choices=sorted(MODEL_FUNCTIONS))
    sensitivity.add_argument("--fraction", type=float, default=0.1)

    crossover = sub.add_parser(
        "crossover", help="find where the cheaper of two algorithms flips"
    )
    crossover.add_argument("first", choices=sorted(MODEL_FUNCTIONS))
    crossover.add_argument("second", choices=sorted(MODEL_FUNCTIONS))

    workload = sub.add_parser(
        "workload", help="save or inspect a reproducible workload file"
    )
    _common_workload_args(workload)
    workload.add_argument("action", choices=("save", "info"))
    workload.add_argument("path", help="the .npz workload file")

    report = sub.add_parser(
        "report", help="run the full evaluation and emit a markdown report"
    )
    report.add_argument("--scale", type=float, default=None,
                        help="force one scale for every panel")
    report.add_argument("--out", default=None,
                        help="write to a file instead of stdout")
    report.add_argument("--no-comparison", action="store_true",
                        help="skip the algorithm-comparison section")

    scrub = sub.add_parser(
        "scrub", help="payload-checksum verify every segment in a store"
    )
    scrub.add_argument("store", help="store directory (disk*/ subdirs)")
    scrub.add_argument(
        "--disks", type=int, default=None,
        help="disk directories to scan (default: count the disk* subdirs)",
    )
    scrub.add_argument(
        "--remove", action="store_true",
        help="delete segments that fail verification (default: report only)",
    )

    stats = sub.add_parser(
        "stats", help="validate or model-compare an exported stats document"
    )
    stats.add_argument("action", choices=("validate", "compare"))
    stats.add_argument("path", help="a stats JSON document")
    stats.add_argument(
        "--fraction", type=float, default=0.1,
        help="memory fraction for the model side of `compare`",
    )

    serve = sub.add_parser(
        "serve", help="run the always-on multi-tenant join service daemon"
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket path to listen on",
    )
    serve.add_argument(
        "--root", required=True, metavar="DIR",
        help="service root directory (warm stores live under it)",
    )
    serve.add_argument("--disks", type=int, default=4)
    serve.add_argument(
        "--max-concurrent", type=int, default=2,
        help="joins executing at once; more wait in the admission queue",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=8,
        help="admission queue depth; arrivals beyond it are rejected",
    )
    serve.add_argument(
        "--pool-workers", type=int, default=None,
        help="worker pool size (default: --disks)",
    )
    serve.add_argument(
        "--inline", action="store_true",
        help="run kernels inline in request threads — no worker pool "
             "(debugging; serving wants the pool)",
    )
    serve.add_argument(
        "--tenants", default=None, metavar="FILE",
        help="tenant policy JSON (docs/serving.md); default admits "
             "every tenant under one permissive policy",
    )
    serve.add_argument(
        "--stats-out", default=None, metavar="FILE",
        help="write the final service stats document here on shutdown",
    )

    client = sub.add_parser(
        "client", help="talk to a running join service daemon"
    )
    client.add_argument(
        "--socket", required=True, metavar="PATH",
        help="unix socket the daemon listens on",
    )
    client.add_argument("action", choices=("ping", "join", "stats", "shutdown"))
    client.add_argument(
        "algorithm", nargs="?", default=None,
        help="algorithm for `join` (the daemon validates the name)",
    )
    client.add_argument("--tenant", default=None)
    client.add_argument("--scale", type=float, default=None)
    client.add_argument("--seed", type=int, default=None)
    client.add_argument("--disks", type=int, default=None)
    client.add_argument("--priority", type=int, default=None)
    client.add_argument(
        "--kernels", choices=("scalar", "vector"), default=None
    )
    client.add_argument(
        "--stream-pairs", action="store_true",
        help="stream the joined pairs back (counted, not printed)",
    )
    client.add_argument(
        "--stats-out", default=None, metavar="FILE",
        help="join: write the run's stats document; stats: write the "
             "service document",
    )
    client.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="socket timeout for the whole conversation",
    )

    return parser


def _common_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--disks", type=int, default=4)
    parser.add_argument("--seed", type=int, default=96)
    parser.add_argument(
        "--distribution", choices=sorted(DISTRIBUTIONS), default="uniform",
        help="pointer distribution of the generated workload",
    )
    parser.add_argument(
        "--dist-arg", action="append", default=[], metavar="KEY=VALUE",
        help="distribution parameter (repeatable), e.g. --dist-arg theta=1 "
             "for zipf; unknown keys are rejected at parse time",
    )


def _distribution_args(args) -> dict:
    """Parse and validate ``--dist-arg`` pairs against ``--distribution``.

    Raises :class:`DistributionError` on a malformed pair or a key the
    chosen distribution does not accept — callers surface it *before*
    any store or workload is materialized.
    """
    parsed: dict = {}
    for item in getattr(args, "dist_arg", None) or []:
        key, sep, raw = item.partition("=")
        if not sep or not key or not raw:
            raise DistributionError(
                f"invalid --dist-arg {item!r} (expected KEY=VALUE)"
            )
        try:
            value: float = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                raise DistributionError(
                    f"invalid --dist-arg value {raw!r} for {key!r} "
                    "(expected a number)"
                )
        parsed[key] = value
    validate_distribution_args(args.distribution, parsed)
    return parsed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if hasattr(args, "distribution"):
        # Fail malformed/unknown distribution arguments at parse time,
        # before any workload or store is materialized.
        try:
            args.distribution_args = _distribution_args(args)
        except DistributionError as error:
            parser.error(str(error))
    handler = {
        "figures": _cmd_figures,
        "join": _cmd_join,
        "model": _cmd_model,
        "sweep": _cmd_sweep,
        "calibrate": _cmd_calibrate,
        "sensitivity": _cmd_sensitivity,
        "crossover": _cmd_crossover,
        "report": _cmd_report,
        "workload": _cmd_workload,
        "scrub": _cmd_scrub,
        "stats": _cmd_stats,
        "serve": _cmd_serve,
        "client": _cmd_client,
    }[args.command]
    return handler(args)


def _workload(args):
    spec = WorkloadSpec.paper_validation(scale=args.scale, seed=args.seed)
    distribution = getattr(args, "distribution", "uniform")
    distribution_args = getattr(args, "distribution_args", {})
    if distribution != "uniform" or distribution_args:
        spec = dataclasses.replace(
            spec,
            distribution=distribution,
            distribution_args=distribution_args,
        )
    return generate_workload(spec, args.disks)


_SIZE_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def parse_size(text: str) -> int:
    """``"256K"`` → 262144.  Bare numbers are bytes; suffixes K/M/G."""
    raw = text.strip().upper()
    multiplier = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw) * multiplier
    except ValueError:
        raise ValueError(f"invalid size {text!r} (expected e.g. 4096, 256K, 2M)")
    if value <= 0:
        raise ValueError(f"size must be positive: {text!r}")
    return value


def _cmd_figures(args) -> int:
    if args.figure:
        print(FIGURE_BUILDERS[args.figure](args).render())
        return 0
    for figure in all_figures(scale=args.scale):
        print(figure.render())
        print()
    return 0


def _cmd_join(args) -> int:
    if args.resume and not args.real:
        print("--resume only applies to the real backend (--real)",
              file=sys.stderr)
        return 2
    workload = _workload(args)
    if args.real:
        from repro.parallel import (
            REAL_ALGORITHMS,
            FaultPlan,
            FaultPlanError,
            run_real_join,
        )

        if args.algorithm not in REAL_ALGORITHMS:
            print(
                "the real backend implements "
                + ", ".join(sorted(REAL_ALGORITHMS)),
                file=sys.stderr,
            )
            return 2
        from repro.governor import ResourceExhausted, ResourceGovernor

        fault_plan = None
        if args.fault_plan:
            try:
                fault_plan = FaultPlan.parse(args.fault_plan)
            except (FaultPlanError, OSError) as error:
                print(f"invalid --fault-plan: {error}", file=sys.stderr)
                return 2
        try:
            mem_budget = parse_size(args.mem_budget) if args.mem_budget else None
            disk_budget = (
                parse_size(args.disk_budget) if args.disk_budget else None
            )
        except ValueError as error:
            print(f"invalid budget: {error}", file=sys.stderr)
            return 2
        governor = (
            ResourceGovernor(max_concurrent=args.max_concurrent)
            if args.max_concurrent is not None else None
        )
        if args.resume and not args.store:
            print(
                "--resume needs --store: the checkpoint manifest lives in "
                "the store a previous run kept",
                file=sys.stderr,
            )
            return 2
        with contextlib.ExitStack() as stack:
            root = args.store or stack.enter_context(
                tempfile.TemporaryDirectory()
            )
            try:
                result = run_real_join(
                    args.algorithm, workload, root,
                    keep_store=bool(args.store),
                    resume=args.resume,
                    retries=args.retries,
                    task_timeout=args.task_timeout,
                    fault_plan=fault_plan,
                    mem_budget=mem_budget,
                    disk_budget=disk_budget,
                    on_pressure=args.on_pressure,
                    governor=governor,
                    kernels=args.kernels,
                    rebalance=args.rebalance,
                    partitioner=args.partitioner,
                )
            except ResourceExhausted as error:
                # Classified exhaustion is an orderly refusal, not a crash:
                # its own exit code, and never a raw OSError/MemoryError.
                print(f"resource exhausted: {error.describe()}", file=sys.stderr)
                return 3
        pairs = verify_pairs(workload, result.pairs)
        print(f"{args.algorithm}: {pairs:,} pairs verified, "
              f"{result.wall_ms:,.0f} ms wall clock (real mmap backend, "
              f"{result.kernel_mode} kernels)")
        if result.retries_total or result.timeouts_total or result.inline_fallbacks:
            print(
                f"recovery: {result.retries_total} retries, "
                f"{result.timeouts_total} timeouts, "
                f"{result.inline_fallbacks} inline fallbacks"
            )
        resume_doc = result.resume or {}
        if resume_doc.get("requested"):
            if resume_doc.get("resumed"):
                print(
                    f"resume: skipped {resume_doc.get('passes_skipped', 0)} "
                    f"checkpointed pass(es) from a manifest "
                    f"{resume_doc.get('manifest_age_s', 0.0):,.1f} s old"
                )
            else:
                print(
                    "resume: started fresh "
                    f"({resume_doc.get('reason') or 'no usable checkpoint'})"
                )
        integrity_doc = result.integrity or {}
        if integrity_doc.get("scrub_failures"):
            print(
                f"integrity: {integrity_doc['scrub_failures']} segment(s) "
                "failed their payload scrub and were recomputed"
            )
        if result.governor is not None:
            gov = result.governor
            observed = gov["observed"]
            print(
                f"governor: admission={gov['admission']}, "
                f"degradations={gov['degradations_total']} "
                f"({gov['admission_degradations']} at admission, "
                f"{gov['runtime_degradations']} at runtime), "
                f"predicted hwm {gov['predicted']['mem_high_water_bytes']:,} B, "
                f"observed hwm "
                f"{int(observed['worker_mem_high_water_bytes'] or 0):,} B, "
                f"disk peak {observed['disk_peak_bytes']:,} B"
            )
        if args.stats_out:
            from repro.obs import write_stats_document

            write_stats_document(args.stats_out, result.stats_document(workload))
            print(f"stats document written to {args.stats_out}")
        return 0

    if args.algorithm not in MODEL_FUNCTIONS:
        print(
            f"the simulator implements {', '.join(sorted(MODEL_FUNCTIONS))}; "
            f"run {args.algorithm} with --real",
            file=sys.stderr,
        )
        return 2
    memory = MemoryParameters.from_fractions(
        workload.relation_parameters(), args.fraction
    )
    env = JoinEnvironment(workload, memory)
    result = make_algorithm(args.algorithm).run(env)
    pairs = verify_pairs(workload, result.pairs)
    print(f"{args.algorithm}: {pairs:,} pairs verified, "
          f"{result.elapsed_ms:,.0f} ms simulated")
    print(result.stats.summary())
    if args.stats_out:
        from repro.obs import build_sim_stats_document, write_stats_document

        write_stats_document(
            args.stats_out, build_sim_stats_document(result, workload)
        )
        print(f"stats document written to {args.stats_out}")
    return 0


def _cmd_model(args) -> int:
    workload = _workload(args)
    relations = workload.relation_parameters()
    memory = MemoryParameters.from_fractions(relations, args.fraction)
    machine = calibrated_machine_parameters()
    report = MODEL_FUNCTIONS[args.algorithm](machine, relations, memory)
    print(report.describe())
    return 0


def _cmd_sweep(args) -> int:
    fractions = tuple(float(f) for f in args.fractions.split(","))
    sweep = run_memory_sweep(
        args.algorithm, fractions, scale=args.scale, disks=args.disks,
        seed=args.seed,
    )
    rows = [
        [p.fraction, p.model_ms, p.sim_ms, f"{100 * p.relative_error:+.1f}%"]
        for p in sweep.points
    ]
    print(format_table(
        ["MRproc/|R|", "model_ms", "experiment_ms", "error"], rows
    ))
    print(shape_summary(sweep.model_series, sweep.sim_series))
    return 0


def _cmd_calibrate(args) -> int:
    disk_cal = measure_disk_curves(accesses_per_band=args.accesses)
    print("dttr/dttw (ms per block) vs band size:")
    rows = [
        [band, read, write]
        for (band, read), (_, write) in zip(
            disk_cal.read_samples, disk_cal.write_samples
        )
    ]
    print(format_table(["band_blocks", "dttr_ms", "dttw_ms"], rows))
    map_cal = measure_mapping_curves()
    print("\nmapping setup (ms) vs size:")
    print(format_table(
        ["blocks", "newMap_ms", "openMap_ms", "deleteMap_ms"],
        [list(s) for s in map_cal.samples],
    ))
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.model.sensitivity import (
        parameter_sensitivity,
        render_sensitivities,
    )

    workload = _workload(args)
    relations = workload.relation_parameters()
    memory = MemoryParameters.from_fractions(relations, args.fraction)
    machine = calibrated_machine_parameters()
    sensitivities = parameter_sensitivity(
        MODEL_FUNCTIONS[args.algorithm], machine, relations, memory
    )
    print(render_sensitivities(args.algorithm, sensitivities))
    return 0


def _cmd_crossover(args) -> int:
    from repro.harness.crossover import find_crossovers
    from repro.model import RelationParameters

    machine = calibrated_machine_parameters()
    relations = RelationParameters()  # the paper-scale workload
    crossovers = find_crossovers(args.first, args.second, machine, relations)
    if not crossovers:
        print(
            f"no crossover between {args.first} and {args.second} on the "
            "scanned memory range (0.02 - 0.70)"
        )
        return 0
    for crossover in crossovers:
        print(
            f"below MRproc/|R| = {crossover.fraction:.3f}: "
            f"{crossover.cheaper_below}; above: {crossover.cheaper_above}"
        )
    return 0


def _cmd_workload(args) -> int:
    from repro.workload import WorkloadSpec, load_workload, save_workload

    if args.action == "save":
        spec = WorkloadSpec(
            r_objects=max(64, int(102_400 * args.scale)),
            s_objects=max(64, int(102_400 * args.scale)),
            distribution=args.distribution,
            distribution_args=args.distribution_args,
            seed=args.seed,
        )
        workload = generate_workload(spec, args.disks)
        save_workload(workload, args.path)
        print(
            f"saved {workload.r_objects_total:,} R-objects / "
            f"{len(workload.s_objects):,} S-objects "
            f"({args.distribution}, {args.disks} partitions) to {args.path}"
        )
        return 0

    workload = load_workload(args.path)
    relations = workload.relation_parameters()
    print(
        f"{args.path}: |R| = {relations.r_objects:,}, "
        f"|S| = {relations.s_objects:,}, "
        f"{workload.disks} partitions, "
        f"distribution = {workload.spec.distribution}, "
        f"seed = {workload.spec.seed}, "
        f"measured skew = {relations.skew:.3f}"
    )
    return 0


def _cmd_stats(args) -> int:
    from repro.obs import (
        StatsSchemaError,
        compare_with_model,
        load_stats_document,
        schema_problems,
    )

    try:
        document = load_stats_document(args.path)
    except (OSError, ValueError) as error:
        print(f"{args.path}: cannot read stats document: {error}", file=sys.stderr)
        return 2

    problems = schema_problems(document)
    if problems:
        for problem in problems:
            print(f"{args.path}: {problem}", file=sys.stderr)
        return 1
    if args.action == "validate":
        meta = document["meta"]
        print(
            f"{args.path}: valid stats document "
            f"(schema v{document['schema_version']}, "
            f"{meta['algorithm']} on {meta['backend']}, "
            f"{len(document['per_pass'])} passes)"
        )
        return 0

    # compare: rebuild the model prediction from the document's own meta.
    from repro.model import RelationParameters

    meta = document["meta"]
    relations = RelationParameters(
        r_objects=meta.get("r_objects") or 102_400,
        s_objects=meta.get("s_objects") or 102_400,
    )
    memory = MemoryParameters.from_fractions(relations, args.fraction)
    machine = calibrated_machine_parameters()
    try:
        report = MODEL_FUNCTIONS[meta["algorithm"]](machine, relations, memory)
        comparison = compare_with_model(document, report)
    except (KeyError, StatsSchemaError) as error:
        print(f"{args.path}: cannot compare: {error}", file=sys.stderr)
        return 1
    print(comparison.describe())
    return 0


def _cmd_scrub(args) -> int:
    from pathlib import Path

    from repro.storage.store import Store

    root = Path(args.store)
    if not root.is_dir():
        print(f"not a store directory: {root}", file=sys.stderr)
        return 2
    disks = args.disks
    if disks is None:
        disks = sum(
            1 for p in root.glob("disk*")
            if p.is_dir() and p.name[4:].isdigit()
        )
    if disks < 1:
        print(f"no disk* directories under {root}", file=sys.stderr)
        return 2
    report = Store(root, disks).scrub(remove=args.remove)
    print(
        f"scrubbed {root} ({disks} disks): {report['scanned']} segments, "
        f"{report['verified']} verified, {report['legacy']} legacy "
        f"(no checksum footer), {len(report['failed'])} failed"
    )
    for failure in report["failed"]:
        print(f"  CORRUPT {failure['path']}: {failure['problem']}")
    for removed in report["removed"]:
        print(f"  removed {removed}")
    return 1 if report["failed"] else 0


def _cmd_serve(args) -> int:
    from repro.service import (
        JoinService,
        ServiceConfig,
        ServiceError,
        TenantConfig,
        TenantError,
    )

    try:
        tenants = (
            TenantConfig.load(args.tenants)
            if args.tenants
            else TenantConfig.open_default()
        )
    except TenantError as error:
        print(f"invalid --tenants: {error}", file=sys.stderr)
        return 2
    config = ServiceConfig(
        root=args.root,
        socket_path=args.socket,
        disks=args.disks,
        max_concurrent=args.max_concurrent,
        queue_limit=args.queue_limit,
        pool_workers=args.pool_workers,
        use_processes=not args.inline,
    )
    service = JoinService(config, tenants)
    try:
        service.start()
    except ServiceError as error:
        print(f"cannot start join service: {error}", file=sys.stderr)
        return 2
    # SIGTERM/SIGINT begin a graceful drain: stop accepting, let every
    # in-flight request deliver its terminal frame, then exit cleanly
    # (serve_forever unblocks and close() joins the request threads).
    def _drain(signum, frame):
        print(
            f"signal {signum}: draining in-flight requests, then exiting",
            flush=True,
        )
        service.request_shutdown()

    import signal as _signal

    _signal.signal(_signal.SIGTERM, _drain)
    _signal.signal(_signal.SIGINT, _drain)
    sweep = service.startup_sweep
    print(
        f"join service on {args.socket} "
        f"(root {args.root}, {args.disks} disks, "
        f"{args.max_concurrent} concurrent, queue {args.queue_limit}); "
        f"startup sweep removed {sweep['seg_tmp']} tmp segments, "
        f"{sweep['sidecars']} sidecars, "
        f"{sweep['control_files']} control files; "
        f"scrub verified {sweep['scrubbed']} warm segments, "
        f"removed {sweep['corrupt']} corrupt, evicted {sweep['evicted']}",
        flush=True,
    )
    if service.interrupted_requests:
        print(
            f"journal holds {len(service.interrupted_requests)} interrupted "
            "request(s); their retries will resume from checkpoints",
            flush=True,
        )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    document = service.stats_document()
    latency = document["service"]["latency_ms"]
    print(
        f"served {document['service']['requests_total']} requests; "
        f"latency p50 {latency['p50']:,.1f} ms, p99 {latency['p99']:,.1f} ms"
    )
    if args.stats_out:
        from repro.obs import write_stats_document

        write_stats_document(args.stats_out, document)
        print(f"service stats document written to {args.stats_out}")
    return 0


def _cmd_client(args) -> int:
    from repro.service import ClientError, JoinServiceClient

    if args.action == "join" and not args.algorithm:
        print("client join needs an algorithm", file=sys.stderr)
        return 2
    try:
        with JoinServiceClient(args.socket, timeout=args.timeout) as client:
            if args.action == "ping":
                pong = client.ping()
                print(
                    f"daemon up {pong['uptime_s']:,.1f}s, serving "
                    + ", ".join(pong["algorithms"])
                )
                return 0
            if args.action == "shutdown":
                client.shutdown()
                print("daemon asked to shut down")
                return 0
            if args.action == "stats":
                document = client.stats()
                service = document["service"]
                latency = service["latency_ms"]
                print(
                    f"{service['requests_total']} requests, "
                    f"{service['active_requests']} active, "
                    f"queue depth {service['queue_depth']}; "
                    f"latency p50 {latency['p50']:,.1f} ms, "
                    f"p99 {latency['p99']:,.1f} ms"
                )
                for name, entry in sorted(service["tenants"].items()):
                    print(
                        f"  tenant {name}: {entry['admitted']} admitted, "
                        f"{entry['queued']} queued, "
                        f"{entry['rejected']} rejected, "
                        f"{entry['degraded']} degraded"
                    )
                if args.stats_out:
                    from repro.obs import write_stats_document

                    write_stats_document(args.stats_out, document)
                    print(f"service stats document written to {args.stats_out}")
                return 0
            reply = client.join(
                args.algorithm,
                tenant=args.tenant,
                scale=args.scale,
                seed=args.seed,
                disks=args.disks,
                priority=args.priority,
                kernels=args.kernels,
                stream_pairs=args.stream_pairs,
                with_stats=bool(args.stats_out),
                # Count the streamed pairs without holding them all.
                on_pairs=(lambda batch: None) if args.stream_pairs else None,
            )
    except ClientError as error:
        print(f"join service: {error}", file=sys.stderr)
        return 3 if error.code in ("rejected", "exhausted") else 1
    line = (
        f"{reply.algorithm} for tenant {reply.tenant}: "
        f"{reply.pair_count:,} pairs, checksum {reply.checksum}, "
        f"{reply.wall_ms:,.0f} ms join / {reply.request_ms:,.0f} ms "
        f"request ({reply.kernel_mode} kernels"
    )
    if reply.reused_store:
        line += ", warm store"
    if reply.admission:
        line += f", admission {reply.admission}"
    line += ")"
    print(line)
    if args.stream_pairs:
        print(f"streamed {reply.streamed_pairs:,} pairs")
    if args.stats_out and reply.stats_document is not None:
        from repro.obs import write_stats_document

        write_stats_document(args.stats_out, reply.stats_document)
        print(f"stats document written to {args.stats_out}")
    return 0


def _cmd_report(args) -> int:
    from repro.harness.reportgen import ReportOptions, generate_report

    options = ReportOptions(
        include_comparison=not args.no_comparison,
    )
    if args.scale is not None:
        options = ReportOptions(
            scale_5a=args.scale,
            scale_5b=args.scale,
            scale_5c=args.scale,
            include_comparison=not args.no_comparison,
        )
    text = generate_report(options)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
