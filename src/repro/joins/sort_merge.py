"""Parallel pointer-based sort-merge join (paper section 6).

Passes 0 and 1 redistribute R so that ``RSi`` — every R-object pointing
into ``Si`` — sits on disk ``i``.  Pass 2 heap-sorts ``RSi`` in place in
runs of ``IRUN`` objects (pointer heap, Floyd construction, bounce
deletion).  Intermediate passes merge ``NRUNABL`` runs at a time between
``RSi`` and ``Mergei`` (delete-insert cursor heap); the final pass merges
the remaining runs and joins against a *sequential* scan of ``Si`` — the
payoff of having sorted R by the virtual pointer, since S itself never
needs sorting.

Phases are synchronized (barrier after each), which is why the analysis
charges the worst-case (skew-adjusted) partition sizes to every pass.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.pheap import PointerHeap
from repro.joins.base import (
    JoinAlgorithm,
    JoinEnvironment,
    JoinExecutionError,
    JoinRunResult,
    PairCollector,
    chunked,
    phase_partner,
)
from repro.sim.process import SimProcess
from repro.sim.segment import (
    Region,
    SimSegment,
    carve_regions,
    region_capacity_with_alignment,
)

# A sorted run: the segment holding it plus the object indices in order.
Run = Tuple[SimSegment, Sequence[int]]


class ParallelSortMergeJoin(JoinAlgorithm):
    """The paper's parallel pointer-based sort-merge."""

    name = "sort-merge"

    def __init__(self, synchronize_phases: bool = True) -> None:
        self.synchronize_phases = synchronize_phases

    def run(self, env: JoinEnvironment, collect_pairs: bool = True) -> JoinRunResult:
        d = env.disks
        machine = env.machine
        page_size = machine.config.page_size
        collector = PairCollector(keep_pairs=collect_pairs)
        per_page = max(1, page_size // env.r_bytes)

        irun = env.memory.m_rproc_bytes // (
            env.r_bytes + machine.config.heap_pointer_bytes
        )
        if irun < 1:
            raise JoinExecutionError("MRproc cannot hold one object plus pointer")
        nrun_abl = max(2, env.memory.m_rproc_bytes // (3 * page_size))
        nrun_last = max(2, env.memory.m_rproc_bytes // (2 * page_size))

        # Exact inbound counts per destination: RSj region for contributor i
        # holds |Ri,j| objects.
        inbound = [[env.sub_counts(i)[j] for i in range(d)] for j in range(d)]

        # Mapping setup, serial over D: openMap Ri/Si, newMap RSi/RPi/Mergei.
        rs_regions: List[List[Region]] = []
        rp_regions: List[Dict[int, Region]] = []
        merge_segments: List[SimSegment] = []
        rs_segments: List[SimSegment] = []
        for i in range(d):
            machine.open_segment(env.r_segments[i])
            machine.open_segment(env.s_segments[i])
            rs_capacity = region_capacity_with_alignment(inbound[i], per_page)
            rs_segment = machine.new_segment(
                f"RS{i}", i, max(rs_capacity, 1), env.r_bytes
            )
            rs_segments.append(rs_segment)
            rs_regions.append(
                carve_regions(
                    rs_segment,
                    inbound[i],
                    labels=[f"RS{i}<-{src}" for src in range(d)],
                )
            )
            counts = env.sub_counts(i)
            remote = [j for j in range(d) if j != i]
            rp_capacity = region_capacity_with_alignment(
                [counts[j] for j in remote], per_page
            )
            rp_segment = machine.new_segment(
                f"RP{i}", i, max(rp_capacity, 1), env.r_bytes
            )
            rp_regions.append(
                dict(
                    zip(
                        remote,
                        carve_regions(
                            rp_segment,
                            [counts[j] for j in remote],
                            labels=[f"RP{i},{j}" for j in remote],
                        ),
                    )
                )
            )
            merge_segments.append(
                machine.new_segment(
                    f"Merge{i}", i, max(sum(inbound[i]), 1), env.r_bytes
                )
            )

        # ---- pass 0: scan Ri; local objects straight into RSi.
        for i in range(d):
            rproc = env.rprocs[i]
            r_segment = env.r_segments[i]
            for index in range(len(env.workload.r_partitions[i])):
                obj = rproc.read(r_segment, index)
                rproc.charge_map()
                target = env.pointer_map.partition_of(obj.sptr)
                rproc.transfer_private(env.r_bytes)
                if target == i:
                    rproc.append(rs_regions[i][i], obj)
                else:
                    rproc.append(rp_regions[i][target], obj)
            rproc.flush()
        env.checkpoint("pass0")
        if self.synchronize_phases:
            env.barrier(env.rprocs)

        # ---- pass 1: staggered redistribution of the RPi,j into the RSj.
        for t in range(1, d):
            for i in range(d):
                rproc = env.rprocs[i]
                j = phase_partner(i, t, d)
                region = rp_regions[i][j]
                for index in region.indices():
                    obj = rproc.read(region.segment, index)
                    rproc.transfer_private(env.r_bytes)
                    rproc.append(rs_regions[j][i], obj)
                rproc.flush()
            if self.synchronize_phases:
                env.barrier(env.rprocs)
        env.checkpoint("pass1")

        # ---- pass 2: heap-sort RSi in place, runs of IRUN objects.
        runs_per_proc: List[List[Run]] = []
        for i in range(d):
            rproc = env.rprocs[i]
            rs_segment = rs_segments[i]
            indices = [
                idx for region in rs_regions[i] for idx in region.indices()
            ]
            runs: List[Run] = []
            for run_indices in chunked(indices, irun):
                self._sort_run_in_place(rproc, rs_segment, run_indices, env.r_bytes)
                runs.append((rs_segment, run_indices))
            rproc.flush()
            runs_per_proc.append(runs)
        env.checkpoint("pass2-sort")
        if self.synchronize_phases:
            env.barrier(env.rprocs)

        # ---- intermediate merge passes: NRUNABL-way, RSi <-> Mergei.
        npass_counter = 1
        while max(len(runs) for runs in runs_per_proc) > nrun_last:
            npass_counter += 1
            for i in range(d):
                rproc = env.rprocs[i]
                source_runs = runs_per_proc[i]
                dest_segment = (
                    merge_segments[i]
                    if source_runs and source_runs[0][0] is rs_segments[i]
                    else rs_segments[i]
                )
                source_segment = source_runs[0][0] if source_runs else rs_segments[i]
                merged: List[Run] = []
                cursor = 0
                for group in chunked(source_runs, nrun_abl):
                    out_indices = range(
                        cursor, cursor + sum(len(r[1]) for r in group)
                    )
                    self._merge_runs(
                        rproc, group, dest_segment, cursor, env.r_bytes
                    )
                    merged.append((dest_segment, list(out_indices)))
                    cursor += len(out_indices)
                rproc.flush()
                # The consumed source area is deleted and re-created for the
                # next pass (the paper's per-pass deleteMap + newMap charge).
                machine.recycle_segment(source_segment)
                runs_per_proc[i] = merged
            if self.synchronize_phases:
                env.barrier(env.rprocs)
        env.checkpoint("merge-passes")

        # ---- final pass: merge the remaining runs, join against Si.
        for i in range(d):
            rproc = env.rprocs[i]
            channel = env.channel(i, i)
            for obj in self._merge_stream(rproc, runs_per_proc[i]):
                offset = env.pointer_map.offset_of(obj.sptr)
                channel.request(obj, offset, collector.emit)
            channel.flush(collector.emit)
        if self.synchronize_phases:
            env.barrier(env.rprocs)
        env.checkpoint("final-merge-join")

        detail = {
            "irun": float(irun),
            "nrun_abl": float(nrun_abl),
            "nrun_last": float(nrun_last),
            "npass": float(npass_counter),
            "lrun": float(max(len(r) for r in runs_per_proc)),
        }
        return self._finish(env, collector, detail)

    # ------------------------------------------------------------- helpers

    def _sort_run_in_place(
        self,
        rproc: SimProcess,
        segment: SimSegment,
        run_indices: Sequence[int],
        r_bytes: int,
    ) -> None:
        """Read a run, heapsort a pointer array, move objects in place."""
        objects = [rproc.read(segment, idx) for idx in run_indices]
        heap: PointerHeap[int] = PointerHeap(
            range(len(objects)),
            key=lambda pos: objects[pos].sptr,
            instrumentation=rproc,
        )
        order = heap.drain()
        for slot, source_pos in zip(run_indices, order):
            rproc.transfer_private(r_bytes)
            rproc.write(segment, slot, objects[source_pos])

    def _merge_runs(
        self,
        rproc: SimProcess,
        group: Sequence[Run],
        dest_segment: SimSegment,
        dest_cursor: int,
        r_bytes: int,
    ) -> None:
        """Merge a group of sorted runs into consecutive dest indices."""
        for obj in self._merge_stream(rproc, group):
            rproc.transfer_private(r_bytes)
            rproc.write(dest_segment, dest_cursor, obj)
            dest_cursor += 1

    def _merge_stream(self, rproc: SimProcess, group: Sequence[Run]):
        """Yield objects of sorted runs in global sptr order.

        Uses the delete-insert cursor heap of the paper: the heap holds one
        cursor per run; each step pops the minimum and reinserts the run's
        next object.
        """
        cursors = []
        for run_id, (segment, indices) in enumerate(group):
            if len(indices) == 0:
                continue
            first = rproc.read(segment, indices[0])
            cursors.append((first.sptr, run_id, 0, first))
        heap: PointerHeap[tuple] = PointerHeap(
            cursors, key=lambda entry: (entry[0], entry[1]), instrumentation=rproc
        )
        while not heap.is_empty:
            _, run_id, pos, obj = heap.peek_min()
            yield obj
            segment, indices = group[run_id]
            next_pos = pos + 1
            if next_pos < len(indices):
                nxt = rproc.read(segment, indices[next_pos])
                heap.replace_min((nxt.sptr, run_id, next_pos, nxt))
            else:
                heap.pop_min()
