"""Reference (oracle) join and output verification.

Pointer-based join semantics make correctness sharply checkable: every
R-object joins exactly the S-object its pointer names, once.  The oracle
therefore follows directly from the workload, and verification catches the
real failure modes of the parallel algorithms — lost objects in the
redistribution passes, duplicated emissions, or pairs routed to the wrong
partition.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List

from repro.core.records import JoinedPair, join_pair
from repro.workload.generator import Workload


class JoinVerificationError(AssertionError):
    """Raised when a join produced wrong output."""


def reference_join(workload: Workload) -> List[JoinedPair]:
    """The correct join output, computed directly (no simulation)."""
    s_objects = workload.s_objects
    return [
        join_pair(r, s_objects[r.sptr])
        for partition in workload.r_partitions
        for r in partition
    ]


def verify_pairs(workload: Workload, pairs: Iterable[JoinedPair]) -> int:
    """Check a join's output against the oracle; returns the pair count.

    Output order is immaterial (the paper: "nor do we assume that the join
    results are generated in any particular order"), so comparison is by
    multiset.
    """
    expected = Counter(reference_join(workload))
    produced = Counter(pairs)
    if expected == produced:
        return sum(produced.values())

    missing = expected - produced
    extra = produced - expected
    problems = []
    if missing:
        sample = next(iter(missing))
        problems.append(f"{sum(missing.values())} missing (e.g. {sample})")
    if extra:
        sample = next(iter(extra))
        problems.append(f"{sum(extra.values())} unexpected (e.g. {sample})")
    raise JoinVerificationError("join output incorrect: " + "; ".join(problems))


def expected_checksum(workload: Workload) -> int:
    """The PairCollector checksum the correct output must produce."""
    checksum = 0
    for pair in reference_join(workload):
        checksum = (
            checksum + (pair.rid * 1_000_003 + pair.sid * 7919 + pair.s_value)
        ) % (1 << 61)
    return checksum
