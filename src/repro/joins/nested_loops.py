"""Parallel pointer-based nested loops join (paper section 5).

Pass 0: each Rproc scans its ``Ri`` sequentially; objects pointing into the
local ``Si`` are joined immediately through the G buffer, the rest are
copied into the sub-partitioned temporary area ``RPi`` on the same disk
(one sub-partition per remote S partition).

Pass 1: ``D - 1`` staggered phases; in phase ``t`` Rproc ``i`` joins its
``RPi,offset(i,t)`` against that remote partition's Sproc.  The phases run
*unsynchronized* — the paper found synchronization buys at most 0.5 % — but
a synchronized variant is available for the ablation bench.
"""

from __future__ import annotations

from typing import Dict, List

from repro.joins.base import (
    JoinAlgorithm,
    JoinEnvironment,
    JoinRunResult,
    PairCollector,
    phase_partner,
)
from repro.sim.segment import Region, carve_regions, region_capacity_with_alignment


class ParallelNestedLoopsJoin(JoinAlgorithm):
    """The paper's parallel pointer-based nested loops."""

    name = "nested-loops"

    def __init__(self, synchronize_phases: bool = False) -> None:
        self.synchronize_phases = synchronize_phases

    def run(self, env: JoinEnvironment, collect_pairs: bool = True) -> JoinRunResult:
        d = env.disks
        machine = env.machine
        collector = PairCollector(keep_pairs=collect_pairs)

        # Mapping setup: openMap Ri and Si, newMap RPi — serial over D.
        rp_regions: List[Dict[int, Region]] = []
        for i in range(d):
            machine.open_segment(env.r_segments[i])
            machine.open_segment(env.s_segments[i])
            counts = env.sub_counts(i)
            remote = [j for j in range(d) if j != i]
            capacities = [counts[j] for j in remote]
            capacity = region_capacity_with_alignment(
                capacities,
                max(1, machine.config.page_size // env.r_bytes),
            )
            rp_segment = machine.new_segment(
                f"RP{i}", i, max(capacity, 1), env.r_bytes
            )
            regions = carve_regions(
                rp_segment, capacities, labels=[f"RP{i},{j}" for j in remote]
            )
            rp_regions.append(dict(zip(remote, regions)))

        # ---- pass 0: sequential Ri scan, spill or local immediate join.
        for i in range(d):
            rproc = env.rprocs[i]
            r_segment = env.r_segments[i]
            channel = env.channel(i, i)
            for index in range(len(env.workload.r_partitions[i])):
                obj = rproc.read(r_segment, index)
                rproc.charge_map()
                target = env.pointer_map.partition_of(obj.sptr)
                if target == i:
                    offset = env.pointer_map.offset_of(obj.sptr)
                    channel.request(obj, offset, collector.emit)
                else:
                    rproc.transfer_private(env.r_bytes)
                    rproc.append(rp_regions[i][target], obj)
            channel.flush(collector.emit)
            rproc.flush()
        env.checkpoint("pass0")

        if self.synchronize_phases:
            env.barrier(env.rprocs)

        # ---- pass 1: D-1 staggered phases over the RPi,j.
        for t in range(1, d):
            for i in range(d):
                rproc = env.rprocs[i]
                j = phase_partner(i, t, d)
                region = rp_regions[i][j]
                channel = env.channel(i, j)
                for index in region.indices():
                    obj = rproc.read(region.segment, index)
                    offset = env.pointer_map.offset_of(obj.sptr)
                    channel.request(obj, offset, collector.emit)
                channel.flush(collector.emit)
            if self.synchronize_phases:
                env.barrier(env.rprocs)
        env.checkpoint("pass1")

        detail = {
            "synchronized": float(self.synchronize_phases),
            "rp_objects": float(
                sum(r.count for regions in rp_regions for r in regions.values())
            ),
        }
        return self._finish(env, collector, detail)
