"""Parallel pointer-based hash-loops join (extension; paper §2.3/§9).

Hash-loops keeps nested loops' two-pass redistribution structure but fixes
its weakness — random single-object dereferences into S.  R-objects are
collected into a memory-sized chunk hashed by the *S page* their pointer
names; when the chunk fills, the pages are visited in ascending order and
every resident R-object referencing a page joins while that page is hot.
Each S page is therefore read at most once per chunk and the disk arm
sweeps forward instead of thrashing.

The matching analytical model lives in :mod:`repro.model.hash_loops`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.records import RObject
from repro.joins.base import (
    JoinAlgorithm,
    JoinEnvironment,
    JoinExecutionError,
    JoinRunResult,
    PairCollector,
    phase_partner,
)
from repro.sim.process import SimProcess
from repro.sim.segment import carve_regions, region_capacity_with_alignment
from repro.sim.sharedbuf import GBufferChannel


class ParallelHashLoopsJoin(JoinAlgorithm):
    """Chunked, page-ordered refinement of parallel nested loops."""

    name = "hash-loops"

    def __init__(self, synchronize_phases: bool = False) -> None:
        self.synchronize_phases = synchronize_phases

    def run(self, env: JoinEnvironment, collect_pairs: bool = True) -> JoinRunResult:
        d = env.disks
        machine = env.machine
        collector = PairCollector(keep_pairs=collect_pairs)
        per_object = env.r_bytes + machine.config.heap_pointer_bytes
        capacity = env.memory.m_rproc_bytes // per_object
        if capacity < 1:
            raise JoinExecutionError("MRproc cannot hold a single chunk entry")

        # Mapping setup identical to nested loops.
        rp_regions: List[Dict[int, object]] = []
        for i in range(d):
            machine.open_segment(env.r_segments[i])
            machine.open_segment(env.s_segments[i])
            counts = env.sub_counts(i)
            remote = [j for j in range(d) if j != i]
            capacities = [counts[j] for j in remote]
            total = region_capacity_with_alignment(
                capacities, max(1, machine.config.page_size // env.r_bytes)
            )
            segment = machine.new_segment(f"RP{i}", i, max(total, 1), env.r_bytes)
            regions = carve_regions(
                segment, capacities, labels=[f"RP{i},{j}" for j in remote]
            )
            rp_regions.append(dict(zip(remote, regions)))

        s_per_page = [
            env.s_segments[i].objects_per_page for i in range(d)
        ]

        # ---- pass 0: scan Ri; spill remote objects, chunk the local ones.
        for i in range(d):
            rproc = env.rprocs[i]
            r_segment = env.r_segments[i]
            chunk = _Chunk(capacity)
            channel = env.channel(i, i)
            for index in range(len(env.workload.r_partitions[i])):
                obj = rproc.read(r_segment, index)
                rproc.charge_map()
                target = env.pointer_map.partition_of(obj.sptr)
                if target == i:
                    offset = env.pointer_map.offset_of(obj.sptr)
                    rproc.charge_hash()
                    if chunk.add(offset // s_per_page[i], offset, obj):
                        self._probe_chunk(chunk, rproc, channel, collector)
                else:
                    rproc.transfer_private(env.r_bytes)
                    rproc.append(rp_regions[i][target], obj)
            self._probe_chunk(chunk, rproc, channel, collector)
            rproc.flush()
        env.checkpoint("pass0")

        if self.synchronize_phases:
            env.barrier(env.rprocs)

        # ---- pass 1: chunk each RPi,j against its remote partition.
        for t in range(1, d):
            for i in range(d):
                rproc = env.rprocs[i]
                j = phase_partner(i, t, d)
                region = rp_regions[i][j]
                chunk = _Chunk(capacity)
                channel = env.channel(i, j)
                for index in region.indices():
                    obj = rproc.read(region.segment, index)
                    offset = env.pointer_map.offset_of(obj.sptr)
                    rproc.charge_hash()
                    if chunk.add(offset // s_per_page[j], offset, obj):
                        self._probe_chunk(chunk, rproc, channel, collector)
                self._probe_chunk(chunk, rproc, channel, collector)
            if self.synchronize_phases:
                env.barrier(env.rprocs)
        env.checkpoint("pass1")

        detail = {
            "synchronized": float(self.synchronize_phases),
            "chunk_capacity": float(capacity),
        }
        return self._finish(env, collector, detail)

    def _probe_chunk(
        self,
        chunk: "_Chunk",
        rproc: SimProcess,
        channel: GBufferChannel,
        collector: PairCollector,
    ) -> None:
        """Drain one chunk: visit the referenced S pages in ascending order."""
        if chunk.is_empty:
            return
        for page in sorted(chunk.by_page):
            for offset, obj in chunk.by_page[page]:
                channel.request(obj, offset, collector.emit)
        channel.flush(collector.emit)
        chunk.clear()


class _Chunk:
    """An in-memory chunk of R-objects hashed by referenced S page."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.count = 0
        self.by_page: Dict[int, List[tuple[int, RObject]]] = {}

    def add(self, page: int, offset: int, obj: RObject) -> bool:
        """Insert; returns True when the chunk is full and must be probed."""
        self.by_page.setdefault(page, []).append((offset, obj))
        self.count += 1
        return self.count >= self.capacity

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def clear(self) -> None:
        self.by_page.clear()
        self.count = 0
