"""Parallel pointer-based Grace join (paper section 7).

Passes 0 and 1 redistribute R like sort-merge, but instead of appending,
each object is *hashed* into one of ``K`` buckets of ``RSi`` by an
order-preserving hash of its join pointer: bucket ``k`` holds strictly
smaller S-locations than bucket ``k+1``, so S can later be read
sequentially without ever being hashed itself.

Probe passes ``1+k`` (one per bucket): the bucket is read into an in-memory
hash table of ``TSIZE`` chains (the second, refining hash, also monotone);
chains are processed in order, so requests to the Sproc arrive in
ascending S order and duplicate references land on just-touched pages.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.joins.base import (
    JoinAlgorithm,
    JoinEnvironment,
    JoinExecutionError,
    JoinRunResult,
    PairCollector,
    phase_partner,
)
from repro.sim.segment import Region, carve_regions, region_capacity_with_alignment


def order_preserving_bucket(offset: int, partition_size: int, buckets: int) -> int:
    """First hash: range-partition the S offsets into ``K`` buckets."""
    if partition_size <= 0:
        raise JoinExecutionError("partition must hold at least one object")
    return min(buckets - 1, offset * buckets // partition_size)


def refining_chain(
    offset: int, partition_size: int, buckets: int, tsize: int
) -> int:
    """Second hash: monotone within a bucket, range ``TSIZE``."""
    fine = offset * buckets * tsize // partition_size
    return fine % tsize


def default_buckets(env: JoinEnvironment) -> int:
    """The 7.2 design rule: one bucket, its table and its S-objects fit
    MRproc with a 3x safety factor (see the model's ``grace_plan``)."""
    rs_i = env.workload.r_objects_total / env.disks
    per_object = (
        env.r_bytes + env.machine.config.heap_pointer_bytes + env.s_bytes
    )
    objects_per_bucket = max(1.0, env.memory.m_rproc_bytes / (3.0 * per_object))
    return max(1, math.ceil(rs_i / objects_per_bucket))


class ParallelGraceJoin(JoinAlgorithm):
    """The paper's parallel pointer-based Grace variant."""

    name = "grace"

    def __init__(
        self,
        buckets: int | None = None,
        tsize: int | None = None,
        synchronize_phases: bool = True,
    ) -> None:
        self.buckets = buckets
        self.tsize = tsize
        self.synchronize_phases = synchronize_phases

    def run(self, env: JoinEnvironment, collect_pairs: bool = True) -> JoinRunResult:
        d = env.disks
        machine = env.machine
        collector = PairCollector(keep_pairs=collect_pairs)
        per_page = max(1, machine.config.page_size // env.r_bytes)

        k = self.buckets if self.buckets is not None else default_buckets(env)
        if k < 1:
            raise JoinExecutionError("bucket count must be at least 1")
        tsize = self.tsize if self.tsize is not None else max(16, 4 * k)

        # Exact bucket cardinalities across all contributors (statistics).
        bucket_counts = self._bucket_counts(env, k)

        # Mapping setup: openMap Ri/Si, newMap the combined RSi+RPi area,
        # openMap RSi again for the probe passes (paper 7.3 setup term).
        bucket_regions: List[List[Region]] = []
        rp_regions: List[Dict[int, Region]] = []
        for i in range(d):
            machine.open_segment(env.r_segments[i])
            machine.open_segment(env.s_segments[i])
            rs_capacity = region_capacity_with_alignment(bucket_counts[i], per_page)
            rs_segment = machine.new_segment(
                f"RS{i}", i, max(rs_capacity, 1), env.r_bytes
            )
            bucket_regions.append(
                carve_regions(
                    rs_segment,
                    bucket_counts[i],
                    labels=[f"BS{i},{b}" for b in range(k)],
                )
            )
            counts = env.sub_counts(i)
            remote = [j for j in range(d) if j != i]
            rp_capacity = region_capacity_with_alignment(
                [counts[j] for j in remote], per_page
            )
            rp_segment = machine.new_segment(
                f"RP{i}", i, max(rp_capacity, 1), env.r_bytes
            )
            rp_regions.append(
                dict(
                    zip(
                        remote,
                        carve_regions(
                            rp_segment,
                            [counts[j] for j in remote],
                            labels=[f"RP{i},{j}" for j in remote],
                        ),
                    )
                )
            )
            machine.open_segment(rs_segment)

        # ---- pass 0: scan Ri; local objects hashed into the K buckets.
        for i in range(d):
            rproc = env.rprocs[i]
            r_segment = env.r_segments[i]
            part_size = env.pointer_map.partition_size(i)
            for index in range(len(env.workload.r_partitions[i])):
                obj = rproc.read(r_segment, index)
                rproc.charge_map()
                target = env.pointer_map.partition_of(obj.sptr)
                rproc.transfer_private(env.r_bytes)
                if target == i:
                    rproc.charge_hash()
                    offset = env.pointer_map.offset_of(obj.sptr)
                    bucket = order_preserving_bucket(offset, part_size, k)
                    rproc.append(bucket_regions[i][bucket], obj)
                else:
                    rproc.append(rp_regions[i][target], obj)
            rproc.flush()
        env.checkpoint("pass0")
        if self.synchronize_phases:
            env.barrier(env.rprocs)

        # ---- pass 1: staggered redistribution, hashing into remote RSj.
        for t in range(1, d):
            for i in range(d):
                rproc = env.rprocs[i]
                j = phase_partner(i, t, d)
                region = rp_regions[i][j]
                part_size = env.pointer_map.partition_size(j)
                for index in region.indices():
                    obj = rproc.read(region.segment, index)
                    rproc.charge_hash()
                    offset = env.pointer_map.offset_of(obj.sptr)
                    bucket = order_preserving_bucket(offset, part_size, k)
                    rproc.transfer_private(env.r_bytes)
                    rproc.append(bucket_regions[j][bucket], obj)
                rproc.flush()
            if self.synchronize_phases:
                env.barrier(env.rprocs)
        env.checkpoint("pass1")

        # ---- probe passes 1+k: bucket -> in-memory table -> ordered join.
        for bucket in range(k):
            for i in range(d):
                rproc = env.rprocs[i]
                region = bucket_regions[i][bucket]
                part_size = env.pointer_map.partition_size(i)
                table: List[List] = [[] for _ in range(tsize)]
                for index in region.indices():
                    obj = rproc.read(region.segment, index)
                    rproc.charge_hash()
                    offset = env.pointer_map.offset_of(obj.sptr)
                    table[refining_chain(offset, part_size, k, tsize)].append(obj)
                channel = env.channel(i, i)
                for chain in table:
                    for obj in chain:
                        offset = env.pointer_map.offset_of(obj.sptr)
                        channel.request(obj, offset, collector.emit)
                channel.flush(collector.emit)
            if self.synchronize_phases:
                env.barrier(env.rprocs)
        env.checkpoint("probe-join")

        detail = {
            "buckets": float(k),
            "tsize": float(tsize),
        }
        return self._finish(env, collector, detail)

    def _bucket_counts(self, env: JoinEnvironment, k: int) -> List[List[int]]:
        """Exact per-destination, per-bucket counts over the whole of R."""
        counts = [[0] * k for _ in range(env.disks)]
        for partition in env.workload.r_partitions:
            for obj in partition:
                target, offset = env.pointer_map.locate(obj.sptr)
                part_size = env.pointer_map.partition_size(target)
                counts[target][order_preserving_bucket(offset, part_size, k)] += 1
        return counts
