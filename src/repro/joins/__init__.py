"""The three parallel pointer-based join algorithms on the simulator."""

from repro.joins.base import (
    JoinAlgorithm,
    JoinEnvironment,
    JoinExecutionError,
    JoinRunResult,
    PairCollector,
    phase_partner,
)
from repro.joins.grace import (
    ParallelGraceJoin,
    default_buckets,
    order_preserving_bucket,
    refining_chain,
)
from repro.joins.hash_loops import ParallelHashLoopsJoin
from repro.joins.hybrid_hash import ParallelHybridHashJoin, default_resident_buckets
from repro.joins.nested_loops import ParallelNestedLoopsJoin
from repro.joins.reference import (
    JoinVerificationError,
    expected_checksum,
    reference_join,
    verify_pairs,
)
from repro.joins.sort_merge import ParallelSortMergeJoin

ALGORITHMS = {
    "nested-loops": ParallelNestedLoopsJoin,
    "sort-merge": ParallelSortMergeJoin,
    "grace": ParallelGraceJoin,
    "hash-loops": ParallelHashLoopsJoin,  # extension, paper §2.3/§9
    "hybrid-hash": ParallelHybridHashJoin,  # extension, paper §2.3
}


def make_algorithm(name: str, **kwargs) -> JoinAlgorithm:
    """Instantiate a join algorithm by its paper name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise JoinExecutionError(
            f"unknown algorithm {name!r}; choices: {sorted(ALGORITHMS)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "ALGORITHMS",
    "JoinAlgorithm",
    "JoinEnvironment",
    "JoinExecutionError",
    "JoinRunResult",
    "JoinVerificationError",
    "PairCollector",
    "ParallelGraceJoin",
    "ParallelHashLoopsJoin",
    "ParallelHybridHashJoin",
    "ParallelNestedLoopsJoin",
    "ParallelSortMergeJoin",
    "default_buckets",
    "default_resident_buckets",
    "expected_checksum",
    "make_algorithm",
    "order_preserving_bucket",
    "phase_partner",
    "refining_chain",
    "reference_join",
    "verify_pairs",
]
