"""Common machinery for the parallel pointer-based join algorithms.

:class:`JoinEnvironment` stands a workload up on a simulated machine: base
segments ``Ri``/``Si`` laid out on their disks, one Rproc and one Sproc per
partition with the configured page-frame grants.  Algorithms receive the
environment, do their passes, and return a :class:`JoinRunResult` carrying
the virtual elapsed time, the produced pairs and the machine counters.

The pass/phase structure mirrors the paper: work proceeds disk-parallel
(one slice per process), phases of pass 1 are staggered with
``offset(i, t) = (i + t) mod D`` so no two Rprocs touch the same S
partition in the same phase, and the synchronized algorithms place a
barrier after every phase while nested loops runs free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.partition import sub_partition_counts
from repro.core.records import JoinedPair, RObject, SObject, join_pair
from repro.model.parameters import MemoryParameters
from repro.sim.machine import SimConfig, SimMachine
from repro.sim.process import SimProcess
from repro.sim.segment import SimSegment
from repro.sim.sharedbuf import GBufferChannel
from repro.sim.stats import MachineStats
from repro.workload.generator import Workload


class JoinExecutionError(RuntimeError):
    """Raised when a join cannot run on the given environment."""


def phase_partner(i: int, t: int, disks: int) -> int:
    """The paper's ``offset(i, t)``: partition joined by Rproc i in phase t.

    For ``t = 1 .. D-1`` every Rproc visits every remote partition exactly
    once, and within one phase the mapping is a bijection, so (absent skew)
    no two Rprocs contend for the same disk.
    """
    if not 1 <= t < disks:
        raise JoinExecutionError(f"phase {t} outside [1, {disks})")
    return (i + t) % disks


class JoinEnvironment:
    """A workload materialized on a simulated machine, ready to join."""

    def __init__(
        self,
        workload: Workload,
        memory: MemoryParameters,
        sim_config: SimConfig | None = None,
    ) -> None:
        config = sim_config or SimConfig()
        if config.disks != workload.disks:
            config = config.with_disks(workload.disks)
        self.workload = workload
        self.memory = memory
        self.machine = SimMachine(config)
        self.disks = workload.disks
        self.pointer_map = workload.pointer_map
        spec = workload.spec
        self.r_bytes = spec.r_bytes
        self.s_bytes = spec.s_bytes
        self.sptr_bytes = spec.sptr_bytes

        self.r_segments: List[SimSegment] = []
        self.s_segments: List[SimSegment] = []
        self.rprocs: List[SimProcess] = []
        self.sprocs: List[SimProcess] = []
        self._checkpoints: List[tuple[str, float]] = []
        r_frames = memory.rproc_frames_for(config.page_size)
        s_frames = memory.sproc_frames_for(config.page_size)
        for i in range(self.disks):
            self.r_segments.append(
                self.machine.load_base_segment(
                    f"R{i}", i, workload.r_partitions[i], spec.r_bytes
                )
            )
            self.s_segments.append(
                self.machine.load_base_segment(
                    f"S{i}", i, workload.s_partition(i), spec.s_bytes
                )
            )
            self.rprocs.append(self.machine.create_process(f"Rproc{i}", r_frames))
            self.sprocs.append(self.machine.create_process(f"Sproc{i}", s_frames))

    # ----------------------------------------------------------- utilities

    def channel(self, rproc_index: int, sproc_index: int) -> GBufferChannel:
        """A fresh G-buffer channel from one Rproc to one Sproc."""
        return GBufferChannel(
            rproc=self.rprocs[rproc_index],
            sproc=self.sprocs[sproc_index],
            s_segment=self.s_segments[sproc_index],
            g_bytes=self.memory.g_bytes,
            r_bytes=self.r_bytes,
            sptr_bytes=self.sptr_bytes,
            s_bytes=self.s_bytes,
        )

    def sub_counts(self, i: int) -> List[int]:
        """Exact ``|Ri,j|`` counts (the optimizer's partition statistics).

        Real systems size temporary areas from catalog statistics; the
        simulator uses the exact counts so on-disk temporary areas span the
        same number of blocks the paper's analysis assumes.
        """
        return sub_partition_counts(self.workload.r_partitions[i], self.pointer_map)

    def barrier(self, processes: Sequence[SimProcess]) -> None:
        """Synchronize: every process waits for the slowest."""
        latest = max(p.clock_ms for p in processes)
        for p in processes:
            p.sync_to(latest)

    def drain_disks(self) -> None:
        """Flush write-behind queues, charging each disk's owner Rproc."""
        for i, disk in enumerate(self.machine.disks):
            self.rprocs[i].advance(disk.flush())

    def checkpoint(self, label: str) -> None:
        """Record a pass boundary for per-pass elapsed-time attribution.

        The recorded instant is the slowest process's clock — the moment
        the pass is globally complete — so consecutive checkpoints yield
        the per-pass durations that the model's per-pass costs predict.
        """
        front = max(p.clock_ms for p in self.rprocs + self.sprocs)
        self._checkpoints.append((label, front))

    def pass_durations(self) -> Dict[str, float]:
        """Per-pass elapsed times between recorded checkpoints."""
        durations: Dict[str, float] = {}
        previous = 0.0
        for label, instant in self._checkpoints:
            durations[label] = instant - previous
            previous = instant
        return durations


@dataclass
class JoinRunResult:
    """Outcome of executing one join on the simulated machine."""

    algorithm: str
    elapsed_ms: float
    setup_ms: float
    per_process_ms: Dict[str, float]
    pair_count: int
    checksum: int
    stats: MachineStats
    pairs: Optional[List[JoinedPair]] = None
    detail: Dict[str, float] = field(default_factory=dict)
    pass_ms: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"{self.algorithm}: elapsed {self.elapsed_ms:,.1f} ms "
            f"({self.pair_count:,} pairs; {self.stats.summary()})"
        )


class PairCollector:
    """Accumulates join output; order-independent checksum always on."""

    def __init__(self, keep_pairs: bool = True) -> None:
        self.keep_pairs = keep_pairs
        self.pairs: List[JoinedPair] = []
        self.count = 0
        self.checksum = 0

    def emit(self, r: RObject, s: SObject) -> None:
        pair = join_pair(r, s)
        self.count += 1
        # Order-independent mixing so parallel schedules compare equal.
        self.checksum = (
            self.checksum
            + (pair.rid * 1_000_003 + pair.sid * 7919 + pair.s_value)
        ) % (1 << 61)
        if self.keep_pairs:
            self.pairs.append(pair)


class JoinAlgorithm(ABC):
    """Interface of the three parallel pointer-based joins."""

    name: str = "abstract"

    @abstractmethod
    def run(self, env: JoinEnvironment, collect_pairs: bool = True) -> JoinRunResult:
        """Execute the join, returning timing, counters and output."""

    def _finish(
        self,
        env: JoinEnvironment,
        collector: PairCollector,
        detail: Dict[str, float] | None = None,
    ) -> JoinRunResult:
        env.drain_disks()
        setup_ms = env.machine.mapper.setup_ms
        per_process = {
            p.name: p.clock_ms for p in env.rprocs + env.sprocs
        }
        elapsed = max(p.clock_ms for p in env.rprocs + env.sprocs) + setup_ms
        return JoinRunResult(
            algorithm=self.name,
            elapsed_ms=elapsed,
            setup_ms=setup_ms,
            per_process_ms=per_process,
            pair_count=collector.count,
            checksum=collector.checksum,
            stats=env.machine.stats,
            pairs=collector.pairs if collector.keep_pairs else None,
            detail=dict(detail or {}),
            pass_ms=env.pass_durations(),
        )


def chunked(sequence: Sequence, size: int) -> List[Sequence]:
    """Split a sequence into consecutive chunks of at most ``size``."""
    if size <= 0:
        raise JoinExecutionError("chunk size must be positive")
    return [sequence[i : i + size] for i in range(0, len(sequence), size)]


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)
