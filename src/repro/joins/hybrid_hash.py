"""Parallel pointer-based hybrid-hash join (extension; paper §2.3).

The paper's model descends from Shekita & Carey's unvalidated analysis of
three pointer joins — nested loops, sort-merge, *hybrid hash* — but models
the Grace variant instead, deferring "more modern hash-based join
algorithms" to future work (§7).  This module supplies the hybrid variant
for the memory-mapped environment.

Hybrid hash refines Grace: the first ``R0`` buckets are *resident* — their
R-objects are joined immediately through the G buffer instead of being
spilled to ``RSi`` and re-read later.  Because the first hash is
order-preserving, a resident bucket's references land in a contiguous
``1/K`` slice of ``Si``; as long as the resident slices fit the Sproc
buffer, those S pages stay hot and each immediate join is a buffer hit.
The saving over Grace is two transfers of ``R0/K`` of the redistributed
relation (the spill write and the probe read).

``R0 = 0`` degenerates to exactly the Grace algorithm; the matching cost
model lives in :mod:`repro.model.hybrid_hash`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.joins.base import (
    JoinAlgorithm,
    JoinEnvironment,
    JoinExecutionError,
    JoinRunResult,
    PairCollector,
    phase_partner,
)
from repro.joins.grace import default_buckets, order_preserving_bucket, refining_chain
from repro.sim.segment import carve_regions, region_capacity_with_alignment


def default_resident_buckets(
    env: JoinEnvironment, buckets: int
) -> int:
    """How many buckets can be joined on the fly (paper-style sizing).

    Each resident bucket pins a ``1/K`` slice of the S partition in the
    Sproc buffer; half the buffer is budgeted for the slices, leaving the
    rest for the in-flight stream.
    """
    s_per_page = max(1, env.machine.config.page_size // env.s_bytes)
    s_pages = -(-max(
        env.pointer_map.partition_size(i) for i in range(env.disks)
    ) // s_per_page)
    frames = env.memory.sproc_frames_for(env.machine.config.page_size)
    pages_per_bucket = max(1.0, s_pages / buckets)
    resident = int((frames / 2) / pages_per_bucket)
    return max(0, min(buckets - 1, resident))


class ParallelHybridHashJoin(JoinAlgorithm):
    """Grace with resident buckets joined on the fly."""

    name = "hybrid-hash"

    def __init__(
        self,
        buckets: int | None = None,
        resident_buckets: int | None = None,
        tsize: int | None = None,
        synchronize_phases: bool = True,
    ) -> None:
        self.buckets = buckets
        self.resident_buckets = resident_buckets
        self.tsize = tsize
        self.synchronize_phases = synchronize_phases

    def run(self, env: JoinEnvironment, collect_pairs: bool = True) -> JoinRunResult:
        d = env.disks
        machine = env.machine
        collector = PairCollector(keep_pairs=collect_pairs)
        per_page = max(1, machine.config.page_size // env.r_bytes)

        k = self.buckets if self.buckets is not None else default_buckets(env)
        if k < 1:
            raise JoinExecutionError("bucket count must be at least 1")
        r0 = (
            self.resident_buckets
            if self.resident_buckets is not None
            else default_resident_buckets(env, k)
        )
        if not 0 <= r0 < k:
            raise JoinExecutionError(
                f"resident bucket count {r0} must be within [0, {k})"
            )
        tsize = self.tsize if self.tsize is not None else max(16, 4 * k)

        # Spilled-bucket cardinalities only (resident buckets never land).
        bucket_counts = self._spilled_bucket_counts(env, k, r0)

        bucket_regions: List[Dict[int, object]] = []
        rp_regions: List[Dict[int, object]] = []
        for i in range(d):
            machine.open_segment(env.r_segments[i])
            machine.open_segment(env.s_segments[i])
            spilled = [bucket_counts[i][b] for b in range(r0, k)]
            rs_capacity = region_capacity_with_alignment(spilled, per_page)
            rs_segment = machine.new_segment(
                f"RS{i}", i, max(rs_capacity, 1), env.r_bytes
            )
            regions = carve_regions(
                rs_segment, spilled, labels=[f"BS{i},{b}" for b in range(r0, k)]
            )
            bucket_regions.append(dict(zip(range(r0, k), regions)))
            counts = env.sub_counts(i)
            remote = [j for j in range(d) if j != i]
            rp_capacity = region_capacity_with_alignment(
                [counts[j] for j in remote], per_page
            )
            rp_segment = machine.new_segment(
                f"RP{i}", i, max(rp_capacity, 1), env.r_bytes
            )
            rp_regions.append(
                dict(
                    zip(
                        remote,
                        carve_regions(
                            rp_segment,
                            [counts[j] for j in remote],
                            labels=[f"RP{i},{j}" for j in remote],
                        ),
                    )
                )
            )
            machine.open_segment(rs_segment)

        # ---- pass 0: resident buckets join on the fly, the rest spill.
        for i in range(d):
            rproc = env.rprocs[i]
            r_segment = env.r_segments[i]
            part_size = env.pointer_map.partition_size(i)
            channel = env.channel(i, i)
            for index in range(len(env.workload.r_partitions[i])):
                obj = rproc.read(r_segment, index)
                rproc.charge_map()
                target = env.pointer_map.partition_of(obj.sptr)
                if target == i:
                    rproc.charge_hash()
                    offset = env.pointer_map.offset_of(obj.sptr)
                    bucket = order_preserving_bucket(offset, part_size, k)
                    if bucket < r0:
                        channel.request(obj, offset, collector.emit)
                    else:
                        rproc.transfer_private(env.r_bytes)
                        rproc.append(bucket_regions[i][bucket], obj)
                else:
                    rproc.transfer_private(env.r_bytes)
                    rproc.append(rp_regions[i][target], obj)
            channel.flush(collector.emit)
            rproc.flush()
        env.checkpoint("pass0")
        if self.synchronize_phases:
            env.barrier(env.rprocs)

        # ---- pass 1: staggered; resident buckets join against remote Sj.
        for t in range(1, d):
            for i in range(d):
                rproc = env.rprocs[i]
                j = phase_partner(i, t, d)
                region = rp_regions[i][j]
                part_size = env.pointer_map.partition_size(j)
                channel = env.channel(i, j)
                for index in region.indices():
                    obj = rproc.read(region.segment, index)
                    rproc.charge_hash()
                    offset = env.pointer_map.offset_of(obj.sptr)
                    bucket = order_preserving_bucket(offset, part_size, k)
                    if bucket < r0:
                        channel.request(obj, offset, collector.emit)
                    else:
                        rproc.transfer_private(env.r_bytes)
                        rproc.append(bucket_regions[j][bucket], obj)
                channel.flush(collector.emit)
                rproc.flush()
            if self.synchronize_phases:
                env.barrier(env.rprocs)
        env.checkpoint("pass1")

        # ---- probe passes over the spilled buckets only.
        for bucket in range(r0, k):
            for i in range(d):
                rproc = env.rprocs[i]
                region = bucket_regions[i][bucket]
                part_size = env.pointer_map.partition_size(i)
                table: List[List] = [[] for _ in range(tsize)]
                for index in region.indices():
                    obj = rproc.read(region.segment, index)
                    rproc.charge_hash()
                    offset = env.pointer_map.offset_of(obj.sptr)
                    table[refining_chain(offset, part_size, k, tsize)].append(obj)
                channel = env.channel(i, i)
                for chain in table:
                    for obj in chain:
                        offset = env.pointer_map.offset_of(obj.sptr)
                        channel.request(obj, offset, collector.emit)
                channel.flush(collector.emit)
            if self.synchronize_phases:
                env.barrier(env.rprocs)
        env.checkpoint("probe-join")

        detail = {
            "buckets": float(k),
            "resident_buckets": float(r0),
            "tsize": float(tsize),
        }
        return self._finish(env, collector, detail)

    def _spilled_bucket_counts(
        self, env: JoinEnvironment, k: int, r0: int
    ) -> List[List[int]]:
        counts = [[0] * k for _ in range(env.disks)]
        for partition in env.workload.r_partitions:
            for obj in partition:
                target, offset = env.pointer_map.locate(obj.sptr)
                part_size = env.pointer_map.partition_size(target)
                bucket = order_preserving_bucket(offset, part_size, k)
                if bucket >= r0:
                    counts[target][bucket] += 1
        return counts
