"""Span-style tracing over the metrics registry.

A span is one timed region of a run — a pass, a worker task, a merge —
with attributes (``span("pass", algo="grace", pass_no=1)``).  Spans nest:
each records its slash-joined path (``join/pass0``), so exported documents
show the timing tree without a separate trace format.  Every span also
feeds a ``span_ms{span=...}`` histogram in the same registry, which is what
makes per-pass latency distributions mergeable across workers.

When the target registry is disabled (the :class:`~repro.obs.registry.NullRegistry`),
entering a span does not even read the clock — the tentpole's "near-zero
overhead when disabled" requirement.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.registry import MetricsRegistry, active


class span:
    """Context manager timing one named region into a registry."""

    __slots__ = ("name", "attrs", "registry", "_start", "_path")

    def __init__(
        self, name: str, registry: Optional[MetricsRegistry] = None, **attrs: object
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.registry = registry
        self._start = 0.0
        self._path = name

    def __enter__(self) -> "span":
        registry = self.registry if self.registry is not None else active()
        self.registry = registry
        if not registry.enabled:
            return self
        stack = registry._span_stack
        self._path = "/".join((*stack, self.name)) if stack else self.name
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        duration_ms = (time.perf_counter() - self._start) * 1000.0
        registry._span_stack.pop()
        record = {
            "name": self.name,
            "path": self._path,
            "ms": duration_ms,
            "depth": self._path.count("/"),
        }
        if self.attrs:
            record["attrs"] = {k: _plain(v) for k, v in self.attrs.items()}
        if exc_type is not None:
            record["error"] = exc_type.__name__
        registry.spans.append(record)
        registry.observe("span_ms", duration_ms, span=self._path)


def _plain(value: object) -> object:
    """Keep span attributes JSON-able without surprises."""
    return value if isinstance(value, (str, int, float, bool, type(None))) else str(value)
