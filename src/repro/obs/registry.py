"""The metrics registry: counters, gauges and histograms both backends share.

The paper's contribution is a *decomposable* cost account — elapsed time
split into disk transfer, fault service, heap work and mapping setup — so
the reproduction needs the measured side to decompose the same way.  A
:class:`MetricsRegistry` is the collection point: the storage layer counts
mapping operations and block traffic into it, workers count records and
wall time, the simulator adapts its existing counters onto it, and one
merged registry per run becomes the versioned stats document
(:mod:`repro.obs.export`).

Design constraints, in order:

* **Near-zero overhead when disabled.**  Instrumented code always calls
  ``obs.active().count(...)``; when no registry is activated that resolves
  to the shared :class:`NullRegistry`, whose methods are empty.  Hot paths
  are instrumented at *batch* granularity (one call per ~4096 records), so
  even the enabled cost is amortized to nanoseconds per record.
* **Lossless, associative cross-process merge.**  Workers run in separate
  OS processes; each snapshots its registry to a plain dict and the parent
  merges them.  Counter and histogram merges are element-wise sums, gauges
  are keyed disjointly (labels carry the worker id) and conflict-resolve by
  ``max`` — so ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` and no
  sample is dropped.
* **Plain data.**  Snapshots are JSON-able dicts of flat string keys
  (``name{label=value,...}``); nothing here imports the storage, sim or
  parallel layers, so every layer can import ``repro.obs``.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

SNAPSHOT_VERSION = 1

# Default histogram boundaries, milliseconds: span microsecond-scale batch
# operations up to multi-second passes.  Fixed boundaries are what make the
# cross-process merge lossless (element-wise bucket sums).
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class MetricsError(RuntimeError):
    """Raised for invalid metric operations (e.g. merging unlike bounds)."""


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`metric_key` (label values come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


class Histogram:
    """Fixed-boundary histogram; merge is an element-wise bucket sum."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_MS_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricsError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        The true min/max are tracked exactly, so the estimate is clamped
        into ``[min, max]``; within a bucket the upper boundary is
        reported (a conservative latency estimate, the convention
        monitoring systems use for fixed-bucket histograms).
        """
        if not 0 < q <= 1:
            raise MetricsError(f"percentile q must be in (0, 1]: {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= target:
                if i >= len(self.bounds):
                    return self.max if self.max is not None else 0.0
                value = self.bounds[i]
                if self.max is not None:
                    value = min(value, self.max)
                if self.min is not None:
                    value = max(value, self.min)
                return value
        return self.max if self.max is not None else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise MetricsError(
                "cannot merge histograms with different bucket boundaries"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total += other.total
        for attr in ("min", "max"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None and (
                mine is None or (theirs < mine if attr == "min" else theirs > mine)
            ):
                setattr(self, attr, theirs)

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(cls, data: Mapping) -> "Histogram":
        histogram = cls(tuple(data["bounds"]))
        histogram.bucket_counts = list(data["bucket_counts"])
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        return histogram


class MetricsRegistry:
    """One process's (or one merged run's) metric store."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: List[dict] = []
        self._span_stack: List[str] = []

    # ------------------------------------------------------------ recording

    def count(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to a monotonically increasing counter."""
        key = metric_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a point-in-time value (merge conflict resolves by max)."""
        self.gauges[metric_key(name, labels)] = value

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_MS_BUCKETS,
        **labels: object,
    ) -> None:
        """Record one sample into a fixed-boundary histogram."""
        key = metric_key(name, labels)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(bounds)
        histogram.observe(value)

    # -------------------------------------------------------------- merging

    def merge(self, other: "MetricsRegistry | Mapping") -> "MetricsRegistry":
        """Fold another registry (or a snapshot dict) into this one.

        Counters and histogram buckets add; gauges take the max on a key
        collision (keys normally carry a ``worker=`` label, so collisions
        only happen when two sources really measured the same thing); span
        lists concatenate.  Associative and lossless — see the unit tests.
        """
        if isinstance(other, Mapping):
            other = MetricsRegistry.from_snapshot(other)
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in other.gauges.items():
            mine = self.gauges.get(key)
            self.gauges[key] = value if mine is None else max(mine, value)
        for key, histogram in other.histograms.items():
            mine_h = self.histograms.get(key)
            if mine_h is None:
                self.histograms[key] = Histogram.from_snapshot(histogram.snapshot())
            else:
                mine_h.merge(histogram)
        self.spans.extend(other.spans)
        return self

    @classmethod
    def merged(cls, parts: Iterable["MetricsRegistry | Mapping"]) -> "MetricsRegistry":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> dict:
        """A JSON-able dict that :meth:`from_snapshot` restores losslessly."""
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.snapshot() for k, h in self.histograms.items()},
            "spans": list(self.spans),
        }

    @classmethod
    def from_snapshot(cls, data: Mapping) -> "MetricsRegistry":
        version = data.get("snapshot_version", SNAPSHOT_VERSION)
        if version != SNAPSHOT_VERSION:
            raise MetricsError(f"unknown registry snapshot version {version!r}")
        registry = cls()
        registry.counters = dict(data.get("counters", {}))
        registry.gauges = dict(data.get("gauges", {}))
        registry.histograms = {
            k: Histogram.from_snapshot(h)
            for k, h in data.get("histograms", {}).items()
        }
        registry.spans = list(data.get("spans", []))
        return registry

    # ------------------------------------------------------------- querying

    def counter_value(self, name: str, **labels: object) -> float:
        return self.counters.get(metric_key(name, labels), 0)

    def counters_named(self, name: str) -> Dict[str, float]:
        """All entries of one counter family, keyed by their flat key."""
        return {
            key: value
            for key, value in self.counters.items()
            if parse_metric_key(key)[0] == name
        }

    def __bool__(self) -> bool:
        return bool(
            self.counters or self.gauges or self.histograms or self.spans
        )


class NullRegistry(MetricsRegistry):
    """The disabled registry: every recording method is a no-op."""

    enabled = False

    def count(self, name: str, value: float = 1, **labels: object) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_MS_BUCKETS,
        **labels: object,
    ) -> None:
        pass


_NULL = NullRegistry()


class _ActiveStacks(threading.local):
    """Per-thread activation stacks.

    The join-service daemon executes several plans concurrently, one per
    request thread, each under its own driver registry; a process-global
    stack would cross-attribute their counters (and ``deactivate`` would
    pop a sibling's registry).  Thread-locality keeps the old single-
    threaded semantics — workers are separate processes and never see
    another thread's stack anyway.
    """

    def __init__(self) -> None:
        self.stack: List[MetricsRegistry] = []


_ACTIVE = _ActiveStacks()


def active() -> MetricsRegistry:
    """The registry instrumented code should record into right now."""
    stack = _ACTIVE.stack
    return stack[-1] if stack else _NULL


def activate(registry: MetricsRegistry) -> MetricsRegistry:
    """Push a registry; instrumentation in this thread records into it."""
    _ACTIVE.stack.append(registry)
    return registry


def deactivate() -> Optional[MetricsRegistry]:
    """Pop the innermost active registry (no-op when none is active)."""
    stack = _ACTIVE.stack
    return stack.pop() if stack else None


class collecting:
    """``with collecting() as registry:`` — scoped activation."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def __enter__(self) -> MetricsRegistry:
        return activate(self.registry)

    def __exit__(self, *exc_info) -> None:
        deactivate()
