"""The versioned JSON stats document both backends export.

One run — real-mmap or simulated — becomes one self-describing document:
``schema_version`` plus ``meta`` / ``totals`` / ``per_pass`` / ``per_worker``
/ ``per_segment`` / ``spans`` sections.  The full schema, with each
metric's units and the paper cost term it decomposes, is documented in
``docs/metrics_schema.md``; :func:`validate_stats_document` enforces the
structural contract (CI runs it against a freshly emitted document).

Nothing here imports the storage, sim or parallel layers: documents are
built from duck-typed result objects and registry snapshots, so the
exporter works identically for both backends.
"""

from __future__ import annotations

import json
import mmap
import os
from typing import Dict, List, Mapping, Optional

from repro.obs.registry import MetricsRegistry, parse_metric_key

#: Version 2 added ``totals.governor`` (resource-governor decision record)
#: and the per-worker memory gauges.  Version 3 reflects the pass-pipeline
#: engine: real-backend ``per_pass`` entries carry the stage ``kind``
#: (scan-join / partition / sort-run / merge / probe — optional, the
#: simulator has no stage taxonomy), per-pass labels come from the
#: registered pass plans (sort-merge is now partition / sort-runs /
#: merge-join), and stage spans are named ``stage`` rather than ``pass``.
#: Version 4 adds the optional top-level ``service`` section (the join
#: daemon's serving totals: request-latency percentiles, queue depth,
#: per-tenant admission counts, the startup orphan sweep) plus the
#: ``service.*`` counter namespace; join-run documents are otherwise
#: unchanged from v3.  Still within v4 (optional, so old documents stay
#: valid): real-backend ``per_pass`` entries of rebalance-capable stages
#: may carry a ``rebalance`` block (the executor's per-partition
#: sharding decision), per-worker ids may be shard slots (``"2s1"``),
#: and ``meta.skew`` reports the workload's measured partition skew.
#: Version 5 adds two durability sections to real-backend totals:
#: ``totals.integrity`` (segments fully scrubbed, scrub failures, and
#: payload-checksum verification counts from the ``storage.integrity.*``
#: counter family) and ``totals.resume`` (whether the run replayed a
#: pass-level checkpoint manifest, how many passes it skipped, the
#: manifest's age, and why a requested resume was declined).  Both are
#: optional — the simulator and the service document carry neither.
SCHEMA_VERSION = 5
DOCUMENT_KIND = "repro-join-stats"

#: Spill segment kinds — temporaries redistributed between partitions, as
#: opposed to base relations (R, S) and join output (PAIRS).
SPILL_KINDS = frozenset({"RP", "RS", "RUN", "BS"})

_REQUIRED_SECTIONS = {
    "meta": dict,
    "totals": dict,
    "per_pass": dict,
    "per_worker": dict,
    "per_segment": dict,
    "spans": list,
}

_SEGMENT_FIELDS = (
    ("created", "storage.map.new"),
    ("opened", "storage.map.open"),
    ("deleted", "storage.map.delete"),
    ("flushes", "storage.flush"),
    ("read_records", "storage.read.records"),
    ("read_bytes", "storage.read.bytes"),
    ("deref_records", "storage.deref.records"),
    ("deref_bytes", "storage.deref.bytes"),
    ("write_records", "storage.write.records"),
    ("write_bytes", "storage.write.bytes"),
)


class StatsSchemaError(ValueError):
    """An exported stats document violates the schema contract."""


# --------------------------------------------------------------- validation

def schema_problems(document: object) -> List[str]:
    """Every way ``document`` breaks the schema; empty when valid."""
    problems: List[str] = []
    if not isinstance(document, Mapping):
        return [f"document is {type(document).__name__}, expected an object"]
    version = document.get("schema_version")
    if version is None:
        problems.append("missing schema_version")
    elif version != SCHEMA_VERSION:
        problems.append(
            f"unknown schema_version {version!r} (this build reads {SCHEMA_VERSION})"
        )
    if document.get("kind") != DOCUMENT_KIND:
        problems.append(
            f"kind is {document.get('kind')!r}, expected {DOCUMENT_KIND!r}"
        )
    for section, expected_type in _REQUIRED_SECTIONS.items():
        value = document.get(section)
        if not isinstance(value, expected_type):
            problems.append(
                f"section {section!r} is "
                f"{type(value).__name__ if value is not None else 'missing'}, "
                f"expected {expected_type.__name__}"
            )
    if problems:
        return problems

    meta = document["meta"]
    for field in ("algorithm", "backend"):
        if not isinstance(meta.get(field), str):
            problems.append(f"meta.{field} must be a string")
    totals = document["totals"]
    if not isinstance(totals.get("wall_ms"), (int, float)):
        problems.append("totals.wall_ms must be a number")
    for mapping_name in ("counters", "gauges"):
        mapping = totals.get(mapping_name)
        if not isinstance(mapping, dict):
            problems.append(f"totals.{mapping_name} must be an object")
        elif any(not isinstance(v, (int, float)) for v in mapping.values()):
            problems.append(f"totals.{mapping_name} values must be numbers")
    recovery = totals.get("recovery")
    if recovery is not None:
        # Optional (the simulator has no failure model); when present it
        # must be a flat object of numeric recovery totals.
        if not isinstance(recovery, dict):
            problems.append("totals.recovery must be an object")
        elif any(not isinstance(v, (int, float)) for v in recovery.values()):
            problems.append("totals.recovery values must be numbers")
    problems.extend(_governor_problems(totals.get("governor")))
    problems.extend(_integrity_problems(totals.get("integrity")))
    problems.extend(_resume_problems(totals.get("resume")))
    problems.extend(_service_problems(document.get("service")))
    for label, entry in document["per_pass"].items():
        if not isinstance(entry, dict) or not isinstance(
            entry.get("wall_ms"), (int, float)
        ):
            problems.append(f"per_pass[{label!r}] needs a numeric wall_ms")
        elif "kind" in entry and not isinstance(entry["kind"], str):
            # Optional: the real backend stamps each pass with its stage
            # kind; the simulator has no stage taxonomy.
            problems.append(f"per_pass[{label!r}].kind must be a string")
        if isinstance(entry, dict) and "rebalance" in entry:
            problems.extend(_rebalance_problems(label, entry["rebalance"]))
    for label, workers in document["per_worker"].items():
        if label not in document["per_pass"]:
            problems.append(f"per_worker[{label!r}] has no matching per_pass entry")
            continue
        if not isinstance(workers, dict):
            problems.append(f"per_worker[{label!r}] must be an object")
            continue
        for worker_id, metrics in workers.items():
            if not isinstance(metrics, dict) or not isinstance(
                metrics.get("wall_ms"), (int, float)
            ):
                problems.append(
                    f"per_worker[{label!r}][{worker_id!r}] needs a numeric wall_ms"
                )
    for kind, entry in document["per_segment"].items():
        if not isinstance(entry, dict):
            problems.append(f"per_segment[{kind!r}] must be an object")
    for i, record in enumerate(document["spans"]):
        if not isinstance(record, dict) or "name" not in record or "ms" not in record:
            problems.append(f"spans[{i}] needs name and ms fields")
    return problems


def _rebalance_problems(label: str, rebalance: object) -> List[str]:
    """Schema problems in an optional per-pass ``rebalance`` block.

    Present only on real-backend passes of rebalance-capable stages run
    with rebalancing enabled; records the executor's sharding decision
    (even a zero-split one, so the measured ratio is always reported).
    """
    if not isinstance(rebalance, Mapping):
        return [f"per_pass[{label!r}].rebalance must be an object"]
    problems: List[str] = []
    if not isinstance(rebalance.get("axis"), str):
        problems.append(f"per_pass[{label!r}].rebalance.axis must be a string")
    for field in ("splits", "tasks", "moved_records", "pre_ratio", "post_ratio"):
        if not isinstance(rebalance.get(field), (int, float)):
            problems.append(
                f"per_pass[{label!r}].rebalance.{field} must be a number"
            )
    return problems


def _governor_problems(governor: object) -> List[str]:
    """Schema problems in an optional ``totals.governor`` section.

    Absent on ungoverned runs and on the simulator; when present it is the
    governor's full decision record (see ``docs/metrics_schema.md``).
    """
    if governor is None:
        return []
    if not isinstance(governor, Mapping):
        return ["totals.governor must be an object"]
    problems: List[str] = []
    if not isinstance(governor.get("admission"), str):
        problems.append("totals.governor.admission must be a string")
    for field in ("degradations_total", "admission_degradations",
                  "runtime_degradations"):
        if not isinstance(governor.get(field), (int, float)):
            problems.append(f"totals.governor.{field} must be a number")
    for field in ("predicted", "observed", "resource_errors", "budgets",
                  "plan"):
        if not isinstance(governor.get(field), Mapping):
            problems.append(f"totals.governor.{field} must be an object")
    return problems


def _integrity_problems(integrity: object) -> List[str]:
    """Schema problems in an optional ``totals.integrity`` section.

    Present on real-backend documents (v5+): the run's payload-checksum
    accounting — segments fully scrubbed during resume validation, scrub
    failures encountered, and how many open-time payload verifications
    ran (split into fresh hashes and memoized re-opens).
    """
    if integrity is None:
        return []
    if not isinstance(integrity, Mapping):
        return ["totals.integrity must be an object"]
    problems: List[str] = []
    for field in ("segments_scrubbed", "scrub_failures",
                  "checksum_verified", "checksum_cached"):
        if not isinstance(integrity.get(field), (int, float)):
            problems.append(f"totals.integrity.{field} must be a number")
    return problems


def _resume_problems(resume: object) -> List[str]:
    """Schema problems in an optional ``totals.resume`` section.

    Present on real-backend documents (v5+): whether the run was asked
    to resume from a pass-level checkpoint manifest, whether it did, how
    many completed passes the manifest let it skip, the manifest's age,
    and — for declined or truncated resumes — the reason.
    """
    if resume is None:
        return []
    if not isinstance(resume, Mapping):
        return ["totals.resume must be an object"]
    problems: List[str] = []
    for field in ("requested", "resumed"):
        if not isinstance(resume.get(field), bool):
            problems.append(f"totals.resume.{field} must be a boolean")
    if not isinstance(resume.get("passes_skipped"), (int, float)):
        problems.append("totals.resume.passes_skipped must be a number")
    age = resume.get("manifest_age_s")
    if age is not None and not isinstance(age, (int, float)):
        problems.append("totals.resume.manifest_age_s must be a number or null")
    reason = resume.get("reason")
    if reason is not None and not isinstance(reason, str):
        problems.append("totals.resume.reason must be a string or null")
    return problems


def _service_problems(service: object) -> List[str]:
    """Schema problems in an optional top-level ``service`` section.

    Present only on documents exported by the join-service daemon; when
    present it must carry the serving totals the operator guide documents
    (``docs/serving.md``): latency percentiles, queue state, per-tenant
    admission counts, and the startup sweep record.
    """
    if service is None:
        return []
    if not isinstance(service, Mapping):
        return ["service must be an object"]
    problems: List[str] = []
    for field in ("requests_total", "queue_depth", "active_requests"):
        if not isinstance(service.get(field), (int, float)):
            problems.append(f"service.{field} must be a number")
    latency = service.get("latency_ms")
    if not isinstance(latency, Mapping):
        problems.append("service.latency_ms must be an object")
    else:
        for field in ("p50", "p99", "mean", "max", "count"):
            if not isinstance(latency.get(field), (int, float)):
                problems.append(f"service.latency_ms.{field} must be a number")
    tenants = service.get("tenants")
    if not isinstance(tenants, Mapping):
        problems.append("service.tenants must be an object")
    else:
        for name, entry in tenants.items():
            if not isinstance(entry, Mapping):
                problems.append(f"service.tenants[{name!r}] must be an object")
                continue
            for field in ("admitted", "queued", "rejected", "degraded"):
                if not isinstance(entry.get(field), (int, float)):
                    problems.append(
                        f"service.tenants[{name!r}].{field} must be a number"
                    )
    sweep = service.get("startup_sweep")
    if sweep is not None and (
        not isinstance(sweep, Mapping)
        or any(not isinstance(v, (int, float)) for v in sweep.values())
    ):
        problems.append(
            "service.startup_sweep must be an object of numeric counts"
        )
    return problems


def validate_stats_document(document: object) -> None:
    """Raise :class:`StatsSchemaError` unless ``document`` is schema-valid."""
    problems = schema_problems(document)
    if problems:
        raise StatsSchemaError(
            "invalid stats document: " + "; ".join(problems)
        )


# ----------------------------------------------------------------- building

def _pages_estimate(bytes_moved: float) -> int:
    """Bytes → whole OS pages: the document's page-touch *estimate*.

    An estimate because sequential batches touch each page once while
    scattered dereferences may revisit pages; exact residency would need a
    per-access page set, which costs more than the work being measured.
    """
    return int(-(-bytes_moved // mmap.PAGESIZE)) if bytes_moved > 0 else 0


def _worker_summary(snapshot: Mapping) -> dict:
    """Derive the per-worker headline fields from a registry snapshot."""
    registry = MetricsRegistry.from_snapshot(snapshot)
    by_name: Dict[str, float] = {}
    spill_bytes = 0.0
    for key, value in registry.counters.items():
        name, labels = parse_metric_key(key)
        by_name[name] = by_name.get(name, 0) + value
        if name == "storage.write.bytes" and labels.get("kind") in SPILL_KINDS:
            spill_bytes += value
    gauges_by_name: Dict[str, float] = {}
    for key, value in registry.gauges.items():
        name, _ = parse_metric_key(key)
        gauges_by_name[name] = max(gauges_by_name.get(name, value), value)
    bytes_read = by_name.get("storage.read.bytes", 0) + by_name.get(
        "storage.deref.bytes", 0
    )
    bytes_written = by_name.get("storage.write.bytes", 0)
    return {
        "wall_ms": gauges_by_name.get("worker.wall_ms", 0.0),
        "mem_high_water_bytes": int(
            gauges_by_name.get("worker.mem_high_water_bytes", 0)
        ),
        "mapped_peak_bytes": int(
            gauges_by_name.get("worker.mapped_peak_bytes", 0)
        ),
        "rss_max_bytes": int(gauges_by_name.get("worker.rss_max_bytes", 0)),
        "records_read": int(
            by_name.get("storage.read.records", 0)
            + by_name.get("storage.deref.records", 0)
        ),
        "records_written": int(by_name.get("storage.write.records", 0)),
        "bytes_read": int(bytes_read),
        "bytes_written": int(bytes_written),
        "spill_bytes": int(spill_bytes),
        "batches": int(
            by_name.get("storage.read.batches", 0)
            + by_name.get("storage.write.batches", 0)
        ),
        "pairs": int(by_name.get("worker.pairs", 0)),
        "pages_touched_est": _pages_estimate(bytes_read + bytes_written),
        "counters": dict(registry.counters),
    }


def _segment_section(registry: MetricsRegistry) -> Dict[str, dict]:
    """Aggregate storage counters by segment kind (R, S, RP, PAIRS, ...)."""
    section: Dict[str, dict] = {}
    for key, value in registry.counters.items():
        name, labels = parse_metric_key(key)
        kind = labels.get("kind")
        if kind is None or not name.startswith("storage."):
            continue
        entry = section.setdefault(kind, {field: 0 for field, _ in _SEGMENT_FIELDS})
        for field, counter_name in _SEGMENT_FIELDS:
            if name == counter_name:
                entry[field] += int(value)
    for entry in section.values():
        entry["pages_touched_est"] = _pages_estimate(
            entry["read_bytes"] + entry["deref_bytes"] + entry["write_bytes"]
        )
    return section


def build_real_stats_document(result, workload=None) -> dict:
    """The stats document for one :class:`~repro.parallel.runner.RealJoinResult`.

    ``result.worker_metrics`` (per pass → per partition registry snapshots)
    and ``result.driver_metrics`` are merged here into the totals and
    per-segment sections; per-pass counters are the merge of that pass's
    workers.
    """
    worker_metrics = getattr(result, "worker_metrics", None) or {}
    driver_metrics = getattr(result, "driver_metrics", None)

    pass_kinds = getattr(result, "pass_kinds", None) or {}
    rebalance = getattr(result, "rebalance", None) or {}
    per_pass: Dict[str, dict] = {}
    per_worker: Dict[str, dict] = {}
    all_parts: List[Mapping] = []
    for label, wall_ms in result.pass_wall_ms.items():
        snapshots = worker_metrics.get(label, {})
        pass_registry = MetricsRegistry.merged(snapshots.values())
        all_parts.extend(snapshots.values())
        # Worker slots mix int partitions with "2s1" shard strings on
        # rebalanced passes, so ordering must go through str.
        per_pass[label] = {
            "wall_ms": wall_ms,
            "records": result.pass_counts.get(label),
            "checksum": result.pass_checksums.get(label),
            "workers": sorted(snapshots, key=str),
            "counters": dict(pass_registry.counters),
            **(
                {"kind": pass_kinds[label]} if label in pass_kinds else {}
            ),
            **(
                {"rebalance": rebalance[label]} if label in rebalance else {}
            ),
        }
        per_worker[label] = {
            str(slot): _worker_summary(snapshot)
            for slot, snapshot in sorted(
                snapshots.items(), key=lambda item: str(item[0])
            )
        }

    totals_registry = MetricsRegistry.merged(all_parts)
    if driver_metrics:
        totals_registry.merge(driver_metrics)

    integrity = getattr(result, "integrity", None) or {}
    resume = getattr(result, "resume", None) or {}
    integrity_doc = {
        "segments_scrubbed": int(integrity.get("segments_scrubbed", 0)),
        "scrub_failures": int(integrity.get("scrub_failures", 0)),
        "checksum_verified": int(sum(
            totals_registry.counters_named("storage.integrity.verify").values()
        )),
        "checksum_cached": int(sum(
            totals_registry.counters_named("storage.integrity.cached").values()
        )),
    }
    resume_doc = {
        "requested": bool(resume.get("requested", False)),
        "resumed": bool(resume.get("resumed", False)),
        "passes_skipped": int(resume.get("passes_skipped", 0)),
        "manifest_age_s": resume.get("manifest_age_s"),
        "reason": resume.get("reason"),
    }

    spec = getattr(workload, "spec", None)
    governor = getattr(result, "governor", None)
    meta = {
        "algorithm": result.algorithm,
        "backend": "real-mmap",
        "used_processes": result.used_processes,
        "kernel_mode": getattr(result, "kernel_mode", "scalar"),
        "partitioner": getattr(result, "partitioner", None),
    }
    if workload is not None:
        meta.update(
            disks=workload.disks,
            r_objects=workload.r_objects_total,
            s_objects=len(workload.s_objects),
            r_bytes=spec.r_bytes if spec else None,
            skew=round(workload.measured_skew(), 4),
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": DOCUMENT_KIND,
        "meta": meta,
        "totals": {
            "wall_ms": result.wall_ms,
            "pair_count": result.pair_count,
            "checksum": result.checksum,
            "counters": dict(totals_registry.counters),
            "gauges": dict(totals_registry.gauges),
            "histograms": {
                k: h.snapshot() for k, h in totals_registry.histograms.items()
            },
            "recovery": {
                "retries": int(getattr(result, "retries_total", 0)),
                "timeouts": int(getattr(result, "timeouts_total", 0)),
                "inline_fallbacks": int(
                    getattr(result, "inline_fallbacks", 0)
                ),
            },
            "integrity": integrity_doc,
            "resume": resume_doc,
            **({"governor": governor} if governor is not None else {}),
        },
        "per_pass": per_pass,
        "per_worker": per_worker,
        "per_segment": _segment_section(totals_registry),
        "spans": list(totals_registry.spans),
    }


def build_sim_stats_document(result, workload=None) -> dict:
    """The stats document for one simulator :class:`JoinRunResult`.

    Per-pass wall times come from the run's checkpoints, per-worker times
    from the per-process virtual clocks (grouped under the pseudo-pass
    ``"run"`` — the simulator attributes counters per process, not per
    pass), and the counters from the :mod:`repro.sim.stats` adapter.
    """
    from repro.sim.stats import machine_stats_registry

    registry = machine_stats_registry(result.stats)
    per_pass = {
        label: {
            "wall_ms": wall_ms,
            "records": None,
            "checksum": None,
            "workers": [],
            "counters": {},
        }
        for label, wall_ms in result.pass_ms.items()
    }
    per_worker: Dict[str, dict] = {}
    if result.per_process_ms:
        per_pass.setdefault(
            "run",
            {
                "wall_ms": result.elapsed_ms,
                "records": None,
                "checksum": None,
                "workers": [],
                "counters": {},
            },
        )
        per_worker["run"] = {
            name: {"wall_ms": clock_ms}
            for name, clock_ms in result.per_process_ms.items()
        }

    meta = {
        "algorithm": result.algorithm,
        "backend": "simulator",
        "setup_ms": result.setup_ms,
    }
    if workload is not None:
        meta.update(
            disks=workload.disks,
            r_objects=workload.r_objects_total,
            s_objects=len(workload.s_objects),
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": DOCUMENT_KIND,
        "meta": meta,
        "totals": {
            "wall_ms": result.elapsed_ms,
            "pair_count": result.pair_count,
            "checksum": result.checksum,
            "counters": dict(registry.counters),
            "gauges": dict(registry.gauges),
            "histograms": {},
        },
        "per_pass": per_pass,
        "per_worker": per_worker,
        "per_segment": {},
        "spans": [],
    }


#: The daemon's request-latency histogram lives under this counter-family
#: name in its registry; the service document summarizes it as percentiles.
SERVICE_LATENCY_METRIC = "service.request_ms"


def build_service_stats_document(
    registry: MetricsRegistry,
    *,
    tenants: Mapping[str, Mapping],
    queue_depth: int = 0,
    active_requests: int = 0,
    startup_sweep: Optional[Mapping[str, int]] = None,
    uptime_s: float = 0.0,
    meta: Optional[Mapping] = None,
) -> dict:
    """The stats document for one join-service daemon's lifetime so far.

    ``registry`` is the daemon's own :class:`MetricsRegistry` (the
    ``service.*`` counters and the request-latency histogram); ``tenants``
    maps tenant name → admission counts.  Join-run sections (``per_pass``
    etc.) are empty — each served join exports its *own* v4 run document;
    this one describes the serving layer above them.
    """
    latency = registry.histograms.get(SERVICE_LATENCY_METRIC)
    latency_doc = {
        "p50": latency.percentile(0.50) if latency else 0.0,
        "p99": latency.percentile(0.99) if latency else 0.0,
        "mean": latency.mean if latency else 0.0,
        "max": (latency.max or 0.0) if latency else 0.0,
        "count": latency.count if latency else 0,
    }
    requests_total = int(
        sum(registry.counters_named("service.requests_total").values())
    )
    document_meta = {"algorithm": "service", "backend": "join-service"}
    if meta:
        document_meta.update(meta)
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": DOCUMENT_KIND,
        "meta": document_meta,
        "totals": {
            "wall_ms": uptime_s * 1000.0,
            "counters": dict(registry.counters),
            "gauges": dict(registry.gauges),
            "histograms": {
                k: h.snapshot() for k, h in registry.histograms.items()
            },
        },
        "service": {
            "requests_total": requests_total,
            "queue_depth": int(queue_depth),
            "active_requests": int(active_requests),
            "latency_ms": latency_doc,
            "tenants": {
                name: {
                    "admitted": int(entry.get("admitted", 0)),
                    "queued": int(entry.get("queued", 0)),
                    "rejected": int(entry.get("rejected", 0)),
                    "degraded": int(entry.get("degraded", 0)),
                }
                for name, entry in sorted(tenants.items())
            },
            **(
                {"startup_sweep": {k: int(v) for k, v in startup_sweep.items()}}
                if startup_sweep is not None
                else {}
            ),
        },
        "per_pass": {},
        "per_worker": {},
        "per_segment": {},
        "spans": list(registry.spans),
    }


def write_stats_document(
    path: str | os.PathLike, document: dict, validate: bool = True
) -> None:
    """Validate (by default) and write one document as indented JSON."""
    if validate:
        validate_stats_document(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_stats_document(path: str | os.PathLike) -> dict:
    with open(path) as handle:
        return json.load(handle)
