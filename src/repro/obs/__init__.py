"""Unified observability: metrics, spans, and the versioned stats document.

Both execution backends emit into this package — the real-mmap storage and
parallel layers record directly, the simulator's counters adapt on through
:mod:`repro.sim.stats` — and both export the same schema-versioned JSON
document (see ``docs/metrics_schema.md``).

Typical use::

    from repro import obs

    with obs.collecting() as registry:
        with obs.span("pass", algo="grace", pass_no=0):
            ...  # instrumented code records into `registry`
    document = ...  # obs.export builds the JSON document

Instrumented code calls :func:`active`, which returns a no-op
:class:`NullRegistry` unless a registry has been activated — so an
uninstrumented run pays almost nothing.
"""

from repro.obs.compare import (
    ModelComparison,
    PassComparison,
    compare_with_model,
)
from repro.obs.export import (
    SCHEMA_VERSION,
    SERVICE_LATENCY_METRIC,
    StatsSchemaError,
    build_real_stats_document,
    build_service_stats_document,
    build_sim_stats_document,
    load_stats_document,
    schema_problems,
    validate_stats_document,
    write_stats_document,
)
from repro.obs.registry import (
    DEFAULT_MS_BUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    activate,
    active,
    collecting,
    deactivate,
    metric_key,
    parse_metric_key,
)
from repro.obs.spans import span

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "ModelComparison",
    "NullRegistry",
    "PassComparison",
    "SCHEMA_VERSION",
    "SERVICE_LATENCY_METRIC",
    "StatsSchemaError",
    "activate",
    "active",
    "build_real_stats_document",
    "build_service_stats_document",
    "build_sim_stats_document",
    "collecting",
    "compare_with_model",
    "deactivate",
    "load_stats_document",
    "metric_key",
    "parse_metric_key",
    "schema_problems",
    "span",
    "validate_stats_document",
    "write_stats_document",
]
