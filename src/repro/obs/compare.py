"""Align an exported stats document with the analytical model (Figure 5).

The paper's validation compares predicted and measured elapsed time per
Rproc; this helper does the same for the real backend's stats documents.
A modern host is orders of magnitude faster than the paper's Sequent, so
the *absolute* ratio carries little meaning — what transfers is the
**shape**: each pass's share of the total.  The model predicts, e.g., that
grace's partition passes dominate its probe pass at ample memory; the
comparison reports both shares side by side so regressions in shape are
visible even as absolute times drift with hardware.

The real backend fuses some model passes into one measured pass (its
``partition`` pass covers the model's pass 0 *and* pass 1, because the
mmap backend redistributes in a single file-to-file hop); the alignment
table below records that mapping explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.obs.export import StatsSchemaError, validate_stats_document

#: measured pass label -> model pass names whose predicted costs it covers.
PASS_ALIGNMENT: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "nested-loops": {
        "pass0": ("pass0",),
        "pass1": ("pass1",),
    },
    "sort-merge": {
        "partition": ("pass0", "pass1"),
        "sort-runs": ("pass2-sort",),
        "merge-join": ("merge-passes", "final-merge-join"),
    },
    "grace": {
        "partition": ("pass0", "pass1"),
        "probe": ("probe-join",),
    },
    "hybrid-hash": {
        "partition": ("pass0", "pass1"),
        "probe": ("probe-join",),
    },
}


@dataclass(frozen=True)
class PassComparison:
    """One measured pass against the model passes it covers."""

    measured_pass: str
    model_passes: Tuple[str, ...]
    measured_ms: float
    predicted_ms: float
    measured_share: float
    predicted_share: float

    @property
    def share_delta(self) -> float:
        return self.measured_share - self.predicted_share


@dataclass(frozen=True)
class ModelComparison:
    """Full measured-vs-predicted decomposition of one run."""

    algorithm: str
    rows: Tuple[PassComparison, ...]
    measured_total_ms: float
    predicted_total_ms: float
    unaligned_model_ms: float  # model passes (e.g. "setup") with no measured twin

    def describe(self) -> str:
        lines = [
            f"{self.algorithm}: measured {self.measured_total_ms:,.1f} ms "
            f"vs predicted {self.predicted_total_ms:,.1f} ms/Rproc "
            "(shares are the comparable quantity across machines)"
        ]
        for row in self.rows:
            lines.append(
                f"  {row.measured_pass:<16} "
                f"measured {row.measured_ms:>10,.1f} ms ({row.measured_share:5.1%})"
                f"  predicted {row.predicted_ms:>12,.1f} ms ({row.predicted_share:5.1%})"
                f"  [model: {', '.join(row.model_passes)}]"
            )
        if self.unaligned_model_ms:
            lines.append(
                f"  (model-only setup cost, folded into measured passes: "
                f"{self.unaligned_model_ms:,.1f} ms)"
            )
        return "\n".join(lines)


def compare_with_model(document: Mapping, report) -> ModelComparison:
    """Align one stats document's per-pass times with a `JoinCostReport`.

    Raises :class:`StatsSchemaError` when the document is invalid or the
    algorithm has no alignment table (the extension algorithms only exist
    on the simulator).
    """
    validate_stats_document(document)
    algorithm = document["meta"]["algorithm"]
    alignment = PASS_ALIGNMENT.get(algorithm)
    if alignment is None:
        raise StatsSchemaError(
            f"no model alignment for algorithm {algorithm!r}; "
            f"choices: {sorted(PASS_ALIGNMENT)}"
        )

    model_ms = {p.name: p.total_ms for p in report.passes}
    per_pass = document["per_pass"]
    measured: List[Tuple[str, Tuple[str, ...], float, float]] = []
    for label, model_names in alignment.items():
        if label not in per_pass:
            raise StatsSchemaError(
                f"document has no per_pass entry {label!r} "
                f"(has: {sorted(per_pass)})"
            )
        missing = [n for n in model_names if n not in model_ms]
        if missing:
            raise StatsSchemaError(
                f"model report for {algorithm!r} lacks passes {missing}"
            )
        measured.append(
            (
                label,
                model_names,
                float(per_pass[label]["wall_ms"]),
                sum(model_ms[n] for n in model_names),
            )
        )

    measured_total = sum(m for _, _, m, _ in measured)
    predicted_total = sum(p for _, _, _, p in measured)
    aligned_model = {n for _, names, _, _ in measured for n in names}
    unaligned = sum(ms for name, ms in model_ms.items() if name not in aligned_model)

    rows = tuple(
        PassComparison(
            measured_pass=label,
            model_passes=names,
            measured_ms=measured_ms,
            predicted_ms=predicted_ms,
            measured_share=measured_ms / measured_total if measured_total else 0.0,
            predicted_share=predicted_ms / predicted_total if predicted_total else 0.0,
        )
        for label, names, measured_ms, predicted_ms in measured
    )
    return ModelComparison(
        algorithm=algorithm,
        rows=rows,
        measured_total_ms=measured_total,
        predicted_total_ms=predicted_total,
        unaligned_model_ms=unaligned,
    )
