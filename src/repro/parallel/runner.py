"""Driver for the real-mmap parallel joins.

:func:`run_real_join` materializes a workload into a :class:`Store`,
dispatches the per-partition workers (one OS process per partition by
default, mirroring the paper's Rproc-per-disk design), checks record
conservation across the passes, and returns per-pass wall-clock timings,
pair counts and checksums.

One :class:`multiprocessing.Pool` is forked per join and reused across all
of its passes (forking a fresh pool per pass costs more than some passes
themselves).  Workers never pickle join output back through the pool: each
streams its pairs into a mapped ``PAIRS`` segment and returns only a
``(count, checksum, path)`` triple; the parent materializes the pairs from
those segments — and only when ``collect_pairs`` asks for them, mirroring
the simulator's ``PairCollector(keep_pairs=False)`` knob.

With ``collect_metrics`` on (the default), the runner drops the
:data:`~repro.parallel.workers.OBS_MARKER` into the store root, every
worker snapshots a process-local :class:`~repro.obs.MetricsRegistry` to a
JSON sidecar, and the runner merges those snapshots per pass — counter and
histogram merges are element-wise sums, so the merged totals are exactly
what a single-process run would have counted.  The parent's own storage
activity (materialization, pair collection) lands in a separate driver
registry, and :meth:`RealJoinResult.stats_document` renders everything as
the versioned JSON stats document of ``docs/metrics_schema.md``.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.records import JoinedPair
from repro.obs.export import build_real_stats_document
from repro.obs.registry import MetricsRegistry, activate, deactivate
from repro.obs.spans import span
from repro.parallel import workers
from repro.parallel.workers import (
    CHECKSUM_MOD,
    OBS_MARKER,
    PairResult,
    metrics_sidecar,
)
from repro.storage.relation import read_pairs
from repro.storage.store import Store
from repro.workload.generator import Workload

REAL_ALGORITHMS = ("nested-loops", "sort-merge", "grace")


class RealJoinError(RuntimeError):
    """Raised when the real backend cannot run a join."""


@dataclass
class RealJoinResult:
    """Outcome of one real-mmap join."""

    algorithm: str
    pair_count: int
    checksum: int
    wall_ms: float
    pairs: Optional[List[JoinedPair]] = None
    pass_wall_ms: Dict[str, float] = field(default_factory=dict)
    pass_counts: Dict[str, int] = field(default_factory=dict)
    pass_checksums: Dict[str, int] = field(default_factory=dict)
    used_processes: bool = True
    # Registry snapshots: per pass -> per partition, plus the parent's own.
    worker_metrics: Dict[str, Dict[int, dict]] = field(default_factory=dict)
    driver_metrics: Optional[dict] = None
    metrics_enabled: bool = False

    def stats_document(self, workload: Optional[Workload] = None) -> dict:
        """Render this run as the versioned JSON stats document."""
        return build_real_stats_document(self, workload)


def run_real_join(
    algorithm: str,
    workload: Workload,
    store_root: str,
    use_processes: bool = True,
    buckets: int = 16,
    tsize: int = 64,
    irun: int = 4096,
    keep_store: bool = False,
    collect_pairs: bool = True,
    pool: Optional[multiprocessing.pool.Pool] = None,
    collect_metrics: bool = True,
) -> RealJoinResult:
    """Execute one pointer-based join on real mmap-backed files.

    ``pool`` lets a caller running several joins share one worker pool
    across them (workers are stateless — they open stores by path per
    task); a shared pool is left open for the caller to close.

    ``collect_metrics`` turns the observability layer on: per-worker
    registry snapshots merged per pass, driver-side counters and pass
    spans, all exposed on the result (``worker_metrics``,
    ``driver_metrics``, :meth:`RealJoinResult.stats_document`).  Off, the
    workers skip collection entirely (one ``stat`` call per task).
    """
    if algorithm not in REAL_ALGORITHMS:
        raise RealJoinError(
            f"unknown algorithm {algorithm!r}; choices: {sorted(REAL_ALGORITHMS)}"
        )
    disks = workload.disks
    store = Store(store_root, disks)
    driver_registry: Optional[MetricsRegistry] = None
    if collect_metrics:
        (Path(store_root) / OBS_MARKER).touch()
        driver_registry = activate(MetricsRegistry())
    try:
        store.materialize(workload)
        owns_pool = pool is None and use_processes and disks > 1
        if owns_pool:
            pool = multiprocessing.Pool(processes=disks)
        elif not use_processes:
            pool = None
    except BaseException:
        if driver_registry is not None:
            deactivate()
        raise
    spec = workload.spec
    r_total = workload.r_objects_total
    started = time.perf_counter()
    pass_wall: Dict[str, float] = {}
    pass_counts: Dict[str, int] = {}
    pass_checksums: Dict[str, int] = {}
    pair_results: List[PairResult] = []
    worker_metrics: Dict[str, Dict[int, dict]] = {}

    def harvest_metrics(
        worker: Callable, arg_list: Sequence[tuple], label: str
    ) -> None:
        """Merge the pass's worker registry sidecars into the result."""
        if not collect_metrics:
            return
        snapshots: Dict[int, dict] = {}
        for args in arg_list:
            partition = args[2]
            sidecar = metrics_sidecar(store_root, worker.__name__, partition)
            if sidecar.exists():
                snapshots[partition] = json.loads(sidecar.read_text())
                sidecar.unlink()
        worker_metrics[label] = snapshots

    def run_pairs_pass(worker: Callable, arg_list: Sequence[tuple], label: str) -> None:
        with span("pass", algo=algorithm, label=label):
            results = _run_pass(pool, worker, arg_list, pass_wall, label)
        harvest_metrics(worker, arg_list, label)
        pass_counts[label] = sum(r.count for r in results)
        pass_checksums[label] = sum(r.checksum for r in results) % CHECKSUM_MOD
        pair_results.extend(results)

    def run_move_pass(worker: Callable, arg_list: Sequence[tuple], label: str) -> None:
        with span("pass", algo=algorithm, label=label):
            results = _run_pass(pool, worker, arg_list, pass_wall, label)
        harvest_metrics(worker, arg_list, label)
        pass_counts[label] = sum(results)

    try:
        if algorithm == "nested-loops":
            args0 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes)
                for i in range(disks)
            ]
            run_pairs_pass(workers.nested_loops_pass0, args0, "pass0")
            args1 = [(store_root, disks, i, spec.s_objects) for i in range(disks)]
            run_pairs_pass(workers.nested_loops_pass1, args1, "pass1")
            _check_conservation(
                algorithm, "pass0+pass1 pairs",
                pass_counts["pass0"] + pass_counts["pass1"], r_total,
            )
        elif algorithm == "sort-merge":
            args01 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes)
                for i in range(disks)
            ]
            run_move_pass(workers.sort_merge_partition, args01, "partition")
            _check_conservation(
                algorithm, "partitioned records",
                pass_counts["partition"], r_total,
            )
            args2 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes, irun)
                for i in range(disks)
            ]
            run_pairs_pass(workers.sort_merge_join, args2, "sort-merge-join")
            _check_conservation(
                algorithm, "joined records",
                pass_counts["sort-merge-join"], pass_counts["partition"],
            )
        else:  # grace
            args01 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes, buckets)
                for i in range(disks)
            ]
            run_move_pass(workers.grace_partition, args01, "partition")
            _check_conservation(
                algorithm, "partitioned records",
                pass_counts["partition"], r_total,
            )
            args2 = [
                (store_root, disks, i, spec.s_objects, buckets, tsize)
                for i in range(disks)
            ]
            run_pairs_pass(workers.grace_probe, args2, "probe")
            _check_conservation(
                algorithm, "probed records",
                pass_counts["probe"], pass_counts["partition"],
            )

        pairs: Optional[List[JoinedPair]] = None
        if collect_pairs:
            pairs = []
            for result in pair_results:
                pairs.extend(read_pairs(result.path))
    finally:
        if driver_registry is not None:
            deactivate()
        if owns_pool and pool is not None:
            pool.close()
            pool.join()
        if not keep_store:
            store.destroy()

    wall_ms = (time.perf_counter() - started) * 1000.0
    return RealJoinResult(
        algorithm=algorithm,
        pair_count=sum(r.count for r in pair_results),
        checksum=sum(r.checksum for r in pair_results) % CHECKSUM_MOD,
        wall_ms=wall_ms,
        pairs=pairs,
        pass_wall_ms=pass_wall,
        pass_counts=pass_counts,
        pass_checksums=pass_checksums,
        used_processes=use_processes,
        worker_metrics=worker_metrics,
        driver_metrics=(
            driver_registry.snapshot() if driver_registry is not None else None
        ),
        metrics_enabled=collect_metrics,
    )


def _run_pass(
    pool,
    worker: Callable,
    arg_list: Sequence[tuple],
    pass_wall: Dict[str, float],
    label: str,
) -> list:
    """Dispatch one pass to all partitions; every worker result is kept."""
    started = time.perf_counter()
    if pool is not None:
        results = pool.map(worker, arg_list)
    else:
        results = [worker(args) for args in arg_list]
    pass_wall[label] = (time.perf_counter() - started) * 1000.0
    return results


def _check_conservation(
    algorithm: str, what: str, produced: int, expected: int
) -> None:
    """Records in must equal records out — lost or duplicated objects in a
    redistribution or probe pass are the real failure modes here."""
    if produced != expected:
        raise RealJoinError(
            f"{algorithm}: {what} not conserved "
            f"({produced} produced, {expected} expected)"
        )
