"""Driver for the real-mmap parallel joins.

:func:`run_real_join` materializes a workload into a :class:`Store`,
dispatches the per-partition workers (one OS process per partition by
default, mirroring the paper's Rproc-per-disk design), verifies nothing is
left behind, and returns the joined pairs with wall-clock timings per pass.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.core.records import JoinedPair
from repro.parallel import workers
from repro.storage.store import Store
from repro.workload.generator import Workload

REAL_ALGORITHMS = ("nested-loops", "sort-merge", "grace")


class RealJoinError(RuntimeError):
    """Raised when the real backend cannot run a join."""


@dataclass
class RealJoinResult:
    """Outcome of one real-mmap join."""

    algorithm: str
    pairs: List[JoinedPair]
    wall_ms: float
    pass_wall_ms: Dict[str, float] = field(default_factory=dict)
    used_processes: bool = True

    @property
    def pair_count(self) -> int:
        return len(self.pairs)


def run_real_join(
    algorithm: str,
    workload: Workload,
    store_root: str,
    use_processes: bool = True,
    buckets: int = 16,
    tsize: int = 64,
    irun: int = 4096,
    keep_store: bool = False,
) -> RealJoinResult:
    """Execute one pointer-based join on real mmap-backed files."""
    if algorithm not in REAL_ALGORITHMS:
        raise RealJoinError(
            f"unknown algorithm {algorithm!r}; choices: {sorted(REAL_ALGORITHMS)}"
        )
    disks = workload.disks
    store = Store(store_root, disks)
    store.materialize(workload)
    spec = workload.spec
    started = time.perf_counter()
    pass_wall: Dict[str, float] = {}
    pairs: List[JoinedPair] = []

    try:
        if algorithm == "nested-loops":
            args0 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes)
                for i in range(disks)
            ]
            pairs += _run_pass(
                workers.nested_loops_pass0, args0, use_processes, pass_wall, "pass0"
            )
            args1 = [(store_root, disks, i, spec.s_objects) for i in range(disks)]
            pairs += _run_pass(
                workers.nested_loops_pass1, args1, use_processes, pass_wall, "pass1"
            )
        elif algorithm == "sort-merge":
            args01 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes)
                for i in range(disks)
            ]
            _run_pass(
                workers.sort_merge_partition, args01, use_processes, pass_wall,
                "partition",
            )
            args2 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes, irun)
                for i in range(disks)
            ]
            pairs += _run_pass(
                workers.sort_merge_join, args2, use_processes, pass_wall,
                "sort-merge-join",
            )
        else:  # grace
            args01 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes, buckets)
                for i in range(disks)
            ]
            _run_pass(
                workers.grace_partition, args01, use_processes, pass_wall,
                "partition",
            )
            args2 = [
                (store_root, disks, i, spec.s_objects, buckets, tsize)
                for i in range(disks)
            ]
            pairs += _run_pass(
                workers.grace_probe, args2, use_processes, pass_wall, "probe"
            )
    finally:
        if not keep_store:
            store.destroy()

    wall_ms = (time.perf_counter() - started) * 1000.0
    return RealJoinResult(
        algorithm=algorithm,
        pairs=pairs,
        wall_ms=wall_ms,
        pass_wall_ms=pass_wall,
        used_processes=use_processes,
    )


def _run_pass(
    worker: Callable,
    arg_list: Sequence[tuple],
    use_processes: bool,
    pass_wall: Dict[str, float],
    label: str,
) -> List[JoinedPair]:
    """Dispatch one pass to all partitions, flattening list results."""
    started = time.perf_counter()
    if use_processes and len(arg_list) > 1:
        with multiprocessing.Pool(processes=len(arg_list)) as pool:
            results = pool.map(worker, arg_list)
    else:
        results = [worker(args) for args in arg_list]
    pass_wall[label] = (time.perf_counter() - started) * 1000.0
    flattened: List[JoinedPair] = []
    for result in results:
        if isinstance(result, list):
            flattened.extend(result)
    return flattened
