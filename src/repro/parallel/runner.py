"""Driver for the real-mmap parallel joins.

:func:`run_real_join` materializes a workload into a :class:`Store`,
dispatches the per-partition workers (one OS process per partition by
default, mirroring the paper's Rproc-per-disk design), checks record
conservation across the passes, and returns per-pass wall-clock timings,
pair counts and checksums.

One :class:`multiprocessing.Pool` is forked per join and reused across all
of its passes (forking a fresh pool per pass costs more than some passes
themselves).  Workers never pickle join output back through the pool: each
streams its pairs into a mapped ``PAIRS`` segment and returns only a
``(count, checksum, path)`` triple; the parent materializes the pairs from
those segments — and only when ``collect_pairs`` asks for them, mirroring
the simulator's ``PairCollector(keep_pairs=False)`` knob.

Dispatch is recovery-aware.  Each pass submits one future per partition
(``apply_async``) and collects it with an optional ``task_timeout``; a
partition whose worker dies, raises, or fails to report in time is retried
— with exponential backoff — up to a configurable budget.  Retries are
safe because every worker's outputs are published atomically (tmp-write /
rename in the storage layer) and re-created with ``overwrite=True``, so a
half-finished dead attempt leaves nothing a retry can observe.  When the
pool itself is unrecoverable (hung workers), the still-failing partitions
are run inline in the parent as a last resort, and a pool that may still
harbor abandoned tasks is terminated rather than joined.  Deterministic
faults (:class:`~repro.parallel.faults.FaultPlan`) exercise all of this.

Resource exhaustion is governed, not retried.  A classified
:class:`~repro.governor.errors.ResourceExhausted` out of a worker (the
memory meter tripping its budget, a disk preflight refusing a segment, a
real or injected ENOSPC) is deterministic under the same plan, so the
dispatcher lets it surface immediately; under ``on_pressure="degrade"``
the runner then descends one rung of the plan's degradation ladder
(:meth:`~repro.governor.predict.JoinPlan.degraded` — smaller batches,
smaller sort runs, chunked grace spilling, finer buckets), resets the
round (temps cleared; passes are idempotent), and re-executes.  Admission
happens before the store is touched: the analytical model predicts the
footprint (:func:`~repro.governor.predict.predict_footprint`), an
over-budget plan is pre-degraded to fit
(:func:`~repro.governor.predict.fit_plan`) or rejected, and an optional
shared :class:`~repro.governor.ResourceGovernor` bounds how many joins
run at once.  Every decision lands in ``RealJoinResult.governor`` (the
stats document's ``totals.governor`` section).

With ``collect_metrics`` on (the default), the runner drops the
:data:`~repro.parallel.workers.OBS_MARKER` into the store root, every
worker snapshots a process-local :class:`~repro.obs.MetricsRegistry` to a
JSON sidecar, and the runner merges those snapshots per pass — counter and
histogram merges are element-wise sums, so the merged totals are exactly
what a single-process run would have counted.  The parent's own storage
activity (materialization, pair collection) and the recovery counters
(``runner.retries_total`` etc.) land in a separate driver registry, and
:meth:`RealJoinResult.stats_document` renders everything as the versioned
JSON stats document of ``docs/metrics_schema.md``.

Whatever happens — success, exhausted retries, a conservation failure, a
rejected admission — the run's control files (metrics marker, metrics
sidecars, fault plan, attempt counters, budget file) and any unpublished
``*.seg.tmp`` segments are swept from the store root before the driver
returns or raises.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.pool
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.records import JoinedPair
from repro.governor.budget import install_budgets, store_usage_bytes, sweep_budgets
from repro.governor.errors import (
    DiskExhausted,
    MemoryExhausted,
    ResourceExhausted,
)
from repro.governor.governor import ResourceGovernor
from repro.governor.predict import JoinPlan, fit_plan, predict_footprint
from repro.obs.export import build_real_stats_document
from repro.obs.registry import MetricsRegistry, activate, active, deactivate
from repro.obs.spans import span
from repro.parallel import workers
from repro.parallel.faults import (
    FaultPlan,
    InjectedHang,
    RetryPolicy,
    sweep_fault_state,
)
from repro.parallel.workers import (
    CHECKSUM_MOD,
    OBS_MARKER,
    PairResult,
    metrics_sidecar,
)
from repro.storage.relation import iter_pairs_file
from repro.storage.store import Store
from repro.workload.generator import Workload

REAL_ALGORITHMS = ("nested-loops", "sort-merge", "grace")

ON_PRESSURE_MODES = ("degrade", "queue", "fail")

#: Backoff between retry rounds never sleeps longer than this.
_BACKOFF_CAP_S = 2.0


class RealJoinError(RuntimeError):
    """Raised when the real backend cannot run a join."""


@dataclass
class RealJoinResult:
    """Outcome of one real-mmap join."""

    algorithm: str
    pair_count: int
    checksum: int
    wall_ms: float
    pairs: Optional[List[JoinedPair]] = None
    pass_wall_ms: Dict[str, float] = field(default_factory=dict)
    pass_counts: Dict[str, int] = field(default_factory=dict)
    pass_checksums: Dict[str, int] = field(default_factory=dict)
    used_processes: bool = True
    # Registry snapshots: per pass -> per partition, plus the parent's own.
    worker_metrics: Dict[str, Dict[int, dict]] = field(default_factory=dict)
    driver_metrics: Optional[dict] = None
    metrics_enabled: bool = False
    # Recovery totals: how hard the dispatcher had to work for this result.
    retries_total: int = 0
    timeouts_total: int = 0
    inline_fallbacks: int = 0
    # Governance totals: how far the plan had to shrink to fit its budget
    # (admission-time fit steps + runtime degradation rounds), and the
    # governor's full decision record (None on ungoverned runs).
    degradations_total: int = 0
    governor: Optional[dict] = None

    def stats_document(self, workload: Optional[Workload] = None) -> dict:
        """Render this run as the versioned JSON stats document."""
        return build_real_stats_document(self, workload)


def run_real_join(
    algorithm: str,
    workload: Workload,
    store_root: str,
    use_processes: bool = True,
    buckets: int = 16,
    tsize: int = 64,
    irun: int = 4096,
    keep_store: bool = False,
    collect_pairs: bool = True,
    pool: Optional[multiprocessing.pool.Pool] = None,
    collect_metrics: bool = True,
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff_s: float = 0.05,
    fallback_inline: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    mem_budget: Optional[int] = None,
    disk_budget: Optional[int] = None,
    on_pressure: str = "degrade",
    governor: Optional[ResourceGovernor] = None,
    deadline_s: Optional[float] = None,
    max_degradations: int = 8,
    batch_records: Optional[int] = None,
) -> RealJoinResult:
    """Execute one pointer-based join on real mmap-backed files.

    ``pool`` lets a caller running several joins share one worker pool
    across them (workers are stateless — they open stores by path per
    task); a shared pool is left open for the caller to close, and is
    never terminated even when a fault leaves it with abandoned tasks.

    ``retries`` / ``task_timeout`` / ``backoff_s`` / ``fallback_inline``
    configure the :class:`~repro.parallel.faults.RetryPolicy`: each
    partition's task gets ``1 + retries`` pool attempts, a task that
    exceeds ``task_timeout`` seconds is declared dead and retried, and —
    if pool attempts are exhausted and ``fallback_inline`` is set — the
    failing partitions run once more in the parent process.  A crashed
    pool worker never delivers its result, so crash *detection* in pool
    mode requires a ``task_timeout``.

    ``fault_plan`` installs a deterministic
    :class:`~repro.parallel.faults.FaultPlan` into the store root before
    the first pass, so chosen ``(task, partition, attempt)`` coordinates
    crash, hang, tear their output, or hit resource pressure on cue.

    ``mem_budget`` (total, split evenly across the ``disks`` workers) and
    ``disk_budget`` (whole store) arm the governor: the analytical model
    predicts the footprint before anything runs, and ``on_pressure``
    decides what an over-budget prediction or a runtime
    :class:`~repro.governor.errors.ResourceExhausted` does — ``degrade``
    re-plans down the ladder (up to ``max_degradations`` rounds),
    ``queue``/``fail`` raise the classified error.  A shared ``governor``
    additionally bounds concurrent admissions (``queue`` waits its turn up
    to ``deadline_s``; ``fail`` rejects when saturated).  Budgeted and
    governed runs report every decision in ``RealJoinResult.governor``.

    ``collect_metrics`` turns the observability layer on: per-worker
    registry snapshots merged per pass, driver-side counters and pass
    spans, all exposed on the result (``worker_metrics``,
    ``driver_metrics``, :meth:`RealJoinResult.stats_document`).  Off, the
    workers skip collection entirely (one ``stat`` call per task).
    """
    if algorithm not in REAL_ALGORITHMS:
        raise RealJoinError(
            f"unknown algorithm {algorithm!r}; choices: {sorted(REAL_ALGORITHMS)}"
        )
    if on_pressure not in ON_PRESSURE_MODES:
        raise RealJoinError(
            f"unknown on_pressure mode {on_pressure!r}; "
            f"choices: {sorted(ON_PRESSURE_MODES)}"
        )
    if mem_budget is not None and mem_budget <= 0:
        raise RealJoinError(f"mem_budget must be positive: {mem_budget}")
    if disk_budget is not None and disk_budget <= 0:
        raise RealJoinError(f"disk_budget must be positive: {disk_budget}")
    policy = RetryPolicy(
        retries=retries,
        task_timeout=task_timeout,
        backoff_s=backoff_s,
        fallback_inline=fallback_inline,
    )
    disks = workload.disks
    plan = JoinPlan(
        batch_records=(
            batch_records if batch_records is not None else workers.BATCH_RECORDS
        ),
        irun=irun,
        buckets=buckets,
        tsize=tsize,
    )
    governed = (
        mem_budget is not None or disk_budget is not None or governor is not None
    )
    worker_budget = mem_budget // disks if mem_budget is not None else None

    # ------------------------------------------------------------ admission
    # The model speaks first: predict the plan's footprint, shrink it to
    # fit (degrade) or refuse it (queue/fail) *before* creating anything.
    admission = "admitted"
    admission_degradations = 0
    predicted = None
    if governed:
        predicted = predict_footprint(algorithm, workload, plan, worker_budget)
        if worker_budget is not None:
            if on_pressure == "degrade":
                plan, admission_degradations, predicted = fit_plan(
                    algorithm, workload, plan, worker_budget
                )
                if admission_degradations:
                    admission = "degraded"
            elif predicted.mem_high_water_bytes > worker_budget:
                raise MemoryExhausted(
                    f"{algorithm}: predicted per-worker high-water mark "
                    "exceeds the memory budget",
                    requested=int(predicted.mem_high_water_bytes),
                    limit=worker_budget,
                )
        if disk_budget is not None and predicted.disk_bytes > disk_budget:
            # Disk has no useful ladder: spill capacities are workload-
            # determined, so a plan predicted not to fit never will.
            raise DiskExhausted(
                f"{algorithm}: predicted disk footprint exceeds the budget",
                requested=int(predicted.disk_bytes),
                limit=disk_budget,
            )

    # clean_orphans: this is the driver, the one place where no sibling
    # writer can be mid-publish, so stale *.seg.tmp from a previous dead
    # run are safe to sweep (live tmps are flock-protected regardless).
    store = Store(store_root, disks, clean_orphans=True)
    _sweep_run_artifacts(store_root, store)
    if mem_budget is not None or disk_budget is not None:
        install_budgets(store_root, worker_budget, disk_budget)

    ticket = None
    if governor is not None:
        ticket = governor.admit(on_pressure, deadline_s)
        if ticket.decision == "queued":
            admission = "queued"

    driver_registry: Optional[MetricsRegistry] = None
    owns_pool = False
    recovery = {"retries": 0, "timeouts": 0, "inline_fallbacks": 0,
                "pool_dirty": False}
    spec = workload.spec
    r_total = workload.r_objects_total
    pass_wall: Dict[str, float] = {}
    pass_counts: Dict[str, int] = {}
    pass_checksums: Dict[str, int] = {}
    pair_results: List[PairResult] = []
    worker_metrics: Dict[str, Dict[int, dict]] = {}
    resource_errors: Dict[str, int] = {}
    runtime_degradations = 0
    disk_peak = 0
    started = time.perf_counter()

    def harvest_metrics(
        worker: Callable, arg_list: Sequence[tuple], label: str
    ) -> None:
        """Merge the pass's worker registry sidecars into the result."""
        if not collect_metrics:
            return
        snapshots: Dict[int, dict] = {}
        for args in arg_list:
            partition = args[2]
            sidecar = metrics_sidecar(store_root, worker.__name__, partition)
            if sidecar.exists():
                snapshots[partition] = json.loads(sidecar.read_text())
                sidecar.unlink()
        worker_metrics[label] = snapshots

    def sample_disk() -> None:
        """Track the store's reservation high-water mark across passes."""
        nonlocal disk_peak
        if governed:
            disk_peak = max(disk_peak, store_usage_bytes(store_root))

    def run_pairs_pass(worker: Callable, arg_list: Sequence[tuple], label: str) -> None:
        with span("pass", algo=algorithm, label=label):
            results = _dispatch_pass(
                pool, worker, arg_list, pass_wall, label,
                policy, store_root, algorithm, recovery,
            )
        harvest_metrics(worker, arg_list, label)
        sample_disk()
        pass_counts[label] = sum(r.count for r in results)
        pass_checksums[label] = sum(r.checksum for r in results) % CHECKSUM_MOD
        pair_results.extend(results)

    def run_move_pass(worker: Callable, arg_list: Sequence[tuple], label: str) -> None:
        with span("pass", algo=algorithm, label=label):
            results = _dispatch_pass(
                pool, worker, arg_list, pass_wall, label,
                policy, store_root, algorithm, recovery,
            )
        harvest_metrics(worker, arg_list, label)
        sample_disk()
        pass_counts[label] = sum(results)

    def execute_passes(current: JoinPlan) -> None:
        """One full attempt of every pass under ``current``'s knobs."""
        if algorithm == "nested-loops":
            args0 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes,
                 current.batch_records)
                for i in range(disks)
            ]
            run_pairs_pass(workers.nested_loops_pass0, args0, "pass0")
            args1 = [
                (store_root, disks, i, spec.s_objects, current.batch_records)
                for i in range(disks)
            ]
            run_pairs_pass(workers.nested_loops_pass1, args1, "pass1")
            _check_conservation(
                algorithm, "pass0+pass1 pairs",
                pass_counts["pass0"] + pass_counts["pass1"], r_total,
            )
        elif algorithm == "sort-merge":
            args01 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes,
                 current.batch_records)
                for i in range(disks)
            ]
            run_move_pass(workers.sort_merge_partition, args01, "partition")
            _check_conservation(
                algorithm, "partitioned records",
                pass_counts["partition"], r_total,
            )
            args2 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes,
                 current.irun, current.batch_records)
                for i in range(disks)
            ]
            run_pairs_pass(workers.sort_merge_join, args2, "sort-merge-join")
            _check_conservation(
                algorithm, "joined records",
                pass_counts["sort-merge-join"], pass_counts["partition"],
            )
        else:  # grace
            args01 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes,
                 current.buckets, current.spill_threshold,
                 current.batch_records)
                for i in range(disks)
            ]
            run_move_pass(workers.grace_partition, args01, "partition")
            _check_conservation(
                algorithm, "partitioned records",
                pass_counts["partition"], r_total,
            )
            args2 = [
                (store_root, disks, i, spec.s_objects, current.buckets,
                 current.tsize, current.batch_records)
                for i in range(disks)
            ]
            run_pairs_pass(workers.grace_probe, args2, "probe")
            _check_conservation(
                algorithm, "probed records",
                pass_counts["probe"], pass_counts["partition"],
            )

    def reset_round() -> None:
        """Wipe one failed round's partial state so the next is pristine.

        Temps (spills, runs, chunks, pairs) are re-created from R/S, so
        clearing them keeps a re-planned round from double-counting stale
        files written under the previous plan's knobs.  Fault attempt
        counters are deliberately *kept*: a one-shot injected fault must
        not re-fire in the degraded round.
        """
        pass_wall.clear()
        pass_counts.clear()
        pass_checksums.clear()
        pair_results.clear()
        worker_metrics.clear()
        for sidecar in Path(store_root).glob("metrics_*.json"):
            sidecar.unlink(missing_ok=True)
        store.cleanup_temps()
        store.cleanup_orphans()

    try:
        if collect_metrics:
            (Path(store_root) / OBS_MARKER).touch()
            driver_registry = activate(MetricsRegistry())
        store.materialize(workload)
        sample_disk()
        if fault_plan is not None:
            fault_plan.install(store_root)
        if pool is None and use_processes and disks > 1:
            owns_pool = True
            pool = multiprocessing.Pool(processes=disks)
        elif not use_processes:
            pool = None

        while True:
            try:
                execute_passes(plan)
                break
            except ResourceExhausted as error:
                resource_errors[error.resource] = (
                    resource_errors.get(error.resource, 0) + 1
                )
                active().count(
                    "runner.resource_errors_total", 1,
                    algo=algorithm, resource=error.resource,
                )
                lowered = plan.degraded(algorithm, error.resource)
                if (
                    on_pressure != "degrade"
                    or runtime_degradations >= max_degradations
                    or lowered == plan
                ):
                    raise
                plan = lowered
                runtime_degradations += 1
                active().count(
                    "runner.degradations_total", 1, algo=algorithm
                )
                reset_round()

        pairs: Optional[List[JoinedPair]] = None
        if collect_pairs:
            pairs = []
            for result in pair_results:
                # Streamed a batch at a time: only the final list (which
                # the caller asked for) is whole-output, never a second
                # per-file materialization on top of it.
                pairs.extend(iter_pairs_file(result.path, plan.batch_records))
    finally:
        if driver_registry is not None:
            deactivate()
        if owns_pool and pool is not None:
            if recovery["pool_dirty"]:
                # Abandoned (hung or crashed mid-task) workers would block
                # close()+join() forever; this pool is ours, so kill it.
                pool.terminate()
            else:
                pool.close()
            pool.join()
        # The run's control files must not outlive the run — success or
        # failure.  Order matters: only after the pool is gone is no
        # worker left that could still be writing a sidecar or a .tmp.
        _sweep_run_artifacts(store_root, store)
        if not keep_store:
            store.destroy()
        if ticket is not None:
            ticket.release()

    governor_doc: Optional[dict] = None
    if governed:
        if runtime_degradations:
            # The plan changed mid-run; report the prediction for the plan
            # that actually produced the result.
            predicted = predict_footprint(
                algorithm, workload, plan, worker_budget
            )
        governor_doc = {
            "admission": admission,
            "on_pressure": on_pressure,
            "queued_ms": ticket.queued_ms if ticket is not None else 0.0,
            "admission_degradations": admission_degradations,
            "runtime_degradations": runtime_degradations,
            "degradations_total": admission_degradations + runtime_degradations,
            "resource_errors": dict(resource_errors),
            "budgets": {
                "mem_budget_bytes": mem_budget,
                "worker_mem_budget_bytes": worker_budget,
                "disk_budget_bytes": disk_budget,
            },
            "plan": plan.as_dict(),
            "predicted": predicted.as_dict(),
            "observed": {
                "worker_mem_high_water_bytes": _max_worker_gauge(
                    worker_metrics, "worker.mem_high_water_bytes"
                ),
                "worker_mapped_peak_bytes": _max_worker_gauge(
                    worker_metrics, "worker.mapped_peak_bytes"
                ),
                "worker_rss_max_bytes": _max_worker_gauge(
                    worker_metrics, "worker.rss_max_bytes"
                ),
                "disk_peak_bytes": disk_peak,
            },
        }

    wall_ms = (time.perf_counter() - started) * 1000.0
    return RealJoinResult(
        algorithm=algorithm,
        pair_count=sum(r.count for r in pair_results),
        checksum=sum(r.checksum for r in pair_results) % CHECKSUM_MOD,
        wall_ms=wall_ms,
        pairs=pairs,
        pass_wall_ms=pass_wall,
        pass_counts=pass_counts,
        pass_checksums=pass_checksums,
        used_processes=use_processes,
        worker_metrics=worker_metrics,
        driver_metrics=(
            driver_registry.snapshot() if driver_registry is not None else None
        ),
        metrics_enabled=collect_metrics,
        retries_total=recovery["retries"],
        timeouts_total=recovery["timeouts"],
        inline_fallbacks=recovery["inline_fallbacks"],
        degradations_total=admission_degradations + runtime_degradations,
        governor=governor_doc,
    )


def _max_worker_gauge(
    worker_metrics: Dict[str, Dict[int, dict]], name: str
) -> Optional[float]:
    """The maximum of one gauge across every worker snapshot, or None."""
    prefix = name + "{"
    best: Optional[float] = None
    for snapshots in worker_metrics.values():
        for snapshot in snapshots.values():
            for key, value in snapshot.get("gauges", {}).items():
                if key == name or key.startswith(prefix):
                    best = value if best is None else max(best, value)
    return best


def _sweep_run_artifacts(store_root: str, store: Store) -> None:
    """Remove every run-scoped control file from the store root.

    Called before a run (stale state from a previous dead driver) and on
    every exit path (nothing of a finished run may leak): the metrics
    marker, metrics sidecars, the fault plan and its attempt counters,
    the budget file, and unpublished ``*.seg.tmp`` segments.
    """
    root = Path(store_root)
    if not root.exists():
        return
    (root / OBS_MARKER).unlink(missing_ok=True)
    for sidecar in root.glob("metrics_*.json"):
        sidecar.unlink(missing_ok=True)
    sweep_fault_state(root)
    sweep_budgets(root)
    store.cleanup_orphans()


def _dispatch_pass(
    pool,
    worker: Callable,
    arg_list: Sequence[tuple],
    pass_wall: Dict[str, float],
    label: str,
    policy: RetryPolicy,
    store_root: str,
    algorithm: str,
    recovery: dict,
) -> list:
    """Dispatch one pass to all partitions, retrying failed tasks.

    Every task gets ``1 + policy.retries`` attempts (plus one optional
    inline-fallback attempt in the parent).  Between rounds the dispatcher
    backs off exponentially.  Retrying is safe because worker outputs are
    only published by atomic rename and re-created with overwrite, so a
    failed attempt's partial work is invisible to its retry.

    Classified :class:`ResourceExhausted` failures are *not* retried —
    under the same plan the same budget trips deterministically — they
    propagate to the runner's degradation loop instead.
    """
    started = time.perf_counter()
    task = worker.__name__
    results: list = [None] * len(arg_list)
    pending = list(range(len(arg_list)))
    errors: List[BaseException] = []
    labels = {"algo": algorithm, "pass": label}
    for attempt in range(policy.retries + 1):
        if not pending:
            break
        if attempt:
            recovery["retries"] += len(pending)
            active().count("runner.retries_total", len(pending), **labels)
            time.sleep(
                min(policy.backoff_s * (2 ** (attempt - 1)), _BACKOFF_CAP_S)
            )
        pending = _run_round(
            pool, worker, arg_list, pending, results,
            policy, store_root, recovery, errors, labels,
        )
    if pending and pool is not None and policy.fallback_inline:
        # Graceful degradation: the pool could not finish these partitions
        # within budget (it may be unrecoverable); run them in-process.
        recovery["inline_fallbacks"] += len(pending)
        active().count("runner.inline_fallbacks_total", len(pending), **labels)
        pending = _run_round(
            None, worker, arg_list, pending, results,
            policy, store_root, recovery, errors, labels,
        )
    if pending:
        partitions = [arg_list[idx][2] for idx in pending]
        raise RealJoinError(
            f"{algorithm} {label}: partitions {partitions} failed "
            f"{task} after {policy.retries + 1} attempt(s)"
        ) from (errors[-1] if errors else None)
    pass_wall[label] = (time.perf_counter() - started) * 1000.0
    return results


def _run_round(
    pool,
    worker: Callable,
    arg_list: Sequence[tuple],
    indices: List[int],
    results: list,
    policy: RetryPolicy,
    store_root: str,
    recovery: dict,
    errors: List[BaseException],
    labels: Dict[str, str],
) -> List[int]:
    """Run one attempt for each pending task; return the still-failing set.

    A :class:`ResourceExhausted` ends the round: inline it raises at once;
    in pool mode the remaining futures are *drained first* (so no sibling
    task of this round is still running when the runner re-plans and
    re-dispatches — an abandoned attempt publishing over its replacement
    would corrupt the degraded round) and the first classified error is
    then raised.
    """
    task = worker.__name__
    for idx in indices:
        # A dead attempt may have left a sidecar snapshotted before its
        # fault fired (or a stale one from a previous run); drop it so
        # the harvest only ever sees the attempt that actually finished.
        metrics_sidecar(store_root, task, arg_list[idx][2]).unlink(
            missing_ok=True
        )
    still: List[int] = []
    if pool is not None:
        futures = [
            (idx, pool.apply_async(worker, (arg_list[idx],)))
            for idx in indices
        ]
        resource_error: Optional[ResourceExhausted] = None
        for idx, future in futures:
            try:
                results[idx] = future.get(policy.task_timeout)
            except multiprocessing.TimeoutError:
                # The worker died mid-task (its result will never arrive)
                # or is hung; either way the pool now holds an abandoned
                # task, so it can no longer be join()ed safely.
                recovery["timeouts"] += 1
                recovery["pool_dirty"] = True
                active().count("runner.timeouts_total", 1, **labels)
                errors.append(
                    TimeoutError(
                        f"{task} partition {arg_list[idx][2]} exceeded "
                        f"{policy.task_timeout}s"
                    )
                )
                still.append(idx)
            except ResourceExhausted as error:
                if resource_error is None:
                    resource_error = error
            except Exception as error:
                active().count("runner.worker_failures_total", 1, **labels)
                errors.append(error)
                still.append(idx)
        if resource_error is not None:
            raise resource_error
    else:
        for idx in indices:
            try:
                results[idx] = worker(arg_list[idx])
            except ResourceExhausted:
                raise
            except InjectedHang as error:
                # Inline stand-in for a task timeout: counted as one, so
                # the timeout/retry path is testable without processes.
                recovery["timeouts"] += 1
                active().count("runner.timeouts_total", 1, **labels)
                errors.append(error)
                still.append(idx)
            except Exception as error:
                active().count("runner.worker_failures_total", 1, **labels)
                errors.append(error)
                still.append(idx)
    return still


def _check_conservation(
    algorithm: str, what: str, produced: int, expected: int
) -> None:
    """Records in must equal records out — lost or duplicated objects in a
    redistribution or probe pass are the real failure modes here."""
    if produced != expected:
        raise RealJoinError(
            f"{algorithm}: {what} not conserved "
            f"({produced} produced, {expected} expected)"
        )
