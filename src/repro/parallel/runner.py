"""Driver for the real-mmap parallel joins.

:func:`run_real_join` is a thin facade over the pass-pipeline engine:
it validates the request, resolves the algorithm's declarative
:class:`~repro.parallel.engine.stages.PassPlan` from the engine
registry, performs *admission* — the analytical model predicts the
footprint (:func:`~repro.governor.predict.predict_footprint`), an
over-budget plan is pre-degraded to fit
(:func:`~repro.governor.predict.fit_plan`) or rejected, and an optional
shared :class:`~repro.governor.ResourceGovernor` bounds how many joins
run at once — then hands the admitted plan to one generic executor
(:func:`~repro.parallel.engine.executor.execute_plan`), which owns task
fan-out, retry/backoff/inline-fallback recovery, runtime degradation,
metrics harvest, conservation checks, pair collection and artifact
sweeping for **every** algorithm through the same path.

Every governance decision lands in ``RealJoinResult.governor`` (the
stats document's ``totals.governor`` section), and
:meth:`RealJoinResult.stats_document` renders the run as the versioned
JSON stats document of ``docs/metrics_schema.md``.
"""

from __future__ import annotations

import multiprocessing.pool
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import config
from repro.core.records import JoinedPair
from repro.governor.errors import DiskExhausted, MemoryExhausted
from repro.governor.governor import ResourceGovernor
from repro.governor.predict import JoinPlan, fit_plan, predict_footprint
from repro.obs.export import build_real_stats_document
from repro.parallel.engine import task as engine_task
from repro.parallel.engine.executor import (
    RealJoinError,
    execute_plan,
)
from repro.parallel.engine.rebalance import validate_rebalance_mode
from repro.parallel.engine.stages import PARTITIONER_NAMES
from repro.parallel.engine.stages import algorithms as registered_algorithms
from repro.parallel.engine.stages import plan_for
from repro.parallel.faults import FaultPlan, RetryPolicy
from repro.workload.generator import Workload

#: Derived from the engine's plan registry: registering a PassPlan is the
#: single step that adds an algorithm here, to the CLI, and to the tests.
REAL_ALGORITHMS = registered_algorithms()

ON_PRESSURE_MODES = ("degrade", "queue", "fail")


@dataclass
class RealJoinResult:
    """Outcome of one real-mmap join."""

    algorithm: str
    pair_count: int
    checksum: int
    wall_ms: float
    pairs: Optional[List[JoinedPair]] = None
    #: The published PAIRS segments as (count, checksum, path) tuples.
    #: Paths outlive the run only under ``keep_store=True``; the join
    #: service streams client deliveries straight from these mapped
    #: segments instead of asking for ``pairs``.
    pair_files: List = field(default_factory=list)
    pass_wall_ms: Dict[str, float] = field(default_factory=dict)
    pass_counts: Dict[str, int] = field(default_factory=dict)
    pass_checksums: Dict[str, int] = field(default_factory=dict)
    #: Stage kind per pass label (the engine's stage taxonomy).
    pass_kinds: Dict[str, str] = field(default_factory=dict)
    used_processes: bool = True
    # Registry snapshots: per pass -> per partition, plus the parent's own.
    worker_metrics: Dict[str, Dict[int, dict]] = field(default_factory=dict)
    driver_metrics: Optional[dict] = None
    metrics_enabled: bool = False
    # Recovery totals: how hard the dispatcher had to work for this result.
    retries_total: int = 0
    timeouts_total: int = 0
    inline_fallbacks: int = 0
    # Governance totals: how far the plan had to shrink to fit its budget
    # (admission-time fit steps + runtime degradation rounds), and the
    # governor's full decision record (None on ungoverned runs).
    degradations_total: int = 0
    governor: Optional[dict] = None
    #: Which stage-kernel implementation produced the result ("vector"
    #: numpy kernels or "scalar" per-record structs) — the mode of the
    #: plan that actually ran, after any admission/runtime degradation.
    kernel_mode: str = "vector"
    #: The partitioning strategy the run's partition stage actually used
    #: (after any ladder fallback); None for plans without one.
    partitioner: Optional[str] = None
    #: Per-stage rebalance decisions from the executor's final round:
    #: stage label -> {axis, splits, tasks, moved_records, pre_ratio,
    #: post_ratio}.  Empty when the plan ran with ``rebalance="off"`` or
    #: no stage is rebalance-capable.
    rebalance: Dict[str, dict] = field(default_factory=dict)
    #: Checkpoint-resume accounting (stats ``totals.resume``): whether a
    #: manifest was replayed, passes skipped, manifest age, and the
    #: reason a requested resume was declined.
    resume: Dict[str, object] = field(default_factory=dict)
    #: Integrity accounting (stats ``totals.integrity``): segments fully
    #: scrubbed and scrub failures during resume validation.
    integrity: Dict[str, int] = field(default_factory=dict)

    def stats_document(self, workload: Optional[Workload] = None) -> dict:
        """Render this run as the versioned JSON stats document."""
        return build_real_stats_document(self, workload)


def run_real_join(
    algorithm: str,
    workload: Workload,
    store_root: str,
    use_processes: bool = True,
    buckets: int = 16,
    tsize: int = 64,
    irun: int = 4096,
    keep_store: bool = False,
    collect_pairs: bool = True,
    pool: Optional[multiprocessing.pool.Pool] = None,
    collect_metrics: bool = True,
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff_s: float = 0.05,
    fallback_inline: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    mem_budget: Optional[int] = None,
    disk_budget: Optional[int] = None,
    on_pressure: str = "degrade",
    governor: Optional[ResourceGovernor] = None,
    deadline_s: Optional[float] = None,
    max_degradations: int = 8,
    batch_records: Optional[int] = None,
    resident_buckets: int = 4,
    kernels: Optional[str] = None,
    reuse_store: bool = False,
    tenant: Optional[str] = None,
    priority: int = 0,
    rebalance: str = "auto",
    partitioner: Optional[str] = None,
    resume: bool = False,
) -> RealJoinResult:
    """Execute one pointer-based join on real mmap-backed files.

    ``pool`` lets a caller running several joins share one worker pool
    across them (workers are stateless — they open stores by path per
    task); a shared pool is left open for the caller to close, and is
    never terminated even when a fault leaves it with abandoned tasks.

    ``retries`` / ``task_timeout`` / ``backoff_s`` / ``fallback_inline``
    configure the :class:`~repro.parallel.faults.RetryPolicy`: each
    partition's task gets ``1 + retries`` pool attempts, a task that
    exceeds ``task_timeout`` seconds is declared dead and retried, and —
    if pool attempts are exhausted and ``fallback_inline`` is set — the
    failing partitions run once more in the parent process.  A crashed
    pool worker never delivers its result, so crash *detection* in pool
    mode requires a ``task_timeout``.

    ``fault_plan`` installs a deterministic
    :class:`~repro.parallel.faults.FaultPlan` into the store root before
    the first pass, so chosen ``(task, partition, attempt)`` coordinates
    crash, hang, tear their output, or hit resource pressure on cue.

    ``mem_budget`` (total, split evenly across the ``disks`` workers) and
    ``disk_budget`` (whole store) arm the governor; ``on_pressure``
    decides what an over-budget prediction or a runtime
    :class:`~repro.governor.errors.ResourceExhausted` does — ``degrade``
    re-plans down the ladder (up to ``max_degradations`` rounds),
    ``queue``/``fail`` raise the classified error.

    ``resident_buckets`` (hybrid hash only) is how many buckets stay
    home — joined during the partition scan instead of spilled; the
    governor's final memory rung shrinks it to zero, at which point
    hybrid degenerates to grace.

    ``kernels`` selects the stage-kernel implementation: ``"vector"``
    (numpy columnar — the default when numpy is importable) or
    ``"scalar"`` (the per-record reference path).  Output is
    bit-identical either way; a vector request silently degrades to
    scalar on a numpy-less host.

    ``rebalance`` selects per-partition size rebalancing in the executor:
    ``"auto"`` (the default) shards a stage's oversized partitions into
    parallel sub-tasks only when the partition-size ratio crosses the
    executor's threshold, ``"on"`` force-shards every non-empty partition
    of the shardable stages, ``"off"`` never shards.  Join output is
    bit-identical in every mode.

    ``partitioner`` overrides the bucketed plans' partitioning strategy
    (``"hash"``, ``"radix"``, ``"learned"``); unset falls back to the
    ``REPRO_PARTITIONER`` environment knob and then to each plan's
    declared strategy (``grace-radix``/``grace-learned`` are the
    ``grace`` plan with a different declaration).  Join *pairs* are
    identical under every strategy — only the bucket layout of the
    spill files differs.

    ``reuse_store`` promises ``store_root`` already holds this exact
    workload (a warm store a previous ``keep_store=True`` run left
    behind) and skips re-materializing R/S — the join-service daemon's
    per-request saving.  ``tenant`` / ``priority`` flow to the shared
    ``governor``'s admission queue (higher priority wins a freed slot)
    and into its per-tenant accounting; both are inert without a
    governor.

    ``resume`` asks the executor to validate the store's checkpoint
    manifest (full payload scrub of every recorded artifact) and replay
    the completed passes a dead driver left behind, restarting from the
    first incomplete stage; an invalid or missing manifest silently
    falls back to a fresh run.  The resumed run is bit-identical to an
    uninterrupted one.  ``RealJoinResult.resume`` records what happened.
    """
    if algorithm not in REAL_ALGORITHMS:
        raise RealJoinError(
            f"unknown algorithm {algorithm!r}; choices: {sorted(REAL_ALGORITHMS)}"
        )
    if on_pressure not in ON_PRESSURE_MODES:
        raise RealJoinError(
            f"unknown on_pressure mode {on_pressure!r}; "
            f"choices: {sorted(ON_PRESSURE_MODES)}"
        )
    if mem_budget is not None and mem_budget <= 0:
        raise RealJoinError(f"mem_budget must be positive: {mem_budget}")
    if disk_budget is not None and disk_budget <= 0:
        raise RealJoinError(f"disk_budget must be positive: {disk_budget}")
    if algorithm == "hybrid-hash" and not 0 <= resident_buckets < buckets:
        raise RealJoinError(
            f"resident_buckets must satisfy 0 <= resident < buckets: "
            f"{resident_buckets} vs {buckets} buckets"
        )
    if kernels is None:
        kernel_mode = engine_task.default_kernel_mode()
    elif kernels in engine_task.KERNEL_MODES:
        kernel_mode = kernels
    else:
        raise RealJoinError(
            f"unknown kernel mode {kernels!r}; "
            f"choices: {engine_task.KERNEL_MODES}"
        )
    if kernel_mode == "vector" and not engine_task.vector_kernels_available():
        kernel_mode = "scalar"
    validate_rebalance_mode(rebalance)
    if partitioner is None:
        partitioner = config.env_choice("partitioner")
    elif partitioner not in PARTITIONER_NAMES:
        raise RealJoinError(
            f"unknown partitioner {partitioner!r}; "
            f"choices: {PARTITIONER_NAMES}"
        )
    pass_plan = plan_for(algorithm)
    policy = RetryPolicy(
        retries=retries,
        task_timeout=task_timeout,
        backoff_s=backoff_s,
        fallback_inline=fallback_inline,
    )
    disks = workload.disks
    plan = JoinPlan(
        batch_records=(
            batch_records
            if batch_records is not None
            else engine_task.BATCH_RECORDS
        ),
        irun=irun,
        buckets=buckets,
        tsize=tsize,
        resident_buckets=resident_buckets,
        kernel_mode=kernel_mode,
        rebalance=rebalance,
        partitioner=partitioner,
    )
    governed = (
        mem_budget is not None or disk_budget is not None or governor is not None
    )
    worker_budget = mem_budget // disks if mem_budget is not None else None

    # ------------------------------------------------------------ admission
    # The model speaks first: predict the plan's footprint, shrink it to
    # fit (degrade) or refuse it (queue/fail) *before* creating anything.
    admission = "admitted"
    admission_degradations = 0
    predicted = None
    if governed:
        predicted = predict_footprint(algorithm, workload, plan, worker_budget)
        if worker_budget is not None:
            if on_pressure == "degrade":
                plan, admission_degradations, predicted = fit_plan(
                    algorithm, workload, plan, worker_budget
                )
                if admission_degradations:
                    admission = "degraded"
            elif predicted.mem_high_water_bytes > worker_budget:
                raise MemoryExhausted(
                    f"{algorithm}: predicted per-worker high-water mark "
                    "exceeds the memory budget",
                    requested=int(predicted.mem_high_water_bytes),
                    limit=worker_budget,
                )
        if disk_budget is not None and predicted.disk_bytes > disk_budget:
            # Disk has no useful ladder: spill capacities are workload-
            # determined, so a plan predicted not to fit never will.
            raise DiskExhausted(
                f"{algorithm}: predicted disk footprint exceeds the budget",
                requested=int(predicted.disk_bytes),
                limit=disk_budget,
            )

    ticket = None
    if governor is not None:
        ticket = governor.admit(
            on_pressure, deadline_s, tenant=tenant, priority=priority
        )
        if ticket.decision == "queued":
            admission = "queued"

    started = time.perf_counter()
    try:
        outcome = execute_plan(
            pass_plan,
            workload,
            store_root,
            plan,
            use_processes=use_processes,
            pool=pool,
            collect_metrics=collect_metrics,
            collect_pairs=collect_pairs,
            keep_store=keep_store,
            policy=policy,
            fault_plan=fault_plan,
            on_pressure=on_pressure,
            max_degradations=max_degradations,
            governed=governed,
            worker_mem_budget=worker_budget,
            disk_budget=disk_budget,
            materialize=not reuse_store,
            resume=resume,
        )
    finally:
        if ticket is not None:
            ticket.release()
    wall_ms = (time.perf_counter() - started) * 1000.0

    governor_doc: Optional[dict] = None
    if governed:
        if outcome.runtime_degradations:
            # The plan changed mid-run; report the prediction for the plan
            # that actually produced the result.
            predicted = predict_footprint(
                algorithm, workload, outcome.plan, worker_budget
            )
        governor_doc = {
            "admission": admission,
            "on_pressure": on_pressure,
            "queued_ms": ticket.queued_ms if ticket is not None else 0.0,
            "admission_degradations": admission_degradations,
            "runtime_degradations": outcome.runtime_degradations,
            "degradations_total": (
                admission_degradations + outcome.runtime_degradations
            ),
            "resource_errors": dict(outcome.resource_errors),
            "budgets": {
                "mem_budget_bytes": mem_budget,
                "worker_mem_budget_bytes": worker_budget,
                "disk_budget_bytes": disk_budget,
            },
            "plan": outcome.plan.as_dict(),
            "predicted": predicted.as_dict(),
            "observed": {
                "worker_mem_high_water_bytes": _max_worker_gauge(
                    outcome.worker_metrics, "worker.mem_high_water_bytes"
                ),
                "worker_mapped_peak_bytes": _max_worker_gauge(
                    outcome.worker_metrics, "worker.mapped_peak_bytes"
                ),
                "worker_rss_max_bytes": _max_worker_gauge(
                    outcome.worker_metrics, "worker.rss_max_bytes"
                ),
                "disk_peak_bytes": outcome.disk_peak_bytes,
            },
        }

    return RealJoinResult(
        algorithm=algorithm,
        pair_count=outcome.pair_count,
        checksum=outcome.checksum,
        wall_ms=wall_ms,
        pairs=outcome.pairs,
        pair_files=outcome.pair_files,
        pass_wall_ms=outcome.pass_wall_ms,
        pass_counts=outcome.pass_counts,
        pass_checksums=outcome.pass_checksums,
        pass_kinds=outcome.pass_kinds,
        used_processes=use_processes,
        worker_metrics=outcome.worker_metrics,
        driver_metrics=outcome.driver_metrics,
        metrics_enabled=collect_metrics,
        retries_total=outcome.recovery["retries"],
        timeouts_total=outcome.recovery["timeouts"],
        inline_fallbacks=outcome.recovery["inline_fallbacks"],
        degradations_total=(
            admission_degradations + outcome.runtime_degradations
        ),
        governor=governor_doc,
        kernel_mode=outcome.plan.kernel_mode,
        partitioner=outcome.plan.effective_partitioner(algorithm),
        rebalance=dict(outcome.rebalance),
        resume=dict(outcome.resume),
        integrity=dict(outcome.integrity),
    )


def _max_worker_gauge(
    worker_metrics: Dict[str, Dict[int, dict]], name: str
) -> Optional[float]:
    """The maximum of one gauge across every worker snapshot, or None."""
    prefix = name + "{"
    best: Optional[float] = None
    for snapshots in worker_metrics.values():
        for snapshot in snapshots.values():
            for key, value in snapshot.get("gauges", {}).items():
                if key == name or key.startswith(prefix):
                    best = value if best is None else max(best, value)
    return best
