"""Driver for the real-mmap parallel joins.

:func:`run_real_join` materializes a workload into a :class:`Store`,
dispatches the per-partition workers (one OS process per partition by
default, mirroring the paper's Rproc-per-disk design), checks record
conservation across the passes, and returns per-pass wall-clock timings,
pair counts and checksums.

One :class:`multiprocessing.Pool` is forked per join and reused across all
of its passes (forking a fresh pool per pass costs more than some passes
themselves).  Workers never pickle join output back through the pool: each
streams its pairs into a mapped ``PAIRS`` segment and returns only a
``(count, checksum, path)`` triple; the parent materializes the pairs from
those segments — and only when ``collect_pairs`` asks for them, mirroring
the simulator's ``PairCollector(keep_pairs=False)`` knob.

Dispatch is recovery-aware.  Each pass submits one future per partition
(``apply_async``) and collects it with an optional ``task_timeout``; a
partition whose worker dies, raises, or fails to report in time is retried
— with exponential backoff — up to a configurable budget.  Retries are
safe because every worker's outputs are published atomically (tmp-write /
rename in the storage layer) and re-created with ``overwrite=True``, so a
half-finished dead attempt leaves nothing a retry can observe.  When the
pool itself is unrecoverable (hung workers), the still-failing partitions
are run inline in the parent as a last resort, and a pool that may still
harbor abandoned tasks is terminated rather than joined.  Deterministic
faults (:class:`~repro.parallel.faults.FaultPlan`) exercise all of this.

With ``collect_metrics`` on (the default), the runner drops the
:data:`~repro.parallel.workers.OBS_MARKER` into the store root, every
worker snapshots a process-local :class:`~repro.obs.MetricsRegistry` to a
JSON sidecar, and the runner merges those snapshots per pass — counter and
histogram merges are element-wise sums, so the merged totals are exactly
what a single-process run would have counted.  The parent's own storage
activity (materialization, pair collection) and the recovery counters
(``runner.retries_total`` etc.) land in a separate driver registry, and
:meth:`RealJoinResult.stats_document` renders everything as the versioned
JSON stats document of ``docs/metrics_schema.md``.

Whatever happens — success, exhausted retries, a conservation failure —
the run's control files (metrics marker, metrics sidecars, fault plan,
attempt counters) and any unpublished ``*.seg.tmp`` segments are swept
from the store root before the driver returns or raises.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.pool
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.records import JoinedPair
from repro.obs.export import build_real_stats_document
from repro.obs.registry import MetricsRegistry, activate, active, deactivate
from repro.obs.spans import span
from repro.parallel import workers
from repro.parallel.faults import (
    FaultPlan,
    InjectedHang,
    RetryPolicy,
    sweep_fault_state,
)
from repro.parallel.workers import (
    CHECKSUM_MOD,
    OBS_MARKER,
    PairResult,
    metrics_sidecar,
)
from repro.storage.relation import read_pairs
from repro.storage.store import Store
from repro.workload.generator import Workload

REAL_ALGORITHMS = ("nested-loops", "sort-merge", "grace")

#: Backoff between retry rounds never sleeps longer than this.
_BACKOFF_CAP_S = 2.0


class RealJoinError(RuntimeError):
    """Raised when the real backend cannot run a join."""


@dataclass
class RealJoinResult:
    """Outcome of one real-mmap join."""

    algorithm: str
    pair_count: int
    checksum: int
    wall_ms: float
    pairs: Optional[List[JoinedPair]] = None
    pass_wall_ms: Dict[str, float] = field(default_factory=dict)
    pass_counts: Dict[str, int] = field(default_factory=dict)
    pass_checksums: Dict[str, int] = field(default_factory=dict)
    used_processes: bool = True
    # Registry snapshots: per pass -> per partition, plus the parent's own.
    worker_metrics: Dict[str, Dict[int, dict]] = field(default_factory=dict)
    driver_metrics: Optional[dict] = None
    metrics_enabled: bool = False
    # Recovery totals: how hard the dispatcher had to work for this result.
    retries_total: int = 0
    timeouts_total: int = 0
    inline_fallbacks: int = 0

    def stats_document(self, workload: Optional[Workload] = None) -> dict:
        """Render this run as the versioned JSON stats document."""
        return build_real_stats_document(self, workload)


def run_real_join(
    algorithm: str,
    workload: Workload,
    store_root: str,
    use_processes: bool = True,
    buckets: int = 16,
    tsize: int = 64,
    irun: int = 4096,
    keep_store: bool = False,
    collect_pairs: bool = True,
    pool: Optional[multiprocessing.pool.Pool] = None,
    collect_metrics: bool = True,
    retries: int = 2,
    task_timeout: Optional[float] = None,
    backoff_s: float = 0.05,
    fallback_inline: bool = True,
    fault_plan: Optional[FaultPlan] = None,
) -> RealJoinResult:
    """Execute one pointer-based join on real mmap-backed files.

    ``pool`` lets a caller running several joins share one worker pool
    across them (workers are stateless — they open stores by path per
    task); a shared pool is left open for the caller to close, and is
    never terminated even when a fault leaves it with abandoned tasks.

    ``retries`` / ``task_timeout`` / ``backoff_s`` / ``fallback_inline``
    configure the :class:`~repro.parallel.faults.RetryPolicy`: each
    partition's task gets ``1 + retries`` pool attempts, a task that
    exceeds ``task_timeout`` seconds is declared dead and retried, and —
    if pool attempts are exhausted and ``fallback_inline`` is set — the
    failing partitions run once more in the parent process.  A crashed
    pool worker never delivers its result, so crash *detection* in pool
    mode requires a ``task_timeout``.

    ``fault_plan`` installs a deterministic
    :class:`~repro.parallel.faults.FaultPlan` into the store root before
    the first pass, so chosen ``(task, partition, attempt)`` coordinates
    crash, hang, or tear their output on cue.

    ``collect_metrics`` turns the observability layer on: per-worker
    registry snapshots merged per pass, driver-side counters and pass
    spans, all exposed on the result (``worker_metrics``,
    ``driver_metrics``, :meth:`RealJoinResult.stats_document`).  Off, the
    workers skip collection entirely (one ``stat`` call per task).
    """
    if algorithm not in REAL_ALGORITHMS:
        raise RealJoinError(
            f"unknown algorithm {algorithm!r}; choices: {sorted(REAL_ALGORITHMS)}"
        )
    policy = RetryPolicy(
        retries=retries,
        task_timeout=task_timeout,
        backoff_s=backoff_s,
        fallback_inline=fallback_inline,
    )
    disks = workload.disks
    # clean_orphans: this is the driver, the one place where no sibling
    # writer can be mid-publish, so stale *.seg.tmp from a previous dead
    # run are safe to sweep.
    store = Store(store_root, disks, clean_orphans=True)
    _sweep_run_artifacts(store_root, store)
    driver_registry: Optional[MetricsRegistry] = None
    owns_pool = False
    recovery = {"retries": 0, "timeouts": 0, "inline_fallbacks": 0,
                "pool_dirty": False}
    spec = workload.spec
    r_total = workload.r_objects_total
    pass_wall: Dict[str, float] = {}
    pass_counts: Dict[str, int] = {}
    pass_checksums: Dict[str, int] = {}
    pair_results: List[PairResult] = []
    worker_metrics: Dict[str, Dict[int, dict]] = {}
    started = time.perf_counter()

    def harvest_metrics(
        worker: Callable, arg_list: Sequence[tuple], label: str
    ) -> None:
        """Merge the pass's worker registry sidecars into the result."""
        if not collect_metrics:
            return
        snapshots: Dict[int, dict] = {}
        for args in arg_list:
            partition = args[2]
            sidecar = metrics_sidecar(store_root, worker.__name__, partition)
            if sidecar.exists():
                snapshots[partition] = json.loads(sidecar.read_text())
                sidecar.unlink()
        worker_metrics[label] = snapshots

    def run_pairs_pass(worker: Callable, arg_list: Sequence[tuple], label: str) -> None:
        with span("pass", algo=algorithm, label=label):
            results = _dispatch_pass(
                pool, worker, arg_list, pass_wall, label,
                policy, store_root, algorithm, recovery,
            )
        harvest_metrics(worker, arg_list, label)
        pass_counts[label] = sum(r.count for r in results)
        pass_checksums[label] = sum(r.checksum for r in results) % CHECKSUM_MOD
        pair_results.extend(results)

    def run_move_pass(worker: Callable, arg_list: Sequence[tuple], label: str) -> None:
        with span("pass", algo=algorithm, label=label):
            results = _dispatch_pass(
                pool, worker, arg_list, pass_wall, label,
                policy, store_root, algorithm, recovery,
            )
        harvest_metrics(worker, arg_list, label)
        pass_counts[label] = sum(results)

    try:
        if collect_metrics:
            (Path(store_root) / OBS_MARKER).touch()
            driver_registry = activate(MetricsRegistry())
        store.materialize(workload)
        if fault_plan is not None:
            fault_plan.install(store_root)
        if pool is None and use_processes and disks > 1:
            owns_pool = True
            pool = multiprocessing.Pool(processes=disks)
        elif not use_processes:
            pool = None

        if algorithm == "nested-loops":
            args0 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes)
                for i in range(disks)
            ]
            run_pairs_pass(workers.nested_loops_pass0, args0, "pass0")
            args1 = [(store_root, disks, i, spec.s_objects) for i in range(disks)]
            run_pairs_pass(workers.nested_loops_pass1, args1, "pass1")
            _check_conservation(
                algorithm, "pass0+pass1 pairs",
                pass_counts["pass0"] + pass_counts["pass1"], r_total,
            )
        elif algorithm == "sort-merge":
            args01 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes)
                for i in range(disks)
            ]
            run_move_pass(workers.sort_merge_partition, args01, "partition")
            _check_conservation(
                algorithm, "partitioned records",
                pass_counts["partition"], r_total,
            )
            args2 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes, irun)
                for i in range(disks)
            ]
            run_pairs_pass(workers.sort_merge_join, args2, "sort-merge-join")
            _check_conservation(
                algorithm, "joined records",
                pass_counts["sort-merge-join"], pass_counts["partition"],
            )
        else:  # grace
            args01 = [
                (store_root, disks, i, spec.s_objects, spec.r_bytes, buckets)
                for i in range(disks)
            ]
            run_move_pass(workers.grace_partition, args01, "partition")
            _check_conservation(
                algorithm, "partitioned records",
                pass_counts["partition"], r_total,
            )
            args2 = [
                (store_root, disks, i, spec.s_objects, buckets, tsize)
                for i in range(disks)
            ]
            run_pairs_pass(workers.grace_probe, args2, "probe")
            _check_conservation(
                algorithm, "probed records",
                pass_counts["probe"], pass_counts["partition"],
            )

        pairs: Optional[List[JoinedPair]] = None
        if collect_pairs:
            pairs = []
            for result in pair_results:
                pairs.extend(read_pairs(result.path))
    finally:
        if driver_registry is not None:
            deactivate()
        if owns_pool and pool is not None:
            if recovery["pool_dirty"]:
                # Abandoned (hung or crashed mid-task) workers would block
                # close()+join() forever; this pool is ours, so kill it.
                pool.terminate()
            else:
                pool.close()
            pool.join()
        # The run's control files must not outlive the run — success or
        # failure.  Order matters: only after the pool is gone is no
        # worker left that could still be writing a sidecar or a .tmp.
        _sweep_run_artifacts(store_root, store)
        if not keep_store:
            store.destroy()

    wall_ms = (time.perf_counter() - started) * 1000.0
    return RealJoinResult(
        algorithm=algorithm,
        pair_count=sum(r.count for r in pair_results),
        checksum=sum(r.checksum for r in pair_results) % CHECKSUM_MOD,
        wall_ms=wall_ms,
        pairs=pairs,
        pass_wall_ms=pass_wall,
        pass_counts=pass_counts,
        pass_checksums=pass_checksums,
        used_processes=use_processes,
        worker_metrics=worker_metrics,
        driver_metrics=(
            driver_registry.snapshot() if driver_registry is not None else None
        ),
        metrics_enabled=collect_metrics,
        retries_total=recovery["retries"],
        timeouts_total=recovery["timeouts"],
        inline_fallbacks=recovery["inline_fallbacks"],
    )


def _sweep_run_artifacts(store_root: str, store: Store) -> None:
    """Remove every run-scoped control file from the store root.

    Called before a run (stale state from a previous dead driver) and on
    every exit path (nothing of a finished run may leak): the metrics
    marker, metrics sidecars, the fault plan and its attempt counters,
    and unpublished ``*.seg.tmp`` segments.
    """
    root = Path(store_root)
    if not root.exists():
        return
    (root / OBS_MARKER).unlink(missing_ok=True)
    for sidecar in root.glob("metrics_*.json"):
        sidecar.unlink(missing_ok=True)
    sweep_fault_state(root)
    store.cleanup_orphans()


def _dispatch_pass(
    pool,
    worker: Callable,
    arg_list: Sequence[tuple],
    pass_wall: Dict[str, float],
    label: str,
    policy: RetryPolicy,
    store_root: str,
    algorithm: str,
    recovery: dict,
) -> list:
    """Dispatch one pass to all partitions, retrying failed tasks.

    Every task gets ``1 + policy.retries`` attempts (plus one optional
    inline-fallback attempt in the parent).  Between rounds the dispatcher
    backs off exponentially.  Retrying is safe because worker outputs are
    only published by atomic rename and re-created with overwrite, so a
    failed attempt's partial work is invisible to its retry.
    """
    started = time.perf_counter()
    task = worker.__name__
    results: list = [None] * len(arg_list)
    pending = list(range(len(arg_list)))
    errors: List[BaseException] = []
    labels = {"algo": algorithm, "pass": label}
    for attempt in range(policy.retries + 1):
        if not pending:
            break
        if attempt:
            recovery["retries"] += len(pending)
            active().count("runner.retries_total", len(pending), **labels)
            time.sleep(
                min(policy.backoff_s * (2 ** (attempt - 1)), _BACKOFF_CAP_S)
            )
        pending = _run_round(
            pool, worker, arg_list, pending, results,
            policy, store_root, recovery, errors, labels,
        )
    if pending and pool is not None and policy.fallback_inline:
        # Graceful degradation: the pool could not finish these partitions
        # within budget (it may be unrecoverable); run them in-process.
        recovery["inline_fallbacks"] += len(pending)
        active().count("runner.inline_fallbacks_total", len(pending), **labels)
        pending = _run_round(
            None, worker, arg_list, pending, results,
            policy, store_root, recovery, errors, labels,
        )
    if pending:
        partitions = [arg_list[idx][2] for idx in pending]
        raise RealJoinError(
            f"{algorithm} {label}: partitions {partitions} failed "
            f"{task} after {policy.retries + 1} attempt(s)"
        ) from (errors[-1] if errors else None)
    pass_wall[label] = (time.perf_counter() - started) * 1000.0
    return results


def _run_round(
    pool,
    worker: Callable,
    arg_list: Sequence[tuple],
    indices: List[int],
    results: list,
    policy: RetryPolicy,
    store_root: str,
    recovery: dict,
    errors: List[BaseException],
    labels: Dict[str, str],
) -> List[int]:
    """Run one attempt for each pending task; return the still-failing set."""
    task = worker.__name__
    for idx in indices:
        # A dead attempt may have left a sidecar snapshotted before its
        # fault fired (or a stale one from a previous run); drop it so
        # the harvest only ever sees the attempt that actually finished.
        metrics_sidecar(store_root, task, arg_list[idx][2]).unlink(
            missing_ok=True
        )
    still: List[int] = []
    if pool is not None:
        futures = [
            (idx, pool.apply_async(worker, (arg_list[idx],)))
            for idx in indices
        ]
        for idx, future in futures:
            try:
                results[idx] = future.get(policy.task_timeout)
            except multiprocessing.TimeoutError:
                # The worker died mid-task (its result will never arrive)
                # or is hung; either way the pool now holds an abandoned
                # task, so it can no longer be join()ed safely.
                recovery["timeouts"] += 1
                recovery["pool_dirty"] = True
                active().count("runner.timeouts_total", 1, **labels)
                errors.append(
                    TimeoutError(
                        f"{task} partition {arg_list[idx][2]} exceeded "
                        f"{policy.task_timeout}s"
                    )
                )
                still.append(idx)
            except Exception as error:
                active().count("runner.worker_failures_total", 1, **labels)
                errors.append(error)
                still.append(idx)
    else:
        for idx in indices:
            try:
                results[idx] = worker(arg_list[idx])
            except InjectedHang as error:
                # Inline stand-in for a task timeout: counted as one, so
                # the timeout/retry path is testable without processes.
                recovery["timeouts"] += 1
                active().count("runner.timeouts_total", 1, **labels)
                errors.append(error)
                still.append(idx)
            except Exception as error:
                active().count("runner.worker_failures_total", 1, **labels)
                errors.append(error)
                still.append(idx)
    return still


def _check_conservation(
    algorithm: str, what: str, produced: int, expected: int
) -> None:
    """Records in must equal records out — lost or duplicated objects in a
    redistribution or probe pass are the real failure modes here."""
    if produced != expected:
        raise RealJoinError(
            f"{algorithm}: {what} not conserved "
            f"({produced} produced, {expected} expected)"
        )
